// Quickstart — compress a gradient buffer with COMPSO in ~20 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include "src/compress/compressor.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <cstdio>

int main() {
  using namespace compso;

  // A KFAC-gradient-like buffer (in real use: your preconditioned
  // gradients; here: the library's synthetic generator).
  tensor::Rng rng(42);
  const std::vector<float> gradient =
      tensor::synthetic_gradient(1 << 20, tensor::GradientProfile::kfac(),
                                 rng);

  // COMPSO with the paper's aggressive-stage defaults: filter bound and
  // SR bound 4e-3 (relative to the buffer's max magnitude), ANS encoder.
  compress::CompsoParams params;
  params.filter_bound = 4e-3;
  params.quant_bound = 4e-3;
  params.encoder = codec::CodecKind::kAns;
  const auto compso = compress::make_compso(params);

  const compress::Bytes payload = compso->compress(gradient, rng);
  const std::vector<float> restored = compso->decompress(payload);

  const double cr = static_cast<double>(gradient.size() * sizeof(float)) /
                    static_cast<double>(payload.size());
  const double abs_max =
      tensor::extrema(std::span<const float>(gradient)).abs_max;
  std::printf("elements            : %zu\n", gradient.size());
  std::printf("compressed size     : %zu bytes\n", payload.size());
  std::printf("compression ratio   : %.1fx\n", cr);
  std::printf("max absolute error  : %.3e (bound %.3e)\n",
              tensor::max_abs_error(gradient, restored),
              2.0 * params.quant_bound * abs_max);
  std::printf("reconstruction PSNR : %.1f dB\n",
              tensor::psnr(gradient, restored));
  return 0;
}
