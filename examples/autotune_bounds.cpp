// Automatic error-bound tuning (paper §7 future work): instead of the
// empirical 4e-3 setting, derive the loosest bounds that keep gradient
// distortion within an explicit budget, from a warm-up sample.

#include "src/core/bound_tuner.hpp"
#include "src/tensor/synthetic.hpp"

#include <cstdio>

int main() {
  using namespace compso;

  tensor::Rng rng(11);
  const auto sample = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);

  std::printf("%-28s | %10s %10s %8s\n", "budget (rel-L2 / cos)", "eb",
              "achieved", "CR");
  std::printf("---------------------------------------------------------------\n");
  struct Budget {
    const char* name;
    double l2, cos;
  };
  const Budget budgets[] = {
      {"strict   (1% / 1e-4)", 0.01, 1e-4},
      {"default  (5% / 5e-3)", 0.05, 5e-3},
      {"relaxed  (20% / 2e-2)", 0.20, 2e-2},
  };
  for (const auto& b : budgets) {
    core::BoundTunerConfig cfg;
    cfg.max_relative_l2 = b.l2;
    cfg.max_cosine_distortion = b.cos;
    const auto tuned = core::tune_bounds(sample, cfg, rng);
    std::printf("%-28s | %10.2e %9.1f%% %7.1fx\n", b.name, tuned.quant_bound,
                100.0 * tuned.achieved_relative_l2,
                tuned.achieved_compression_ratio);
  }
  std::printf(
      "\nThe paper's empirical 4e-3 sits between the strict and default\n"
      "budgets; the tuner recovers it (or better) without hand-tuning.\n");
  return 0;
}
