// Distributed KFAC training with COMPSO on the simulated cluster.
//
// The full pipeline of the paper: data-parallel replicas, KAISA-style
// distributed KFAC (factor allreduce, layer-partitioned eigendecomposition,
// preconditioned-gradient allgather), with the iteration-wise adaptive
// COMPSO compressor on the allgather. Compares against the uncompressed
// baseline and reports accuracy, compression ratio, and the simulated
// communication time saved.

#include "src/comm/network_model.hpp"
#include "src/core/adaptive_schedule.hpp"
#include "src/core/trainer.hpp"

#include <cstdio>

int main() {
  using namespace compso;

  core::TrainerConfig cfg;
  cfg.world = 8;            // 8 simulated GPUs (2 nodes x 4)
  cfg.classes = 10;
  cfg.features = 20;
  cfg.hidden = 24;
  cfg.depth = 2;
  cfg.noise = 1.1F;
  core::ClusterTrainer trainer(cfg);

  const std::size_t iterations = 100;
  const optim::StepLr lr(0.01, 0.1, {60});
  optim::DistKfacConfig kfac_cfg;
  kfac_cfg.damping = 0.1;

  std::printf("== baseline: distributed KFAC, no compression ==\n");
  const auto base = trainer.train_kfac(iterations, lr, nullptr, kfac_cfg);
  std::printf("final accuracy %.1f%%, final loss %.4f\n\n",
              100.0 * base.final_accuracy, base.final_loss);

  std::printf("== distributed KFAC + COMPSO (adaptive schedule) ==\n");
  // Algorithm 1: aggressive (filter + SR) until the LR drop, then
  // conservative (SR-only, tighter bound).
  const core::AdaptiveSchedule schedule(lr, iterations);
  const auto aggressive = compress::make_compso(schedule.params_at(0));
  const auto conservative = compress::make_compso(schedule.params_at(60));
  const auto result = trainer.train_kfac(
      iterations, lr,
      [&](std::size_t t) {
        return schedule.at(t).use_filter ? aggressive.get()
                                         : conservative.get();
      },
      kfac_cfg);
  std::printf("final accuracy %.1f%% (baseline %.1f%%)\n",
              100.0 * result.final_accuracy, 100.0 * base.final_accuracy);
  std::printf("average compression ratio on the allgather: %.1fx\n",
              result.avg_compression_ratio);

  // What that ratio means for communication on a real-scale model: the
  // simulated allgather time for a ResNet-50-sized gradient at 64 GPUs.
  comm::Communicator comm(comm::Topology::with_gpus(64),
                          comm::NetworkModel::platform1());
  const std::size_t grad_bytes = 102U << 20;  // ~ResNet-50 KFAC gradient
  const double t_raw = comm.allgather_time(grad_bytes / 64);
  const double t_comp = comm.allgather_time(static_cast<std::size_t>(
      grad_bytes / 64 / result.avg_compression_ratio));
  std::printf(
      "at ResNet-50 scale on Platform 1 / 64 GPUs this turns a %.2f ms\n"
      "allgather into %.2f ms (%.1fx communication speedup).\n",
      1e3 * t_raw, 1e3 * t_comp, t_raw / t_comp);
  return 0;
}
