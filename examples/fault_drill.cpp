// A deterministic fault drill on the fault-tolerant training runtime.
//
// Runs distributed KFAC + COMPSO through a scripted sequence of faults —
// a corrupted compressed payload, a benign and a deadline-blowing
// straggler, a NaN gradient, and a rank crash followed by a recovery —
// and shows the recovery policies (DESIGN.md §9) and the elastic
// membership ladder (DESIGN.md §14) absorbing each one:
//
//   bounded decode retries -> skipped non-finite step + bound tightening
//   -> deadline wait, continue-without, suspicion via missed heartbeats,
//   probe backoff, eviction -> readmission + checkpoint-sourced re-sync.
//
// Midway through (while the crashed rank is still out of the group) it
// checkpoints, resumes in a fresh trainer, and verifies the continuation
// — including the later rejoin — is bit-exact.

#include "src/compso.hpp"

#include <cstdio>
#include <cstring>

namespace {

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

}  // namespace

int main() {
  using namespace compso;

  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 16,
              .depth = 2,
              .noise = 0.8F,
              .seed = 2026};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.lr_milestones = {24};
  cfg.total_iterations = 32;

  // The drill script: every event is (iteration, rank), seeded, replayable.
  // Detection never reads this plan — the crash simply stops rank 3's
  // heartbeats, and the membership ladder walks miss -> suspect -> probe
  // -> evict on its own clock (crash@6 lands the eviction at iteration 10).
  const auto plan = comm::FaultPlan{}
                        .corrupt(3, 0)          // bit-rot a compressed payload
                        .straggler(5, 1, 4.0)   // 4 s stall: inside the deadline
                        .crash(6, 3)            // rank 3 goes dark
                        .nan_gradient(8, 2)     // arithmetic fault upstream
                        .straggler(13, 1, 12.0) // 12 s stall: past the deadline
                        .recover(20, 3);        // rank 3 comes back online

  core::FaultTolerantTrainer trainer(cfg);
  trainer.set_fault_plan(plan, /*seed=*/7);

  std::printf("== fault drill: KFAC + COMPSO, 4 ranks, scripted faults ==\n");
  trainer.run(16);
  std::printf("after 16 iterations: %zu/%zu ranks in the group, rank 3 is %s\n",
              trainer.comm().active_count(), trainer.comm().world_size(),
              comm::to_string(trainer.comm().membership().phase(3)));
  std::printf("  %s\n", trainer.comm().recovery().to_string().c_str());
  std::printf("  adaptive bounds tightened after the NaN event: %s\n",
              trainer.bounds_tightened() ? "yes" : "no");

  // Checkpoint the degraded state (rank 3 evicted, counters mid-story) and
  // resume it in a fresh trainer: the shrunken group, membership ledger,
  // tightened schedule, optimizer state, and RNG streams all come back, so
  // both trainers walk the same trajectory — including rank 3's return at
  // iteration 20, when the readmitted replica re-syncs from a survivor
  // through the same sealed CKPT framing the checkpoint itself uses.
  const auto frame = trainer.checkpoint();
  std::printf("\n== checkpoint (%zu bytes) -> resume in a fresh trainer ==\n",
              frame.size());
  core::FaultTolerantTrainer resumed(cfg);
  resumed.restore(frame);
  resumed.set_fault_plan(plan, /*seed=*/7);
  trainer.run(16);
  resumed.run(16);

  const bool exact = bit_equal(trainer.parameters(), resumed.parameters());
  const bool rejoined =
      trainer.comm().active_count() == trainer.comm().world_size() &&
      trainer.comm().membership().phase(3) == comm::RankPhase::kHealthy &&
      bit_equal(trainer.parameters(), trainer.replica_parameters(3));
  std::printf("rank 3 readmitted and re-synced bit-exact: %s\n",
              rejoined ? "yes" : "NO");
  std::printf("resumed run bit-exact vs uninterrupted run: %s\n",
              exact ? "yes" : "NO");
  std::printf("  %s\n", trainer.comm().recovery().to_string().c_str());
  std::printf("final accuracy %.1f%% over the full group of %zu\n",
              100.0 * trainer.evaluate(), trainer.comm().active_count());
  return (exact && rejoined) ? 0 : 1;
}
