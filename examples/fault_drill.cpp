// A deterministic fault drill on the fault-tolerant training runtime.
//
// Runs distributed KFAC + COMPSO through a scripted sequence of faults —
// a corrupted compressed payload, a straggling rank, a NaN gradient, and
// a permanent rank crash — and shows the recovery policies (DESIGN.md §9)
// absorbing each one: bounded decode retries, a skipped non-finite step
// with adaptive-bound tightening, and eviction with world-shrink. Midway
// through it checkpoints, then resumes in a fresh trainer and verifies the
// continuation is bit-exact.

#include "src/compso.hpp"

#include <cstdio>

int main() {
  using namespace compso;

  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 16,
              .depth = 2,
              .noise = 0.8F,
              .seed = 2026};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.lr_milestones = {24};
  cfg.total_iterations = 32;

  // The drill script: every event is (iteration, rank), seeded, replayable.
  const auto plan = comm::FaultPlan{}
                        .corrupt(3, 0)       // bit-rot a compressed payload
                        .straggler(5, 1, 4.0)  // rank 1 stalls 4 simulated s
                        .nan_gradient(8, 2)  // arithmetic fault upstream
                        .crash(12, 3);       // rank 3 dies for good

  core::FaultTolerantTrainer trainer(cfg);
  trainer.set_fault_plan(plan, /*seed=*/7);

  std::printf("== fault drill: KFAC + COMPSO, 4 ranks, scripted faults ==\n");
  trainer.run(16);
  std::printf("after 16 iterations: %zu/%zu ranks alive, accuracy %.1f%%\n",
              trainer.comm().active_count(), trainer.comm().world_size(),
              100.0 * trainer.evaluate());
  std::printf("  %s\n", trainer.comm().recovery().to_string().c_str());
  std::printf("  adaptive bounds tightened after the NaN event: %s\n",
              trainer.bounds_tightened() ? "yes" : "no");

  // Checkpoint the post-fault state and resume it in a fresh trainer: the
  // shrunken world, tightened schedule, optimizer state, and RNG streams
  // all come back, so both trainers walk the same trajectory.
  const auto frame = trainer.checkpoint();
  std::printf("\n== checkpoint (%zu bytes) -> resume in a fresh trainer ==\n",
              frame.size());
  core::FaultTolerantTrainer resumed(cfg);
  resumed.restore(frame);
  trainer.run(16);
  resumed.run(16);
  const bool exact = trainer.parameters() == resumed.parameters();
  std::printf("resumed run bit-exact vs uninterrupted run: %s\n",
              exact ? "yes" : "NO");
  std::printf("final accuracy %.1f%% over %zu survivors\n",
              100.0 * trainer.evaluate(), trainer.comm().active_count());
  return exact ? 0 : 1;
}
