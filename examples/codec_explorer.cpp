// Codec explorer — run all eight lossless encoders over data of different
// shapes and see why the gradient distribution's non-uniformity makes
// entropy coders the right choice for COMPSO's lossy-stage output.

#include "src/codec/codec.hpp"
#include "src/codec/huffman.hpp"
#include "src/tensor/synthetic.hpp"

#include <algorithm>
#include <cstdio>

namespace {

using namespace compso;

std::vector<std::uint8_t> gradient_codes(std::size_t n) {
  tensor::Rng rng(3);
  const auto grad =
      tensor::synthetic_gradient(n, tensor::GradientProfile::kfac(), rng);
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(grad[i] / 1e-3F) + 128, 0, 255));
  }
  return out;
}

std::vector<std::uint8_t> uniform_noise(std::size_t n) {
  tensor::Rng rng(4);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng() & 0xFF);
  return out;
}

std::vector<std::uint8_t> long_runs(std::size_t n) {
  tensor::Rng rng(5);
  std::vector<std::uint8_t> out;
  out.reserve(n);
  while (out.size() < n) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_index(4));
    out.insert(out.end(), 1 + rng.uniform_index(200), v);
  }
  out.resize(n);
  return out;
}

}  // namespace

int main() {
  struct DataCase {
    const char* name;
    std::vector<std::uint8_t> data;
  };
  const std::size_t n = 1 << 18;
  DataCase cases[] = {{"gradient codes", gradient_codes(n)},
                      {"uniform noise", uniform_noise(n)},
                      {"long runs", long_runs(n)}};

  std::printf("%-9s", "encoder");
  for (const auto& c : cases) std::printf(" | %-16s", c.name);
  std::printf("\n");
  for (const auto& c : cases) {
    (void)c;
  }
  std::printf("entropy  ");
  for (const auto& c : cases) {
    std::printf(" | %5.2f bits/byte  ", codec::byte_entropy(c.data));
  }
  std::printf("\n---------------------------------------------------------------\n");
  for (auto kind : codec::kAllCodecKinds) {
    const auto codec = codec::make_codec(kind);
    std::printf("%-9s", codec::to_string(kind));
    for (const auto& c : cases) {
      const auto enc = codec->encode(c.data);
      std::printf(" | %6.2fx          ",
                  static_cast<double>(c.data.size()) /
                      static_cast<double>(enc.size()));
    }
    std::printf("\n");
  }
  std::printf(
      "\nTakeaways: entropy coders (ANS/Deflate/Gdeflate/Zstd) win on\n"
      "gradient codes; nothing compresses uniform noise (stored-block\n"
      "fallback holds the ratio at ~1x); Cascaded shines only on runs.\n");
  return 0;
}
