// Performance-model workflow (paper §4.4): given your cluster and model,
// let the framework pick the lossless encoder and the layer-aggregation
// factor before training starts.
//
// This is the "offline-online mechanism": the lookup table is built from
// the network model offline; encoder selection and the aggregation search
// run on a sample of real gradient data (the first k warm-up iterations in
// production; a synthetic sample here).

#include "src/core/framework.hpp"
#include "src/tensor/synthetic.hpp"

#include <cstdio>

int main() {
  using namespace compso;

  // Your system: 64 GPUs on the Slingshot-10 platform.
  comm::Communicator comm(comm::Topology::with_gpus(64),
                          comm::NetworkModel::platform1());
  // Your model: ResNet-50's layer sizes.
  const auto model = nn::resnet50_shape();
  std::vector<std::size_t> layer_bytes;
  for (const auto& l : model.layers) layer_bytes.push_back(l.kfac_bytes());

  // Your schedule: StepLR with the first drop at iteration 60.
  const optim::StepLr lr(0.01, 0.1, {60});

  core::FrameworkConfig cfg;
  cfg.use_perf_model = true;  // COMPSO-p
  core::CompsoFramework framework(cfg, lr, 100, comm);

  // Warm-up sample (in production: gradients from the first k iterations).
  tensor::Rng rng(7);
  const auto sample = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);
  const double comm_fraction = 0.45;  // measured in the warm-up
  framework.tune(layer_bytes, sample, comm_fraction, rng);

  std::printf("offline lookup table (allgather throughput vs size):\n");
  const auto& table = framework.lookup_table();
  for (std::size_t i = 0; i < table.sizes().size(); i += 6) {
    std::printf("  %10zu B -> %7.2f GB/s\n", table.sizes()[i],
                table.throughputs()[i] / 1e9);
  }

  std::printf("\nencoder candidates (best first):\n");
  for (const auto& s : framework.encoder_scores()) {
    std::printf("  %-9s CR %6.2f  enc %7.2f GB/s  dec %7.2f GB/s\n",
                codec::to_string(s.kind), s.compression_ratio,
                s.comp_throughput / 1e9, s.decomp_throughput / 1e9);
  }

  std::printf("\ndecisions:\n");
  std::printf("  encoder            : %s\n",
              codec::to_string(framework.encoder()));
  std::printf("  aggregation factor : %zu layers per compression call\n",
              framework.aggregation());
  std::printf("  estimated end-to-end speedup: %.2fx\n",
              framework.estimated_end_to_end());

  // The per-iteration compressor follows the adaptive schedule:
  std::printf("\nper-iteration strategy (Algorithm 1):\n");
  for (std::size_t t : {0UL, 30UL, 60UL, 90UL}) {
    const auto stage = framework.schedule().at(t);
    std::printf("  t=%3zu: %s, eb_f %.0e, eb_q %.0e\n", t,
                stage.use_filter ? "aggressive (filter+SR)"
                                 : "conservative (SR only)",
                stage.filter_bound, stage.quant_bound);
  }
  return 0;
}
