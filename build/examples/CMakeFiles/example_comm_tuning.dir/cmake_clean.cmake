file(REMOVE_RECURSE
  "CMakeFiles/example_comm_tuning.dir/comm_tuning.cpp.o"
  "CMakeFiles/example_comm_tuning.dir/comm_tuning.cpp.o.d"
  "example_comm_tuning"
  "example_comm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_comm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
