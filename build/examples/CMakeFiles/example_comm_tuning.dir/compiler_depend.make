# Empty compiler generated dependencies file for example_comm_tuning.
# This may be replaced when dependencies are built.
