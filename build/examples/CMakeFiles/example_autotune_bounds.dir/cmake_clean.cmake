file(REMOVE_RECURSE
  "CMakeFiles/example_autotune_bounds.dir/autotune_bounds.cpp.o"
  "CMakeFiles/example_autotune_bounds.dir/autotune_bounds.cpp.o.d"
  "example_autotune_bounds"
  "example_autotune_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_autotune_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
