# Empty dependencies file for example_autotune_bounds.
# This may be replaced when dependencies are built.
