# Empty dependencies file for example_codec_explorer.
# This may be replaced when dependencies are built.
