file(REMOVE_RECURSE
  "CMakeFiles/example_codec_explorer.dir/codec_explorer.cpp.o"
  "CMakeFiles/example_codec_explorer.dir/codec_explorer.cpp.o.d"
  "example_codec_explorer"
  "example_codec_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_codec_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
