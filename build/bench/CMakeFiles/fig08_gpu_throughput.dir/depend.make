# Empty dependencies file for fig08_gpu_throughput.
# This may be replaced when dependencies are built.
