# Empty dependencies file for table_training_hours.
# This may be replaced when dependencies are built.
