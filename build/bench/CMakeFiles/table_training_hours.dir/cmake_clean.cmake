file(REMOVE_RECURSE
  "CMakeFiles/table_training_hours.dir/table_training_hours.cpp.o"
  "CMakeFiles/table_training_hours.dir/table_training_hours.cpp.o.d"
  "table_training_hours"
  "table_training_hours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_training_hours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
