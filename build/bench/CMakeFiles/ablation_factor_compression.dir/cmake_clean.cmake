file(REMOVE_RECURSE
  "CMakeFiles/ablation_factor_compression.dir/ablation_factor_compression.cpp.o"
  "CMakeFiles/ablation_factor_compression.dir/ablation_factor_compression.cpp.o.d"
  "ablation_factor_compression"
  "ablation_factor_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_factor_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
