# Empty compiler generated dependencies file for fig03_cr_accuracy.
# This may be replaced when dependencies are built.
