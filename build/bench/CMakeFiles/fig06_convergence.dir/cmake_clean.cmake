file(REMOVE_RECURSE
  "CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o"
  "CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o.d"
  "fig06_convergence"
  "fig06_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
