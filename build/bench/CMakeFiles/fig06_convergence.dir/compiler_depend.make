# Empty compiler generated dependencies file for fig06_convergence.
# This may be replaced when dependencies are built.
