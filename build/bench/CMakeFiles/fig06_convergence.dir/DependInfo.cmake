
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_convergence.cpp" "bench/CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o" "gcc" "bench/CMakeFiles/fig06_convergence.dir/fig06_convergence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
