file(REMOVE_RECURSE
  "CMakeFiles/micro_codec_throughput.dir/micro_codec_throughput.cpp.o"
  "CMakeFiles/micro_codec_throughput.dir/micro_codec_throughput.cpp.o.d"
  "micro_codec_throughput"
  "micro_codec_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codec_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
