# Empty compiler generated dependencies file for micro_codec_throughput.
# This may be replaced when dependencies are built.
