file(REMOVE_RECURSE
  "CMakeFiles/fig05_error_dist.dir/fig05_error_dist.cpp.o"
  "CMakeFiles/fig05_error_dist.dir/fig05_error_dist.cpp.o.d"
  "fig05_error_dist"
  "fig05_error_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_error_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
