file(REMOVE_RECURSE
  "CMakeFiles/table1_squad.dir/table1_squad.cpp.o"
  "CMakeFiles/table1_squad.dir/table1_squad.cpp.o.d"
  "table1_squad"
  "table1_squad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_squad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
