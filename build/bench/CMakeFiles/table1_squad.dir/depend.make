# Empty dependencies file for table1_squad.
# This may be replaced when dependencies are built.
