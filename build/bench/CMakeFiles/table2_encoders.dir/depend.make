# Empty dependencies file for table2_encoders.
# This may be replaced when dependencies are built.
