file(REMOVE_RECURSE
  "CMakeFiles/table2_encoders.dir/table2_encoders.cpp.o"
  "CMakeFiles/table2_encoders.dir/table2_encoders.cpp.o.d"
  "table2_encoders"
  "table2_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
