# Empty dependencies file for fig07_comm_speedup.
# This may be replaced when dependencies are built.
