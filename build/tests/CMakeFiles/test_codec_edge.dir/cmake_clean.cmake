file(REMOVE_RECURSE
  "CMakeFiles/test_codec_edge.dir/test_codec_edge.cpp.o"
  "CMakeFiles/test_codec_edge.dir/test_codec_edge.cpp.o.d"
  "test_codec_edge"
  "test_codec_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
