file(REMOVE_RECURSE
  "CMakeFiles/compso_comm.dir/comm/communicator.cpp.o"
  "CMakeFiles/compso_comm.dir/comm/communicator.cpp.o.d"
  "CMakeFiles/compso_comm.dir/comm/network_model.cpp.o"
  "CMakeFiles/compso_comm.dir/comm/network_model.cpp.o.d"
  "libcompso_comm.a"
  "libcompso_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
