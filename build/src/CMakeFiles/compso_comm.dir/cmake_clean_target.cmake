file(REMOVE_RECURSE
  "libcompso_comm.a"
)
