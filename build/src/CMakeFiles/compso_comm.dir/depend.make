# Empty dependencies file for compso_comm.
# This may be replaced when dependencies are built.
