file(REMOVE_RECURSE
  "CMakeFiles/compso_quant.dir/quant/bitpack.cpp.o"
  "CMakeFiles/compso_quant.dir/quant/bitpack.cpp.o.d"
  "CMakeFiles/compso_quant.dir/quant/filter.cpp.o"
  "CMakeFiles/compso_quant.dir/quant/filter.cpp.o.d"
  "CMakeFiles/compso_quant.dir/quant/quantizer.cpp.o"
  "CMakeFiles/compso_quant.dir/quant/quantizer.cpp.o.d"
  "CMakeFiles/compso_quant.dir/quant/rounding.cpp.o"
  "CMakeFiles/compso_quant.dir/quant/rounding.cpp.o.d"
  "libcompso_quant.a"
  "libcompso_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
