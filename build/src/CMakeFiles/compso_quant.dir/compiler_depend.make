# Empty compiler generated dependencies file for compso_quant.
# This may be replaced when dependencies are built.
