
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/bitpack.cpp" "src/CMakeFiles/compso_quant.dir/quant/bitpack.cpp.o" "gcc" "src/CMakeFiles/compso_quant.dir/quant/bitpack.cpp.o.d"
  "/root/repo/src/quant/filter.cpp" "src/CMakeFiles/compso_quant.dir/quant/filter.cpp.o" "gcc" "src/CMakeFiles/compso_quant.dir/quant/filter.cpp.o.d"
  "/root/repo/src/quant/quantizer.cpp" "src/CMakeFiles/compso_quant.dir/quant/quantizer.cpp.o" "gcc" "src/CMakeFiles/compso_quant.dir/quant/quantizer.cpp.o.d"
  "/root/repo/src/quant/rounding.cpp" "src/CMakeFiles/compso_quant.dir/quant/rounding.cpp.o" "gcc" "src/CMakeFiles/compso_quant.dir/quant/rounding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
