file(REMOVE_RECURSE
  "libcompso_quant.a"
)
