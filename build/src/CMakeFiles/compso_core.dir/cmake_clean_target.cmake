file(REMOVE_RECURSE
  "libcompso_core.a"
)
