file(REMOVE_RECURSE
  "CMakeFiles/compso_core.dir/core/adaptive_schedule.cpp.o"
  "CMakeFiles/compso_core.dir/core/adaptive_schedule.cpp.o.d"
  "CMakeFiles/compso_core.dir/core/bound_tuner.cpp.o"
  "CMakeFiles/compso_core.dir/core/bound_tuner.cpp.o.d"
  "CMakeFiles/compso_core.dir/core/framework.cpp.o"
  "CMakeFiles/compso_core.dir/core/framework.cpp.o.d"
  "CMakeFiles/compso_core.dir/core/perf_sim.cpp.o"
  "CMakeFiles/compso_core.dir/core/perf_sim.cpp.o.d"
  "CMakeFiles/compso_core.dir/core/trainer.cpp.o"
  "CMakeFiles/compso_core.dir/core/trainer.cpp.o.d"
  "libcompso_core.a"
  "libcompso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
