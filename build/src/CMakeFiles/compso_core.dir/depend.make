# Empty dependencies file for compso_core.
# This may be replaced when dependencies are built.
