file(REMOVE_RECURSE
  "CMakeFiles/compso_compress.dir/compress/baseline_compressors.cpp.o"
  "CMakeFiles/compso_compress.dir/compress/baseline_compressors.cpp.o.d"
  "CMakeFiles/compso_compress.dir/compress/compressor.cpp.o"
  "CMakeFiles/compso_compress.dir/compress/compressor.cpp.o.d"
  "CMakeFiles/compso_compress.dir/compress/compso_compressor.cpp.o"
  "CMakeFiles/compso_compress.dir/compress/compso_compressor.cpp.o.d"
  "libcompso_compress.a"
  "libcompso_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
