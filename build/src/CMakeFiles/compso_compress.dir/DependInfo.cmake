
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/baseline_compressors.cpp" "src/CMakeFiles/compso_compress.dir/compress/baseline_compressors.cpp.o" "gcc" "src/CMakeFiles/compso_compress.dir/compress/baseline_compressors.cpp.o.d"
  "/root/repo/src/compress/compressor.cpp" "src/CMakeFiles/compso_compress.dir/compress/compressor.cpp.o" "gcc" "src/CMakeFiles/compso_compress.dir/compress/compressor.cpp.o.d"
  "/root/repo/src/compress/compso_compressor.cpp" "src/CMakeFiles/compso_compress.dir/compress/compso_compressor.cpp.o" "gcc" "src/CMakeFiles/compso_compress.dir/compress/compso_compressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
