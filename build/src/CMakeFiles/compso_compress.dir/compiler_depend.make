# Empty compiler generated dependencies file for compso_compress.
# This may be replaced when dependencies are built.
