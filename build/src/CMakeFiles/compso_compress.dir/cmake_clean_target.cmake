file(REMOVE_RECURSE
  "libcompso_compress.a"
)
