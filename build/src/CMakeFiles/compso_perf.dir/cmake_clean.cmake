file(REMOVE_RECURSE
  "CMakeFiles/compso_perf.dir/perf/perf_model.cpp.o"
  "CMakeFiles/compso_perf.dir/perf/perf_model.cpp.o.d"
  "libcompso_perf.a"
  "libcompso_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
