file(REMOVE_RECURSE
  "libcompso_perf.a"
)
