# Empty compiler generated dependencies file for compso_perf.
# This may be replaced when dependencies are built.
