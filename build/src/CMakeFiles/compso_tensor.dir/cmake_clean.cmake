file(REMOVE_RECURSE
  "CMakeFiles/compso_tensor.dir/tensor/eigen.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/eigen.cpp.o.d"
  "CMakeFiles/compso_tensor.dir/tensor/matrix_ops.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/matrix_ops.cpp.o.d"
  "CMakeFiles/compso_tensor.dir/tensor/rng.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/rng.cpp.o.d"
  "CMakeFiles/compso_tensor.dir/tensor/stats.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/stats.cpp.o.d"
  "CMakeFiles/compso_tensor.dir/tensor/synthetic.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/synthetic.cpp.o.d"
  "CMakeFiles/compso_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/compso_tensor.dir/tensor/tensor.cpp.o.d"
  "libcompso_tensor.a"
  "libcompso_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
