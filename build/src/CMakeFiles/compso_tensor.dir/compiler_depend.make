# Empty compiler generated dependencies file for compso_tensor.
# This may be replaced when dependencies are built.
