
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/eigen.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/eigen.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/eigen.cpp.o.d"
  "/root/repo/src/tensor/matrix_ops.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/matrix_ops.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/matrix_ops.cpp.o.d"
  "/root/repo/src/tensor/rng.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/rng.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/rng.cpp.o.d"
  "/root/repo/src/tensor/stats.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/stats.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/stats.cpp.o.d"
  "/root/repo/src/tensor/synthetic.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/synthetic.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/synthetic.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/compso_tensor.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/compso_tensor.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
