file(REMOVE_RECURSE
  "libcompso_tensor.a"
)
