
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device_model.cpp" "src/CMakeFiles/compso_gpusim.dir/gpusim/device_model.cpp.o" "gcc" "src/CMakeFiles/compso_gpusim.dir/gpusim/device_model.cpp.o.d"
  "/root/repo/src/gpusim/layer_mapping.cpp" "src/CMakeFiles/compso_gpusim.dir/gpusim/layer_mapping.cpp.o" "gcc" "src/CMakeFiles/compso_gpusim.dir/gpusim/layer_mapping.cpp.o.d"
  "/root/repo/src/gpusim/reduction.cpp" "src/CMakeFiles/compso_gpusim.dir/gpusim/reduction.cpp.o" "gcc" "src/CMakeFiles/compso_gpusim.dir/gpusim/reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
