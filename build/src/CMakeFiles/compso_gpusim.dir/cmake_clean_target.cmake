file(REMOVE_RECURSE
  "libcompso_gpusim.a"
)
