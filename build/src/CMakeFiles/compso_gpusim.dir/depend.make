# Empty dependencies file for compso_gpusim.
# This may be replaced when dependencies are built.
