file(REMOVE_RECURSE
  "CMakeFiles/compso_gpusim.dir/gpusim/device_model.cpp.o"
  "CMakeFiles/compso_gpusim.dir/gpusim/device_model.cpp.o.d"
  "CMakeFiles/compso_gpusim.dir/gpusim/layer_mapping.cpp.o"
  "CMakeFiles/compso_gpusim.dir/gpusim/layer_mapping.cpp.o.d"
  "CMakeFiles/compso_gpusim.dir/gpusim/reduction.cpp.o"
  "CMakeFiles/compso_gpusim.dir/gpusim/reduction.cpp.o.d"
  "libcompso_gpusim.a"
  "libcompso_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
