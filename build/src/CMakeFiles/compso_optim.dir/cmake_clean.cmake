file(REMOVE_RECURSE
  "CMakeFiles/compso_optim.dir/optim/dist_kfac.cpp.o"
  "CMakeFiles/compso_optim.dir/optim/dist_kfac.cpp.o.d"
  "CMakeFiles/compso_optim.dir/optim/dist_sgd.cpp.o"
  "CMakeFiles/compso_optim.dir/optim/dist_sgd.cpp.o.d"
  "CMakeFiles/compso_optim.dir/optim/first_order.cpp.o"
  "CMakeFiles/compso_optim.dir/optim/first_order.cpp.o.d"
  "CMakeFiles/compso_optim.dir/optim/kfac.cpp.o"
  "CMakeFiles/compso_optim.dir/optim/kfac.cpp.o.d"
  "CMakeFiles/compso_optim.dir/optim/lr_scheduler.cpp.o"
  "CMakeFiles/compso_optim.dir/optim/lr_scheduler.cpp.o.d"
  "libcompso_optim.a"
  "libcompso_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
