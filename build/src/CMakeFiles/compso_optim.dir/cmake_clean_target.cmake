file(REMOVE_RECURSE
  "libcompso_optim.a"
)
