# Empty dependencies file for compso_optim.
# This may be replaced when dependencies are built.
