file(REMOVE_RECURSE
  "CMakeFiles/compso_codec.dir/codec/ans.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/ans.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/codec.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/codec.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/elias.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/elias.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/huffman.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/huffman.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/lz77.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/lz77.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/lz_codecs.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/lz_codecs.cpp.o.d"
  "CMakeFiles/compso_codec.dir/codec/simple_codecs.cpp.o"
  "CMakeFiles/compso_codec.dir/codec/simple_codecs.cpp.o.d"
  "libcompso_codec.a"
  "libcompso_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
