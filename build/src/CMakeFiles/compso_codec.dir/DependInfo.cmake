
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/ans.cpp" "src/CMakeFiles/compso_codec.dir/codec/ans.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/ans.cpp.o.d"
  "/root/repo/src/codec/codec.cpp" "src/CMakeFiles/compso_codec.dir/codec/codec.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/codec.cpp.o.d"
  "/root/repo/src/codec/elias.cpp" "src/CMakeFiles/compso_codec.dir/codec/elias.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/elias.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/CMakeFiles/compso_codec.dir/codec/huffman.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/huffman.cpp.o.d"
  "/root/repo/src/codec/lz77.cpp" "src/CMakeFiles/compso_codec.dir/codec/lz77.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/lz77.cpp.o.d"
  "/root/repo/src/codec/lz_codecs.cpp" "src/CMakeFiles/compso_codec.dir/codec/lz_codecs.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/lz_codecs.cpp.o.d"
  "/root/repo/src/codec/simple_codecs.cpp" "src/CMakeFiles/compso_codec.dir/codec/simple_codecs.cpp.o" "gcc" "src/CMakeFiles/compso_codec.dir/codec/simple_codecs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/compso_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
