file(REMOVE_RECURSE
  "libcompso_codec.a"
)
