# Empty compiler generated dependencies file for compso_codec.
# This may be replaced when dependencies are built.
