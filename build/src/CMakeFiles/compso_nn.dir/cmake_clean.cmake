file(REMOVE_RECURSE
  "CMakeFiles/compso_nn.dir/nn/attention.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/attention.cpp.o.d"
  "CMakeFiles/compso_nn.dir/nn/conv.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/conv.cpp.o.d"
  "CMakeFiles/compso_nn.dir/nn/dataset.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/dataset.cpp.o.d"
  "CMakeFiles/compso_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/compso_nn.dir/nn/model.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/model.cpp.o.d"
  "CMakeFiles/compso_nn.dir/nn/model_zoo.cpp.o"
  "CMakeFiles/compso_nn.dir/nn/model_zoo.cpp.o.d"
  "libcompso_nn.a"
  "libcompso_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compso_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
