file(REMOVE_RECURSE
  "libcompso_nn.a"
)
