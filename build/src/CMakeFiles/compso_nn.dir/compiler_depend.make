# Empty compiler generated dependencies file for compso_nn.
# This may be replaced when dependencies are built.
