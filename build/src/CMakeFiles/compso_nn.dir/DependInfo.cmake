
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/CMakeFiles/compso_nn.dir/nn/attention.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/attention.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/compso_nn.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/CMakeFiles/compso_nn.dir/nn/dataset.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/dataset.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/compso_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/compso_nn.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/CMakeFiles/compso_nn.dir/nn/model_zoo.cpp.o" "gcc" "src/CMakeFiles/compso_nn.dir/nn/model_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/compso_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
