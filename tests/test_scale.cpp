// Scale-out suite (DESIGN.md §16): Topology rank-map properties (incl.
// the zero-GPU clamp), collective-algorithm byte-identity against the
// flat canonical reduction for adversarial world sizes, selection and
// time-model invariants (legacy formulas unchanged; hierarchical beats
// the flat ring at >= 256 ranks), and distributed preconditioning shards:
// deterministic cost-balanced assignment, sharded-vs-KAISA bit-identity
// at any engine thread count, owner eviction mid-run, checkpoint/resume
// between a reassignment and the next eigh refresh, and the O(L/P)
// memory attribution.

#include "src/comm/collectives.hpp"
#include "src/comm/communicator.hpp"
#include "src/comm/fault_injector.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/core/perf_sim.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/perf/perf_model.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace opt = compso::optim;
namespace nn = compso::nn;
namespace ct = compso::tensor;
namespace cc = compso::compress;
namespace perf = compso::perf;

namespace {

// --- Topology properties ---

TEST(Topology, ZeroGpusClampsToMinimal) {
  for (const auto t : {cm::Topology::with_gpus(0), cm::Topology::with_gpus(0, 0),
                       cm::Topology::with_gpus(5, 0)}) {
    EXPECT_EQ(t.nodes, 1U);
    EXPECT_EQ(t.gpus_per_node, 1U);
    EXPECT_EQ(t.world_size(), 1U);
    EXPECT_EQ(t.node_of(0), 0U);   // no division by zero.
    EXPECT_EQ(t.local_of(0), 0U);
  }
}

TEST(Topology, RankMapRoundTripsForAdversarialShapes) {
  for (const std::size_t gpus : {1UL, 2UL, 3UL, 4UL, 5UL, 7UL, 16UL, 33UL,
                                 256UL, 1000UL}) {
    for (const std::size_t per_node : {1UL, 3UL, 4UL, 8UL}) {
      const auto t = cm::Topology::with_gpus(gpus, per_node);
      EXPECT_GE(t.world_size(), gpus);
      EXPECT_LT(t.world_size(), gpus + t.gpus_per_node);
      for (std::size_t r = 0; r < t.world_size(); ++r) {
        EXPECT_LT(t.node_of(r), t.nodes);
        EXPECT_LT(t.local_of(r), t.gpus_per_node);
        EXPECT_EQ(t.node_of(r) * t.gpus_per_node + t.local_of(r), r);
        EXPECT_TRUE(t.same_node(r, r));
      }
      // Consecutive ranks share a node iff they sit in the same
      // gpus_per_node-sized block.
      for (std::size_t r = 0; r + 1 < t.world_size(); ++r) {
        EXPECT_EQ(t.same_node(r, r + 1),
                  r / t.gpus_per_node == (r + 1) / t.gpus_per_node);
      }
    }
  }
}

// --- collective algorithms: byte identity vs the flat reference ---

/// Deterministic, rank- and index-dependent float (not round numbers, so
/// association order changes would show).
float probe_value(std::size_t rank, std::size_t i) {
  return 0.25F + 0.375F * static_cast<float>(rank + 1) -
         0.03125F * static_cast<float>(i % 17) +
         1.0F / static_cast<float>(rank + i + 2);
}

struct CollectiveWorld {
  std::vector<std::vector<float>> bufs;
  std::vector<std::span<float>> views;
  std::vector<std::uint8_t> participating;

  CollectiveWorld(std::size_t world, std::size_t n,
                  const std::vector<std::size_t>& evicted = {}) {
    bufs.resize(world);
    participating.assign(world, 1);
    for (const std::size_t e : evicted) participating[e] = 0;
    for (std::size_t r = 0; r < world; ++r) {
      bufs[r].resize(n);
      for (std::size_t i = 0; i < n; ++i) bufs[r][i] = probe_value(r, i);
    }
    for (auto& b : bufs) views.emplace_back(b);
  }

  /// The flat canonical reduction: ascending participating rank, linear
  /// association — the reference every algorithm must match bitwise.
  std::vector<float> canonical_sum() const {
    std::vector<float> sum;
    for (std::size_t r = 0; r < bufs.size(); ++r) {
      if (participating[r] == 0) continue;
      if (sum.empty()) {
        sum = bufs[r];
      } else {
        for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += bufs[r][i];
      }
    }
    return sum;
  }
};

void expect_span_bits(std::span<const float> got,
                      std::span<const float> want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " element " << i;
  }
}

TEST(Collectives, AllreduceByteIdenticalToFlatReference) {
  for (const std::size_t world : {2UL, 3UL, 4UL, 5UL, 7UL, 8UL, 12UL, 16UL,
                                  33UL}) {
    for (const std::size_t n : {1UL, 5UL, 64UL, 257UL}) {
      // All-participating, plus a mask with the first and last ranks out
      // (when enough ranks remain for a collective).
      std::vector<std::vector<std::size_t>> masks{{}};
      if (world >= 4) masks.push_back({0, world - 1});
      for (const auto& evicted : masks) {
        const auto topo = cm::Topology::with_gpus(world);
        for (const auto algo : {cm::CollectiveAlgo::kRing,
                                cm::CollectiveAlgo::kRecursiveDoubling,
                                cm::CollectiveAlgo::kHierarchical}) {
          CollectiveWorld w(world, n, evicted);
          const auto want = w.canonical_sum();
          cm::run_allreduce(algo, topo, w.views, w.participating);
          const std::string what = std::string(cm::to_string(algo)) +
                                   " world=" + std::to_string(world) +
                                   " n=" + std::to_string(n) +
                                   " evicted=" + std::to_string(evicted.size());
          for (std::size_t r = 0; r < world; ++r) {
            if (w.participating[r] != 0) {
              expect_span_bits(w.bufs[r], want, what);
            } else {
              // Non-participants are untouched.
              for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(w.bufs[r][i], probe_value(r, i)) << what;
              }
            }
          }
        }
      }
    }
  }
}

TEST(Collectives, BroadcastDeliversRootBytesAlongEveryAlgorithm) {
  for (const std::size_t world : {2UL, 3UL, 5UL, 8UL, 12UL, 33UL}) {
    const auto topo = cm::Topology::with_gpus(world);
    const std::size_t root = world / 2;  // not rank 0: exercises vrank maps.
    for (const auto algo : {cm::CollectiveAlgo::kRing,
                            cm::CollectiveAlgo::kRecursiveDoubling,
                            cm::CollectiveAlgo::kHierarchical}) {
      std::vector<std::size_t> evicted;
      if (world >= 5) evicted.push_back(world - 2);
      CollectiveWorld w(world, 19, evicted);
      const auto want = w.bufs[root];
      cm::run_broadcast(algo, topo, w.views, root, w.participating);
      const std::string what = std::string(cm::to_string(algo)) +
                               " world=" + std::to_string(world);
      for (std::size_t r = 0; r < world; ++r) {
        if (w.participating[r] != 0) {
          expect_span_bits(w.bufs[r], want, what);
        } else {
          for (std::size_t i = 0; i < w.bufs[r].size(); ++i) {
            ASSERT_EQ(w.bufs[r][i], probe_value(r, i)) << what;
          }
        }
      }
    }
  }
}

TEST(Collectives, ReduceLeavesCanonicalSumAtRootOnly) {
  for (const std::size_t world : {3UL, 7UL, 16UL}) {
    for (const std::size_t root : {0UL, world - 1}) {
      CollectiveWorld w(world, 33);
      const auto want = w.canonical_sum();
      cm::run_reduce(w.views, root, w.participating);
      expect_span_bits(w.bufs[root], want, "root world=" +
                                               std::to_string(world));
      for (std::size_t r = 0; r < world; ++r) {
        if (r == root) continue;
        // Non-root participants keep their local contribution.
        for (std::size_t i = 0; i < w.bufs[r].size(); ++i) {
          ASSERT_EQ(w.bufs[r][i], probe_value(r, i)) << "world=" << world;
        }
      }
    }
  }
}

// --- selection + time models ---

TEST(Collectives, SelectionOffAlwaysRing) {
  const auto topo = cm::Topology::with_gpus(256);
  const auto net = cm::NetworkModel::platform1();
  const cm::CollectiveConfig off;  // auto_select = false.
  for (const std::size_t bytes : {64UL, 1UL << 20, 1UL << 28}) {
    EXPECT_EQ(cm::select_algo(off, topo, 256, bytes),
              cm::CollectiveAlgo::kRing);
    EXPECT_EQ(cm::select_allreduce_algo(off, topo, net, 256, bytes),
              cm::CollectiveAlgo::kRing);
  }
}

TEST(Collectives, CostBasedSelectionPicksTheModeledMinimum) {
  const auto net = cm::NetworkModel::platform1();
  cm::CollectiveConfig cfg;
  cfg.auto_select = true;
  for (const std::size_t world : {8UL, 64UL, 256UL, 1024UL, 4096UL}) {
    const auto topo = cm::Topology::with_gpus(world);
    for (const std::size_t bytes :
         {256UL, 1UL << 14, 1UL << 20, 1UL << 25, 1UL << 31}) {
      const auto sel = cm::select_allreduce_algo(cfg, topo, net, world, bytes);
      const double t_sel = cm::allreduce_time(sel, topo, net, world, bytes);
      for (const auto algo : {cm::CollectiveAlgo::kRing,
                              cm::CollectiveAlgo::kRecursiveDoubling,
                              cm::CollectiveAlgo::kHierarchical}) {
        EXPECT_LE(t_sel, cm::allreduce_time(algo, topo, net, world, bytes))
            << "world=" << world << " bytes=" << bytes;
      }
    }
  }
  // Threshold selection keeps its documented shape for the other
  // families: small -> recursive doubling, large multi-node -> two-level.
  const auto topo = cm::Topology::with_gpus(256);
  EXPECT_EQ(cm::select_algo(cfg, topo, 256, 1024),
            cm::CollectiveAlgo::kRecursiveDoubling);
  EXPECT_EQ(cm::select_algo(cfg, topo, 256, 1UL << 20),
            cm::CollectiveAlgo::kHierarchical);
}

TEST(Collectives, LegacyTimingFormulasUnchangedWithSelectionOff) {
  // A default-configured Communicator must price collectives exactly as
  // the pre-§16 closed forms (same expressions, same evaluation order).
  const auto topo = cm::Topology::with_gpus(16);
  const auto net = cm::NetworkModel::platform1();
  cm::Communicator comm(topo, net);
  const double lat = net.inter_node().latency_s;
  const double bw = net.inter_node().bandwidth_Bps;
  for (const std::size_t bytes : {1UL << 10, 1UL << 20, 1UL << 26}) {
    const double pd = 16.0;
    const double n = static_cast<double>(bytes);
    EXPECT_DOUBLE_EQ(comm.allreduce_time(bytes),
                     2.0 * (pd - 1.0) * lat + (2.0 * (pd - 1.0) / pd * n) / bw);
    EXPECT_DOUBLE_EQ(comm.allgather_time(bytes),
                     (pd - 1.0) * lat + ((pd - 1.0) * n) / bw);
  }
  // Legacy broadcast: hierarchical binomial over node leaders + intra.
  const std::size_t b = 1UL << 16;
  EXPECT_DOUBLE_EQ(
      comm.broadcast_time(b),
      static_cast<double>(std::bit_width(topo.nodes - 1)) *
              net.inter_node().transfer_time(b) +
          static_cast<double>(std::bit_width(topo.gpus_per_node - 1)) *
              net.intra_node().transfer_time(b));
}

TEST(Collectives, HierarchicalBeatsFlatRingAtScale) {
  const auto net = cm::NetworkModel::platform1();
  for (const std::size_t world : {256UL, 1024UL, 4096UL}) {
    const auto topo = cm::Topology::with_gpus(world);
    for (const std::size_t bytes : {1UL << 20, 1UL << 25}) {
      const double ring = cm::allreduce_time(cm::CollectiveAlgo::kRing, topo,
                                             net, world, bytes);
      const double hier = cm::allreduce_time(cm::CollectiveAlgo::kHierarchical,
                                             topo, net, world, bytes);
      EXPECT_LT(hier, ring) << "world=" << world << " bytes=" << bytes;
    }
  }
}

TEST(Collectives, CommunicatorReduceSumMatchesCanonicalAndRecordsStats) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  CollectiveWorld w(4, 21);
  const auto want = w.canonical_sum();
  const auto before = comm.stats();
  comm.reduce_sum(w.views, 2);
  expect_span_bits(w.bufs[2], want, "reduce root");
  // The reduce rides the allreduce stats row (obs reconciliation keys on
  // the op set), and the functional call lands in the algo counters.
  const auto after = comm.stats();
  EXPECT_GT(after.allreduce_s, before.allreduce_s);
  EXPECT_EQ(after.allreduce_bytes - before.allreduce_bytes,
            21U * sizeof(float));
  std::uint64_t reduce_calls = 0;
  for (const auto c : comm.algo_stats().reduce) reduce_calls += c;
  EXPECT_EQ(reduce_calls, 1U);
}

// --- distributed preconditioning shards ---

struct DistFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit DistFixture(std::size_t world, std::size_t depth = 1) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, depth, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  std::vector<float> flat_params() {
    std::vector<float> out;
    for (std::size_t li : replicas[0].trainable_layers()) {
      auto& layer = replicas[0].layer(li);
      const auto w = layer.weight()->span();
      const auto b = layer.bias()->span();
      out.insert(out.end(), w.begin(), w.end());
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
};

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b,
                          const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " param " << i;
  }
}

std::vector<float> run_shard_config(std::size_t world, std::size_t steps,
                                    opt::PrecondLayout layout,
                                    opt::ShardAssignment assignment,
                                    std::size_t engine_threads,
                                    bool compress) {
  DistFixture f(world, 2);
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  opt::DistKfacConfig cfg;
  cfg.damping = 0.1;
  cfg.eigen_refresh_every = 2;
  cfg.layout = layout;
  cfg.assignment = assignment;
  opt::DistKfac kfac(cfg, comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  if (engine_threads > 0) kfac.set_engine(&eng);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < steps; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compress ? compso.get() : nullptr, sr_rng);
  }
  return f.flat_params();
}

TEST(Shard, RoundRobinAssignmentMatchesLegacyOwnerMap) {
  DistFixture f(3, 4);  // 5 trainable layers over 3 ranks.
  cm::Communicator comm(cm::Topology::with_gpus(3),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({}, comm, f.ptrs);
  ASSERT_EQ(kfac.layer_count(), 5U);
  for (std::size_t s = 0; s < kfac.layer_count(); ++s) {
    EXPECT_EQ(kfac.owner_of(s), s % 3);
  }
}

TEST(Shard, CostBalancedAssignmentIsDeterministicAndCoversParticipants) {
  DistFixture f(3, 6);  // 7 trainable layers over 3 ranks.
  cm::Communicator comm(cm::Topology::with_gpus(3),
                        cm::NetworkModel::platform1());
  opt::DistKfacConfig cfg;
  cfg.layout = opt::PrecondLayout::kSharded;
  cfg.assignment = opt::ShardAssignment::kCostBalanced;
  opt::DistKfac kfac(cfg, comm, f.ptrs);
  const auto owners = kfac.shard_owners();
  ASSERT_EQ(owners.size(), 7U);
  // Deterministic: a second instance over the same membership computes
  // the identical map.
  DistFixture f2(3, 6);
  cm::Communicator comm2(cm::Topology::with_gpus(3),
                         cm::NetworkModel::platform1());
  opt::DistKfac kfac2(cfg, comm2, f2.ptrs);
  EXPECT_EQ(kfac2.shard_owners(), owners);
  // With more slots than ranks, LPT gives every participant work.
  std::vector<std::size_t> per_rank(3, 0);
  for (const std::size_t o : owners) {
    ASSERT_LT(o, 3U);
    ++per_rank[o];
  }
  for (const std::size_t c : per_rank) EXPECT_GE(c, 1U);
}

TEST(Shard, ShardedMatchesKaisaBitwiseAtAnyThreadCount) {
  // Round-robin sharding preserves the gather grouping, so even the
  // compressed trajectory is bit-identical to the replicated layout —
  // serial engine and pooled engine alike.
  const auto kaisa = run_shard_config(4, 5, opt::PrecondLayout::kKaisa,
                                      opt::ShardAssignment::kRoundRobin,
                                      /*engine_threads=*/0, /*compress=*/true);
  for (const std::size_t threads : {0UL, 2UL}) {
    const auto sharded = run_shard_config(
        4, 5, opt::PrecondLayout::kSharded, opt::ShardAssignment::kRoundRobin,
        threads, /*compress=*/true);
    expect_bitwise_equal(kaisa, sharded,
                         "sharded threads=" + std::to_string(threads));
  }
  // Cost-balanced re-groups the compressor's payloads (legitimately
  // different bits under compression) but is bit-identical uncompressed.
  const auto kaisa_plain = run_shard_config(
      4, 5, opt::PrecondLayout::kKaisa, opt::ShardAssignment::kRoundRobin,
      /*engine_threads=*/0, /*compress=*/false);
  const auto lpt_plain = run_shard_config(
      4, 5, opt::PrecondLayout::kSharded, opt::ShardAssignment::kCostBalanced,
      /*engine_threads=*/0, /*compress=*/false);
  expect_bitwise_equal(kaisa_plain, lpt_plain, "cost-balanced uncompressed");
}

TEST(Shard, ShardedTrajectoryDeterministicAcrossThreadCounts) {
  const auto serial = run_shard_config(4, 5, opt::PrecondLayout::kSharded,
                                       opt::ShardAssignment::kCostBalanced,
                                       /*engine_threads=*/0, /*compress=*/true);
  for (const std::size_t threads : {2UL, 8UL}) {
    expect_bitwise_equal(
        serial,
        run_shard_config(4, 5, opt::PrecondLayout::kSharded,
                         opt::ShardAssignment::kCostBalanced, threads,
                         /*compress=*/true),
        "threads=" + std::to_string(threads));
  }
}

TEST(Shard, OwnerEvictionReassignsDeterministically) {
  DistFixture f(4, 4);  // 5 slots over 4 ranks.
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfacConfig cfg;
  cfg.layout = opt::PrecondLayout::kSharded;
  cfg.assignment = opt::ShardAssignment::kCostBalanced;
  opt::DistKfac kfac(cfg, comm, f.ptrs);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  f.run_fwd_bwd(data_rng);
  kfac.step(0, 0.01, compso.get(), sr_rng);

  const auto before = kfac.shard_owners();
  const std::size_t victim = before[0];  // owns at least slot 0.
  comm.evict(victim);
  const auto after = kfac.shard_owners();
  for (const std::size_t o : after) {
    EXPECT_NE(o, victim);  // every shard moved off the evicted rank.
    EXPECT_TRUE(comm.is_participating(o));
  }
  // The reassignment is the deterministic map a fresh instance computes
  // over the surviving membership.
  DistFixture f2(4, 4);
  cm::Communicator comm2(cm::Topology::with_gpus(4),
                         cm::NetworkModel::platform1());
  comm2.evict(victim);
  opt::DistKfac kfac2(cfg, comm2, f2.ptrs);
  EXPECT_EQ(kfac2.shard_owners(), after);
  // And the optimizer keeps stepping (replicas stay consistent) over the
  // reduced group.
  f.run_fwd_bwd(data_rng);
  kfac.step(1, 0.01, compso.get(), sr_rng);
  const auto stats = kfac.shard_stats();
  EXPECT_EQ(stats.factor_bytes[victim], 0U);
  EXPECT_GT(stats.peak_factor_bytes, 0U);
}

core::FtTrainerConfig sharded_ft_config(std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 31337};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.kfac.layout = opt::PrecondLayout::kSharded;
  cfg.kfac.assignment = opt::ShardAssignment::kCostBalanced;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 20;
  cfg.engine_threads = engine_threads;
  return cfg;
}

TEST(Shard, EvictionCheckpointResumeBitExact) {
  // Crash at 3 (deterministic reassignment), checkpoint at 6 — between
  // the reassignment and the next eigh refresh (every 5: at 10) — rejoin
  // at 9 (shard resync through CKPT mini-frames), run to 12. The resumed
  // trajectory must match the straight one bit for bit, across engine
  // thread counts.
  cm::FaultPlan plan;
  plan.crash(3, 1).recover(9, 1);

  core::FaultTolerantTrainer straight(sharded_ft_config(2));
  straight.set_fault_plan(plan, 4242);
  straight.run(12);

  core::FaultTolerantTrainer first(sharded_ft_config(2));
  first.set_fault_plan(plan, 4242);
  first.run(6);
  const auto frame = first.checkpoint();

  core::FaultTolerantTrainer resumed(sharded_ft_config(0));
  resumed.set_fault_plan(plan, 4242);
  resumed.restore(frame);
  EXPECT_EQ(resumed.iteration(), 6U);
  resumed.run(6);

  expect_bitwise_equal(straight.parameters(), resumed.parameters(),
                       "sharded eviction resume");
}

TEST(Shard, StatsShowPerRankMemoryShrinkingWithWorld) {
  auto stats_at = [](std::size_t world) {
    DistFixture f(world, 7);  // 8 trainable layers.
    cm::Communicator comm(cm::Topology::with_gpus(world),
                          cm::NetworkModel::platform1());
    opt::DistKfacConfig cfg;
    cfg.layout = opt::PrecondLayout::kSharded;
    cfg.assignment = opt::ShardAssignment::kCostBalanced;
    opt::DistKfac kfac(cfg, comm, f.ptrs);
    return kfac.shard_stats();
  };
  const auto s2 = stats_at(2);
  const auto s8 = stats_at(8);
  EXPECT_LT(s8.peak_factor_bytes, s2.peak_factor_bytes);
  EXPECT_LT(s8.peak_eigh_flops, s2.peak_eigh_flops);
  // Total resident bytes are the model's factor footprint either way —
  // sharding moves shards, it doesn't duplicate or drop them.
  const auto total = [](const opt::DistKfac::ShardStats& s) {
    std::uint64_t t = 0;
    for (const auto b : s.factor_bytes) t += b;
    return t;
  };
  EXPECT_EQ(total(s2), total(s8));

  // The replicated layout charges every participant the full footprint.
  DistFixture f(2, 7);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistKfac kaisa({}, comm, f.ptrs);
  const auto rep = kaisa.shard_stats();
  EXPECT_EQ(rep.factor_bytes[0], rep.factor_bytes[1]);
  EXPECT_EQ(rep.peak_factor_bytes, total(s2));
}

// --- perf-model scale accounting ---

TEST(PerfScale, PrecondMemoryCurveShrinksLinearly) {
  core::PerfConfig cfg;
  cfg.model = nn::bert_large_shape();
  core::PerfSimulator sim(cfg);
  const auto m4 = sim.precond_memory(4);
  const auto m32 = sim.precond_memory(32);
  const auto m4096 = sim.precond_memory(4096);
  EXPECT_EQ(m4.replicated_bytes, m32.replicated_bytes);
  EXPECT_GE(m4.sharded_peak_bytes, 4 * m32.sharded_peak_bytes);
  // Worlds beyond the layer count bottom out at the heaviest layer.
  EXPECT_GT(m4096.sharded_peak_bytes, 0U);
  EXPECT_LE(m4096.sharded_peak_bytes, m32.sharded_peak_bytes);
  EXPECT_LT(m4.sharded_peak_bytes, m4.replicated_bytes);
}

TEST(PerfScale, CommLookupGridInterpolatesAcrossWorlds) {
  const auto net = cm::NetworkModel::platform1();
  perf::CommLookupGrid grid(net, {4, 16});
  const std::size_t bytes = 1UL << 20;
  const double t4 = grid.throughput(4, bytes);
  const double t16 = grid.throughput(16, bytes);
  ASSERT_GT(t4, 0.0);
  ASSERT_GT(t16, 0.0);
  // Edge clamps.
  EXPECT_DOUBLE_EQ(grid.throughput(2, bytes), t4);
  EXPECT_DOUBLE_EQ(grid.throughput(64, bytes), t16);
  // Log2-interpolated interior point lies between the edge tables.
  const double t8 = grid.throughput(8, bytes);
  EXPECT_GE(t8, std::min(t4, t16));
  EXPECT_LE(t8, std::max(t4, t16));
  // The scale grid prices every headline world.
  const auto sweep = perf::CommLookupGrid::scale_sweep(net);
  ASSERT_EQ(sweep.worlds().size(), 5U);
  for (const std::size_t w : sweep.worlds()) {
    EXPECT_GT(sweep.throughput(w, bytes), 0.0);
  }
  EXPECT_THROW(perf::CommLookupGrid(net, {}), std::invalid_argument);
  EXPECT_THROW(perf::CommLookupGrid(net, {8, 8}), std::invalid_argument);
}

}  // namespace
