// Observability layer units (DESIGN.md §12): MetricsRegistry semantics
// (sharded counters, power-of-four histograms, deterministic JSON),
// Tracer span/sequence semantics under a deterministic clock, and the
// exporter edge cases — empty run, single span, deep nesting, and an
// adversarial-name fuzz sweep through the JSON writer (the documents must
// stay parseable no matter what bytes land in a span name).

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/tracer.hpp"
#include "src/tensor/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

namespace obs = compso::obs;

namespace {

// --- MetricsRegistry ---

TEST(Metrics, CountersAccumulate) {
  obs::MetricsRegistry reg;
  reg.add("a");
  reg.add("a", 4);
  reg.add("b", 7);
  EXPECT_EQ(reg.counter("a"), 5U);
  EXPECT_EQ(reg.counter("b"), 7U);
  EXPECT_EQ(reg.counter("never"), 0U);
}

TEST(Metrics, BucketIndexPowerOfFour) {
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(0), 0U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(1), 1U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(3), 1U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(4), 2U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(15), 2U);
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(16), 3U);
  // Saturates in the last bucket.
  EXPECT_EQ(obs::MetricsRegistry::bucket_index(~0ULL),
            obs::MetricsRegistry::kHistogramBuckets - 1);
  // Every boundary: 4^(i-1) lands in bucket i.
  std::uint64_t v = 1;
  for (std::size_t i = 1; i + 1 < obs::MetricsRegistry::kHistogramBuckets;
       ++i, v *= 4) {
    EXPECT_EQ(obs::MetricsRegistry::bucket_index(v), i) << v;
    EXPECT_EQ(obs::MetricsRegistry::bucket_index(v * 4 - 1), i) << v;
  }
}

TEST(Metrics, HistogramSnapshotSumsAndCounts) {
  obs::MetricsRegistry reg;
  reg.observe("h", 0);
  reg.observe("h", 3);
  reg.observe("h", 100);
  const auto snap = reg.snapshot();
  const auto& h = snap.histograms.at("h");
  EXPECT_EQ(h.count, 3U);
  EXPECT_EQ(h.sum, 103U);
  EXPECT_EQ(h.buckets[0], 1U);
  EXPECT_EQ(h.buckets[obs::MetricsRegistry::bucket_index(3)], 1U);
  EXPECT_EQ(h.buckets[obs::MetricsRegistry::bucket_index(100)], 1U);
}

TEST(Metrics, CrossThreadMergeIsExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8, kPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add("shared");
        reg.observe("lat", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.counter("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("lat").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ResetZeroesInPlace) {
  obs::MetricsRegistry reg;
  reg.add("c", 3);
  reg.observe("h", 9);
  reg.set_gauge("g", 1.5);
  reg.reset();
  EXPECT_EQ(reg.counter("c"), 0U);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.histograms.at("h").count, 0U);
  EXPECT_TRUE(snap.gauges.empty());
  reg.add("c");  // cached cells survive the reset.
  EXPECT_EQ(reg.counter("c"), 1U);
}

TEST(Metrics, JsonIsDeterministicAndParses) {
  obs::MetricsRegistry a, b;
  // Insert in different orders; the export must not care.
  a.add("x");
  a.add("y", 2);
  a.set_gauge("g", 0.25);
  a.observe("h", 5);
  b.observe("h", 5);
  b.set_gauge("g", 0.25);
  b.add("y", 2);
  b.add("x");
  EXPECT_EQ(a.to_json(), b.to_json());
  const auto doc = obs::parse_json(a.to_json());
  ASSERT_TRUE(doc.has_value());
  const auto* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* x = counters->find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_DOUBLE_EQ(x->number, 1.0);
  const auto* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const auto* h = hists->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("sum")->number, 5.0);
  EXPECT_EQ(h->find("buckets")->array.size(),
            obs::MetricsRegistry::kHistogramBuckets);
}

// --- Tracer ---

TEST(Tracer, SpanRecordsCompleteEvent) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  clock.set_ns(100);
  tracer.reset();  // origin = 100.
  {
    auto span = tracer.span(obs::kMainTrack, "work", "test");
    clock.advance_ns(40);
    span.add_arg("bytes", 7);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].ts_ns, 0U);  // relative to the reset origin.
  EXPECT_EQ(events[0].dur_ns, 40U);
  ASSERT_EQ(events[0].args.size(), 1U);
  EXPECT_EQ(events[0].args[0].first, "bytes");
  EXPECT_EQ(events[0].args[0].second, 7U);
}

TEST(Tracer, SequencesOrderEventsPerTrack) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.reset();
  auto outer = tracer.span(obs::kMainTrack, "outer", "t");
  {
    auto inner = tracer.span(obs::kMainTrack, "inner", "t");
    clock.advance_ns(5);
  }
  tracer.complete(obs::kTaskTrackBase, "task", "t", 0, 0);
  tracer.instant(obs::kMainTrack, "marker", "t");
  outer.end();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4U);
  // Sorted by (track, seq): main track first, seq claimed at span START.
  EXPECT_EQ(events[0].name, "outer");  // seq 0, recorded last but first here.
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "marker");
  EXPECT_EQ(events[2].phase, 'i');
  EXPECT_EQ(events[3].name, "task");
  EXPECT_EQ(events[3].track, obs::kTaskTrackBase);
}

TEST(Tracer, DeterministicClockGivesByteIdenticalExports) {
  const auto run_once = [] {
    obs::ManualClock clock;
    obs::Tracer tracer(&clock);
    tracer.reset();
    for (int i = 0; i < 5; ++i) {
      auto s = tracer.span(obs::kMainTrack, "step", "t");
      clock.advance_ns(17);
      s.add_arg("i", static_cast<std::uint64_t>(i));
    }
    return tracer.trace_json();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Tracer, ResetDropsEventsAndRebasesOrigin) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.reset();
  tracer.instant(obs::kMainTrack, "before", "t");
  clock.advance_ns(1000);
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0U);
  tracer.instant(obs::kMainTrack, "after", "t");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].ts_ns, 0U);  // rebased to the new origin.
  EXPECT_EQ(events[0].seq, 0U);    // sequence counters restart too.
}

TEST(ObsHooks, NullHooksAreInert) {
  obs::ObsHooks hooks;  // nothing attached.
  EXPECT_FALSE(hooks.enabled());
  hooks.count("x");
  hooks.observe("h", 1);
  hooks.gauge("g", 1.0);
  hooks.instant(obs::kMainTrack, "i");
  { auto s = hooks.span(obs::kMainTrack, "s"); }
  EXPECT_FALSE(hooks.deterministic_time());
}

// --- exporter edge cases ---

TEST(Exporter, EmptyRunIsValid) {
  obs::MetricsRegistry reg;
  const auto doc = obs::parse_json(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("counters")->object.empty());

  obs::Tracer tracer;
  const auto trace = tracer.trace_json();
  EXPECT_EQ(obs::validate_trace(trace), std::nullopt);
  const auto parsed = obs::parse_json(trace);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->find("traceEvents")->array.empty());
}

TEST(Exporter, SingleSpanIsValid) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.reset();
  {
    auto s = tracer.span(obs::kMainTrack, "only", "t");
    clock.advance_ns(3);
  }
  EXPECT_EQ(obs::validate_trace(tracer.trace_json()), std::nullopt);
}

TEST(Exporter, DeepSpanNestingStaysFlatAndValid) {
  obs::ManualClock clock;
  obs::Tracer tracer(&clock);
  tracer.reset();
  // 300 nested RAII spans: far deeper than the JSON parser's depth limit,
  // which must not matter because trace events serialize as a flat array.
  std::vector<obs::Tracer::Span> stack;
  for (int i = 0; i < 300; ++i) {
    stack.push_back(tracer.span(obs::kMainTrack, "n" + std::to_string(i), "t"));
    clock.advance_ns(1);
  }
  while (!stack.empty()) stack.pop_back();
  EXPECT_EQ(tracer.event_count(), 300U);
  EXPECT_EQ(obs::validate_trace(tracer.trace_json()), std::nullopt);
}

TEST(Exporter, AsciiAdversarialNamesRoundTrip) {
  // Quotes, backslashes, control bytes: the writer must escape them and a
  // conforming parser must recover the exact original string.
  const std::vector<std::string> names = {
      "plain", "with \"quotes\"", "back\\slash", "tab\tand\nnewline",
      std::string("embedded\0nul", 12), "\x01\x02\x1f control", "{}[],:\"",
  };
  obs::Tracer tracer;
  obs::MetricsRegistry reg;
  for (const auto& n : names) {
    tracer.instant(obs::kMainTrack, n, "fuzz");
    reg.add(n, 1);
  }
  const auto trace = tracer.trace_json();
  ASSERT_EQ(obs::validate_trace(trace), std::nullopt) << trace;
  const auto doc = obs::parse_json(trace);
  ASSERT_TRUE(doc.has_value());
  const auto& events = doc->find("traceEvents")->array;
  ASSERT_EQ(events.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(events[i].find("name")->string, names[i]) << i;
  }
  const auto mdoc = obs::parse_json(reg.to_json());
  ASSERT_TRUE(mdoc.has_value());
  EXPECT_EQ(mdoc->find("counters")->object.size(), names.size());
}

TEST(Exporter, FuzzedByteStringNamesNeverBreakTheDocument) {
  compso::tensor::Rng rng(20260806);
  obs::Tracer tracer;
  obs::MetricsRegistry reg;
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = rng.uniform_index(24);
    std::string name;
    for (std::size_t i = 0; i < len; ++i) {
      name.push_back(static_cast<char>(rng() & 0xFF));
    }
    tracer.instant(obs::kMainTrack, name, "fuzz", {{name, rng() % 1000}});
    reg.add(name);
    reg.observe(name, rng() % (1ULL << 40));
    reg.set_gauge(name, 0.5);
  }
  // Arbitrary bytes >= 0x80 are escaped as \u00XX (the export is pure
  // ASCII); the documents must stay structurally valid and parseable.
  EXPECT_EQ(obs::validate_trace(tracer.trace_json()), std::nullopt);
  EXPECT_TRUE(obs::parse_json(reg.to_json()).has_value());
}

// --- JSON writer / parser units ---

TEST(Json, DoubleFormatting) {
  std::string out;
  obs::append_json_double(out, 0.25);
  EXPECT_EQ(out, "0.25");
  out.clear();
  obs::append_json_double(out, std::nan(""));
  EXPECT_EQ(out, "null");  // NaN is not valid JSON.
  out.clear();
  obs::append_json_double(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(obs::parse_json("").has_value());
  EXPECT_FALSE(obs::parse_json("{").has_value());
  EXPECT_FALSE(obs::parse_json("{} garbage").has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\":}").has_value());
  // Adversarial nesting beyond the depth limit must fail, not crash.
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(obs::parse_json(deep).has_value());
  // ...while reasonable nesting parses.
  EXPECT_TRUE(obs::parse_json("[[[[[[1]]]]]]").has_value());
}

TEST(Json, UnicodeEscapesDecode) {
  const auto doc = obs::parse_json("\"a\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string, "aA\xc3\xa9");  // U+00E9 as UTF-8.
}

}  // namespace
