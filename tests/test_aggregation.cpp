// Tests for the functional layer-aggregation path in distributed KFAC
// (§4.4): aggregated groups must roundtrip exactly, keep replicas in sync,
// and improve the compressed ratio on small layers.

#include "src/comm/communicator.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/tensor/stats.hpp"

#include <gtest/gtest.h>

namespace cm = compso::comm;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace nn = compso::nn;
namespace opt = compso::optim;

namespace {

struct Fixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{10, 4, 0.5F, 31};

  Fixture(std::size_t world, std::size_t depth) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(777);
      replicas.push_back(nn::make_mlp_classifier(10, 12, 4, depth, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  double divergence() {
    double worst = 0.0;
    for (std::size_t li : replicas[0].trainable_layers()) {
      const auto& w0 = *replicas[0].layer(li).weight();
      for (std::size_t r = 1; r < replicas.size(); ++r) {
        worst = std::max(worst,
                         ct::max_abs_error(
                             w0.span(), replicas[r].layer(li).weight()->span()));
      }
    }
    return worst;
  }
};

class AggregationFactor : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AggregationFactor, LosslessPathIsExactAcrossFactors) {
  // Without a compressor, any aggregation factor must produce exactly the
  // same weights as m=1 (pure re-layout of the same bytes).
  const std::size_t m = GetParam();
  auto run = [&](std::size_t agg) {
    Fixture f(2, 4);  // 5 trainable layers over 2 ranks
    cm::Communicator comm(cm::Topology::with_gpus(2),
                          cm::NetworkModel::platform1());
    opt::DistKfacConfig cfg;
    cfg.damping = 0.1;
    cfg.aggregation = agg;
    opt::DistKfac kfac(cfg, comm, f.ptrs);
    ct::Rng data_rng(1), sr_rng(2);
    for (std::size_t t = 0; t < 5; ++t) {
      f.fwd_bwd(data_rng);
      kfac.step(t, 0.01, nullptr, sr_rng);
    }
    std::vector<float> weights;
    for (std::size_t li : f.replicas[0].trainable_layers()) {
      const auto s = f.replicas[0].layer(li).weight()->span();
      weights.insert(weights.end(), s.begin(), s.end());
    }
    return weights;
  };
  EXPECT_EQ(run(m), run(1)) << "m=" << m;
}

TEST_P(AggregationFactor, ReplicasStaySynchronizedWithCompression) {
  const std::size_t m = GetParam();
  Fixture f(4, 4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfacConfig cfg;
  cfg.damping = 0.1;
  cfg.aggregation = m;
  opt::DistKfac kfac(cfg, comm, f.ptrs);
  const auto compso = cp::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
    EXPECT_EQ(f.divergence(), 0.0) << "m=" << m << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, AggregationFactor,
                         ::testing::Values(1, 2, 3, 4, 8, 100));

TEST(Aggregation, ImprovesRatioOnSmallLayers) {
  // Many small layers: per-payload headers (codec tables, metadata)
  // dominate at m=1 and amortize at larger m.
  auto measured_cr = [&](std::size_t m) {
    Fixture f(2, 6);  // 7 small trainable layers
    cm::Communicator comm(cm::Topology::with_gpus(2),
                          cm::NetworkModel::platform1());
    opt::DistKfacConfig cfg;
    cfg.damping = 0.1;
    cfg.aggregation = m;
    opt::DistKfac kfac(cfg, comm, f.ptrs);
    const auto compso = cp::make_compso({});
    ct::Rng data_rng(1), sr_rng(2);
    f.fwd_bwd(data_rng);
    kfac.step(0, 0.01, compso.get(), sr_rng);
    return static_cast<double>(kfac.last_original_bytes()) /
           static_cast<double>(kfac.last_compressed_bytes());
  };
  EXPECT_GT(measured_cr(8), measured_cr(1));
}

TEST(Aggregation, ConvergenceUnaffected) {
  Fixture f(4, 2);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfacConfig cfg;
  cfg.damping = 0.1;
  cfg.aggregation = 4;
  opt::DistKfac kfac(cfg, comm, f.ptrs);
  const auto compso = cp::make_compso({});
  ct::Rng data_rng(1), sr_rng(2), eval_rng(3);
  for (std::size_t t = 0; t < 60; ++t) {
    f.fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  const auto batch = f.dataset.sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(f.replicas[0].forward(batch.x), batch.labels), 0.9);
}

}  // namespace
