// Checkpoint-frame fuzz harness (DESIGN.md §14): the restore path must
// never crash, read out of bounds (ASan/UBSan configs run this suite), or
// silently resume from a damaged frame.
//
// The trainer's checkpoint() emits a section map naming every body region
// (config echo, schedule cursor, active mask, membership ledger, recovery
// counters, parameters, optimizer state, RNG streams, sim clocks). For
// every section, ≥1000 seeded mutations are driven through restore() in
// two legs:
//
//  - raw-frame leg: the sealed frame is damaged in place. The CRC covers
//    the whole frame, so every single mutation must surface as a typed
//    compso::PayloadError — a checkpoint cannot bit-rot quietly.
//  - re-sealed leg: the body is damaged and the frame re-sealed with a
//    fresh CRC, modeling an attacker or a buggy writer rather than rot.
//    restore() must then either reject the body with PayloadError (length
//    fields, enum ranges, config echo, cross-section consistency) or
//    restore cleanly; any other exception or a crash fails the test.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace ckpt = compso::codec::ckpt;
namespace ct = compso::tensor;

namespace {

core::FtTrainerConfig fuzz_config() {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 8,
              .classes = 3,
              .hidden = 8,
              .depth = 2,
              .noise = 0.6F,
              .seed = 1717};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 3;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 20;
  cfg.engine_threads = 0;
  return cfg;
}

/// Reference state with every section nontrivial: a crash in flight leaves
/// the membership ledger mid-suspicion, nonzero recovery counters, and an
/// edited active mask alongside the usual params / factors / RNG payload.
ckpt::Bytes make_reference(
    std::vector<core::FaultTolerantTrainer::CkptSection>& sections) {
  core::FaultTolerantTrainer trainer(fuzz_config());
  trainer.set_fault_plan(cm::FaultPlan{}.crash(3, 1), 5);
  trainer.run(6);
  return trainer.checkpoint(&sections);
}

/// Flips / overwrites / saturates one byte in [lo, hi); guaranteed to
/// change the byte so a "mutation" is never a silent no-op.
void mutate_byte(std::vector<std::uint8_t>& bytes, std::size_t lo,
                 std::size_t hi, ct::Rng& rng) {
  const std::size_t at = lo + rng.uniform_index(hi - lo);
  const std::uint8_t before = bytes[at];
  switch (rng.uniform_index(4)) {
    case 0: bytes[at] ^= static_cast<std::uint8_t>(
                1U << rng.uniform_index(8)); break;
    case 1: bytes[at] = static_cast<std::uint8_t>(rng.uniform_index(256)); break;
    case 2: bytes[at] = 0x00; break;
    default: bytes[at] = 0xFF; break;
  }
  if (bytes[at] == before) bytes[at] ^= 0x01;
}

class CkptFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    frame_ = make_reference(sections_);
    body_.assign(frame_.begin() + 17, frame_.end());
    scratch_ = std::make_unique<core::FaultTolerantTrainer>(fuzz_config());
  }

  ckpt::Bytes frame_;
  std::vector<std::uint8_t> body_;
  std::vector<core::FaultTolerantTrainer::CkptSection> sections_;
  std::unique_ptr<core::FaultTolerantTrainer> scratch_;
};

TEST_F(CkptFuzz, SectionMapCoversTheWholeBodyContiguously) {
  const char* expected[] = {"config",     "cursor",     "mask",
                            "membership", "counters",   "params",
                            "optimizer",  "compressor", "rng",
                            "clocks"};
  ASSERT_EQ(sections_.size(), std::size(expected));
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    EXPECT_EQ(sections_[i].name, expected[i]);
    EXPECT_EQ(sections_[i].begin, cursor) << sections_[i].name;
    EXPECT_LT(sections_[i].begin, sections_[i].end) << sections_[i].name;
    cursor = sections_[i].end;
  }
  EXPECT_EQ(cursor, body_.size());
}

TEST_F(CkptFuzz, CleanFrameRestoresBitExactly) {
  core::FaultTolerantTrainer reference(fuzz_config());
  reference.set_fault_plan(cm::FaultPlan{}.crash(3, 1), 5);
  reference.run(6);

  scratch_->restore(frame_);
  EXPECT_EQ(scratch_->iteration(), 6U);
  const auto a = reference.parameters();
  const auto b = scratch_->parameters();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST_F(CkptFuzz, RawFrameDamageInEverySectionIsAlwaysDetected) {
  // Damage the sealed frame without fixing the CRC: the integrity layer
  // must catch every single mutation as a typed PayloadError.
  ct::Rng rng(0xABCD);
  for (const auto& sec : sections_) {
    for (int trial = 0; trial < 520; ++trial) {
      auto damaged = frame_;
      mutate_byte(damaged, 17 + sec.begin, 17 + sec.end, rng);
      EXPECT_THROW(scratch_->restore(damaged), compso::PayloadError)
          << sec.name << " trial " << trial;
    }
  }
}

TEST_F(CkptFuzz, ResealedBodyDamageThrowsTypedOrRestoresCleanly) {
  // Re-seal after the mutation so the CRC is valid and the body-level
  // validation has to stand on its own. The contract: PayloadError or a
  // clean restore — never a crash, never another exception type.
  ct::Rng rng(0xBEEF);
  for (const auto& sec : sections_) {
    std::size_t rejected = 0, accepted = 0;
    for (int trial = 0; trial < 520; ++trial) {
      auto mutated_body = body_;
      mutate_byte(mutated_body, sec.begin, sec.end, rng);
      const auto resealed = ckpt::seal_frame(mutated_body);
      try {
        scratch_->restore(resealed);
        ++accepted;
      } catch (const compso::PayloadError&) {
        ++rejected;
      }
    }
    EXPECT_EQ(rejected + accepted, 520U) << sec.name;
    // Structural sections validate their content, so damage there must be
    // rejected at least some of the time; raw value sections (params,
    // clocks) legitimately accept arbitrary bit patterns.
    if (sec.name == "config" || sec.name == "mask" ||
        sec.name == "membership") {
      EXPECT_GT(rejected, 0U) << sec.name;
    }
  }
}

TEST_F(CkptFuzz, TruncatedAndExtendedFramesAreRejected) {
  ct::Rng rng(0x5EED);
  for (int trial = 0; trial < 200; ++trial) {
    auto truncated = frame_;
    truncated.resize(rng.uniform_index(frame_.size()));
    EXPECT_THROW(scratch_->restore(truncated), compso::PayloadError) << trial;
  }
  for (int trial = 0; trial < 100; ++trial) {
    auto extended = frame_;
    const std::size_t extra = 1 + rng.uniform_index(64);
    for (std::size_t i = 0; i < extra; ++i) {
      extended.push_back(static_cast<std::uint8_t>(rng.uniform_index(256)));
    }
    EXPECT_THROW(scratch_->restore(extended), compso::PayloadError) << trial;
  }
}

}  // namespace
