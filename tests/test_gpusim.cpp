// Tests for the GPU device/timing model: kernel roofline, dispatch
// strategies (fusion §4.5 / Fig. 8), reduction strategies, layer-block map.

#include "src/gpusim/device_model.hpp"
#include "src/gpusim/layer_mapping.hpp"
#include "src/gpusim/reduction.hpp"
#include "src/tensor/rng.hpp"

#include <gtest/gtest.h>

namespace gs = compso::gpusim;

namespace {

TEST(KernelTime, MemoryBoundScalesWithBytes) {
  const auto dev = gs::DeviceModel::a100();
  gs::KernelSpec small{.bytes_read = 1 << 20, .bytes_written = 1 << 20};
  gs::KernelSpec large{.bytes_read = 64 << 20, .bytes_written = 64 << 20};
  const double ts = gs::kernel_time(dev, small);
  const double tl = gs::kernel_time(dev, large);
  // 64x the bytes; launch overhead keeps the observed ratio below 64.
  EXPECT_GT(tl, ts * 10.0);
}

TEST(KernelTime, ComputeBoundWhenFlopsDominate) {
  const auto dev = gs::DeviceModel::a100();
  gs::KernelSpec spec{.bytes_read = 1 << 10,
                      .bytes_written = 1 << 10,
                      .flops = 1e12};
  const double t = gs::kernel_time(dev, spec);
  EXPECT_NEAR(t - dev.kernel_launch_s, 1e12 / dev.fp32_flops, 1e-6);
}

TEST(KernelTime, LowEfficiencyIsSlower) {
  const auto dev = gs::DeviceModel::a100();
  gs::KernelSpec good{.bytes_read = 16 << 20, .bandwidth_efficiency = 1.0};
  gs::KernelSpec bad{.bytes_read = 16 << 20, .bandwidth_efficiency = 0.25};
  EXPECT_GT(gs::kernel_time(dev, bad), gs::kernel_time(dev, good) * 2.0);
}

TEST(Pipeline, FusionOrdering) {
  // Fused < separate kernels < framework ops (§4.5, §5.3).
  const auto dev = gs::DeviceModel::a100();
  gs::PipelineSpec p{.input_bytes = 32 << 20,
                     .output_bytes = (32 << 20) / 20,
                     .stages = 3};
  const double fused = gs::pipeline_time(dev, p, gs::Dispatch::kFusedKernel);
  const double separate =
      gs::pipeline_time(dev, p, gs::Dispatch::kSeparateKernels);
  const double framework =
      gs::pipeline_time(dev, p, gs::Dispatch::kFrameworkOps);
  EXPECT_LT(fused, separate);
  EXPECT_LT(separate, framework);
}

TEST(Pipeline, FrameworkOverheadDominatesSmallData) {
  // At small sizes the PyTorch-style dispatch overhead is the story; at
  // large sizes bandwidth is. The throughput gap shrinks with size.
  const auto dev = gs::DeviceModel::a100();
  auto ratio = [&](std::size_t bytes) {
    gs::PipelineSpec p{.input_bytes = bytes, .output_bytes = bytes / 20,
                       .stages = 3};
    return gs::pipeline_throughput(dev, p, gs::Dispatch::kFusedKernel) /
           gs::pipeline_throughput(dev, p, gs::Dispatch::kFrameworkOps);
  };
  EXPECT_GT(ratio(1 << 20), ratio(128 << 20));
  EXPECT_GT(ratio(128 << 20), 1.0);
}

TEST(Pipeline, ThroughputSaturatesWithSize) {
  const auto dev = gs::DeviceModel::a100();
  auto tp = [&](std::size_t bytes) {
    gs::PipelineSpec p{.input_bytes = bytes, .output_bytes = bytes / 10,
                       .stages = 3};
    return gs::pipeline_throughput(dev, p, gs::Dispatch::kFusedKernel);
  };
  EXPECT_GT(tp(16 << 20), tp(1 << 20));
  // Beyond tens of MB the curve flattens (launch overhead amortized).
  EXPECT_NEAR(tp(256U << 20) / tp(64U << 20), 1.0, 0.10);
}

TEST(Reduction, StrategyOrdering) {
  // Global atomics << block shared < block + warp shuffle (§4.5).
  const auto dev = gs::DeviceModel::a100();
  const std::size_t n = 16 << 20;
  const double atomic =
      gs::reduction_time(dev, n, gs::ReductionStrategy::kGlobalAtomic);
  const double shared =
      gs::reduction_time(dev, n, gs::ReductionStrategy::kBlockShared);
  const double shuffle =
      gs::reduction_time(dev, n, gs::ReductionStrategy::kBlockWarpShuffle);
  EXPECT_GT(atomic, shared * 10.0);
  EXPECT_GT(shared, shuffle);
}

TEST(Reduction, ShuffleNearsBandwidthLimit) {
  const auto dev = gs::DeviceModel::a100();
  const std::size_t n = 64 << 20;
  const double t =
      gs::reduction_time(dev, n, gs::ReductionStrategy::kBlockWarpShuffle);
  const double ideal = static_cast<double>(n) * 4.0 / dev.effective_bandwidth();
  EXPECT_LT(t, ideal * 1.5);  // within 50% of the pure-bandwidth bound
}

TEST(Reduction, ParallelExtremaMatchesSequential) {
  compso::tensor::Rng rng(5);
  std::vector<float> v(100001);
  rng.fill_normal(v);
  v[50000] = 123.0F;
  v[70000] = -321.0F;
  const auto e = gs::parallel_extrema(v);
  EXPECT_EQ(e.max, 123.0F);
  EXPECT_EQ(e.min, -321.0F);
  EXPECT_EQ(e.abs_max, 321.0F);
}

TEST(Reduction, EmptyInput) {
  const auto e = gs::parallel_extrema({});
  EXPECT_EQ(e.abs_max, 0.0F);
}

TEST(LayerBlockMap, BlocksNeverSpanLayers) {
  gs::LayerBlockMap map({100, 300, 50}, 128);
  for (const auto& b : map.blocks()) {
    EXPECT_LE(b.offset + b.count, map.layer_sizes()[b.layer]);
  }
  // 100 -> 1 block, 300 -> 3 blocks, 50 -> 1 block.
  EXPECT_EQ(map.block_count(), 5U);
}

TEST(LayerBlockMap, PaddingOverheadComputed) {
  // One layer of 64 elems in 128-wide blocks: half the capacity is padding.
  gs::LayerBlockMap map({64}, 128);
  EXPECT_NEAR(map.padding_overhead(), 0.5, 1e-9);
}

TEST(LayerBlockMap, ImbalanceDetected) {
  gs::LayerBlockMap even({256, 256}, 128);
  EXPECT_NEAR(even.imbalance(), 1.0, 1e-9);
  gs::LayerBlockMap skew({128, 1}, 128);
  EXPECT_GT(skew.imbalance(), 1.5);
}

TEST(LayerBlockMap, ZeroBlockSizeThrows) {
  EXPECT_THROW(gs::LayerBlockMap({10}, 0), std::invalid_argument);
}

TEST(LayerBlockMap, DeterministicAcrossIterations) {
  // §4.5: the layer->block map is built once and reused; identical inputs
  // must give identical mappings.
  gs::LayerBlockMap a({100, 200, 300}, 64);
  gs::LayerBlockMap b({100, 200, 300}, 64);
  ASSERT_EQ(a.block_count(), b.block_count());
  for (std::size_t i = 0; i < a.block_count(); ++i) {
    EXPECT_EQ(a.blocks()[i].layer, b.blocks()[i].layer);
    EXPECT_EQ(a.blocks()[i].offset, b.blocks()[i].offset);
    EXPECT_EQ(a.blocks()[i].count, b.blocks()[i].count);
  }
}

}  // namespace
