// Chunked streaming pipeline suite (DESIGN.md §15): chunk frame v2
// round trips and edge sizes, the resumable decode cursor (including a
// mid-stream serialize/deserialize), the zero-allocation steady state of
// the producer, per-chunk fault-injection fuzz (>= 1000 mutations per
// boundary category, every one failing typed), the chunk-scoped fault
// plan, the per-round chunk collective, and the headline acceptance:
// chunked and unchunked training trajectories are bit-identical — clean,
// under chunk-level faults with the retry ladder, and across a
// checkpoint/resume — at any engine thread count.

#include "src/codec/chunk.hpp"
#include "src/codec/wire.hpp"
#include "src/comm/communicator.hpp"
#include "src/comm/fault_injector.hpp"
#include "src/compress/chunked_stream.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/tensor/rng.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace opt = compso::optim;
namespace nn = compso::nn;
namespace ct = compso::tensor;
namespace cc = compso::compress;
namespace chunk = compso::codec::chunk;
namespace wire = compso::codec::wire;
using compso::PayloadError;

namespace {

cc::Bytes random_payload(std::size_t n, ct::Rng& rng) {
  cc::Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng() & 0xFF);
  return b;
}

cc::Bytes reassemble(const cc::ChunkedProducer& p) {
  cc::ChunkedConsumer c;
  for (std::size_t k = 0; k < p.chunk_count(); ++k) c.feed(p.chunk(k));
  const auto view = c.payload();
  return cc::Bytes(view.begin(), view.end());
}

// --- frame round trips and edge sizes ---

TEST(ChunkFrame, RoundTripAcrossSizes) {
  ct::Rng rng(11);
  for (const std::size_t cb : {std::size_t{1}, std::size_t{7},
                               std::size_t{64}, std::size_t{4096}}) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, cb - 1, cb, cb + 1, 3 * cb + 5}) {
      const auto payload = random_payload(n, rng);
      cc::ChunkedProducer p;
      p.frame(cc::ByteView(payload), cb);
      EXPECT_EQ(p.chunk_count(), chunk::chunk_count_for(n, cb));
      const auto out = reassemble(p);
      ASSERT_EQ(out.size(), payload.size()) << "cb=" << cb << " n=" << n;
      EXPECT_TRUE(payload.empty() ||
                  std::memcmp(out.data(), payload.data(), n) == 0)
          << "cb=" << cb << " n=" << n;
    }
  }
}

TEST(ChunkFrame, EmptyPayloadIsOneChunk) {
  EXPECT_EQ(chunk::chunk_count_for(0, 64), 1U);
  cc::ChunkedProducer p;
  p.frame(cc::ByteView(), 64);
  EXPECT_EQ(p.chunk_count(), 1U);
  cc::ChunkedConsumer c;
  c.feed(p.chunk(0));
  EXPECT_TRUE(c.complete());
  EXPECT_EQ(c.payload().size(), 0U);
}

TEST(ChunkFrame, V1PassthroughUnchanged) {
  ct::Rng rng(12);
  const auto payload = random_payload(513, rng);
  cc::ChunkedConsumer c;
  c.feed_payload(cc::ByteView(payload));
  EXPECT_TRUE(c.complete());
  const auto out = c.payload();
  ASSERT_EQ(out.size(), payload.size());
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);
}

// --- resumable cursor ---

TEST(ChunkCursor, SerializeMidStreamResumesExactly) {
  ct::Rng rng(13);
  const auto payload = random_payload(2000, rng);
  cc::ChunkedProducer p;
  p.frame(cc::ByteView(payload), 256);
  ASSERT_GE(p.chunk_count(), 4U);

  cc::ChunkedConsumer first;
  for (std::size_t k = 0; k < 3; ++k) first.feed(p.chunk(k));
  EXPECT_FALSE(first.complete());
  EXPECT_THROW((void)first.payload(), PayloadError);
  cc::Bytes frame;
  first.serialize(frame);

  cc::ChunkedConsumer resumed;
  wire::Reader reader{cc::ByteView(frame)};
  resumed.deserialize(reader);
  EXPECT_EQ(resumed.chunks_fed(), 3U);
  for (std::size_t k = 3; k < p.chunk_count(); ++k) resumed.feed(p.chunk(k));
  EXPECT_TRUE(resumed.complete());
  const auto out = resumed.payload();
  ASSERT_EQ(out.size(), payload.size());
  EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0);
}

TEST(ChunkCursor, GapAndForeignStreamRejected) {
  ct::Rng rng(14);
  const auto payload = random_payload(1000, rng);
  cc::ChunkedProducer p;
  p.frame(cc::ByteView(payload), 256);

  cc::ChunkedConsumer gap;
  EXPECT_THROW(gap.feed(p.chunk(1)), PayloadError);  // starts at index 1.

  // A chunk from a different stream (other total) after a valid start.
  const auto other = random_payload(600, rng);
  cc::ChunkedProducer q;
  q.frame(cc::ByteView(other), 256);
  cc::ChunkedConsumer mixed;
  mixed.feed(p.chunk(0));
  EXPECT_THROW(mixed.feed(q.chunk(1)), PayloadError);
}

// --- steady-state allocation behavior ---

TEST(ChunkProducer, ReserveForMakesRestepsAllocationFree) {
  ct::Rng rng(15);
  cc::ChunkedProducer p;
  p.reserve_for(1 << 16, 1024);
  const std::size_t cap = p.wire_capacity();
  for (const std::size_t n : {std::size_t{100}, std::size_t{5000},
                              std::size_t{1} << 16, std::size_t{37}}) {
    const auto payload = random_payload(n, rng);
    p.frame(cc::ByteView(payload), 1024);
    EXPECT_EQ(p.wire_capacity(), cap) << "reallocated at n=" << n;
  }
}

TEST(ChunkProducer, CompressorWorstCaseBoundHoldsPerChunk) {
  // max_payload_bytes is the reserve_for bound the optimizers use: every
  // real payload must fit under it, keeping chunked encode allocation-free.
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(16);
  for (const std::size_t n : {std::size_t{64}, std::size_t{4096}}) {
    std::vector<float> values(n);
    for (auto& v : values) v = data_rng.normal() * 0.01F;
    ct::Rng sr(17);
    const auto payload = compso->compress(values, sr);
    EXPECT_LE(payload.size(), compso->max_payload_bytes(n)) << "n=" << n;
  }
}

// --- per-chunk fault-injection fuzz (>= 1000 mutations per category) ---

constexpr std::size_t kFuzzIters = 1000;

struct FuzzStream {
  cc::Bytes payload;
  cc::ChunkedProducer producer;

  FuzzStream() {
    ct::Rng rng(0xF00D);
    payload = random_payload(3000, rng);
    producer.frame(cc::ByteView(payload), 256);
  }

  // Feeds chunks [0, k) clean, then the mutated frame for chunk k.
  void expect_typed_failure(std::size_t k, const cc::Bytes& frame,
                            const char* what) const {
    cc::ChunkedConsumer c;
    for (std::size_t i = 0; i < k; ++i) c.feed(producer.chunk(i));
    EXPECT_THROW(c.feed(cc::ByteView(frame)), PayloadError) << what;
  }
};

TEST(ChunkFuzz, HeaderFieldMutationsFailTyped) {
  const FuzzStream s;
  ct::Rng rng(21);
  for (std::size_t i = 0; i < kFuzzIters; ++i) {
    const std::size_t k = rng.uniform_index(s.producer.chunk_count());
    const auto view = s.producer.chunk(k);
    cc::Bytes frame(view.begin(), view.end());
    // Any header byte: magic, version, index, count, total, body length.
    const std::size_t pos = rng.uniform_index(chunk::kChunkHeaderSize - 4);
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    s.expect_typed_failure(k, frame, "header mutation");
  }
}

TEST(ChunkFuzz, CrcMutationsFailTyped) {
  const FuzzStream s;
  ct::Rng rng(22);
  for (std::size_t i = 0; i < kFuzzIters; ++i) {
    const std::size_t k = rng.uniform_index(s.producer.chunk_count());
    const auto view = s.producer.chunk(k);
    cc::Bytes frame(view.begin(), view.end());
    const std::size_t pos =
        chunk::kChunkHeaderSize - 4 + rng.uniform_index(4);
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_index(255));
    s.expect_typed_failure(k, frame, "crc mutation");
  }
}

TEST(ChunkFuzz, MidChunkTruncationsFailTyped) {
  const FuzzStream s;
  ct::Rng rng(23);
  for (std::size_t i = 0; i < kFuzzIters; ++i) {
    const std::size_t k = rng.uniform_index(s.producer.chunk_count());
    const auto view = s.producer.chunk(k);
    // Every proper prefix must fail, including cuts inside the header.
    const std::size_t cut = rng.uniform_index(view.size());
    const cc::Bytes frame(view.begin(), view.begin() + cut);
    s.expect_typed_failure(k, frame, "truncation");
  }
  // Stream truncation: all but the last chunk is mid-payload, not a
  // decodable prefix.
  cc::ChunkedConsumer c;
  for (std::size_t k = 0; k + 1 < s.producer.chunk_count(); ++k) {
    c.feed(s.producer.chunk(k));
  }
  EXPECT_FALSE(c.complete());
  EXPECT_THROW((void)c.payload(), PayloadError);
}

TEST(ChunkFuzz, DuplicatedChunksFailTyped) {
  const FuzzStream s;
  ct::Rng rng(24);
  for (std::size_t i = 0; i < kFuzzIters; ++i) {
    const std::size_t k = 1 + rng.uniform_index(s.producer.chunk_count() - 1);
    const std::size_t dup = rng.uniform_index(k);  // replay an earlier one.
    const auto view = s.producer.chunk(dup);
    s.expect_typed_failure(k, cc::Bytes(view.begin(), view.end()),
                           "duplicate chunk");
  }
}

// --- chunk-scoped fault plan ---

TEST(ChunkFaults, ChunkScopedEventsMatchOnlyTheirRound) {
  cm::FaultPlan plan;
  plan.corrupt_chunk(2, 1, 3);
  cm::FaultInjector inj(plan, 99);
  inj.begin_iteration(2);
  // Whole-payload take() never consumes a chunk-scoped event.
  EXPECT_FALSE(inj.take(cm::FaultKind::kCorruptPayload, 1));
  EXPECT_FALSE(inj.take_chunk(cm::FaultKind::kCorruptPayload, 1, 2));
  EXPECT_FALSE(inj.take_chunk(cm::FaultKind::kCorruptPayload, 0, 3));
  EXPECT_TRUE(inj.take_chunk(cm::FaultKind::kCorruptPayload, 1, 3));
  EXPECT_FALSE(inj.take_chunk(cm::FaultKind::kCorruptPayload, 1, 3))
      << "chunk events are one-shot";
}

// --- the per-round chunk collective ---

TEST(ChunkTransport, AllgathervChunksDeliversPerSlotAndPricesRounds) {
  cm::Communicator comm(cm::Topology{.nodes = 2, .gpus_per_node = 2},
                        cm::NetworkModel::platform1());
  const std::size_t world = comm.world_size();
  ct::Rng rng(31);
  std::vector<cc::Bytes> payloads(world);
  std::vector<cc::ChunkedProducer> producers(world);
  std::size_t rounds = 0;
  for (std::size_t r = 0; r < world; ++r) {
    payloads[r] = random_payload(700 + 500 * r, rng);
    producers[r].frame(cc::ByteView(payloads[r]), 512);
    rounds = std::max(rounds, producers[r].chunk_count());
  }

  std::vector<cc::ChunkedConsumer> consumers(world);
  double expected_s = 0.0;
  std::uint64_t expected_bytes = 0;
  for (std::size_t k = 0; k < rounds; ++k) {
    std::vector<std::span<const std::uint8_t>> frames(world);
    std::vector<std::size_t> sizes;
    for (std::size_t r = 0; r < world; ++r) {
      if (k < producers[r].chunk_count()) frames[r] = producers[r].chunk(k);
      sizes.push_back(frames[r].size());
      expected_bytes += frames[r].size();
    }
    expected_s += comm.allgatherv_time(sizes);
    std::vector<std::vector<std::uint8_t>> recv;
    comm.allgatherv_chunks(frames, recv, k);
    for (std::size_t r = 0; r < world; ++r) {
      if (recv[r].empty()) continue;
      consumers[r].feed(cc::ByteView(recv[r]));
    }
  }
  for (std::size_t r = 0; r < world; ++r) {
    ASSERT_TRUE(consumers[r].complete()) << "rank " << r;
    const auto out = consumers[r].payload();
    ASSERT_EQ(out.size(), payloads[r].size()) << "rank " << r;
    EXPECT_EQ(std::memcmp(out.data(), payloads[r].data(), out.size()), 0)
        << "rank " << r;
  }
  EXPECT_DOUBLE_EQ(comm.stats().allgather_s, expected_s);
  EXPECT_EQ(comm.stats().allgather_bytes, expected_bytes);
}

TEST(ChunkTransport, ChunkFaultsDamageOnlyTheirSlotAndRound) {
  cm::FaultPlan plan;
  plan.corrupt_chunk(0, 1, 0).truncate_chunk(0, 2, 1).drop_chunk(0, 0, 1);
  cm::FaultInjector inj(plan, 4242);
  cm::Communicator comm(cm::Topology{.nodes = 2, .gpus_per_node = 2},
                        cm::NetworkModel::platform1());
  comm.set_fault_injector(&inj);
  comm.begin_iteration(0);

  const std::size_t world = comm.world_size();
  ct::Rng rng(32);
  std::vector<cc::Bytes> payloads(world);
  std::vector<cc::ChunkedProducer> producers(world);
  for (std::size_t r = 0; r < world; ++r) {
    payloads[r] = random_payload(900, rng);
    producers[r].frame(cc::ByteView(payloads[r]), 512);
    ASSERT_EQ(producers[r].chunk_count(), 2U);
  }
  auto round = [&](std::size_t k) {
    std::vector<std::span<const std::uint8_t>> frames(world);
    for (std::size_t r = 0; r < world; ++r) frames[r] = producers[r].chunk(k);
    std::vector<std::vector<std::uint8_t>> recv;
    comm.allgatherv_chunks(frames, recv, k);
    return recv;
  };

  const auto r0 = round(0);
  const auto r1 = round(1);
  const auto same = [](const std::vector<std::uint8_t>& got,
                       cc::ByteView sent) {
    return got.size() == sent.size() &&
           std::memcmp(got.data(), sent.data(), got.size()) == 0;
  };
  // Round 0: rank 1's frame corrupted in place, everyone else intact.
  EXPECT_FALSE(same(r0[1], producers[1].chunk(0)));
  EXPECT_TRUE(same(r0[0], producers[0].chunk(0)));
  EXPECT_TRUE(same(r0[2], producers[2].chunk(0)));
  // Round 1: rank 2 truncated, rank 0 dropped, rank 3 intact.
  EXPECT_LT(r1[2].size(), producers[2].chunk(1).size());
  EXPECT_TRUE(r1[0].empty());
  EXPECT_TRUE(same(r1[3], producers[3].chunk(1)));
  // Damage is typed at the cursor.
  cc::ChunkedConsumer c;
  EXPECT_THROW(c.feed(cc::ByteView(r0[1])), PayloadError);
  EXPECT_EQ(comm.recovery().corrupt_injected, 1U);
  EXPECT_EQ(comm.recovery().truncations_injected, 1U);
  EXPECT_EQ(comm.recovery().drops_injected, 1U);
}

// --- trajectory acceptance: chunked == unchunked, bit for bit ---

struct DistFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit DistFixture(std::size_t world) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  std::vector<float> flat_params() {
    std::vector<float> out;
    for (std::size_t li : replicas[0].trainable_layers()) {
      auto& layer = replicas[0].layer(li);
      const auto w = layer.weight()->span();
      const auto b = layer.bias()->span();
      out.insert(out.end(), w.begin(), w.end());
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
};

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " diverges at " << i;
  }
}

std::vector<float> run_kfac(std::size_t engine_threads,
                            std::size_t chunk_bytes) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1, .eigen_refresh_every = 2,
                      .aggregation = 2, .chunk_bytes = chunk_bytes},
                     comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  kfac.set_engine(&eng);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(ChunkTrajectory, DistKfacChunkedMatchesUnchunkedAtAnyThreadCount) {
  const auto unchunked = run_kfac(0, 0);
  expect_bitwise_equal(unchunked, run_kfac(0, 512), "chunked serial");
  expect_bitwise_equal(unchunked, run_kfac(2, 512), "chunked 2-thread");
  expect_bitwise_equal(unchunked, run_kfac(8, 512), "chunked 8-thread");
  expect_bitwise_equal(unchunked, run_kfac(8, 64), "tiny chunks 8-thread");
}

std::vector<float> run_sgd(std::size_t engine_threads,
                           std::size_t chunk_bytes) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({.momentum = 0.9, .error_feedback = true,
                    .chunk_bytes = chunk_bytes},
                   comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  sgd.set_engine(&eng);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    sgd.step(0.05, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(ChunkTrajectory, DistSgdChunkedMatchesUnchunkedAtAnyThreadCount) {
  const auto unchunked = run_sgd(0, 0);
  expect_bitwise_equal(unchunked, run_sgd(0, 256), "chunked serial");
  expect_bitwise_equal(unchunked, run_sgd(2, 256), "chunked 2-thread");
  expect_bitwise_equal(unchunked, run_sgd(8, 256), "chunked 8-thread");
}

// --- retry ladder + checkpoint/resume under chunk-level faults ---

core::FtTrainerConfig chunked_ft_config(std::size_t engine_threads,
                                        std::size_t chunk_bytes) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 31337};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.kfac.chunk_bytes = chunk_bytes;
  cfg.sgd.chunk_bytes = chunk_bytes;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 20;
  cfg.engine_threads = engine_threads;
  return cfg;
}

cm::FaultPlan chunk_fault_plan() {
  cm::FaultPlan plan;
  plan.corrupt_chunk(1, 2, 0).truncate_chunk(3, 1, 0).drop_chunk(5, 0, 1);
  return plan;
}

TEST(ChunkTrajectory, RetriedChunkFaultsLeaveTrajectoryBitExact) {
  // One-shot chunk faults are absorbed by per-round retries: the faulted
  // run must land on the clean run's trajectory, at every thread count.
  core::FaultTolerantTrainer clean(chunked_ft_config(0, 512));
  const auto clean_loss = clean.run(8);
  const auto clean_params = clean.parameters();

  for (const std::size_t threads : {0UL, 2UL, 8UL}) {
    core::FaultTolerantTrainer faulted(chunked_ft_config(threads, 512));
    faulted.set_fault_plan(chunk_fault_plan(), 4242);
    const auto loss = faulted.run(8);
    ASSERT_EQ(loss.size(), clean_loss.size());
    for (std::size_t i = 0; i < loss.size(); ++i) {
      EXPECT_EQ(loss[i], clean_loss[i]) << "threads=" << threads << " it=" << i;
    }
    expect_bitwise_equal(clean_params, faulted.parameters(), "chunk faults");
    EXPECT_GT(faulted.comm().recovery().decode_retries, 0U)
        << "plan did not exercise the retry ladder";
    EXPECT_EQ(faulted.comm().recovery().decode_failures, 0U);
  }
}

TEST(ChunkTrajectory, CheckpointResumeBitExactInChunkedMode) {
  core::FaultTolerantTrainer straight(chunked_ft_config(8, 512));
  straight.run(12);

  core::FaultTolerantTrainer first(chunked_ft_config(8, 512));
  first.run(6);
  const auto frame = first.checkpoint();
  core::FaultTolerantTrainer resumed(chunked_ft_config(2, 512));
  resumed.restore(frame);
  EXPECT_EQ(resumed.iteration(), 6U);
  resumed.run(6);

  expect_bitwise_equal(straight.parameters(), resumed.parameters(),
                       "chunked resume");
}

}  // namespace
