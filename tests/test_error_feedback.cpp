// Error-feedback compressor wrapper (DESIGN.md §17): residual properties
// on fixed gradients, EF-over-identity == plain-identity SGD bit-for-bit,
// fallback rollback semantics, and the full determinism matrix — the EF
// trainer trajectory and serialized residual state must be bit-exact
// across 1/2/8 engine threads, under a corrupt/drop/NaN fault plan, and
// across checkpoint save/resume (including a resume landing between a
// residual update and the next compress).

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace cm = compso::comm;
namespace core = compso::core;
namespace ckpt = compso::codec::ckpt;
namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

std::vector<float> fixed_gradient(std::size_t n, std::uint64_t seed) {
  ct::Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal() * 0.1);
  return g;
}

double l2(std::span<const float> v) {
  double s = 0.0;
  for (const float x : v) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

core::FtTrainerConfig family_config(core::CompressorFamily family,
                                    core::OptimizerKind kind,
                                    std::size_t threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 2026};
  cfg.optimizer = kind;
  cfg.family = family;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.total_iterations = 40;
  cfg.engine_threads = threads;
  return cfg;
}

/// Serialized family-compressor state, for bit-exactness comparisons.
ckpt::Bytes family_state(core::FaultTolerantTrainer& t) {
  auto* stateful =
      dynamic_cast<cp::StatefulCompressor*>(t.family_compressor());
  ckpt::Bytes out;
  if (stateful != nullptr) stateful->serialize_state(out);
  return out;
}

// --- residual properties ---------------------------------------------------

TEST(ErrorFeedback, ResidualBoundedAndContractingOnFixedGradient) {
  // Feeding the same gradient through EF-over-top-k: each step sends the
  // current top-k of (g + e); the residual is the dropped mass. It must
  // stay bounded by a small multiple of ||g|| and settle — the max norm
  // over the last half of the run no larger than over the first half.
  const auto ef = cp::make_error_feedback(cp::make_topk(0.125));
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  ASSERT_NE(wrapper, nullptr);
  const auto g = fixed_gradient(512, 7);
  const double gnorm = l2(g);
  ct::Rng rng(1);
  cp::Bytes payload;
  std::vector<double> norms;
  for (int step = 0; step < 40; ++step) {
    ef->compress_stream_into(3, g, rng, payload);
    norms.push_back(wrapper->residual_norm(3));
  }
  double first_half = 0.0, second_half = 0.0;
  for (std::size_t i = 0; i < norms.size(); ++i) {
    EXPECT_LT(norms[i], 4.0 * gnorm) << "step " << i;
    double& half = i < norms.size() / 2 ? first_half : second_half;
    half = std::max(half, norms[i]);
  }
  // EF theory bounds the residual by a (1-δ)/δ-style geometric plateau,
  // not a monotone decay: after the initial ramp the norm oscillates
  // around its fixed point. The second-half max must not exceed the
  // first-half max by more than the oscillation band.
  EXPECT_LE(second_half, 1.05 * first_half);
  // The residual is genuinely nonzero (top-k drops 87.5% of coordinates).
  EXPECT_GT(norms.back(), 0.0);
}

TEST(ErrorFeedback, ResidualBoundedUnderCompso) {
  // COMPSO's quantizer is contractive per coordinate, so EF-over-COMPSO
  // residuals stay within the quantization bound's scale of the input.
  const auto ef = cp::make_error_feedback(cp::make_compso({}));
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  const auto g = fixed_gradient(1024, 11);
  const double gnorm = l2(g);
  ct::Rng rng(2);
  cp::Bytes payload;
  for (int step = 0; step < 25; ++step) {
    ef->compress_stream_into(0, g, rng, payload);
    EXPECT_LT(wrapper->residual_norm(0), gnorm);
  }
}

TEST(ErrorFeedback, PayloadIsInnerFormatAndDecodes) {
  const auto ef = cp::make_error_feedback(cp::make_topk(0.25));
  const auto g = fixed_gradient(300, 3);
  ct::Rng rng(9);
  const auto payload = ef->compress(g, rng);
  // The wire format is the inner compressor's, unchanged: the plain
  // top-k decoder accepts the EF payload.
  const auto plain = cp::make_topk(0.25);
  const auto via_inner = plain->decompress(payload);
  const auto via_wrapper = ef->decompress(payload);
  ASSERT_EQ(via_inner.size(), g.size());
  EXPECT_EQ(std::memcmp(via_inner.data(), via_wrapper.data(),
                        via_inner.size() * sizeof(float)),
            0);
  EXPECT_LE(payload.size(), ef->max_payload_bytes(g.size()));
}

// --- EF-over-identity == plain identity, bit for bit -----------------------

TEST(ErrorFeedback, OverIdentityReproducesUncompressedSgdBitForBit) {
  // Identity is lossless, so the residual is exactly zero every step and
  // g + 0.0f is bitwise g: the EF-wrapped run must be bit-identical to
  // the plain-identity run — which is itself the uncompressed SGD
  // trajectory carried over the identity payload format.
  core::TrainerConfig base{.world = 4, .batch_per_rank = 8, .features = 10,
                           .classes = 3, .hidden = 8, .depth = 2,
                           .noise = 0.5F, .seed = 77};
  compso::optim::StepLr lr(0.05, 0.1, {});
  const auto ident = cp::make_identity();
  const auto ef = cp::make_error_feedback(cp::make_identity());

  core::ClusterTrainer plain(base);
  const auto a =
      plain.train_sgd(20, lr, ident.get(), /*error_feedback=*/false);
  core::ClusterTrainer wrapped(base);
  const auto b =
      wrapped.train_sgd(20, lr, ef.get(), /*error_feedback=*/false);

  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    EXPECT_EQ(a.loss_curve[i], b.loss_curve[i]) << "step " << i;
  }
  EXPECT_EQ(a.final_loss, b.final_loss);
  // And the wrapper's residuals are exactly zero on every stream.
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  for (const auto stream : wrapper->stream_ids()) {
    EXPECT_EQ(wrapper->residual_norm(stream), 0.0);
  }
}

// --- recovery-ladder semantics ---------------------------------------------

TEST(ErrorFeedback, FallbackRollsResidualBackToPreCompressSnapshot) {
  const auto ef = cp::make_error_feedback(cp::make_topk(0.1));
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  const auto g = fixed_gradient(256, 5);
  ct::Rng rng(4);
  cp::Bytes payload;
  ef->compress_stream_into(1, g, rng, payload);
  const auto before = wrapper->residual(1);
  ef->compress_stream_into(1, g, rng, payload);
  const auto after = wrapper->residual(1);
  ASSERT_NE(std::memcmp(before.data(), after.data(),
                        before.size() * sizeof(float)),
            0);
  // Transport abandoned the second payload: the residual must return to
  // the pre-compress value, not keep the abandoned update.
  ef->notify_fallback(1);
  const auto rolled = wrapper->residual(1);
  ASSERT_EQ(rolled.size(), before.size());
  EXPECT_EQ(std::memcmp(rolled.data(), before.data(),
                        before.size() * sizeof(float)),
            0);
  // A second notify (no compress in between) is a no-op, not a double
  // rollback.
  ef->notify_fallback(1);
  const auto rolled2 = wrapper->residual(1);
  EXPECT_EQ(std::memcmp(rolled2.data(), before.data(),
                        before.size() * sizeof(float)),
            0);
}

TEST(ErrorFeedback, ResetStreamAndShapeChangeDropState) {
  const auto ef = cp::make_error_feedback(cp::make_topk(0.1));
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  ct::Rng rng(6);
  cp::Bytes payload;
  ef->compress_stream_into(2, fixed_gradient(128, 1), rng, payload);
  EXPECT_GT(wrapper->residual_norm(2), 0.0);
  ef->reset_stream(2);
  EXPECT_TRUE(wrapper->residual(2).empty());
  // Shape change under the same stream id: stale residual resets to zero
  // instead of mixing into the new layout.
  ef->compress_stream_into(4, fixed_gradient(128, 2), rng, payload);
  ef->compress_stream_into(4, fixed_gradient(96, 3), rng, payload);
  EXPECT_EQ(wrapper->residual(4).size(), 96U);
}

// --- serialized state contract ---------------------------------------------

TEST(ErrorFeedback, StateRoundTripsAndRejectsDamage) {
  const auto ef = cp::make_error_feedback(cp::make_topk(0.2));
  auto* wrapper = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef.get());
  ct::Rng rng(8);
  cp::Bytes payload;
  for (std::uint64_t stream : {0ULL, 5ULL, 9ULL}) {
    ef->compress_stream_into(stream, fixed_gradient(64, stream + 1), rng,
                             payload);
  }
  ckpt::Bytes state;
  wrapper->serialize_state(state);

  const auto ef2 = cp::make_error_feedback(cp::make_topk(0.2));
  auto* wrapper2 = dynamic_cast<cp::ErrorFeedbackCompressor*>(ef2.get());
  {
    compso::codec::wire::Reader reader(state);
    wrapper2->deserialize_state(reader);
    EXPECT_EQ(reader.remaining(), 0U);
  }
  ckpt::Bytes state2;
  wrapper2->serialize_state(state2);
  ASSERT_EQ(state.size(), state2.size());
  EXPECT_EQ(std::memcmp(state.data(), state2.data(), state.size()), 0);

  // Truncations and a bad magic must throw typed PayloadError, never
  // partially apply.
  for (std::size_t cut : {1UL, 8UL, state.size() / 2}) {
    ckpt::Bytes damaged(state.begin(), state.end() - cut);
    compso::codec::wire::Reader reader(damaged);
    EXPECT_THROW(wrapper2->deserialize_state(reader), compso::PayloadError);
  }
  ckpt::Bytes bad_magic = state;
  bad_magic[0] ^= 0xFF;
  compso::codec::wire::Reader reader(bad_magic);
  EXPECT_THROW(wrapper2->deserialize_state(reader), compso::PayloadError);
}

// --- determinism matrix (threads × faults × resume) ------------------------

void expect_bit_identical(core::FaultTolerantTrainer& a,
                          core::FaultTolerantTrainer& b, const char* what) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size()) << what;
  EXPECT_EQ(std::memcmp(pa.data(), pb.data(), pa.size() * sizeof(float)), 0)
      << what;
  const auto sa = family_state(a);
  const auto sb = family_state(b);
  ASSERT_EQ(sa.size(), sb.size()) << what << " (state size)";
  EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size()), 0)
      << what << " (state bytes)";
}

cm::FaultPlan storm_plan() {
  cm::FaultPlan plan;
  plan.corrupt(4, 2).drop(7, 1).nan_gradient(10, 1).corrupt(13, 0);
  return plan;
}

/// Corrupt events consume the injector's RNG to synthesize damage, which a
/// resumed run does not replay (see tests/test_obs_determinism.cpp), so
/// the save/resume leg sticks to drop / NaN events on both sides of the
/// cut. Thread-count comparisons may use the full storm.
cm::FaultPlan resume_safe_plan() {
  cm::FaultPlan plan;
  plan.drop(4, 1).nan_gradient(6, 0).drop(10, 2).nan_gradient(13, 1);
  return plan;
}

TEST(ErrorFeedback, TrainerBitExactAcrossEngineThreads) {
  for (const auto kind : {core::OptimizerKind::kSgd,
                          core::OptimizerKind::kKfac}) {
    core::FaultTolerantTrainer serial(
        family_config(core::CompressorFamily::kEfTopK, kind, 0));
    serial.run(12);
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      core::FaultTolerantTrainer parallel(
          family_config(core::CompressorFamily::kEfTopK, kind, threads));
      parallel.run(12);
      expect_bit_identical(serial, parallel, "threads");
    }
  }
}

TEST(ErrorFeedback, TrainerBitExactAcrossThreadsUnderFaultPlan) {
  core::FaultTolerantTrainer serial(
      family_config(core::CompressorFamily::kEfCompso,
                    core::OptimizerKind::kSgd, 0));
  serial.set_fault_plan(storm_plan(), 99);
  serial.run(16);
  EXPECT_GT(serial.comm().recovery().corrupt_injected +
                serial.comm().recovery().drops_injected,
            0U);
  for (const std::size_t threads : {2UL, 8UL}) {
    core::FaultTolerantTrainer parallel(
        family_config(core::CompressorFamily::kEfCompso,
                      core::OptimizerKind::kSgd, threads));
    parallel.set_fault_plan(storm_plan(), 99);
    parallel.run(16);
    expect_bit_identical(serial, parallel, "faulted threads");
  }
}

TEST(ErrorFeedback, CheckpointResumeBitExactIncludingResidualState) {
  // Straight run vs save-at-8 / restore-into-fresh / continue. The
  // checkpoint at iteration 8 lands *between* the step-8 residual update
  // and the step-9 compress — exactly the window the "compressor" CKPT
  // section exists for. With a fault plan on both sides of the cut.
  for (const auto family : {core::CompressorFamily::kEfTopK,
                            core::CompressorFamily::kEfCompso}) {
    core::FaultTolerantTrainer straight(
        family_config(family, core::OptimizerKind::kSgd, 2));
    straight.set_fault_plan(resume_safe_plan(), 31);
    straight.run(20);

    core::FaultTolerantTrainer saver(
        family_config(family, core::OptimizerKind::kSgd, 2));
    saver.set_fault_plan(resume_safe_plan(), 31);
    saver.run(8);
    EXPECT_FALSE(family_state(saver).empty());
    const auto frame = saver.checkpoint();

    core::FaultTolerantTrainer resumed(
        family_config(family, core::OptimizerKind::kSgd, 2));
    resumed.restore(frame);
    resumed.set_fault_plan(resume_safe_plan(), 31);
    EXPECT_EQ(resumed.iteration(), 8U);
    // Restored residual state is bit-identical to the saver's...
    expect_bit_identical(saver, resumed, "post-restore");
    resumed.run(12);
    // ...and the resumed trajectory rejoins the straight run bit-exactly.
    expect_bit_identical(straight, resumed, "resumed");
  }
}

TEST(ErrorFeedback, CheckpointRejectsFamilyMismatch) {
  core::FaultTolerantTrainer ef_trainer(family_config(
      core::CompressorFamily::kEfTopK, core::OptimizerKind::kSgd, 0));
  ef_trainer.run(3);
  const auto frame = ef_trainer.checkpoint();
  core::FaultTolerantTrainer plain(family_config(
      core::CompressorFamily::kCompso, core::OptimizerKind::kSgd, 0));
  EXPECT_THROW(plain.restore(frame), compso::PayloadError);
}

}  // namespace
