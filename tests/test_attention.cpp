// Tests for the transformer blocks: TokenLinear weight sharing,
// SelfAttention forward/backward (finite differences through the softmax),
// and end-to-end transformer training with distributed KFAC + COMPSO.

#include "src/comm/communicator.hpp"
#include "src/nn/attention.hpp"
#include "src/nn/dataset.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/first_order.hpp"
#include "src/tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nn = compso::nn;
namespace ct = compso::tensor;

namespace {

TEST(TokenLinear, SharesWeightsAcrossTokens) {
  ct::Rng rng(1);
  nn::TokenLinear tl(3, 2, 2, rng);
  // Same token content at every position -> same output per position.
  ct::Tensor x({1, 6}, {0.5F, -1.0F, 0.5F, -1.0F, 0.5F, -1.0F});
  const auto y = tl.forward(x);
  EXPECT_FLOAT_EQ(y[0], y[2]);
  EXPECT_FLOAT_EQ(y[0], y[4]);
  EXPECT_FLOAT_EQ(y[1], y[3]);
}

TEST(TokenLinear, GradientMatchesFiniteDifference) {
  ct::Rng rng(2);
  nn::TokenLinear tl(4, 3, 2, rng);
  ct::Tensor x({2, 12});
  rng.fill_normal(x.span());
  tl.forward(x);
  ct::Tensor ones({2, 8});
  ones.fill(1.0F);
  tl.backward(ones);
  const ct::Tensor analytic = *tl.weight_grad();
  const float eps = 1e-3F;
  for (std::size_t idx = 0; idx < 6; ++idx) {
    const float orig = tl.weight()->data()[idx];
    tl.weight()->data()[idx] = orig + eps;
    const auto yp = tl.forward(x);
    tl.weight()->data()[idx] = orig - eps;
    const auto ym = tl.forward(x);
    tl.weight()->data()[idx] = orig;
    double sp = 0.0, sm = 0.0;
    for (std::size_t i = 0; i < yp.size(); ++i) {
      sp += yp[i];
      sm += ym[i];
    }
    EXPECT_NEAR(analytic[idx], (sp - sm) / (2.0 * eps), 0.05) << idx;
  }
}

TEST(TokenLinear, KfacHooksAccumulateOverTokens) {
  ct::Rng rng(3);
  nn::TokenLinear tl(5, 3, 2, rng);
  ct::Tensor x({2, 15});
  rng.fill_normal(x.span());
  tl.forward(x);
  ASSERT_NE(tl.kfac_input(), nullptr);
  EXPECT_EQ(tl.kfac_input()->rows(), 10U);  // batch * seq
  EXPECT_EQ(tl.kfac_input()->cols(), 4U);   // in + 1
}

TEST(SelfAttention, UniformTokensGiveUniformMixing) {
  // Identical tokens -> uniform attention -> output equals input tokens.
  nn::SelfAttention attn(4, 3);
  ct::Tensor x({1, 12});
  for (std::size_t t = 0; t < 4; ++t) {
    x[t * 3 + 0] = 1.0F;
    x[t * 3 + 1] = -0.5F;
    x[t * 3 + 2] = 0.25F;
  }
  const auto y = attn.forward(x);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(y[i], x[i], 1e-6);
}

TEST(SelfAttention, AttendsToSimilarTokens) {
  // Token 0 similar to token 1, dissimilar to 2: its output should move
  // toward token 1's value.
  nn::SelfAttention attn(3, 2);
  ct::Tensor x({1, 6}, {2.0F, 0.0F, 2.1F, 0.0F, 0.0F, 2.0F});
  const auto y = attn.forward(x);
  // Output token 0 keeps a dominant first component.
  EXPECT_GT(y[0], y[1]);
}

TEST(SelfAttention, InputGradientMatchesFiniteDifference) {
  ct::Rng rng(4);
  nn::SelfAttention attn(3, 2);
  ct::Tensor x({1, 6});
  rng.fill_normal(x.span(), 0.0F, 0.5F);
  attn.forward(x);
  ct::Tensor g({1, 6});
  rng.fill_normal(g.span());
  const auto gin = attn.backward(g);

  const float eps = 1e-3F;
  for (std::size_t i = 0; i < 6; ++i) {
    ct::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const auto yp = attn.forward(xp);
    const auto ym = attn.forward(xm);
    double fp = 0.0, fm = 0.0;
    for (std::size_t j = 0; j < 6; ++j) {
      fp += static_cast<double>(yp[j]) * g[j];
      fm += static_cast<double>(ym[j]) * g[j];
    }
    EXPECT_NEAR(gin[i], (fp - fm) / (2.0 * eps), 5e-3) << i;
  }
}

TEST(SelfAttention, BatchIndependence) {
  // Two samples processed in one batch match the same samples processed
  // separately (no cross-batch attention).
  ct::Rng rng(5);
  nn::SelfAttention attn(3, 2);
  ct::Tensor both({2, 6});
  rng.fill_normal(both.span());
  const auto y_both = attn.forward(both);
  ct::Tensor first({1, 6},
                   std::vector<float>(both.data(), both.data() + 6));
  nn::SelfAttention attn2(3, 2);
  const auto y_first = attn2.forward(first);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FLOAT_EQ(y_both[i], y_first[i]);
  }
}

TEST(Transformer, LearnsTokenOrderTask) {
  // Classify by which token position carries the planted marker — a task
  // that requires cross-token communication (attention), not just
  // per-token features.
  ct::Rng rng(6);
  const std::size_t seq = 4, feat = 6;
  auto model = nn::make_transformer_classifier(seq, feat, 8, seq, 1, rng);
  compso::optim::Sgd sgd(0.9);
  auto sample = [&](std::size_t batch, ct::Rng& r) {
    nn::Batch b;
    b.x = ct::Tensor({batch, seq * feat});
    b.labels.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto cls = static_cast<int>(r.uniform_index(seq));
      b.labels[i] = cls;
      for (auto& v : b.x.span().subspan(i * seq * feat, seq * feat)) {
        v = r.normal(0.0F, 0.3F);
      }
      // Marker pattern on token `cls`.
      for (std::size_t f = 0; f < feat; f += 2) {
        b.x.at(i, static_cast<std::size_t>(cls) * feat + f) += 2.0F;
      }
    }
    return b;
  };
  ct::Rng data_rng(7);
  for (int t = 0; t < 200; ++t) {
    const auto b = sample(16, data_rng);
    const auto logits = model.forward(b.x);
    ct::Tensor grad;
    nn::softmax_cross_entropy(logits, b.labels, grad);
    model.backward(grad);
    sgd.step(model, 0.02);
  }
  ct::Rng eval_rng(8);
  const auto b = sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(model.forward(b.x), b.labels), 0.9);
}

TEST(Transformer, DistributedKfacWithCompsoConverges) {
  const std::size_t world = 2, seq = 3, feat = 4;
  std::vector<nn::Model> replicas;
  for (std::size_t r = 0; r < world; ++r) {
    ct::Rng rng(44);
    replicas.push_back(
        nn::make_transformer_classifier(seq, feat, 6, seq, 1, rng));
  }
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  compso::comm::Communicator comm(compso::comm::Topology::with_gpus(world),
                                  compso::comm::NetworkModel::platform1());
  compso::optim::DistKfacConfig cfg;
  cfg.damping = 0.1;
  cfg.aggregation = 2;
  compso::optim::DistKfac kfac(cfg, comm, ptrs);
  const auto compso = compso::compress::make_compso({});

  auto sample = [&](std::size_t batch, ct::Rng& r) {
    nn::Batch b;
    b.x = ct::Tensor({batch, seq * feat});
    b.labels.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto cls = static_cast<int>(r.uniform_index(seq));
      b.labels[i] = cls;
      for (auto& v : b.x.span().subspan(i * seq * feat, seq * feat)) {
        v = r.normal(0.0F, 0.3F);
      }
      for (std::size_t f = 0; f < feat; f += 2) {
        b.x.at(i, static_cast<std::size_t>(cls) * feat + f) += 2.0F;
      }
    }
    return b;
  };
  ct::Rng data_rng(9), sr_rng(10);
  for (std::size_t t = 0; t < 120; ++t) {
    for (auto& m : replicas) {
      const auto b = sample(8, data_rng);
      const auto logits = m.forward(b.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, b.labels, grad);
      m.backward(grad);
    }
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  ct::Rng eval_rng(11);
  const auto b = sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(replicas[0].forward(b.x), b.labels), 0.9);
}

}  // namespace
