// Deterministic fuzz/property harness for wire format v1 (DESIGN.md,
// "Payload format v1"). For every compressor x codec pair, seeded tensors
// are round-tripped, then each payload is mutated (bit flips, byte
// overwrites, truncation, extension, zeroed regions) and decoded. The
// contract: decode either throws compso::PayloadError or returns a
// bit-exact copy of the reference decode. Anything else — a crash, an
// out-of-bounds read (ASan/UBSan builds), or a silently different result —
// fails the test. A transport-level case drives the same contract through
// the communicator's fault-injection hook and DistSgd.

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/compress/payload_fuzz.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_sgd.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace cc = compso::codec;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace cm = compso::comm;
namespace nn = compso::nn;
namespace opt = compso::optim;

namespace {

struct FuzzCase {
  std::string name;
  std::function<std::unique_ptr<cp::GradientCompressor>()> make;
};

std::vector<FuzzCase> all_cases() {
  std::vector<FuzzCase> cases;
  // COMPSO crossed with every codec of Table 2 (the codec frames ride
  // inside the compressor payload, so this fuzzes both layers at once).
  // The error-feedback wrapper sends the inner compressor's payload
  // unchanged, so EF-over-COMPSO runs the same cross too: the residual
  // path feeds the payload but must not weaken any decode guard.
  for (cc::CodecKind kind : cc::kAllCodecKinds) {
    cases.push_back(
        {std::string("COMPSO_") + cc::to_string(kind), [kind] {
           return cp::make_compso({.encoder = kind});
         }});
    cases.push_back(
        {std::string("EF_COMPSO_") + cc::to_string(kind), [kind] {
           return cp::make_error_feedback(cp::make_compso({.encoder = kind}));
         }});
  }
  cases.push_back({"QSGD", [] { return cp::make_qsgd(8); }});
  cases.push_back({"SZ", [] { return cp::make_sz(4e-3); }});
  cases.push_back({"Cocktail", [] { return cp::make_cocktail(0.2, 8); }});
  cases.push_back({"TopK", [] { return cp::make_topk(0.1); }});
  cases.push_back({"Identity", [] { return cp::make_identity(); }});
  cases.push_back({"EF_TopK", [] {
                     return cp::make_error_feedback(cp::make_topk(0.1));
                   }});
  cases.push_back({"CountSketch", [] {
                     return cp::make_count_sketch(0.25, 3, 0x5EED);
                   }});
  cases.push_back({"RandProj", [] {
                     return cp::make_random_projection(0.25, 0x5EED);
                   }});
  return cases;
}

/// Seeded inputs covering the edge shapes: empty, single element, odd
/// sizes, a realistic block, all-zero (step == 0 path), and constant.
std::vector<std::vector<float>> fuzz_inputs() {
  std::vector<std::vector<float>> inputs;
  ct::Rng rng(0xC0FFEE);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                        std::size_t{256}, std::size_t{2048}}) {
    std::vector<float> v(n);
    rng.fill_normal(v);
    inputs.push_back(std::move(v));
  }
  inputs.emplace_back(512, 0.0F);   // all-zero: quantizer step == 0
  inputs.emplace_back(300, 1.25F);  // constant
  return inputs;
}

bool bit_exact(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class PayloadFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PayloadFuzz, LegitimatePayloadsAlwaysDecode) {
  const auto c = GetParam().make();
  ct::Rng sr_rng(7);
  for (const auto& values : fuzz_inputs()) {
    const auto payload = c->compress(values, sr_rng);
    std::vector<float> decoded;
    ASSERT_NO_THROW(decoded = c->decompress(payload)) << values.size();
    ASSERT_EQ(decoded.size(), values.size());
  }
}

TEST_P(PayloadFuzz, MutatedPayloadsThrowOrDecodeExactly) {
  const auto c = GetParam().make();
  ct::Rng sr_rng(7);
  ct::Rng mut_rng(11);
  std::size_t mutations = 0;
  for (const auto& values : fuzz_inputs()) {
    const auto payload = c->compress(values, sr_rng);
    const auto reference = c->decompress(payload);
    for (int trial = 0; trial < 180; ++trial) {
      const auto mutated = cp::mutate_payload(payload, mut_rng);
      ++mutations;
      try {
        const auto decoded = c->decompress(mutated);
        // A decode that "succeeds" on a mutated payload is only legal if
        // the mutation was semantically a no-op: the result must be
        // bit-identical to the reference decode.
        ASSERT_TRUE(bit_exact(decoded, reference))
            << "silent corruption: input size " << values.size()
            << ", trial " << trial;
      } catch (const compso::PayloadError&) {
        // corruption detected through the typed error — the contract.
      }
    }
  }
  EXPECT_GE(mutations, 1000U);
}

TEST_P(PayloadFuzz, EveryMutationKindIsExercised) {
  // Targeted sweep: each mutation kind applied repeatedly so a regression
  // in one decode guard cannot hide behind the mixed distribution.
  const auto c = GetParam().make();
  ct::Rng sr_rng(19);
  ct::Rng mut_rng(23);
  std::vector<float> values(1024);
  sr_rng.fill_normal(values);
  const auto payload = c->compress(values, sr_rng);
  const auto reference = c->decompress(payload);
  for (int kind = 0; kind < cp::kMutationKinds; ++kind) {
    for (int trial = 0; trial < 40; ++trial) {
      const auto mutated = cp::apply_mutation(
          payload, static_cast<cp::Mutation>(kind), mut_rng);
      try {
        const auto decoded = c->decompress(mutated);
        ASSERT_TRUE(bit_exact(decoded, reference)) << "kind " << kind;
      } catch (const compso::PayloadError&) {
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PayloadFuzz,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.name; });

// --- transport-level corruption ------------------------------------------

TEST(TransportFault, CorruptedAllgatherIsDetectedByDistSgd) {
  // A fault-injecting transport flips one payload bit in flight; the
  // optimizer decodes from the received stream, so the wire-format checks
  // must surface the damage as PayloadError instead of training on garbage.
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  for (int r = 0; r < 2; ++r) {
    ct::Rng rng(555);
    replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
  }
  for (auto& m : replicas) ptrs.push_back(&m);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  ct::Rng fault_rng(99);
  comm.set_payload_fault([&fault_rng](std::vector<std::uint8_t>& bytes) {
    if (bytes.empty()) return;
    const std::uint64_t bit = fault_rng.uniform_index(bytes.size() * 8);
    bytes[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1U << (bit % 8));
  });
  opt::DistSgd sgd({}, comm, ptrs);
  const auto compso = cp::make_compso({});
  nn::ClusterDataset dataset(8, 3, 0.4F, 77);
  ct::Rng data_rng(1), sr_rng(2);
  for (auto& m : replicas) {
    const auto batch = dataset.sample(8, data_rng);
    const auto logits = m.forward(batch.x);
    ct::Tensor grad;
    nn::softmax_cross_entropy(logits, batch.labels, grad);
    m.backward(grad);
  }
  EXPECT_THROW(sgd.step(0.05, compso.get(), sr_rng), compso::PayloadError);
}

TEST(TransportFault, CleanAllgatherStillTrains) {
  // Sanity: with no fault installed the recv-side decode path must behave
  // exactly like the trusted path did.
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  for (int r = 0; r < 2; ++r) {
    ct::Rng rng(555);
    replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
  }
  for (auto& m : replicas) ptrs.push_back(&m);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({}, comm, ptrs);
  const auto compso = cp::make_compso({});
  nn::ClusterDataset dataset(8, 3, 0.4F, 77);
  ct::Rng data_rng(1), sr_rng(2);
  for (auto& m : replicas) {
    const auto batch = dataset.sample(8, data_rng);
    const auto logits = m.forward(batch.x);
    ct::Tensor grad;
    nn::softmax_cross_entropy(logits, batch.labels, grad);
    m.backward(grad);
  }
  EXPECT_NO_THROW(sgd.step(0.05, compso.get(), sr_rng));
}

}  // namespace
