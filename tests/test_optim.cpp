// Tests for optimizers: LR schedulers, KFAC layer math, distributed KFAC
// and SGD (replica consistency, compression round-trips, convergence).

#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/optim/first_order.hpp"
#include "src/optim/kfac.hpp"
#include "src/optim/lr_scheduler.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace opt = compso::optim;
namespace nn = compso::nn;
namespace ct = compso::tensor;
namespace cm = compso::comm;

namespace {

TEST(StepLr, DecaysAtMilestones) {
  opt::StepLr lr(1.0, 0.1, {10, 20});
  EXPECT_DOUBLE_EQ(lr.lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(10), 0.1);
  EXPECT_DOUBLE_EQ(lr.lr(25), 0.01);
  EXPECT_EQ(lr.first_drop(), 10U);
  EXPECT_TRUE(lr.is_step_schedule());
}

TEST(StepLr, Validation) {
  EXPECT_THROW(opt::StepLr(0.0, 0.1, {}), std::invalid_argument);
  EXPECT_THROW(opt::StepLr(1.0, 1.5, {}), std::invalid_argument);
}

TEST(SmoothLr, WarmupThenCosine) {
  opt::SmoothLr lr(1.0, 10, 100);
  EXPECT_LT(lr.lr(0), 0.2);              // warmup ramps
  EXPECT_NEAR(lr.lr(9), 1.0, 1e-9);      // end of warmup
  EXPECT_NEAR(lr.lr(55), 0.5, 0.02);     // cosine midpoint
  EXPECT_NEAR(lr.lr(100), 0.0, 1e-9);    // fully decayed
  EXPECT_FALSE(lr.is_step_schedule());
}

TEST(SmoothLr, MonotoneAfterWarmup) {
  opt::SmoothLr lr(0.1, 5, 200);
  for (std::size_t t = 5; t < 199; ++t) {
    EXPECT_GE(lr.lr(t), lr.lr(t + 1)) << "t=" << t;
  }
}

// --- KFAC layer math ---

TEST(KfacState, FactorsAreRunningAverages) {
  opt::KfacLayerState st(3, 2);
  ct::Tensor a1({4, 3});
  a1.fill(1.0F);
  ct::Tensor g1({4, 2});
  g1.fill(0.5F);
  st.update_factors(a1, g1, 0.9);
  const float a_first = st.factor_a().at(0, 0);  // 4*1/4 = 1
  EXPECT_NEAR(a_first, 1.0F, 1e-5);
  // Second update with zeros blends 0.9 * old.
  ct::Tensor a2({4, 3}), g2({4, 2});
  st.update_factors(a2, g2, 0.9);
  EXPECT_NEAR(st.factor_a().at(0, 0), 0.9F, 1e-5);
}

TEST(KfacState, PreconditionIdentityFactorsIsScaledGradient) {
  // With A = I and G = I, Eq. 2 reduces to K = Grad / (1 + gamma).
  opt::KfacLayerState st(3, 2);
  ct::Tensor a({3, 3});  // batch=3 identity rows -> a^T a / 3 = I/ ... use eye
  // Feed activations such that A == I: a = sqrt(3) * I rows.
  for (std::size_t i = 0; i < 3; ++i) {
    a.at(i, i) = std::sqrt(3.0F);
  }
  ct::Tensor g({3, 2});
  // g^T g * batch = I requires g columns orthonormal / sqrt(batch):
  g.at(0, 0) = 1.0F / std::sqrt(3.0F);
  g.at(1, 1) = 1.0F / std::sqrt(3.0F);
  st.update_factors(a, g, 0.0);
  st.refresh_eigen();
  ct::Tensor grad({2, 3});
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(i + 1);
  }
  const double gamma = 0.5;
  const ct::Tensor k = st.precondition(grad, gamma);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(k[i], grad[i] / (1.0 + gamma), 1e-4) << i;
  }
}

TEST(KfacState, PreconditionReducesConditioning) {
  // On an anisotropic quadratic, the preconditioned direction should be
  // closer to the true minimum direction than the raw gradient.
  ct::Rng rng(11);
  opt::KfacLayerState st(4, 3);
  // Random correlated activations -> ill-conditioned A.
  ct::Tensor a({64, 4});
  for (std::size_t r = 0; r < 64; ++r) {
    const float base = rng.normal();
    a.at(r, 0) = base * 3.0F;
    a.at(r, 1) = base * 2.9F + rng.normal() * 0.1F;
    a.at(r, 2) = rng.normal() * 0.2F;
    a.at(r, 3) = 1.0F;
  }
  ct::Tensor g({64, 3});
  rng.fill_normal(g.span(), 0.0F, 0.1F);
  st.update_factors(a, g, 0.0);
  st.refresh_eigen();
  ct::Tensor grad({3, 4});
  rng.fill_normal(grad.span());
  const ct::Tensor k = st.precondition(grad, 1e-3);
  // The preconditioner must damp the dominant (high-curvature) subspace:
  // components along the large-eigenvalue directions shrink the most, so
  // the output norm is much smaller than a plain 1/gamma scaling.
  EXPECT_GT(ct::l2_norm(k.span()), 0.0);
  EXPECT_TRUE(std::isfinite(ct::l2_norm(k.span())));
}

TEST(KfacState, RefreshBeforeStatsThrows) {
  opt::KfacLayerState st(3, 2);
  EXPECT_THROW(st.refresh_eigen(), std::logic_error);
}

TEST(KfacState, PreconditionBeforeEigenThrows) {
  opt::KfacLayerState st(3, 2);
  ct::Tensor a({2, 3}), g({2, 2});
  st.update_factors(a, g, 0.9);
  ct::Tensor grad({2, 3});
  EXPECT_THROW((void)st.precondition(grad, 0.1), std::logic_error);
}

TEST(KfacHelpers, CombinedGradientLayout) {
  ct::Rng rng(12);
  nn::Linear l(3, 2, rng);
  ct::Tensor x({4, 3});
  rng.fill_normal(x.span());
  l.forward(x);
  ct::Tensor gout({4, 2});
  rng.fill_normal(gout.span());
  l.backward(gout);
  const ct::Tensor c = opt::combined_gradient(l);
  EXPECT_EQ(c.rows(), 2U);
  EXPECT_EQ(c.cols(), 4U);
  EXPECT_FLOAT_EQ(c.at(1, 3), (*l.bias_grad())[1]);
  EXPECT_FLOAT_EQ(c.at(0, 2), l.weight_grad()->at(0, 2));
}

TEST(KfacHelpers, ApplyCombinedUpdate) {
  ct::Rng rng(13);
  nn::Linear l(2, 2, rng);
  const float w00 = l.weight()->at(0, 0);
  const float b0 = (*l.bias())[0];
  ct::Tensor k({2, 3});
  k.fill(1.0F);
  opt::apply_combined_update(l, k, 0.1);
  EXPECT_NEAR(l.weight()->at(0, 0), w00 - 0.1F, 1e-6);
  EXPECT_NEAR((*l.bias())[0], b0 - 0.1F, 1e-6);
}

// --- first-order optimizers ---

TEST(FirstOrder, SgdDescendsQuadratic) {
  // One linear layer, MSE to zero targets: loss must decrease.
  ct::Rng rng(14);
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(4, 1, rng));
  opt::Sgd sgd(0.0);
  ct::Tensor x({8, 4});
  rng.fill_normal(x.span());
  ct::Tensor target({8, 1});
  double prev = 1e18;
  for (int it = 0; it < 50; ++it) {
    auto y = m.forward(x);
    ct::Tensor grad;
    const double loss = nn::mse_loss(y, target, grad);
    m.backward(grad);
    sgd.step(m, 0.05);
    if (it % 10 == 9) {
      EXPECT_LT(loss, prev);
      prev = loss;
    }
  }
}

TEST(FirstOrder, AdamDescendsQuadratic) {
  ct::Rng rng(15);
  nn::Model m;
  m.add(std::make_unique<nn::Linear>(4, 1, rng));
  opt::Adam adam;
  ct::Tensor x({8, 4});
  rng.fill_normal(x.span());
  ct::Tensor target({8, 1});
  double first = 0.0, last = 0.0;
  for (int it = 0; it < 100; ++it) {
    auto y = m.forward(x);
    ct::Tensor grad;
    const double loss = nn::mse_loss(y, target, grad);
    if (it == 0) first = loss;
    last = loss;
    m.backward(grad);
    adam.step(m, 0.05);
  }
  EXPECT_LT(last, first * 0.1);
}

// --- distributed optimizers ---

struct DistFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit DistFixture(std::size_t world) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  double max_replica_divergence() {
    double worst = 0.0;
    for (std::size_t li : replicas[0].trainable_layers()) {
      const auto& w0 = *replicas[0].layer(li).weight();
      for (std::size_t r = 1; r < replicas.size(); ++r) {
        const auto& wr = *replicas[r].layer(li).weight();
        worst = std::max(worst, ct::max_abs_error(w0.span(), wr.span()));
      }
    }
    return worst;
  }
};

TEST(DistKfac, ReplicasStayIdenticalWithCompression) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1}, comm, f.ptrs);
  const auto compso = compso::compress::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
    // Compression error is shared state after the allgather: replicas must
    // remain bit-identical.
    EXPECT_EQ(f.max_replica_divergence(), 0.0) << "t=" << t;
  }
}

TEST(DistKfac, CompressionReducesBytes) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1}, comm, f.ptrs);
  const auto compso = compso::compress::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  f.run_fwd_bwd(data_rng);
  kfac.step(0, 0.01, nullptr, sr_rng);
  const auto orig = kfac.last_compressed_bytes();
  f.run_fwd_bwd(data_rng);
  kfac.step(1, 0.01, compso.get(), sr_rng);
  EXPECT_LT(kfac.last_compressed_bytes(), orig);
  EXPECT_EQ(kfac.last_original_bytes(), orig);
}

TEST(DistKfac, OwnerAssignmentRoundRobin) {
  DistFixture f(2);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({}, comm, f.ptrs);
  EXPECT_EQ(kfac.layer_count(), 2U);
  EXPECT_EQ(kfac.owner_of(0), 0U);
  EXPECT_EQ(kfac.owner_of(1), 1U);
}

TEST(DistKfac, RequiresOneReplicaPerRank) {
  DistFixture f(2);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  EXPECT_THROW(opt::DistKfac({}, comm, f.ptrs), std::invalid_argument);
}

TEST(DistKfac, StepBeforeBackwardThrows) {
  DistFixture f(2);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({}, comm, f.ptrs);
  ct::Rng rng(3);
  EXPECT_THROW(kfac.step(0, 0.01, nullptr, rng), std::logic_error);
}

TEST(DistSgd, MatchesSingleProcessSgdWithoutCompression) {
  // Distributed SGD over 4 ranks with the same total batch must track a
  // reasonable descent (sanity on the allreduce averaging).
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({.momentum = 0.9}, comm, f.ptrs);
  ct::Rng data_rng(1), sr_rng(2);
  double first = 0.0, last = 0.0;
  for (std::size_t t = 0; t < 60; ++t) {
    double loss = 0.0;
    for (auto& m : f.replicas) {
      const auto batch = f.dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      loss += nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
    if (t == 0) first = loss;
    last = loss;
    sgd.step(0.05, nullptr, sr_rng);
  }
  EXPECT_LT(last, first * 0.3);
  EXPECT_EQ(f.max_replica_divergence(), 0.0);
}

TEST(DistSgd, ErrorFeedbackRecoversTopKLoss) {
  // With aggressive top-k sparsification, error feedback should keep the
  // final loss close to (or better than) no-EF.
  auto run = [](bool ef) {
    DistFixture f(2);
    cm::Communicator comm(cm::Topology::with_gpus(2),
                          cm::NetworkModel::platform1());
    opt::DistSgd sgd({.momentum = 0.9, .error_feedback = ef}, comm, f.ptrs);
    const auto topk = compso::compress::make_topk(0.1);
    ct::Rng data_rng(1), sr_rng(2);
    double last = 0.0;
    for (std::size_t t = 0; t < 80; ++t) {
      double loss = 0.0;
      for (auto& m : f.replicas) {
        const auto batch = f.dataset.sample(8, data_rng);
        const auto logits = m.forward(batch.x);
        ct::Tensor grad;
        loss += nn::softmax_cross_entropy(logits, batch.labels, grad);
        m.backward(grad);
      }
      last = loss / 2.0;
      sgd.step(0.05, topk.get(), sr_rng);
    }
    return last;
  };
  const double with_ef = run(true);
  const double without_ef = run(false);
  EXPECT_LT(with_ef, without_ef * 1.5);
}

TEST(DistSgd, CompressionBytesTracked) {
  DistFixture f(2);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({}, comm, f.ptrs);
  const auto qsgd = compso::compress::make_qsgd(8);
  ct::Rng data_rng(1), sr_rng(2);
  f.run_fwd_bwd(data_rng);
  sgd.step(0.05, qsgd.get(), sr_rng);
  EXPECT_GT(sgd.last_original_bytes(), 0U);
  EXPECT_LT(sgd.last_compressed_bytes(), sgd.last_original_bytes());
}

}  // namespace
