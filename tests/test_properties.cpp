// Cross-module property sweeps (parameterized gtest):
//  - error-bound contracts hold across bounds, modes, and data shapes;
//  - compressor roundtrips preserve counts across methods and sizes;
//  - the KFAC preconditioner degenerates to scaled SGD at huge damping;
//  - collective timing models are monotone in size and world.

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/optim/kfac.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cm = compso::comm;
namespace cp = compso::compress;
namespace cq = compso::quant;
namespace ct = compso::tensor;
namespace opt = compso::optim;

namespace {

// --- error-bound contract sweep ---

struct BoundCase {
  double eb;
  cq::RoundingMode mode;
  const char* shape;
};

class ErrorBoundContract : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ErrorBoundContract, ReconstructionWithinBound) {
  const auto& c = GetParam();
  ct::Rng rng(static_cast<std::uint64_t>(c.eb * 1e6) + 17);
  std::vector<float> data;
  if (std::string(c.shape) == "uniform") {
    data.resize(30000);
    rng.fill_uniform(data, -3.0F, 3.0F);
  } else if (std::string(c.shape) == "normal") {
    data.resize(30000);
    rng.fill_normal(data, 0.0F, 0.7F);
  } else {
    data = ct::synthetic_gradient(30000, ct::GradientProfile::kfac(), rng);
  }
  const cq::ErrorBoundedQuantizer q(c.eb, c.mode);
  const auto block = q.quantize(data, rng);
  std::vector<float> rec(data.size());
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  const double limit = (c.mode == cq::RoundingMode::kNearest ? 1.0 : 2.0) *
                       c.eb * abs_max;
  // FP32 dequantization adds up to ~1 ulp of the value scale on top of
  // the analytic bound.
  EXPECT_LE(ct::max_abs_error(data, rec), limit * (1.0 + 1e-4) + 1e-7)
      << "eb=" << c.eb << " mode=" << cq::to_string(c.mode);
}

std::vector<BoundCase> bound_cases() {
  std::vector<BoundCase> cases;
  for (double eb : {1e-1, 1e-2, 4e-3, 1e-3, 1e-4}) {
    for (auto mode : {cq::RoundingMode::kNearest,
                      cq::RoundingMode::kStochastic,
                      cq::RoundingMode::kHalfProbability}) {
      for (const char* shape : {"uniform", "normal", "gradient"}) {
        cases.push_back({eb, mode, shape});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErrorBoundContract, ::testing::ValuesIn(bound_cases()),
    [](const auto& info) {
      const auto& c = info.param;
      std::string mode = cq::to_string(c.mode);
      for (auto& ch : mode) {
        if (ch == '.') ch = '_';
      }
      std::string eb = std::to_string(static_cast<int>(-std::log10(c.eb) * 10));
      return std::string(c.shape) + "_" + mode + "_em" + eb;
    });

// --- compressor roundtrip sweep ---

struct RoundtripCase {
  const char* name;
  std::function<std::unique_ptr<cp::GradientCompressor>()> make;
  std::size_t size;
};

class CompressorRoundtrip : public ::testing::TestWithParam<RoundtripCase> {};

TEST_P(CompressorRoundtrip, CountPreservedAndFinite) {
  const auto& c = GetParam();
  const auto compressor = c.make();
  ct::Rng rng(c.size + 3);
  const auto data =
      ct::synthetic_gradient(c.size, ct::GradientProfile::kfac(), rng);
  const auto payload = compressor->compress(data, rng);
  const auto rec = compressor->decompress(payload);
  ASSERT_EQ(rec.size(), data.size());
  for (float v : rec) EXPECT_TRUE(std::isfinite(v));
}

std::vector<RoundtripCase> roundtrip_cases() {
  struct Maker {
    const char* name;
    std::function<std::unique_ptr<cp::GradientCompressor>()> make;
  };
  const Maker makers[] = {
      {"COMPSO", [] { return cp::make_compso({}); }},
      {"QSGD4", [] { return cp::make_qsgd(4); }},
      {"QSGD8", [] { return cp::make_qsgd(8); }},
      {"SZ", [] { return cp::make_sz(4e-3); }},
      {"Cocktail", [] { return cp::make_cocktail(0.2, 8); }},
      {"TopK", [] { return cp::make_topk(0.05); }},
      {"Identity", [] { return cp::make_identity(); }},
  };
  std::vector<RoundtripCase> cases;
  for (const auto& m : makers) {
    for (std::size_t size : {1UL, 63UL, 1024UL, 100000UL}) {
      cases.push_back({m.name, m.make, size});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompressorRoundtrip,
                         ::testing::ValuesIn(roundtrip_cases()),
                         [](const auto& info) {
                           return std::string(info.param.name) + "_" +
                                  std::to_string(info.param.size);
                         });

// --- KFAC degenerates to scaled SGD at huge damping ---

TEST(KfacProperty, HugeDampingGivesScaledGradient) {
  // As gamma -> inf, (F + gamma I)^-1 -> I/gamma, so the preconditioned
  // gradient approaches grad / gamma.
  ct::Rng rng(21);
  opt::KfacLayerState st(5, 4);
  ct::Tensor a({16, 5}), g({16, 4});
  rng.fill_normal(a.span());
  rng.fill_normal(g.span(), 0.0F, 0.1F);
  st.update_factors(a, g, 0.0);
  st.refresh_eigen();
  ct::Tensor grad({4, 5});
  rng.fill_normal(grad.span());
  const double gamma = 1e8;
  const ct::Tensor k = st.precondition(grad, gamma);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(k[i] * gamma, grad[i], 1e-2 + 1e-3 * std::fabs(grad[i]));
  }
}

TEST(KfacProperty, PreconditionerIsLinearInGradient) {
  // K(a*G1 + b*G2) == a*K(G1) + b*K(G2): Eq. 2 is a linear operator.
  ct::Rng rng(22);
  opt::KfacLayerState st(4, 3);
  ct::Tensor a({8, 4}), g({8, 3});
  rng.fill_normal(a.span());
  rng.fill_normal(g.span(), 0.0F, 0.2F);
  st.update_factors(a, g, 0.0);
  st.refresh_eigen();
  ct::Tensor g1({3, 4}), g2({3, 4});
  rng.fill_normal(g1.span());
  rng.fill_normal(g2.span());
  ct::Tensor combo = g1;
  combo.axpby(2.0F, -3.0F, g2);  // 2*g1 - 3*g2
  const auto k1 = st.precondition(g1, 0.1);
  const auto k2 = st.precondition(g2, 0.1);
  const auto kc = st.precondition(combo, 0.1);
  for (std::size_t i = 0; i < kc.size(); ++i) {
    EXPECT_NEAR(kc[i], 2.0F * k1[i] - 3.0F * k2[i], 2e-3);
  }
}

// --- collective timing monotonicity sweep ---

class TimingMonotone : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimingMonotone, TimeGrowsWithBytes) {
  cm::Communicator comm(cm::Topology::with_gpus(GetParam()),
                        cm::NetworkModel::platform1());
  double prev_ar = 0.0, prev_ag = 0.0, prev_bc = 0.0;
  for (std::size_t b = 1 << 12; b <= (1UL << 26); b <<= 2) {
    const double ar = comm.allreduce_time(b);
    const double ag = comm.allgather_time(b);
    const double bc = comm.pipelined_broadcast_time(b);
    EXPECT_GE(ar, prev_ar);
    EXPECT_GE(ag, prev_ag);
    EXPECT_GE(bc, prev_bc);
    prev_ar = ar;
    prev_ag = ag;
    prev_bc = bc;
  }
}

TEST_P(TimingMonotone, AllgathervMatchesEqualChunks) {
  const std::size_t world = GetParam();
  if (world < 2) GTEST_SKIP();
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  std::vector<std::size_t> equal(world, 1 << 20);
  EXPECT_NEAR(comm.allgatherv_time(equal) / comm.allgather_time(1 << 20),
              1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Worlds, TimingMonotone,
                         ::testing::Values(1, 4, 16, 64, 256));

// --- filter + quantizer composition invariant ---

class FilterComposition : public ::testing::TestWithParam<double> {};

TEST_P(FilterComposition, CompsoErrorNeverExceedsCombinedBound) {
  const double eb = GetParam();
  ct::Rng rng(static_cast<std::uint64_t>(eb * 1e7));
  const auto data =
      ct::synthetic_gradient(40000, ct::GradientProfile::kfac(), rng);
  cp::CompsoParams p;
  p.filter_bound = eb;
  p.quant_bound = eb;
  const auto compso = cp::make_compso(p);
  const auto rec = compso->decompress(compso->compress(data, rng));
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  // Filtered values err by < eb*absmax; survivors by < 2*eb*absmax (SR).
  EXPECT_LE(ct::max_abs_error(data, rec), 2.0 * eb * abs_max * (1 + 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Bounds, FilterComposition,
                         ::testing::Values(1e-1, 1e-2, 4e-3, 1e-3, 1e-4));

}  // namespace
