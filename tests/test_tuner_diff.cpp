// Differential test of the §4.4 tuner: brute-force Eq. 5 over every
// registered codec and every aggregation candidate with an independent
// reimplementation of the selection math, and assert CompsoFramework::
// tune() picked the arg-max on both network platforms.
//
// Tie-breaks under test:
//  - encoder: tune() takes the front of the scores sorted by
//    est_total_time; exact ties are unordered among themselves, so the
//    assertion is by value (the selected encoder's time equals the
//    brute-force minimum);
//  - aggregation: choose_aggregation_factor keeps a candidate only on a
//    strictly greater estimate, so exact ties resolve to the smallest m —
//    asserted directly with a degenerate all-tie input.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

namespace cc = compso::core;
namespace cm = compso::comm;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace codec = compso::codec;
namespace perf = compso::perf;
namespace quant = compso::quant;

namespace {

/// Rebuilds the exact lossy-stage byte stream tune() scores encoders on:
/// stage-0 filter + error-bounded quantization + packed codes + bitmap,
/// consuming the same Rng draws tune() consumes.
std::vector<std::uint8_t> lossy_stream_like_tune(
    const cc::AdaptiveSchedule& sched, std::span<const float> grad,
    ct::Rng& rng) {
  const auto stage0 = sched.at(0);
  const double abs_max = ct::extrema(grad).abs_max;
  const auto filt = quant::apply_filter(grad, stage0.filter_bound, abs_max);
  const quant::ErrorBoundedQuantizer q(stage0.quant_bound,
                                       quant::RoundingMode::kStochastic);
  const auto block = q.quantize(filt.survivors, rng, abs_max);
  auto stream = quant::pack_codes(block.codes, block.bit_width);
  stream.insert(stream.end(), filt.bitmap.begin(), filt.bitmap.end());
  return stream;
}

/// Independent Eq. 5 estimate for aggregation factor m: group consecutive
/// layers into chunks of m, per chunk s = t_orig / (t_comp_comm +
/// t_compress + t_decompress), end-to-end ((1-r) + r/s)^-1.
double brute_force_e2e(std::size_t m,
                       const std::vector<std::size_t>& layer_bytes,
                       const perf::WarmupProfile& profile,
                       const cp::GradientCompressor& compressor,
                       const compso::gpusim::DeviceModel& dev,
                       const perf::CommLookupTable& table) {
  double t_orig = 0.0, t_new = 0.0;
  for (std::size_t i = 0; i < layer_bytes.size(); i += m) {
    std::size_t chunk = 0;
    for (std::size_t j = i; j < std::min(i + m, layer_bytes.size()); ++j) {
      chunk += layer_bytes[j];
    }
    if (chunk == 0) continue;
    const auto comp_chunk = static_cast<std::size_t>(
        static_cast<double>(chunk) / std::max(profile.compression_ratio, 1.0));
    t_orig += table.allgather_time(chunk);
    const double comp_tput =
        compressor.modeled_throughput(dev, chunk, comp_chunk);
    const double decomp_tput =
        compressor.modeled_throughput(dev, comp_chunk, chunk);
    t_new += table.allgather_time(comp_chunk) +
             static_cast<double>(chunk) / comp_tput +
             static_cast<double>(comp_chunk) / decomp_tput;
  }
  const double s = t_new > 0.0 ? t_orig / t_new : 1.0;
  return perf::end_to_end_speedup(profile.comm_fraction, s);
}

void check_tuner_against_brute_force(const cm::NetworkModel& net) {
  cm::Communicator comm(cm::Topology::with_gpus(16), net);
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::CompsoFramework fw({}, lr, 100, comm);

  ct::Rng grad_rng(8);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), grad_rng);
  // Mixed layer sizes so aggregation actually changes chunk shapes.
  std::vector<std::size_t> layer_bytes;
  for (std::size_t i = 0; i < 24; ++i) {
    layer_bytes.push_back((i % 3 == 0) ? (1 << 20) : (1 << 14));
  }

  ct::Rng tune_rng(2026), ref_rng(2026);
  fw.tune(layer_bytes, grad, 0.4, tune_rng);

  // --- encoder: brute-force every registered codec individually ---
  const auto stream = lossy_stream_like_tune(fw.schedule(), grad, ref_rng);
  const perf::CommLookupTable table(comm);  // framework's default sampling
  const auto dev = compso::gpusim::DeviceModel::a100();
  double best_time = std::numeric_limits<double>::infinity();
  for (codec::CodecKind kind : codec::kAllCodecKinds) {
    const auto scores = perf::score_encoders(
        stream, dev, table, std::span<const codec::CodecKind>(&kind, 1));
    ASSERT_EQ(scores.size(), 1U);
    best_time = std::min(best_time, scores.front().est_total_time);
  }
  ASSERT_FALSE(fw.encoder_scores().empty());
  EXPECT_EQ(fw.encoder(), fw.encoder_scores().front().kind);
  EXPECT_DOUBLE_EQ(fw.encoder_scores().front().est_total_time, best_time);
  for (std::size_t i = 1; i < fw.encoder_scores().size(); ++i) {
    EXPECT_LE(fw.encoder_scores()[i - 1].est_total_time,
              fw.encoder_scores()[i].est_total_time);
  }

  // --- aggregation: brute-force Eq. 5 over every candidate m ---
  const auto& profile = fw.warmup_profile();
  EXPECT_GT(profile.iterations, 0U);
  const auto compressor =
      cp::make_compso(fw.schedule().params_at(0, fw.encoder()));
  double best_e2e = 0.0;
  std::size_t best_m = 1;
  for (std::size_t m : cc::CompsoFramework::aggregation_candidates()) {
    const double e2e =
        brute_force_e2e(m, layer_bytes, profile, *compressor, dev, table);
    if (e2e > best_e2e) {  // strict >: ties keep the smallest factor.
      best_e2e = e2e;
      best_m = m;
    }
  }
  EXPECT_EQ(fw.aggregation(), best_m);
  EXPECT_DOUBLE_EQ(fw.estimated_end_to_end(), best_e2e);
  EXPECT_GT(best_e2e, 1.0);

  // --- family: brute-force Eq. 5 over the widened compressor pool ---
  // tune()'s family stage derives each candidate's Rng by splitting the
  // main generator (kFamilyRngStream + i) without drawing from it, and
  // the aggregation stage before it is draw-free too — so the post-tune
  // tune_rng state is exactly the state those splits came from, and the
  // reference replays the identical streams.
  const auto pool = cc::CompsoFramework::family_candidates(
      fw.schedule().params_at(0, fw.encoder()));
  ASSERT_EQ(fw.family_scores().size(), pool.size());
  std::size_t best_family = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ct::Rng fam_rng =
        tune_rng.split(cc::CompsoFramework::kFamilyRngStream + i);
    const perf::FamilyScore ref = perf::score_family(
        *pool[i].compressor, grad, 0.4, dev, table, fam_rng);
    const auto& got = fw.family_scores()[i];
    EXPECT_EQ(got.name, pool[i].name);
    EXPECT_DOUBLE_EQ(got.compression_ratio, ref.compression_ratio) << got.name;
    EXPECT_DOUBLE_EQ(got.est_comm_speedup, ref.est_comm_speedup) << got.name;
    EXPECT_DOUBLE_EQ(got.est_end_to_end, ref.est_end_to_end) << got.name;
    // Strict >: exact ties keep the earliest candidate (COMPSO is first).
    if (ref.est_end_to_end >
        fw.family_scores()[best_family].est_end_to_end) {
      best_family = i;
    }
  }
  EXPECT_EQ(fw.selected_family(), pool[best_family].name);
}

TEST(TunerDiff, MatchesBruteForceOnPlatform1) {
  check_tuner_against_brute_force(cm::NetworkModel::platform1());
}

TEST(TunerDiff, MatchesBruteForceOnPlatform2) {
  check_tuner_against_brute_force(cm::NetworkModel::platform2());
}

TEST(TunerDiff, AggregationTieBreaksToSmallestFactor) {
  // With no layers every candidate estimates the identical end-to-end
  // speedup; the strict-> argmax must keep the first (smallest) factor.
  cm::Communicator comm(cm::Topology::with_gpus(8),
                        cm::NetworkModel::platform1());
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::CompsoFramework fw({}, lr, 100, comm);
  ct::Rng rng(9);
  const auto grad =
      ct::synthetic_gradient(1 << 12, ct::GradientProfile::kfac(), rng);
  fw.tune({}, grad, 0.4, rng);
  EXPECT_EQ(fw.aggregation(), 1U);
}

TEST(TunerDiff, CandidateListMatchesPaper) {
  const auto& c = cc::CompsoFramework::aggregation_candidates();
  EXPECT_EQ(c, (std::vector<std::size_t>{1, 2, 4, 8, 16, 32}));
}

TEST(TunerDiff, FamilyPoolIsOrderedForFirstWinsTieBreak) {
  // The pool order is part of the tie-break contract: selection uses
  // strict >, so an exact tie resolves to the earliest entry, and COMPSO
  // leads the pool. EF variants sit right after their inner compressor —
  // the EF wrapper adds a memory pass, so on an exact model tie the plain
  // variant wins, never the wrapper.
  const auto pool = cc::CompsoFramework::family_candidates({});
  std::vector<std::string> names;
  names.reserve(pool.size());
  for (const auto& cand : pool) names.push_back(cand.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "COMPSO", "EF+COMPSO", "TopK", "EF+TopK",
                       "CocktailSGD", "EF+CocktailSGD", "CountSketch",
                       "RandProj"}));
  for (const auto& cand : pool) {
    ASSERT_NE(cand.compressor, nullptr) << cand.name;
  }
}

}  // namespace
