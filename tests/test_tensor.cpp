// Unit tests for the tensor/linalg substrate.

#include "src/tensor/eigen.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/rng.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"
#include "src/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ct = compso::tensor;

namespace {

TEST(Tensor, ZeroConstruction) {
  ct::Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12U);
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 4U);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0F);
}

TEST(Tensor, EyeAndAt) {
  const ct::Tensor i3 = ct::Tensor::eye(3);
  EXPECT_EQ(i3.at(0, 0), 1.0F);
  EXPECT_EQ(i3.at(0, 1), 0.0F);
  EXPECT_EQ(i3.at(2, 2), 1.0F);
}

TEST(Tensor, ReshapePreservesData) {
  ct::Tensor t({2, 6});
  t.at(1, 2) = 5.0F;
  t.reshape({3, 4});
  EXPECT_EQ(t.at(2, 0), 5.0F);  // flat index 8
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  ct::Tensor a = ct::Tensor::full({4}, 2.0F);
  ct::Tensor b = ct::Tensor::full({4}, 3.0F);
  a += b;
  EXPECT_EQ(a[0], 5.0F);
  a -= b;
  EXPECT_EQ(a[0], 2.0F);
  a *= 2.0F;
  EXPECT_EQ(a[0], 4.0F);
  a.axpby(0.5F, 2.0F, b);
  EXPECT_EQ(a[0], 8.0F);
  ct::Tensor c({3});
  EXPECT_THROW(a += c, std::invalid_argument);
}

TEST(MatrixOps, GemmKnownResult) {
  ct::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  ct::Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const ct::Tensor c = ct::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0F);
}

TEST(MatrixOps, GemmTnMatchesExplicitTranspose) {
  ct::Rng rng(1);
  ct::Tensor a({5, 3});
  ct::Tensor b({5, 4});
  rng.fill_normal(a.span());
  rng.fill_normal(b.span());
  ct::Tensor c1, c2;
  ct::gemm_tn(a, b, c1);
  ct::gemm(ct::transpose(a), b, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(MatrixOps, GemmNtMatchesExplicitTranspose) {
  ct::Rng rng(2);
  ct::Tensor a({4, 3});
  ct::Tensor b({6, 3});
  rng.fill_normal(a.span());
  rng.fill_normal(b.span());
  ct::Tensor c1, c2;
  ct::gemm_nt(a, b, c1);
  ct::gemm(a, ct::transpose(b), c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(MatrixOps, SyrkMatchesGemm) {
  ct::Rng rng(3);
  ct::Tensor a({7, 4});
  rng.fill_normal(a.span());
  ct::Tensor c1;
  ct::syrk_tn(a, 1.0F, 0.0F, c1);
  ct::Tensor c2;
  ct::gemm_tn(a, a, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(MatrixOps, SyrkRunningAverage) {
  // The beta-blend used for KFAC's running-average factors.
  ct::Rng rng(4);
  ct::Tensor a({5, 3});
  rng.fill_normal(a.span());
  ct::Tensor c({3, 3});
  c.fill(1.0F);
  ct::syrk_tn(a, 0.1F, 0.9F, c);
  ct::Tensor ref;
  ct::gemm_tn(a, a, ref);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], 0.9F + 0.1F * ref[i], 1e-4);
  }
}

TEST(MatrixOps, Gemv) {
  ct::Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  std::vector<float> x{1, 1, 1};
  std::vector<float> y(2);
  ct::gemv(a, x, y);
  EXPECT_FLOAT_EQ(y[0], 6.0F);
  EXPECT_FLOAT_EQ(y[1], 15.0F);
}

TEST(MatrixOps, AddDiagonal) {
  ct::Tensor a = ct::Tensor::zeros({3, 3});
  ct::add_diagonal(a, 2.5F);
  EXPECT_FLOAT_EQ(a.at(1, 1), 2.5F);
  EXPECT_FLOAT_EQ(a.at(0, 1), 0.0F);
}

TEST(Eigen, DiagonalMatrix) {
  ct::Tensor d = ct::Tensor::zeros({3, 3});
  d.at(0, 0) = 3.0F;
  d.at(1, 1) = 1.0F;
  d.at(2, 2) = 2.0F;
  const auto e = ct::eigh(d);
  ASSERT_EQ(e.eigenvalues.size(), 3U);
  EXPECT_NEAR(e.eigenvalues[0], 1.0F, 1e-6);
  EXPECT_NEAR(e.eigenvalues[1], 2.0F, 1e-6);
  EXPECT_NEAR(e.eigenvalues[2], 3.0F, 1e-6);
}

class EigenProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenProperty, ReconstructionAndOrthogonality) {
  const std::size_t n = GetParam();
  ct::Rng rng(100 + n);
  // Random SPD-ish symmetric matrix: B^T B + small diagonal.
  ct::Tensor b({n, n});
  rng.fill_normal(b.span());
  ct::Tensor m;
  ct::gemm_tn(b, b, m);
  ct::add_diagonal(m, 0.1F);

  const auto e = ct::eigh(m);
  const ct::Tensor rec = ct::eigen_reconstruct(e);
  double max_err = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    max_err = std::max(max_err, std::fabs(static_cast<double>(m[i]) - rec[i]));
  }
  const double scale = ct::extrema(m.span()).abs_max;
  EXPECT_LT(max_err, 1e-4 * std::max(scale, 1.0)) << "n=" << n;

  // Q^T Q = I.
  ct::Tensor qtq;
  ct::gemm_tn(e.eigenvectors, e.eigenvectors, qtq);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(qtq.at(i, j), i == j ? 1.0F : 0.0F, 1e-5);
    }
  }
  // SPD input => positive eigenvalues, ascending order.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(e.eigenvalues[i], 0.0F);
    if (i > 0) {
      EXPECT_GE(e.eigenvalues[i], e.eigenvalues[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenProperty,
                         ::testing::Values(1, 2, 3, 8, 17, 33, 64));

TEST(Rng, DeterministicFromSeed) {
  ct::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitIndependence) {
  ct::Rng base(42);
  ct::Rng c1 = base.split(1);
  ct::Rng c2 = base.split(2);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, UniformRange) {
  ct::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0F);
    EXPECT_LT(u, 1.0F);
  }
}

TEST(Rng, NormalMoments) {
  ct::Rng rng(8);
  std::vector<float> v(200000);
  rng.fill_normal(v);
  EXPECT_NEAR(ct::mean(v), 0.0, 0.01);
  EXPECT_NEAR(ct::variance(v), 1.0, 0.02);
}

TEST(Rng, LaplaceVariance) {
  ct::Rng rng(9);
  std::vector<float> v(200000);
  const float b = 0.5F;
  for (auto& x : v) x = rng.laplace(b);
  // Var(Laplace(0, b)) = 2 b^2.
  EXPECT_NEAR(ct::variance(v), 2.0 * b * b, 0.02);
}

TEST(Rng, UniformIndexInRange) {
  ct::Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(17), 17U);
  }
}

TEST(Stats, ExtremaAndNorms) {
  std::vector<float> v{-3.0F, 1.0F, 2.0F};
  const auto e = ct::extrema(v);
  EXPECT_EQ(e.min, -3.0F);
  EXPECT_EQ(e.max, 2.0F);
  EXPECT_EQ(e.abs_max, 3.0F);
  EXPECT_NEAR(ct::l2_norm(v), std::sqrt(14.0), 1e-9);
}

TEST(Stats, PsnrLosslessIsHuge) {
  std::vector<float> v{1.0F, 2.0F, 3.0F};
  EXPECT_GT(ct::psnr(v, v), 500.0);
}

TEST(Stats, RmseKnown) {
  std::vector<float> a{0.0F, 0.0F};
  std::vector<float> b{3.0F, 4.0F};
  EXPECT_NEAR(ct::rmse(a, b), std::sqrt(12.5), 1e-9);
}

TEST(Stats, HistogramDensityIntegratesToOne) {
  ct::Rng rng(11);
  std::vector<float> v(50000);
  rng.fill_uniform(v, -1.0F, 1.0F);
  const auto h = ct::histogram(v, -1.0, 1.0, 40);
  double integral = 0.0;
  const double width = 2.0 / 40.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    integral += h.density(i) * width;
  }
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Stats, KurtosisDistinguishesUniformFromTriangular) {
  ct::Rng rng(12);
  std::vector<float> uni(100000), tri(100000);
  rng.fill_uniform(uni, -1.0F, 1.0F);
  for (auto& x : tri) x = rng.uniform(-0.5F, 0.5F) + rng.uniform(-0.5F, 0.5F);
  EXPECT_NEAR(ct::kurtosis(uni), 1.8, 0.05);
  EXPECT_NEAR(ct::kurtosis(tri), 2.4, 0.05);
}

TEST(Synthetic, GradientProfileShapes) {
  ct::Rng rng(13);
  const auto kfac =
      ct::synthetic_gradient(100000, ct::GradientProfile::kfac(), rng);
  const auto sgd =
      ct::synthetic_gradient(100000, ct::GradientProfile::sgd(), rng);
  // KFAC gradients have a wider dynamic range than SGD gradients (§3).
  EXPECT_GT(ct::extrema(kfac).abs_max, ct::extrema(sgd).abs_max);
  // Heavy concentration near zero.
  std::size_t tiny = 0;
  for (float v : kfac) tiny += std::fabs(v) < 1e-3F ? 1 : 0;
  EXPECT_GT(tiny, 40000U);
}

TEST(Synthetic, SmoothDataIsSmooth) {
  ct::Rng rng(14);
  const auto v = ct::synthetic_smooth(10000, rng);
  double total_step = 0.0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    total_step += std::fabs(static_cast<double>(v[i]) - v[i - 1]);
  }
  const double range = ct::extrema(v).max - ct::extrema(v).min;
  // Mean step is far below the range: neighboring values predict well.
  EXPECT_LT(total_step / static_cast<double>(v.size()), range / 50.0);
}

}  // namespace
