// ThreadPool (src/common): work execution, exception propagation through
// futures, parallel_for with caller participation, shutdown semantics
// (drain, idempotence, reject-after), and a stealing smoke test with
// deliberately unbalanced task costs. Run under TSan via ci.sh's
// build-tsan config.

#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <utility>
#include <stdexcept>
#include <thread>
#include <vector>

namespace common = compso::common;

namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4U);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  common::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1U);
  auto f = pool.submit([] {});
  f.get();
}

TEST(ThreadPool, ExceptionRethrowsAtGet) {
  common::ThreadPool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task boom"); });
  EXPECT_NO_THROW(ok.get());
  try {
    bad.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // The pool survives a throwing task.
  auto after = pool.submit([] {});
  EXPECT_NO_THROW(after.get());
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  common::ThreadPool pool(3);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  common::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("index 13");
                                   }
                                 }),
               std::runtime_error);
  // Pool remains usable afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForStaticCoversEveryIndexOnce) {
  for (std::size_t threads : {1UL, 2UL, 5UL}) {
    common::ThreadPool pool(threads);
    for (std::size_t n : {0UL, 1UL, 2UL, 7UL, 1000UL}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for_static(n, [&hits](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "threads=" << threads << " n=" << n << " index " << i;
      }
    }
  }
}

TEST(ThreadPool, ParallelForStaticPartitionIsDeterministic) {
  // The range boundaries depend only on (n, pool size): two runs over the
  // same pool must produce the same contiguous split, ordered, gapless.
  common::ThreadPool pool(3);
  auto collect = [&pool](std::size_t n) {
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    pool.parallel_for_static(n, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(m);
      ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  for (std::size_t n : {5UL, 17UL, 100UL}) {
    const auto first = collect(n);
    EXPECT_EQ(first, collect(n)) << "n=" << n;
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first.front().first, 0U);
    EXPECT_EQ(first.back().second, n);
    for (std::size_t i = 1; i < first.size(); ++i) {
      EXPECT_EQ(first[i].first, first[i - 1].second) << "gap at range " << i;
    }
    EXPECT_LE(first.size(), pool.size() + 1);
  }
}

TEST(ThreadPool, ParallelForStaticPropagatesFirstException) {
  common::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_static(64,
                               [](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i) {
                                   if (i == 40) {
                                     throw std::runtime_error("range boom");
                                   }
                                 }
                               }),
      std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for_static(8, [&ran](std::size_t b, std::size_t e) {
    ran += static_cast<int>(e - b);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForStaticNestedCallRunsInlineOnWorker) {
  // A worker thread re-entering parallel_for_static must not deadlock:
  // the nested call degrades to one serial fn(0, n) on that worker.
  common::ThreadPool pool(2);
  EXPECT_FALSE(common::ThreadPool::on_worker_thread());
  auto fut = pool.submit([&pool] {
    EXPECT_TRUE(common::ThreadPool::on_worker_thread());
    const auto self = std::this_thread::get_id();
    std::atomic<int> calls{0};
    std::atomic<int> covered{0};
    pool.parallel_for_static(37, [&](std::size_t b, std::size_t e) {
      EXPECT_EQ(std::this_thread::get_id(), self);
      ++calls;
      covered += static_cast<int>(e - b);
    });
    EXPECT_EQ(calls.load(), 1);  // one inline fn(0, n).
    EXPECT_EQ(covered.load(), 37);
  });
  fut.get();
}

TEST(ThreadPool, ParallelForStaticAfterShutdownRunsSerially) {
  common::ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> covered{0};
  pool.parallel_for_static(12, [&covered](std::size_t b, std::size_t e) {
    covered += static_cast<int>(e - b);
  });
  EXPECT_EQ(covered.load(), 12);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    common::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      }));
    }
    pool.shutdown();
    EXPECT_EQ(ran.load(), 50);  // nothing abandoned.
    pool.shutdown();            // idempotent.
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  }  // destructor after explicit shutdown is a no-op.
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, DestructorJoinsWithoutExplicitShutdown) {
  std::atomic<int> ran{0};
  {
    common::ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, UnbalancedTasksAllComplete) {
  // One long task pins a worker; the short tasks distributed round-robin
  // onto its deque must still finish (stolen by the idle workers).
  common::ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([&ran] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ++ran;
  }));
  for (int i = 0; i < 40; ++i) {
    futures.push_back(pool.submit([&ran] { ++ran; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 41);
}

TEST(ThreadPool, TasksRunOffTheCallerThread) {
  common::ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  std::mutex m;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&] {
      std::lock_guard<std::mutex> lock(m);
      seen.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(seen.count(caller), 0U);
}

}  // namespace
