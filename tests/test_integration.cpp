// End-to-end integration: the full COMPSO workflow a user would run —
// build the framework, tune it on warm-up gradients, train distributed
// KFAC with the per-iteration compressor it provides, and verify both the
// learning outcome and the communication savings.

#include "src/core/bound_tuner.hpp"
#include "src/core/framework.hpp"
#include "src/core/perf_sim.hpp"
#include "src/core/trainer.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

namespace cc = compso::core;
namespace cm = compso::comm;
namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

TEST(Integration, FrameworkProviderTrainsToBaselineAccuracy) {
  cc::TrainerConfig cfg;
  cfg.noise = 1.1F;
  cfg.classes = 8;
  cfg.hidden = 24;
  const std::size_t iters = 80;
  const compso::optim::StepLr lr(0.01, 0.1, {50});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.1;
  kc.aggregation = 4;

  cm::Communicator comm(cm::Topology::with_gpus(cfg.world),
                        cm::NetworkModel::platform1());
  cc::CompsoFramework framework({}, lr, iters, comm);
  ct::Rng rng(5);
  const auto warmup = ct::synthetic_gradient(
      1 << 15, ct::GradientProfile::kfac(), rng);
  framework.tune({1 << 14, 1 << 14, 1 << 14}, warmup, 0.4, rng);

  cc::ClusterTrainer trainer(cfg);
  const auto base = trainer.train_kfac(iters, lr, nullptr, kc);
  const auto compressed =
      trainer.train_kfac(iters, lr, framework.provider(), kc);
  EXPECT_GT(compressed.final_accuracy, base.final_accuracy - 0.04);
  EXPECT_GT(compressed.avg_compression_ratio, 2.0);
}

TEST(Integration, TunedBoundsFeedTheCompressor) {
  // tune_bounds -> CompsoParams -> training: the auto-tuned configuration
  // must behave like a hand-tuned one.
  ct::Rng rng(6);
  const auto sample = ct::synthetic_gradient(
      1 << 15, ct::GradientProfile::kfac(), rng);
  cc::BoundTunerConfig tuner_cfg;
  tuner_cfg.max_relative_l2 = 0.10;
  tuner_cfg.max_cosine_distortion = 0.01;
  const auto tuned = cc::tune_bounds(sample, tuner_cfg, rng);

  cp::CompsoParams params;
  params.filter_bound = tuned.filter_bound;
  params.quant_bound = tuned.quant_bound;
  const auto compressor = cp::make_compso(params);

  cc::TrainerConfig cfg;
  cfg.noise = 1.1F;
  const compso::optim::StepLr lr(0.01, 0.1, {50});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.1;
  cc::ClusterTrainer trainer(cfg);
  const auto result = trainer.train_kfac(
      80, lr, [&](std::size_t) { return compressor.get(); }, kc);
  EXPECT_GT(result.final_accuracy, 0.9);
}

TEST(Integration, PerfModelDecisionMatchesSimulatorOptimum) {
  // The §4.4 decision pipeline end-to-end: the aggregation factor chosen
  // by the perf model should realize an end-to-end speedup within a few
  // percent of the best factor the simulator can find by sweeping.
  const auto shape = compso::nn::resnet50_shape();
  cc::PerfConfig pcfg;
  pcfg.model = shape;
  pcfg.topo = cm::Topology{.nodes = 16, .gpus_per_node = 4};
  const cc::PerfSimulator sim(pcfg);
  const auto compso = cp::make_compso({});

  double best = 0.0;
  for (std::size_t m : {1UL, 2UL, 4UL, 8UL, 16UL, 32UL}) {
    best = std::max(best,
                    sim.with_compressor(*compso, m).end_to_end_speedup);
  }

  const cm::Communicator comm(pcfg.topo, pcfg.net);
  const compso::perf::CommLookupTable table(comm);
  ct::Rng rng(7);
  const auto sample = ct::synthetic_gradient(
      1 << 16, ct::GradientProfile::kfac(), rng);
  compso::perf::OnlineProfiler profiler;
  const auto payload = compso->compress(sample, rng);
  const std::size_t in_bytes = sample.size() * sizeof(float);
  profiler.record(in_bytes, payload.size(), 1e-4, 1e-4,
                  sim.baseline().allgather_s, sim.baseline().total_s());
  const auto decision = compso::perf::choose_aggregation_factor(
      sim.layer_bytes(), profiler.finish(), *compso, pcfg.dev, table);
  const double realized =
      sim.with_compressor(*compso, decision.factor).end_to_end_speedup;
  EXPECT_GT(realized, best * 0.95);
}

TEST(Integration, BreakdownTotalsAreConsistent) {
  // Compressed-iteration breakdown components must sum to total_s and the
  // non-comm components must be identical to the baseline's.
  const auto shape = compso::nn::bert_large_shape();
  cc::PerfConfig pcfg;
  pcfg.model = shape;
  pcfg.batch_per_gpu = 1;
  const cc::PerfSimulator sim(pcfg);
  const auto compso = cp::make_compso({});
  const auto r = sim.with_compressor(*compso, 4);
  const auto& b = r.breakdown;
  EXPECT_NEAR(b.total_s(),
              b.allgather_s + b.allreduce_s + b.kfac_compute_s +
                  b.forward_backward_s + b.others_s + b.comp_s + b.decomp_s,
              1e-12);
  EXPECT_DOUBLE_EQ(b.forward_backward_s,
                   sim.baseline().forward_backward_s);
  EXPECT_DOUBLE_EQ(b.kfac_compute_s, sim.baseline().kfac_compute_s);
  EXPECT_LT(b.allgather_s, sim.baseline().allgather_s);
  EXPECT_GT(b.comp_s, 0.0);
  EXPECT_GT(b.decomp_s, 0.0);
}

TEST(Integration, SpanTrainerSgdAndKfacBothLearn) {
  cc::SpanTrainerConfig cfg;
  cfg.noise = 0.6F;
  cc::SpanTrainer trainer(cfg);
  const compso::optim::StepLr klr(0.02, 0.1, {80});
  const compso::optim::StepLr slr(0.05, 0.1, {120});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.05;
  const auto kfac = trainer.train_kfac(100, klr, nullptr, kc);
  const auto sgd = trainer.train_sgd(150, slr, nullptr);
  EXPECT_GT(kfac.metrics.f1, 70.0);
  EXPECT_GT(sgd.metrics.f1, 70.0);
}

}  // namespace
