// Elastic membership: heartbeat liveness, the straggler-degradation ladder,
// and rank rejoin with checkpoint-sourced re-sync (DESIGN.md §14).
//
// Two levels of coverage:
//  - Membership unit tests drive tick() directly with hand-built clocks to
//    pin the ladder mechanics (miss counting, suspicion threshold, probe
//    backoff spacing, straggle strikes, serialize round-trip).
//  - Trainer-level tests run the whole pipeline through FaultPlan events
//    and assert the end-to-end contracts: detection happens only through
//    heartbeats, a redeemed / readmitted rank re-enters bit-identical to a
//    survivor, and a checkpoint taken mid-rejoin resumes exactly.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace wire = compso::codec::wire;

namespace {

core::FtTrainerConfig small_config(std::size_t engine_threads = 0) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 10,
              .classes = 3,
              .hidden = 10,
              .depth = 2,
              .noise = 0.6F,
              .seed = 321};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 4;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 30;
  cfg.engine_threads = engine_threads;
  return cfg;
}

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// --- Membership unit level -------------------------------------------------

TEST(MembershipUnit, SilenceWalksSuspicionAndExponentialProbeBackoff) {
  cm::Membership m(4);
  const std::vector<std::uint8_t> active(4, 1);
  std::vector<double> clocks(4, 0.0);

  // Heartbeats from rank 1 are lost for iterations [1, 6) while the rank
  // keeps computing (control-plane partition).
  m.silence(1, 1, 5);

  // t=1: first miss. One missed beat alone does not exclude — the rank is
  // still computing, still inside the deadline, so it participates.
  auto d = m.tick(1, clocks, active);
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.participating[1], 1);
  EXPECT_TRUE(d.suspected.empty());
  EXPECT_EQ(m.phase(1), cm::RankPhase::kHealthy);

  // t=2: second consecutive miss hits suspect_after_misses — the rank is
  // suspected and sits out without charging anyone a deadline wait.
  d = m.tick(2, clocks, active);
  ASSERT_EQ(d.suspected.size(), 1U);
  EXPECT_EQ(d.suspected[0], 1U);
  EXPECT_EQ(d.participating[1], 0);
  EXPECT_EQ(d.waited_for, 0U);
  EXPECT_EQ(m.phase(1), cm::RankPhase::kSuspect);

  // t=3: first probe (probe_backoff_initial = 1 after suspicion) fails;
  // no eviction yet (evict_after_probes = 2).
  d = m.tick(3, clocks, active);
  EXPECT_TRUE(d.evicted.empty());

  // t=4: inside the widened backoff window (interval doubled to 2) —
  // no probe fires, so nothing can advance the ladder.
  d = m.tick(4, clocks, active);
  EXPECT_TRUE(d.evicted.empty());

  // t=5: second probe fails -> evict. Exactly exponential spacing: probes
  // at t=3 and t=5, never t=4.
  d = m.tick(5, clocks, active);
  ASSERT_EQ(d.evicted.size(), 1U);
  EXPECT_EQ(d.evicted[0], 1U);
  // The tick only *decides*; the Communicator applies the mask flip.
  m.mark_evicted(1);
  EXPECT_EQ(m.phase(1), cm::RankPhase::kEvicted);

  // t=6: the silence expires and the evicted rank heartbeats again — the
  // tick reports it for readmission (the Communicator applies it).
  std::vector<std::uint8_t> without = active;
  without[1] = 0;
  d = m.tick(6, clocks, without);
  ASSERT_EQ(d.readmitted.size(), 1U);
  EXPECT_EQ(d.readmitted[0], 1U);

  // Apply the readmission the way Communicator::readmit_at does, with t=6
  // as the resync step; the next tick promotes the rank back to healthy.
  m.mark_rejoining(1, 6);
  d = m.tick(7, clocks, active);
  EXPECT_EQ(m.phase(1), cm::RankPhase::kHealthy);
  EXPECT_EQ(d.participating[1], 1);
}

TEST(MembershipUnit, ConsecutiveDeadlineExclusionsSuspectAStraggler) {
  cm::Membership m(3);
  const std::vector<std::uint8_t> active(3, 1);
  // Rank 2 heartbeats fine but its clock is hopelessly behind the group's
  // arrival window (far past straggler_deadline_s = 8).
  std::vector<double> clocks = {0.0, 0.0, 100.0};

  // Strikes 1 and 2: excluded (continue-without), participants wait the
  // deadline once per step, but no suspicion yet.
  for (std::size_t t = 1; t <= 2; ++t) {
    const auto d = m.tick(t, clocks, active);
    EXPECT_EQ(d.participating[2], 0) << t;
    EXPECT_EQ(d.waited_for, 1U) << t;
    EXPECT_TRUE(d.suspected.empty()) << t;
    EXPECT_EQ(m.phase(2), cm::RankPhase::kHealthy) << t;
  }

  // Strike 3 hits straggle_suspect_after: the rank is suspected and nobody
  // waits for it any more.
  auto d = m.tick(3, clocks, active);
  ASSERT_EQ(d.suspected.size(), 1U);
  EXPECT_EQ(d.suspected[0], 2U);
  EXPECT_EQ(m.phase(2), cm::RankPhase::kSuspect);

  // The straggler catches up: heartbeat + within deadline redeems it into
  // the rejoin ladder (it missed steps, so its replica is stale and must
  // re-sync — never a silent re-entry).
  clocks[2] = 0.5;
  d = m.tick(4, clocks, active);
  ASSERT_EQ(d.redeemed.size(), 1U);
  EXPECT_EQ(d.redeemed[0], 2U);
  EXPECT_EQ(m.phase(2), cm::RankPhase::kRejoining);
  EXPECT_EQ(d.participating[2], 0);

  d = m.tick(5, clocks, active);
  EXPECT_EQ(m.phase(2), cm::RankPhase::kHealthy);
  EXPECT_EQ(d.participating[2], 1);
}

TEST(MembershipUnit, SerializeRoundTripsMidLadderAndRejectsDamage) {
  cm::Membership m(4);
  const std::vector<std::uint8_t> active(4, 1);
  std::vector<double> clocks(4, 0.0);
  m.set_alive(3, false);
  m.tick(1, clocks, active);
  m.tick(2, clocks, active);  // rank 3 now kSuspect with a probe scheduled.
  m.mark_rejoining(2, 2);     // and rank 2 frozen mid-rejoin.

  std::vector<std::uint8_t> body;
  m.serialize(body);

  cm::Membership copy(4);
  wire::Reader reader{wire::ByteView(body)};
  copy.deserialize(reader);
  EXPECT_EQ(copy.phase(3), cm::RankPhase::kSuspect);
  EXPECT_EQ(copy.phase(2), cm::RankPhase::kRejoining);
  EXPECT_EQ(copy.misses(3), m.misses(3));

  // Round-trip exactness: re-serializing the copy yields identical bytes.
  std::vector<std::uint8_t> body2;
  copy.serialize(body2);
  EXPECT_EQ(body, body2);

  // World-size mismatch is a typed error, not a silent partial read.
  cm::Membership wrong_world(3);
  wire::Reader r2{wire::ByteView(body)};
  EXPECT_THROW(wrong_world.deserialize(r2), compso::PayloadError);

  // A phase byte outside the enum is rejected. Layout: u64 count, then
  // per-rank records starting with the phase byte.
  std::vector<std::uint8_t> damaged = body;
  damaged[8] = 7;
  cm::Membership victim(4);
  wire::Reader r3{wire::ByteView(damaged)};
  EXPECT_THROW(victim.deserialize(r3), compso::PayloadError);
}

// --- Trainer level ---------------------------------------------------------

TEST(MembershipTrainer, ShortSilenceIsInvisibleToTraining) {
  // One lost heartbeat stays below the suspicion threshold: the silenced
  // rank keeps participating and the trajectory is bit-identical to clean.
  core::FaultTolerantTrainer clean(small_config());
  clean.run(10);

  core::FaultTolerantTrainer silenced(small_config());
  silenced.set_fault_plan(cm::FaultPlan{}.silence(4, 2, 1), 7);
  silenced.run(10);

  const auto& rc = silenced.comm().recovery();
  EXPECT_EQ(rc.heartbeat_misses, 1U);
  EXPECT_EQ(rc.suspicions, 0U);
  EXPECT_EQ(rc.deadline_waits, 0U);
  EXPECT_EQ(rc.evictions, 0U);
  EXPECT_TRUE(bit_equal(clean.parameters(), silenced.parameters()));
}

TEST(MembershipTrainer, LongSilenceSuspectsThenRedeemsWithResync) {
  // Heartbeats lost for iterations [4, 7): a miss at 4 (still within the
  // suspicion budget, so the rank keeps training), a second miss at 5 that
  // makes it a suspect, a failed probe at 6, redemption into the rejoin
  // ladder when the beat returns at 7, healthy again at 8 — never evicted.
  core::FaultTolerantTrainer trainer(small_config());
  trainer.set_fault_plan(cm::FaultPlan{}.silence(4, 2, 3), 7);
  trainer.run(12);

  const auto& rc = trainer.comm().recovery();
  EXPECT_EQ(rc.heartbeat_misses, 2U);
  EXPECT_EQ(rc.suspicions, 1U);
  EXPECT_EQ(rc.evictions, 0U);
  EXPECT_EQ(rc.readmissions, 0U);
  EXPECT_GE(rc.resyncs, 1U);
  EXPECT_EQ(trainer.comm().membership().phase(2), cm::RankPhase::kHealthy);
  EXPECT_TRUE(trainer.comm().is_participating(2));
  // The redeemed rank's replica was re-synced from a survivor: bit-equal.
  EXPECT_TRUE(bit_equal(trainer.parameters(), trainer.replica_parameters(2)));
}

TEST(MembershipTrainer, StragglerPastDeadlineIsExcludedThenResynced) {
  // A 12 s hiccup blows through the 8 s barrier deadline: participants
  // wait the full deadline once, continue without the rank, and pull it
  // back through the rejoin ladder the next step (stale replicas never
  // silently re-enter). Heartbeats stayed fine throughout, so the
  // suspicion ladder must not fire.
  core::FaultTolerantTrainer trainer(small_config());
  trainer.set_fault_plan(cm::FaultPlan{}.straggler(5, 2, 12.0), 7);
  trainer.run(10);

  const auto& rc = trainer.comm().recovery();
  EXPECT_EQ(rc.deadline_waits, 1U);
  EXPECT_EQ(rc.deadline_exclusions, 1U);
  EXPECT_EQ(rc.heartbeat_misses, 0U);
  EXPECT_EQ(rc.suspicions, 0U);
  EXPECT_EQ(rc.evictions, 0U);
  EXPECT_GE(rc.resyncs, 1U);
  EXPECT_EQ(trainer.comm().membership().phase(2), cm::RankPhase::kHealthy);
  EXPECT_TRUE(bit_equal(trainer.parameters(), trainer.replica_parameters(2)));
}

std::vector<float> crash_recover_params(std::size_t engine_threads) {
  core::FaultTolerantTrainer trainer(small_config(engine_threads));
  trainer.set_fault_plan(cm::FaultPlan{}.crash(3, 1).recover(8, 1), 7);
  trainer.run(14);
  EXPECT_EQ(trainer.comm().recovery().evictions, 1U);
  EXPECT_EQ(trainer.comm().recovery().readmissions, 1U);
  EXPECT_GE(trainer.comm().recovery().resyncs, 1U);
  EXPECT_TRUE(trainer.comm().is_active(1));
  EXPECT_EQ(trainer.comm().membership().phase(1), cm::RankPhase::kHealthy);
  // The readmitted rank trained on from a survivor's exact state.
  EXPECT_TRUE(bit_equal(trainer.parameters(), trainer.replica_parameters(1)));
  return trainer.parameters();
}

TEST(MembershipTrainer, CrashEvictRecoverReadmitsBitExactly) {
  // crash@3 walks the heartbeat ladder to eviction at 7; recover@8 brings
  // the heartbeats back, the rank is readmitted into the rejoin step at 8
  // and participates from 9. The whole cycle is bit-deterministic across
  // engine thread counts.
  const auto one = crash_recover_params(1);
  const auto two = crash_recover_params(2);
  const auto eight = crash_recover_params(8);
  EXPECT_TRUE(bit_equal(one, two));
  EXPECT_TRUE(bit_equal(one, eight));
}

TEST(MembershipTrainer, SaveResumeMidRejoinIsBitExact) {
  const auto plan = cm::FaultPlan{}.crash(3, 1).recover(8, 1);

  // Uninterrupted reference.
  core::FaultTolerantTrainer a(small_config());
  a.set_fault_plan(plan, 7);
  a.run(14);

  // Interrupted run: checkpoint right after the resync step (iteration 8),
  // while rank 1 is still frozen in kRejoining — the nastiest split point.
  core::FaultTolerantTrainer b(small_config());
  b.set_fault_plan(plan, 7);
  b.run(9);
  ASSERT_EQ(b.comm().membership().phase(1), cm::RankPhase::kRejoining);
  const auto frame = b.checkpoint();

  core::FaultTolerantTrainer c(small_config());
  c.restore(frame);
  c.set_fault_plan(plan, 7);
  ASSERT_EQ(c.iteration(), 9U);
  ASSERT_EQ(c.comm().membership().phase(1), cm::RankPhase::kRejoining);
  c.run(5);

  EXPECT_EQ(c.comm().membership().phase(1), cm::RankPhase::kHealthy);
  EXPECT_TRUE(bit_equal(a.parameters(), c.parameters()));
  EXPECT_TRUE(bit_equal(a.replica_parameters(1), c.replica_parameters(1)));
}

TEST(MembershipTrainer, SetActiveMaskValidatesAndRoutesThroughMembership) {
  core::FaultTolerantTrainer trainer(small_config());
  trainer.run(2);
  auto& comm = trainer.comm();

  // Wrong world size and an empty group are rejected loudly.
  EXPECT_THROW(comm.set_active_mask({1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(comm.set_active_mask({0, 0, 0, 0}), std::invalid_argument);

  // A 1->0 edge is an eviction, a 0->1 edge a readmission — both visible
  // in the membership ledger and the recovery counters, never a silent
  // mask flip.
  const auto evictions_before = comm.recovery().evictions;
  comm.set_active_mask({1, 1, 0, 1});
  EXPECT_EQ(comm.recovery().evictions, evictions_before + 1);
  EXPECT_EQ(comm.membership().phase(2), cm::RankPhase::kEvicted);
  EXPECT_FALSE(comm.is_participating(2));

  const auto readmissions_before = comm.recovery().readmissions;
  comm.set_active_mask({1, 1, 1, 1});
  EXPECT_EQ(comm.recovery().readmissions, readmissions_before + 1);
  EXPECT_EQ(comm.membership().phase(2), cm::RankPhase::kHealthy);
  EXPECT_TRUE(comm.is_active(2));
}

}  // namespace
