// Tests for the gradient-compressor suite: roundtrip fidelity, error
// bounds, compression-ratio ordering (the Fig. 3 / §5.2 relationships),
// and GPU-throughput model ordering (Fig. 8).

#include "src/compress/compressor.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

std::vector<float> kfac_grad(std::size_t n, std::uint64_t seed) {
  ct::Rng rng(seed);
  return ct::synthetic_gradient(n, ct::GradientProfile::kfac(), rng);
}

// ---- identity ----

TEST(Identity, ExactRoundtrip) {
  ct::Rng rng(1);
  const auto data = kfac_grad(10000, 1);
  const auto c = cp::make_identity();
  const auto payload = c->compress(data, rng);
  EXPECT_EQ(c->decompress(payload), data);
  EXPECT_NEAR(c->compression_ratio(data, rng), 1.0, 0.01);
}

// ---- COMPSO ----

TEST(Compso, RoundtripPreservesCountAndBound) {
  ct::Rng rng(2);
  const auto data = kfac_grad(50000, 2);
  const auto c = cp::make_compso(cp::CompsoParams{});
  const auto payload = c->compress(data, rng);
  const auto rec = c->decompress(payload);
  ASSERT_EQ(rec.size(), data.size());
  // Total error <= max(filter threshold, SR step): both are
  // O(eb * abs_max).
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  const double bound = 2.0 * 4e-3 * abs_max;  // SR step dominates
  EXPECT_LE(ct::max_abs_error(data, rec), bound * (1.0 + 1e-6));
}

TEST(Compso, FilteredValuesBecomeZero) {
  ct::Rng rng(3);
  const auto data = kfac_grad(20000, 3);
  const auto c = cp::make_compso(cp::CompsoParams{});
  const auto rec = c->decompress(c->compress(data, rng));
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  const double thr = 4e-3 * abs_max;
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::fabs(data[i]) < thr) {
      EXPECT_EQ(rec[i], 0.0F);
      ++zeros;
    }
  }
  EXPECT_GT(zeros, data.size() / 4);  // the filter is doing real work
}

TEST(Compso, SrOnlyModeSkipsFilter) {
  ct::Rng rng(4);
  const auto data = kfac_grad(20000, 4);
  cp::CompsoParams p;
  p.use_filter = false;
  const auto c = cp::make_compso(p);
  const auto rec = c->decompress(c->compress(data, rng));
  // Without the filter no value is force-zeroed; SR keeps small values
  // stochastically, so some near-zero inputs stay nonzero.
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  const double bound = 2.0 * 4e-3 * abs_max;
  EXPECT_LE(ct::max_abs_error(data, rec), bound * (1.0 + 1e-6));
}

TEST(Compso, HighRatioOnKfacGradients) {
  // Paper headline: ~22x average compression ratio on KFAC gradients.
  ct::Rng rng(5);
  const auto data = kfac_grad(1 << 18, 5);
  const auto c = cp::make_compso(cp::CompsoParams{});
  const double cr = c->compression_ratio(data, rng);
  EXPECT_GT(cr, 10.0);
}

TEST(Compso, FilterImprovesRatio) {
  ct::Rng rng(6);
  const auto data = kfac_grad(1 << 17, 6);
  cp::CompsoParams with;
  cp::CompsoParams without;
  without.use_filter = false;
  const double cr_with = cp::make_compso(with)->compression_ratio(data, rng);
  const double cr_without =
      cp::make_compso(without)->compression_ratio(data, rng);
  EXPECT_GT(cr_with, cr_without);
}

TEST(Compso, TighterBoundLowersRatio) {
  ct::Rng rng(7);
  const auto data = kfac_grad(1 << 16, 7);
  cp::CompsoParams loose;
  loose.filter_bound = loose.quant_bound = 1e-2;
  cp::CompsoParams tight;
  tight.filter_bound = tight.quant_bound = 1e-4;
  EXPECT_GT(cp::make_compso(loose)->compression_ratio(data, rng),
            cp::make_compso(tight)->compression_ratio(data, rng));
}

TEST(Compso, WorksWithEveryEncoder) {
  ct::Rng rng(8);
  const auto data = kfac_grad(1 << 14, 8);
  for (auto kind : compso::codec::kAllCodecKinds) {
    cp::CompsoParams p;
    p.encoder = kind;
    const auto c = cp::make_compso(p);
    const auto rec = c->decompress(c->compress(data, rng));
    ASSERT_EQ(rec.size(), data.size()) << compso::codec::to_string(kind);
  }
}

TEST(Compso, EmptyAndTinyInputs) {
  ct::Rng rng(9);
  const auto c = cp::make_compso(cp::CompsoParams{});
  for (std::size_t n : {0UL, 1UL, 2UL, 9UL}) {
    std::vector<float> data(n, 0.25F);
    const auto rec = c->decompress(c->compress(data, rng));
    EXPECT_EQ(rec.size(), n);
  }
}

TEST(Compso, AllZeroInput) {
  ct::Rng rng(10);
  std::vector<float> data(1000, 0.0F);
  const auto c = cp::make_compso(cp::CompsoParams{});
  const auto rec = c->decompress(c->compress(data, rng));
  for (float v : rec) EXPECT_EQ(v, 0.0F);
}

// ---- QSGD ----

TEST(Qsgd, RoundtripWithBound) {
  ct::Rng rng(11);
  const auto data = kfac_grad(30000, 11);
  const auto c = cp::make_qsgd(8);
  const auto rec = c->decompress(c->compress(data, rng));
  ASSERT_EQ(rec.size(), data.size());
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  EXPECT_LE(ct::max_abs_error(data, rec), abs_max / 127.0 * (1.0 + 1e-6));
}

TEST(Qsgd, FourBitHasHigherRatioButMoreError) {
  ct::Rng rng(12);
  const auto data = kfac_grad(1 << 16, 12);
  const auto c8 = cp::make_qsgd(8);
  const auto c4 = cp::make_qsgd(4);
  EXPECT_GT(c4->compression_ratio(data, rng),
            c8->compression_ratio(data, rng));
  const auto r8 = c8->decompress(c8->compress(data, rng));
  const auto r4 = c4->decompress(c4->compress(data, rng));
  EXPECT_GT(ct::rmse(data, r4), ct::rmse(data, r8));
}

TEST(Qsgd, UnbiasedReconstruction) {
  // SR makes QSGD unbiased: averaging many compressions approaches input.
  const std::vector<float> data{0.013F, -0.004F, 0.020F, 0.001F};
  const auto c = cp::make_qsgd(4);
  std::vector<double> acc(data.size(), 0.0);
  const int trials = 20000;
  ct::Rng rng(13);
  for (int t = 0; t < trials; ++t) {
    const auto rec = c->decompress(c->compress(data, rng));
    for (std::size_t i = 0; i < data.size(); ++i) acc[i] += rec[i];
  }
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(acc[i] / trials, data[i], 4e-4) << "i=" << i;
  }
}

// ---- SZ ----

TEST(Sz, RoundtripRespectsErrorBound) {
  ct::Rng rng(14);
  const auto data = kfac_grad(30000, 14);
  const double eb = 4e-3;
  const auto c = cp::make_sz(eb);
  const auto rec = c->decompress(c->compress(data, rng));
  ASSERT_EQ(rec.size(), data.size());
  const auto ex = ct::extrema(std::span<const float>(data));
  const double range = static_cast<double>(ex.max) - ex.min;
  // RN on the prediction error: bound is eb * range per element.
  EXPECT_LE(ct::max_abs_error(data, rec), eb * range * (1.0 + 1e-5));
}

TEST(Sz, LooseBoundCompressesMore) {
  ct::Rng rng(15);
  const auto data = kfac_grad(1 << 16, 15);
  EXPECT_GT(cp::make_sz(1e-1)->compression_ratio(data, rng),
            cp::make_sz(4e-3)->compression_ratio(data, rng));
}

TEST(Sz, SmoothDataCompressesWell) {
  // SZ's Lorenzo predictor was designed for smooth scientific data.
  ct::Rng rng(16);
  const auto data = ct::synthetic_smooth(1 << 16, rng);
  EXPECT_GT(cp::make_sz(1e-3)->compression_ratio(data, rng), 3.0);
}

// ---- CocktailSGD ----

TEST(Cocktail, RoundtripKeepsSampledPositionsOnly) {
  // Use values far from zero so 8-bit quantization cannot produce exact
  // zeros: every sampled position stays nonzero, every dropped one is 0.
  ct::Rng rng(17);
  std::vector<float> data(20000);
  for (auto& v : data) {
    v = rng.uniform(0.5F, 1.0F) * (rng.uniform() < 0.5F ? -1.0F : 1.0F);
  }
  const auto c = cp::make_cocktail(0.2, 8);
  const auto rec = c->decompress(c->compress(data, rng));
  ASSERT_EQ(rec.size(), data.size());
  std::size_t nonzero = 0;
  for (float v : rec) nonzero += v != 0.0F ? 1 : 0;
  // ~20% of positions survive (binomial sampling jitter allowed).
  EXPECT_NEAR(static_cast<double>(nonzero) / static_cast<double>(rec.size()),
              0.2, 0.02);
}

TEST(Cocktail, ConstantRatioNearTwenty) {
  // Paper §5.2: CocktailSGD maintains a constant ratio of ~20x
  // (20% sparsity x 8-bit quantization).
  ct::Rng rng(18);
  const auto data = kfac_grad(1 << 17, 18);
  const double cr = cp::make_cocktail(0.2, 8)->compression_ratio(data, rng);
  EXPECT_NEAR(cr, 20.0, 2.0);
}

// ---- TopK ----

TEST(TopK, KeepsLargestMagnitudes) {
  std::vector<float> data{0.1F, -5.0F, 0.2F, 3.0F, -0.05F, 1.0F};
  ct::Rng rng(19);
  const auto c = cp::make_topk(0.5);
  const auto rec = c->decompress(c->compress(data, rng));
  EXPECT_EQ(rec[1], -5.0F);
  EXPECT_EQ(rec[3], 3.0F);
  EXPECT_EQ(rec[5], 1.0F);
  EXPECT_EQ(rec[0], 0.0F);
  EXPECT_EQ(rec[2], 0.0F);
  EXPECT_EQ(rec[4], 0.0F);
}

TEST(TopK, ExactValuesPreserved) {
  ct::Rng rng(20);
  const auto data = kfac_grad(10000, 20);
  const auto c = cp::make_topk(0.1);
  const auto rec = c->decompress(c->compress(data, rng));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (rec[i] != 0.0F) {
      EXPECT_EQ(rec[i], data[i]);
    }
  }
}

// ---- cross-method orderings (Fig. 3 left / §5.2) ----

TEST(Ordering, CompsoBeatsAccuracyPreservingBaselines) {
  // At accuracy-preserving settings (SZ 4e-3, QSGD 8-bit) COMPSO's ratio
  // is far ahead (paper: ~22x vs 5-16x).
  ct::Rng rng(21);
  const auto data = kfac_grad(1 << 18, 21);
  const double compso =
      cp::make_compso(cp::CompsoParams{})->compression_ratio(data, rng);
  const double sz = cp::make_sz(4e-3)->compression_ratio(data, rng);
  const double qsgd = cp::make_qsgd(8)->compression_ratio(data, rng);
  EXPECT_GT(compso, sz);
  EXPECT_GT(compso, qsgd);
}

TEST(Ordering, Qsgd4BitBeatsQsgd8BitOnRatio) {
  ct::Rng rng(22);
  const auto data = kfac_grad(1 << 16, 22);
  EXPECT_GT(cp::make_qsgd(4)->compression_ratio(data, rng),
            cp::make_qsgd(8)->compression_ratio(data, rng));
}

// ---- GPU throughput model (Fig. 8 orderings) ----

TEST(GpuModel, FusedCudaBeatsPytorchDispatch) {
  const auto dev = compso::gpusim::DeviceModel::a100();
  const std::size_t in = 64U << 20;
  const auto qsgd = cp::make_qsgd(8);        // fused kernel profile
  const auto cocktail = cp::make_cocktail(0.2, 8);  // PyTorch profile
  EXPECT_GT(qsgd->modeled_throughput(dev, in, in / 8),
            cocktail->modeled_throughput(dev, in, in / 20));
}

TEST(GpuModel, QsgdFasterThanCompsoWhichBeatsCocktail) {
  // §5.3: QSGD (fewer ops, no filter) > COMPSO > CocktailSGD (~1.7x gap).
  const auto dev = compso::gpusim::DeviceModel::a100();
  const std::size_t in = 64U << 20;
  const double t_qsgd =
      cp::make_qsgd(8)->modeled_throughput(dev, in, in / 8);
  const double t_compso = cp::make_compso(cp::CompsoParams{})
                              ->modeled_throughput(dev, in, in / 22);
  const double t_cocktail =
      cp::make_cocktail(0.2, 8)->modeled_throughput(dev, in, in / 20);
  EXPECT_GT(t_qsgd, t_compso);
  EXPECT_GT(t_compso, t_cocktail);
  EXPECT_GT(t_compso / t_cocktail, 1.3);  // paper reports ~1.7x
}

TEST(GpuModel, ThroughputGrowsWithDataSize) {
  // Launch overhead amortizes: throughput rises with size (Fig. 8 shape).
  const auto dev = compso::gpusim::DeviceModel::a100();
  const auto c = cp::make_compso(cp::CompsoParams{});
  const double t_small = c->modeled_throughput(dev, 1U << 20, (1U << 20) / 22);
  const double t_large = c->modeled_throughput(dev, 128U << 20, (128U << 20) / 22);
  EXPECT_GT(t_large, t_small);
}

// ---- fused pipeline vs the multi-pass reference oracle ----
//
// make_compso is the fused single-pass implementation; make_compso_reference
// is the original multi-pass pipeline kept as the bit-exactness oracle.
// For any fixed Rng state the two must produce byte-identical payloads and
// identical reconstructions.

void expect_bit_identical(const cp::CompsoParams& params,
                          const std::vector<float>& data,
                          std::uint64_t seed) {
  const auto fused = cp::make_compso(params);
  const auto reference = cp::make_compso_reference(params);
  ct::Rng rng_f(seed);
  ct::Rng rng_r(seed);
  const auto payload_f = fused->compress(data, rng_f);
  const auto payload_r = reference->compress(data, rng_r);
  ASSERT_EQ(payload_f, payload_r);
  // Both consumed the same number of draws: the streams stay aligned.
  EXPECT_EQ(rng_f(), rng_r());
  // Cross-decode both ways; the fused decoder and the reference decoder
  // must agree bit-for-bit on the same payload.
  EXPECT_EQ(fused->decompress(payload_r), reference->decompress(payload_f));
  EXPECT_EQ(fused->decompress(payload_f), reference->decompress(payload_f));
}

TEST(FusedOracle, BitIdenticalPayloadsAcrossSizes) {
  // Cover: empty, tiny, sub-block, exactly one block, block+tail, many
  // blocks (the blockwise extrema + bitmap byte paths all get exercised).
  for (std::size_t n :
       {0UL, 1UL, 7UL, 8UL, 9UL, 100UL, 4096UL, 4100UL, 70001UL}) {
    const auto data = kfac_grad(n, 0xC0FFEE + n);
    expect_bit_identical(cp::CompsoParams{}, data, 42 + n);
  }
}

TEST(FusedOracle, BitIdenticalWithoutFilter) {
  cp::CompsoParams p;
  p.use_filter = false;
  expect_bit_identical(p, kfac_grad(20000, 11), 7);
  p.use_filter = true;
  p.filter_bound = 0.0;  // second way to disable the filter
  expect_bit_identical(p, kfac_grad(20000, 12), 8);
}

TEST(FusedOracle, BitIdenticalOnEdgeInputs) {
  // All-zero buffer (abs_max == 0 early-out, no rng draws).
  expect_bit_identical(cp::CompsoParams{}, std::vector<float>(5000, 0.0F),
                       3);
  // Constant buffer (everything survives the filter).
  expect_bit_identical(cp::CompsoParams{}, std::vector<float>(5000, 1.5F),
                       4);
  // Buffer where everything but one value is filtered.
  std::vector<float> spike(5000, 1e-8F);
  spike[1234] = 100.0F;
  expect_bit_identical(cp::CompsoParams{}, spike, 5);
  // Negative extremes and denormals.
  std::vector<float> mixed = kfac_grad(9999, 6);
  mixed[0] = -3.5e4F;
  mixed[1] = 1e-40F;
  mixed[2] = -1e-40F;
  expect_bit_identical(cp::CompsoParams{}, mixed, 6);
}

TEST(FusedOracle, BitIdenticalWithEveryEncoder) {
  using compso::codec::CodecKind;
  const auto data = kfac_grad(30000, 21);
  for (CodecKind kind : compso::codec::kAllCodecKinds) {
    cp::CompsoParams p;
    p.encoder = kind;
    expect_bit_identical(p, data, 1000 + static_cast<std::uint64_t>(kind));
  }
}

TEST(FusedOracle, BitIdenticalAcrossBounds) {
  const auto data = kfac_grad(25000, 31);
  for (double eb : {1e-1, 1e-2, 4e-3, 1e-4, 1e-6}) {
    cp::CompsoParams p;
    p.filter_bound = eb;
    p.quant_bound = eb;
    expect_bit_identical(p, data, 77);
  }
}

TEST(FusedOracle, CompressIntoReusesBufferAndMatches) {
  const auto c = cp::make_compso(cp::CompsoParams{});
  cp::Bytes buf;
  std::vector<float> rec;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto data = kfac_grad(10000 + 1000 * i, i);
    ct::Rng a(i);
    ct::Rng b(i);
    c->compress_into(data, a, buf);
    EXPECT_EQ(buf, c->compress(data, b));
    c->decompress_into(buf, rec);
    EXPECT_EQ(rec, c->decompress(buf));
  }
}

TEST(FusedOracle, PathologicalBoundFallsBackToReference) {
  // A quantization bound tight enough to overflow int32 codes must route
  // make_compso to the multi-pass implementation (and still roundtrip).
  cp::CompsoParams p;
  p.quant_bound = 1e-12;
  p.filter_bound = 0.0;
  const auto c = cp::make_compso(p);
  EXPECT_EQ(c->name(), "COMPSO");
  std::vector<float> data = {1.0F, -0.5F, 0.25F, 0.0F};
  ct::Rng rng(9);
  const auto rec = c->decompress(c->compress(data, rng));
  ASSERT_EQ(rec.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(rec[i], data[i], 1e-6);
  }
}

// ---- parameter validation ----

TEST(Validation, BadParamsThrow) {
  EXPECT_THROW((void)cp::make_cocktail(0.0, 8), std::invalid_argument);
  EXPECT_THROW((void)cp::make_cocktail(1.5, 8), std::invalid_argument);
  EXPECT_THROW((void)cp::make_topk(0.0), std::invalid_argument);
  EXPECT_THROW((void)cp::make_sz(0.0), std::invalid_argument);
  cp::CompsoParams p;
  p.quant_bound = 0.0;
  EXPECT_THROW((void)cp::make_compso(p), std::invalid_argument);
}

}  // namespace
