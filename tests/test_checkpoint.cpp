// Checkpoint format + resume: a restored FaultTolerantTrainer must
// continue the exact FP32 trajectory and RNG streams of an uninterrupted
// run (bit-exact), and damaged or mismatched checkpoints must be rejected
// by the wire-format validation layer, never silently resumed from.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>

namespace cm = compso::comm;
namespace core = compso::core;
namespace ckpt = compso::core::ckpt;

namespace {

core::FtTrainerConfig small_config(core::OptimizerKind kind) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 999};
  cfg.optimizer = kind;
  // Refresh at iteration 10 so the checkpoint at 15 carries
  // eigendecompositions that do NOT match the then-current factors — a
  // resume that recomputed them instead of restoring verbatim would
  // diverge from the straight run.
  cfg.kfac.eigen_refresh_every = 10;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.lr_milestones = {20};  // an LR drop inside the resumed half
  cfg.total_iterations = 30;
  return cfg;
}

TEST(CheckpointWire, FrameRoundTripAndValidation) {
  ckpt::Bytes body;
  ckpt::put_u64(body, 42);
  ckpt::put_f32(body, 1.5F);
  const auto frame = ckpt::seal_frame(body);

  const auto view = ckpt::open_frame(frame);
  compso::codec::wire::Reader reader(view);
  EXPECT_EQ(reader.u64(), 42U);
  EXPECT_FLOAT_EQ(reader.f32(), 1.5F);
  EXPECT_EQ(reader.remaining(), 0U);

  // Any single damaged byte must fail the CRC (or magic/size) check.
  for (std::size_t pos : {0UL, 5UL, frame.size() - 1}) {
    auto damaged = frame;
    damaged[pos] ^= 0x01;
    EXPECT_THROW(ckpt::open_frame(damaged), compso::PayloadError) << pos;
  }
  auto truncated = frame;
  truncated.pop_back();
  EXPECT_THROW(ckpt::open_frame(truncated), compso::PayloadError);
}

TEST(CheckpointWire, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "ckpt_roundtrip.bin";
  ckpt::Bytes data{1, 2, 3, 250, 251};
  ckpt::write_file(path, data);
  EXPECT_EQ(ckpt::read_file(path), data);
  std::remove(path.c_str());
  EXPECT_THROW(ckpt::read_file(path), std::runtime_error);
}

TEST(CheckpointWire, RngStateRoundTripContinuesStream) {
  compso::tensor::Rng rng(321);
  (void)rng.normal();  // populate the Box-Muller cache
  ckpt::Bytes body;
  ckpt::put_rng(body, rng.save_state());
  const auto frame = ckpt::seal_frame(body);

  compso::tensor::Rng restored(0);
  const auto view = ckpt::open_frame(frame);
  compso::codec::wire::Reader reader(view);
  restored.restore_state(ckpt::get_rng(reader));
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(rng(), restored());
  }
  // The cached Box-Muller half must survive bit-for-bit too.
  compso::tensor::Rng a(77), b(0);
  (void)a.normal();
  b.restore_state(a.save_state());
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a.normal()),
              std::bit_cast<std::uint32_t>(b.normal()));
  }
}

// The headline guarantee: run 15 iterations, checkpoint, resume in a fresh
// trainer, run 15 more — parameters match a straight 30-iteration run
// bit for bit (both optimizers; KFAC includes factors + eigen + momentum).
TEST(CheckpointResume, BitExactContinuation) {
  for (const auto kind : {core::OptimizerKind::kKfac,
                          core::OptimizerKind::kSgd}) {
    core::FaultTolerantTrainer straight(small_config(kind));
    straight.run(30);

    core::FaultTolerantTrainer first_half(small_config(kind));
    first_half.run(15);
    const auto frame = first_half.checkpoint();
    EXPECT_EQ(first_half.comm().recovery().checkpoint_saves, 1U);

    core::FaultTolerantTrainer resumed(small_config(kind));
    resumed.restore(frame);
    EXPECT_EQ(resumed.iteration(), 15U);
    EXPECT_EQ(resumed.comm().recovery().checkpoint_restores, 1U);
    resumed.run(15);

    EXPECT_EQ(resumed.parameters(), straight.parameters());
  }
}

// Checkpointing mid-drill must preserve the fault aftermath: the shrunken
// world, the degraded/tightened policy state, and the recovery counters.
TEST(CheckpointResume, PreservesRecoveryState) {
  auto cfg = small_config(core::OptimizerKind::kKfac);
  core::FaultTolerantTrainer trainer(cfg);
  trainer.set_fault_plan(
      cm::FaultPlan{}.crash(3, 2).nan_gradient(5, 0), 55);
  trainer.run(8);
  ASSERT_EQ(trainer.comm().active_count(), 3U);
  ASSERT_TRUE(trainer.bounds_tightened());
  const auto frame = trainer.checkpoint();

  core::FaultTolerantTrainer resumed(cfg);
  resumed.restore(frame);
  EXPECT_EQ(resumed.comm().active_count(), 3U);
  EXPECT_FALSE(resumed.comm().is_active(2));
  EXPECT_TRUE(resumed.bounds_tightened());
  const auto& rc = resumed.comm().recovery();
  EXPECT_EQ(rc.evictions, 1U);
  EXPECT_GE(rc.nonfinite_skips, 1U);
  EXPECT_EQ(rc.bound_tightenings, 1U);

  // And the resumed trainer keeps training over the survivors, bit-exactly
  // tracking the uninterrupted faulty run.
  trainer.run(7);
  resumed.run(7);
  EXPECT_EQ(resumed.parameters(), trainer.parameters());
}

TEST(CheckpointResume, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "ft_trainer.ckpt";
  auto cfg = small_config(core::OptimizerKind::kSgd);
  core::FaultTolerantTrainer trainer(cfg);
  trainer.run(5);
  trainer.save_checkpoint(path);

  core::FaultTolerantTrainer resumed(cfg);
  resumed.load_checkpoint(path);
  EXPECT_EQ(resumed.iteration(), 5U);
  EXPECT_EQ(resumed.parameters(), trainer.parameters());
  std::remove(path.c_str());
}

TEST(CheckpointResume, RejectsMismatchedConfig) {
  core::FaultTolerantTrainer trainer(
      small_config(core::OptimizerKind::kKfac));
  trainer.run(3);
  const auto frame = trainer.checkpoint();

  auto other = small_config(core::OptimizerKind::kKfac);
  other.base.hidden = 16;
  core::FaultTolerantTrainer wrong_shape(other);
  EXPECT_THROW(wrong_shape.restore(frame), compso::PayloadError);

  core::FaultTolerantTrainer wrong_optim(
      small_config(core::OptimizerKind::kSgd));
  EXPECT_THROW(wrong_optim.restore(frame), compso::PayloadError);
}

TEST(CheckpointResume, RejectsDamagedFrame) {
  core::FaultTolerantTrainer trainer(
      small_config(core::OptimizerKind::kSgd));
  trainer.run(3);
  auto frame = trainer.checkpoint();
  frame[frame.size() / 2] ^= 0x10;  // flip one body bit

  core::FaultTolerantTrainer resumed(
      small_config(core::OptimizerKind::kSgd));
  EXPECT_THROW(resumed.restore(frame), compso::PayloadError);
}

}  // namespace
