// Blocked math engine (src/tensor/matrix_ops, DESIGN.md §11) against the
// retained naive references: property tests on awkward shapes, bitwise
// determinism of the pool-parallel path at several thread counts, NaN/Inf
// propagation through the kernels (no zero-skip), the fused cyclic-Jacobi
// eigh against its reference, non-convergence reporting, and the
// scratch-reuse helper. The parallel suites run under TSan via ci.sh's
// build-tsan config.

#include "src/common/thread_pool.hpp"
#include "src/tensor/eigen.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/rng.hpp"
#include "src/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <tuple>
#include <vector>

namespace ct = compso::tensor;
namespace common = compso::common;

namespace {

ct::Tensor rand2(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  ct::Tensor t({rows, cols});
  ct::Rng rng(seed);
  rng.fill_uniform(t.span(), -1.0F, 1.0F);
  return t;
}

/// Blocked vs reference agree to accumulation tolerance (the FMA
/// microkernels round once per multiply-add, the references twice), with
/// slack proportional to the reduction length k.
void expect_close(const ct::Tensor& got, const ct::Tensor& want,
                  std::size_t k, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  const float tol = 1e-6F * static_cast<float>(k + 4);
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float w = want[i];
    ASSERT_NEAR(got[i], w, tol * std::max(1.0F, std::fabs(w)))
        << what << " diverges at flat index " << i;
  }
}

void expect_bitwise(const ct::Tensor& got, const ct::Tensor& want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
              std::bit_cast<std::uint32_t>(want[i]))
        << what << " diverges at flat index " << i;
  }
}

// Shapes chosen to hit every edge of the blocked engine: below the
// small-op cutoff (routes to the reference), just above it, 1xN / Nx1
// (degenerate register tiles), non-multiples of MR/NR/MC/KC/NC, and
// sizes spanning several cache blocks.
const std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>
    kGemmShapes = {
        {1, 1, 1},    {1, 8, 1},      {5, 1, 9},      {3, 7, 5},
        {1, 300, 400}, {400, 300, 1}, {33, 65, 17},   {96, 96, 96},
        {97, 129, 65}, {128, 64, 256}, {130, 200, 110},
};

TEST(BlockedGemm, MatchesReferenceOnAwkwardShapes) {
  std::uint64_t seed = 100;
  for (const auto& [m, k, n] : kGemmShapes) {
    const auto a = rand2(m, k, seed++);
    const auto b = rand2(k, n, seed++);
    ct::Tensor got, want;
    ct::gemm(a, b, got);
    ct::gemm_reference(a, b, want);
    expect_close(got, want, k,
                 ("gemm " + std::to_string(m) + "x" + std::to_string(k) + "x" +
                  std::to_string(n))
                     .c_str());
  }
}

TEST(BlockedGemm, TnMatchesReferenceOnAwkwardShapes) {
  std::uint64_t seed = 200;
  for (const auto& [m, k, n] : kGemmShapes) {
    const auto a = rand2(k, m, seed++);  // stored transposed.
    const auto b = rand2(k, n, seed++);
    ct::Tensor got, want;
    ct::gemm_tn(a, b, got);
    ct::gemm_tn_reference(a, b, want);
    expect_close(got, want, k, "gemm_tn");
  }
}

TEST(BlockedGemm, NtMatchesReferenceOnAwkwardShapes) {
  std::uint64_t seed = 300;
  for (const auto& [m, k, n] : kGemmShapes) {
    const auto a = rand2(m, k, seed++);
    const auto b = rand2(n, k, seed++);  // stored transposed.
    ct::Tensor got, want;
    ct::gemm_nt(a, b, got);
    ct::gemm_nt_reference(a, b, want);
    expect_close(got, want, k, "gemm_nt");
  }
}

TEST(BlockedGemm, EmptyOperandsProduceZeroOutput) {
  for (const auto& [m, k, n] :
       std::vector<std::tuple<std::size_t, std::size_t, std::size_t>>{
           {0, 5, 7}, {5, 0, 7}, {5, 7, 0}, {0, 0, 0}}) {
    const auto a = rand2(m, k, 7);
    const auto b = rand2(k, n, 8);
    ct::Tensor c;
    ct::gemm(a, b, c);
    EXPECT_EQ(c.rows(), m);
    EXPECT_EQ(c.cols(), n);
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.0F);
  }
}

TEST(BlockedSyrk, MatchesReferenceIncludingBetaAccumulation) {
  std::uint64_t seed = 400;
  for (const auto& [n, d] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {4, 7}, {33, 97}, {150, 130}, {64, 200}}) {
    const auto a = rand2(n, d, seed++);
    // Fresh output.
    ct::Tensor got, want;
    ct::syrk_tn(a, 0.7F, 0.0F, got);
    ct::syrk_tn_reference(a, 0.7F, 0.0F, want);
    expect_close(got, want, n, "syrk_tn fresh");
    // Accumulating into identical prior state (beta != 0).
    ct::Tensor prior = rand2(d, d, seed);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) prior.at(j, i) = prior.at(i, j);
    }
    ct::Tensor got2 = prior, want2 = prior;
    ct::syrk_tn(a, 1.3F, 0.4F, got2);
    ct::syrk_tn_reference(a, 1.3F, 0.4F, want2);
    expect_close(got2, want2, n, "syrk_tn accumulate");
    // The mirrored output is exactly symmetric.
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(got2.at(i, j)),
                  std::bit_cast<std::uint32_t>(got2.at(j, i)));
      }
    }
  }
}

// --- bitwise determinism of the pool-parallel path ---
//
// Each output row block keeps its serial accumulation order, so the
// blocked kernels must produce byte-identical results with no pool and
// with pools of any size (DESIGN.md §11). Shapes exceed both the
// small-op and the parallel-dispatch thresholds.

TEST(ParallelMath, GemmBitIdenticalAcrossThreadCounts) {
  const auto a = rand2(257, 193, 41);
  const auto b = rand2(193, 211, 42);
  ct::Tensor serial;
  ct::gemm(a, b, serial);
  for (std::size_t threads : {1UL, 2UL, 8UL}) {
    common::ThreadPool pool(threads);
    ct::MathPoolGuard guard(&pool);
    ct::Tensor parallel;
    ct::gemm(a, b, parallel);
    expect_bitwise(parallel, serial,
                   ("gemm @" + std::to_string(threads) + " threads").c_str());
  }
  EXPECT_EQ(ct::math_pool(), nullptr);  // guard restored the previous pool.
}

TEST(ParallelMath, AllKernelsBitIdenticalUnderSharedPool) {
  const auto a = rand2(230, 140, 51);    // (m x k) for gemm_nt, (n x d) syrk.
  const auto at = rand2(140, 230, 52);   // (k x m) for gemm_tn.
  const auto bt = rand2(140, 180, 54);   // (k x n) for gemm_tn.
  const auto bn = rand2(180, 140, 53);   // (n x k) for gemm_nt.
  ct::Tensor s_tn, s_nt, s_syrk;
  ct::gemm_tn(at, bt, s_tn);
  ct::gemm_nt(a, bn, s_nt);
  ct::syrk_tn(a, 0.5F, 0.0F, s_syrk);
  for (std::size_t threads : {2UL, 8UL}) {
    common::ThreadPool pool(threads);
    ct::MathPoolGuard guard(&pool);
    ct::Tensor p_tn, p_nt, p_syrk;
    ct::gemm_tn(at, bt, p_tn);
    ct::gemm_nt(a, bn, p_nt);
    ct::syrk_tn(a, 0.5F, 0.0F, p_syrk);
    expect_bitwise(p_tn, s_tn, "gemm_tn parallel");
    expect_bitwise(p_nt, s_nt, "gemm_nt parallel");
    expect_bitwise(p_syrk, s_syrk, "syrk_tn parallel");
  }
}

// --- non-finite propagation (the old zero-skip bug class) ---
//
// 0 * NaN must stay NaN: the optimizer's non-finite guards rely on
// poisoned inputs reaching the output even through zero multiplicands.

TEST(NonFinite, ZeroTimesNanPropagatesThroughSmallKernels) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  ct::Tensor a({2, 3});  // all zeros.
  ct::Tensor b({3, 2});
  b.at(0, 0) = nan;
  ct::Tensor c;
  ct::gemm_reference(a, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 0)));
  ct::gemm(a, b, c);  // small shape routes to the reference.
  EXPECT_TRUE(std::isnan(c.at(0, 0)));

  ct::Tensor at({3, 2});  // zeros, for gemm_tn.
  ct::gemm_tn_reference(at, b, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));

  ct::Tensor bn({2, 3});
  bn.at(0, 1) = nan;
  ct::gemm_nt_reference(a, bn, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));

  ct::Tensor sa({4, 5});  // zeros with one NaN row entry.
  sa.at(0, 0) = nan;
  ct::Tensor sc;
  ct::syrk_tn_reference(sa, 1.0F, 0.0F, sc);
  EXPECT_TRUE(std::isnan(sc.at(0, 0)));
  // alpha == 0 must not bypass propagation either (0 * NaN).
  ct::syrk_tn_reference(sa, 0.0F, 0.0F, sc);
  EXPECT_TRUE(std::isnan(sc.at(0, 0)));
}

TEST(NonFinite, ZeroTimesNanPropagatesThroughBlockedKernels) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  ct::Tensor a({128, 128});  // all zeros -> blocked path (2^21 flops).
  ct::Tensor b({128, 128});
  b.at(77, 5) = nan;
  b.at(3, 100) = inf;
  ct::Tensor c;
  ct::gemm(a, b, c);
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(std::isnan(c.at(i, 5))) << "row " << i;
    ASSERT_TRUE(std::isnan(c.at(i, 100))) << "row " << i;  // 0 * inf.
  }

  ct::Tensor sa({130, 128});  // zeros, blocked syrk path.
  sa.at(0, 64) = nan;
  ct::Tensor sc;
  ct::syrk_tn(sa, 1.0F, 0.0F, sc);
  EXPECT_TRUE(std::isnan(sc.at(64, 64)));
  EXPECT_TRUE(std::isnan(sc.at(0, 64)));
  EXPECT_TRUE(std::isnan(sc.at(64, 0)));  // mirrored triangle.
}

// --- fused cyclic-Jacobi eigh vs its reference ---

ct::Tensor random_symmetric(std::size_t n, std::uint64_t seed) {
  ct::Tensor m = rand2(n, n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const float avg = 0.5F * (m.at(i, j) + m.at(j, i));
      m.at(i, j) = m.at(j, i) = avg;
    }
  }
  return m;
}

void expect_valid_decomposition(const ct::EigenDecomposition& e,
                                const ct::Tensor& m, const char* what) {
  const std::size_t n = m.rows();
  EXPECT_TRUE(e.converged) << what;
  ASSERT_EQ(e.eigenvalues.size(), n) << what;
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_LE(e.eigenvalues[i - 1], e.eigenvalues[i]) << what;
  }
  // Reconstruction: Q diag(v) Q^T == M.
  const ct::Tensor rec = ct::eigen_reconstruct(e);
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(rec[i], m[i], 5e-4F) << what << " reconstruct " << i;
  }
  // Orthonormality: Q^T Q == I.
  ct::Tensor qtq;
  ct::gemm_tn_reference(e.eigenvectors, e.eigenvectors, qtq);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_NEAR(qtq.at(i, j), i == j ? 1.0F : 0.0F, 1e-4F) << what;
    }
  }
}

TEST(FusedEigh, MatchesReferenceAcrossSizes) {
  for (std::size_t n : {1UL, 2UL, 5UL, 33UL, 64UL, 129UL}) {
    const ct::Tensor m = random_symmetric(n, 900 + n);
    const auto fused = ct::eigh(m);
    const auto ref = ct::eigh_reference(m);
    expect_valid_decomposition(fused, m, "fused");
    expect_valid_decomposition(ref, m, "reference");
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fused.eigenvalues[i], ref.eigenvalues[i], 1e-4F)
          << "n=" << n << " eigenvalue " << i;
    }
  }
}

TEST(FusedEigh, ReportsNonConvergence) {
  const ct::Tensor m = random_symmetric(16, 77);
  // Zero sweeps on a matrix with off-diagonal mass: no work done.
  const auto none = ct::eigh(m, /*max_sweeps=*/0);
  EXPECT_FALSE(none.converged);
  EXPECT_EQ(none.sweeps_used, 0);
  const auto none_ref = ct::eigh_reference(m, /*max_sweeps=*/0);
  EXPECT_FALSE(none_ref.converged);
  // An unreachable tolerance exhausts every sweep.
  const auto hopeless = ct::eigh(m, /*max_sweeps=*/1, /*tol=*/0.0);
  EXPECT_FALSE(hopeless.converged);
  EXPECT_EQ(hopeless.sweeps_used, 1);
  // The default budget converges and says so.
  const auto ok = ct::eigh(m);
  EXPECT_TRUE(ok.converged);
  EXPECT_GT(ok.sweeps_used, 0);
}

TEST(FusedEigh, DegenerateInputsConverge) {
  // All-zero matrix: the Frobenius-norm floor must yield a satisfiable
  // stopping threshold on the first check.
  const ct::Tensor zero({8, 8});
  const auto z = ct::eigh(zero, /*max_sweeps=*/0);
  EXPECT_TRUE(z.converged);
  EXPECT_EQ(z.sweeps_used, 0);
  // Already-diagonal matrix: converges without spending a sweep.
  ct::Tensor diag({5, 5});
  for (std::size_t i = 0; i < 5; ++i) diag.at(i, i) = static_cast<float>(i);
  const auto d = ct::eigh(diag);
  EXPECT_TRUE(d.converged);
  EXPECT_EQ(d.sweeps_used, 0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(d.eigenvalues[i], static_cast<float>(i));
  }
}

// --- scratch-reuse helper ---

TEST(EnsureShape2, ReusesAllocationWhenShapeUnchanged) {
  ct::Tensor t({4, 5});
  const float* before = t.data();
  ct::ensure_shape2(t, 4, 5);
  EXPECT_EQ(t.data(), before);  // no reallocation.
  ct::ensure_shape2(t, 3, 2);
  EXPECT_EQ(t.rows(), 3U);
  EXPECT_EQ(t.cols(), 2U);
}

}  // namespace
