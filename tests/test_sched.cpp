// Step-graph scheduler suite (DESIGN.md §13): StepGraph ordering/stats
// semantics, bit-identical optimizer trajectories at any engine thread
// count (clean, fault-injected, and across a checkpoint/resume), the
// trace-derived overlap + idle-gap gate, and the steady-state allocation
// invariant for evicted-rank covariance slots.

#include "src/comm/fault_injector.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/obs/obs.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/optim/step_graph.hpp"
#include "src/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace opt = compso::optim;
namespace nn = compso::nn;
namespace obs = compso::obs;
namespace ct = compso::tensor;
namespace cc = compso::compress;

namespace {

// --- StepGraph unit semantics ---

TEST(StepGraph, OrderRespectsDependencies) {
  opt::StepGraph g;
  const auto a = g.add_main("a", 0, [] {});
  const auto b = g.add_compute("b", 0, [] {});
  const auto c = g.add_main("c", 0, [] {});
  g.depends(c, b);
  g.depends(b, a);
  const auto ord = g.order();
  ASSERT_EQ(ord.size(), 3U);
  // b is compute but blocked behind main a; c follows b.
  EXPECT_EQ(ord[0], a);
  EXPECT_EQ(ord[1], b);
  EXPECT_EQ(ord[2], c);
}

TEST(StepGraph, ComputeFirstThenPriorityThenInsertion) {
  opt::StepGraph g;
  const auto main_hi = g.add_main("main_hi", 100, [] {});
  const auto comp_lo = g.add_compute("comp_lo", -5, [] {});
  const auto comp_hi = g.add_compute("comp_hi", 7, [] {});
  const auto main_lo = g.add_main("main_lo", 1, [] {});
  const auto main_tie = g.add_main("main_tie", 1, [] {});
  const auto ord = g.order();
  ASSERT_EQ(ord.size(), 5U);
  // All-ready set: compute beats main regardless of priority, then
  // priority descending, then insertion order on ties.
  EXPECT_EQ(ord[0], comp_hi);
  EXPECT_EQ(ord[1], comp_lo);
  EXPECT_EQ(ord[2], main_hi);
  EXPECT_EQ(ord[3], main_lo);
  EXPECT_EQ(ord[4], main_tie);
}

TEST(StepGraph, CycleThrows) {
  opt::StepGraph g;
  const auto a = g.add_main("a", 0, [] {});
  const auto b = g.add_main("b", 0, [] {});
  g.depends(a, b);
  g.depends(b, a);
  EXPECT_THROW(g.order(), std::logic_error);
}

TEST(StepGraph, DependsValidatesIds) {
  opt::StepGraph g;
  const auto a = g.add_main("a", 0, [] {});
  EXPECT_THROW(g.depends(a, 99), std::logic_error);
  EXPECT_THROW(g.depends(99, a), std::logic_error);
  EXPECT_THROW(g.depends(a, a), std::logic_error);
}

TEST(StepGraph, RunExecutesEveryTaskAndCountsStats) {
  for (const std::size_t threads : {0UL, 2UL}) {
    opt::StepGraph g;
    cc::CompressionEngine eng(threads);
    std::vector<int> log;
    const auto c0 = g.add_compute("c0", 0, [&] {});
    const auto c1 = g.add_compute("c1", 1, [&] {});
    const auto m0 = g.add_main("m0", 0, [&] { log.push_back(0); }, true);
    const auto m1 = g.add_main("m1", -1, [&] { log.push_back(1); }, true);
    g.depends(m0, c0);
    g.depends(m1, m0);
    g.depends(m1, c1);
    const auto st = g.run(eng, obs::ObsHooks{});
    EXPECT_EQ(st.tasks, 4U);
    EXPECT_EQ(st.compute_tasks, 2U);
    EXPECT_EQ(st.main_tasks, 2U);
    EXPECT_EQ(st.comm_tasks, 2U);
    // m0 runs with c1 still in flight (reaped only at m1); m1 runs after
    // both reaps with nothing left to submit.
    EXPECT_EQ(st.overlapped_comm, 1U) << "threads=" << threads;
    EXPECT_EQ(st.idle_comm, 0U) << "threads=" << threads;
    EXPECT_EQ(st.max_in_flight, 2U) << "threads=" << threads;
    ASSERT_EQ(log.size(), 2U);
    EXPECT_EQ(log[0], 0);
    EXPECT_EQ(log[1], 1);
  }
}

TEST(StepGraph, IdleCommCountedWhenNothingInFlight) {
  opt::StepGraph g;
  cc::CompressionEngine eng(0);
  const auto c = g.add_compute("c", 0, [] {});
  const auto m = g.add_main("m", 0, [] {}, true);
  // The compute task is gated behind the collective, so the collective
  // runs bare while compute work still waits — the idle-gap shape.
  g.depends(c, m);
  const auto st = g.run(eng, obs::ObsHooks{});
  EXPECT_EQ(st.overlapped_comm, 0U);
  EXPECT_EQ(st.idle_comm, 1U);  // ran bare with compute still unsubmitted.
}

TEST(StepGraph, ComputeExceptionIsReapedAndRethrown) {
  for (const std::size_t threads : {0UL, 2UL}) {
    opt::StepGraph g;
    cc::CompressionEngine eng(threads);
    bool tail_ran = false;
    const auto bad =
        g.add_compute("bad", 0, [] { throw std::runtime_error("boom"); });
    const auto sink = g.add_main("sink", 0, [&] { tail_ran = true; });
    g.depends(sink, bad);
    EXPECT_THROW(g.run(eng, obs::ObsHooks{}), std::runtime_error)
        << "threads=" << threads;
    EXPECT_FALSE(tail_ran) << "threads=" << threads;
    // The engine's ticket table was drained: the next run is clean.
    opt::StepGraph g2;
    bool ok = false;
    g2.add_compute("ok", 0, [&] { ok = true; });
    EXPECT_NO_THROW(g2.run(eng, obs::ObsHooks{}));
    EXPECT_TRUE(ok) << "threads=" << threads;
  }
}

TEST(StepGraph, MainExceptionReapsInFlightComputeAndRethrows) {
  cc::CompressionEngine eng(2);
  opt::StepGraph g;
  g.add_compute("slow", 5, [] {});
  const auto bad =
      g.add_main("bad", 0, [] { throw std::runtime_error("main boom"); });
  (void)bad;
  EXPECT_THROW(g.run(eng, obs::ObsHooks{}), std::runtime_error);
  EXPECT_NO_THROW(eng.wait_all());  // nothing left outstanding.
}

// The scheduler's trace is stamped in logical ticks claimed on the
// calling thread, so the recorded spans must be identical — names,
// tracks, timestamps, durations — at any engine thread count.
std::vector<obs::Tracer::Event> trace_small_graph(std::size_t threads) {
  cc::CompressionEngine eng(threads);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  opt::StepGraph g;
  const auto c0 = g.add_compute("c0", 0, [] {});
  const auto c1 = g.add_compute("c1", 1, [] {});
  const auto m0 = g.add_main("m0", 1, [] {}, true);
  const auto m1 = g.add_main("m1", 0, [] {});
  g.depends(m0, c1);
  g.depends(m1, m0);
  g.depends(m1, c0);
  g.run(eng, obs::ObsHooks{.metrics = &metrics, .tracer = &tracer});
  return tracer.events();
}

TEST(StepGraph, TraceIsIdenticalAcrossThreadCounts) {
  const auto base = trace_small_graph(0);
  ASSERT_FALSE(base.empty());
  for (const std::size_t threads : {1UL, 4UL}) {
    const auto got = trace_small_graph(threads);
    ASSERT_EQ(got.size(), base.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i].name, base[i].name) << "threads=" << threads;
      EXPECT_EQ(got[i].cat, base[i].cat) << "threads=" << threads;
      EXPECT_EQ(got[i].track, base[i].track) << "threads=" << threads;
      EXPECT_EQ(got[i].seq, base[i].seq) << "threads=" << threads;
      EXPECT_EQ(got[i].ts_ns, base[i].ts_ns) << "threads=" << threads;
      EXPECT_EQ(got[i].dur_ns, base[i].dur_ns) << "threads=" << threads;
    }
  }
}

// --- graph-scheduled optimizers: bit-exact at any thread count ---

struct DistFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit DistFixture(std::size_t world) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  std::vector<float> flat_params() {
    std::vector<float> out;
    for (std::size_t li : replicas[0].trainable_layers()) {
      auto& layer = replicas[0].layer(li);
      const auto w = layer.weight()->span();
      const auto b = layer.bias()->span();
      out.insert(out.end(), w.begin(), w.end());
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
};

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " diverges at " << i;
  }
}

std::vector<float> run_kfac_sched(std::size_t engine_threads) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1, .eigen_refresh_every = 2,
                      .aggregation = 2},
                     comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  kfac.set_engine(&eng);
  const auto compso = cc::make_compso({});
  const auto factor_comp = cc::make_compso(
      {.filter_bound = 0.0, .quant_bound = 1e-4, .use_filter = false});
  kfac.set_factor_compressor(factor_comp.get());
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(SchedDeterminism, DistKfacBitExactAcrossThreadCounts) {
  const auto serial = run_kfac_sched(0);
  expect_bitwise_equal(serial, run_kfac_sched(1), "1-thread engine");
  expect_bitwise_equal(serial, run_kfac_sched(2), "2-thread engine");
  expect_bitwise_equal(serial, run_kfac_sched(8), "8-thread engine");
}

std::vector<float> run_sgd_sched(std::size_t engine_threads) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({.momentum = 0.9, .error_feedback = true}, comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  sgd.set_engine(&eng);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    sgd.step(0.05, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(SchedDeterminism, DistSgdBitExactAcrossThreadCounts) {
  const auto serial = run_sgd_sched(0);
  expect_bitwise_equal(serial, run_sgd_sched(2), "2-thread engine");
  expect_bitwise_equal(serial, run_sgd_sched(8), "8-thread engine");
}

// --- fault injection + checkpoint/resume under the scheduler ---

core::FtTrainerConfig sched_ft_config(core::OptimizerKind kind,
                                      std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 31337};
  cfg.optimizer = kind;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 20;
  cfg.engine_threads = engine_threads;
  return cfg;
}

cm::FaultPlan sched_fault_plan() {
  cm::FaultPlan plan;
  plan.corrupt(1, 2).drop(3, 1).truncate(5, 0).nan_gradient(6, 2);
  return plan;
}

TEST(SchedDeterminism, FaultInjectedTrajectoryIndependentOfThreads) {
  for (const auto kind :
       {core::OptimizerKind::kSgd, core::OptimizerKind::kKfac}) {
    const char* what =
        kind == core::OptimizerKind::kSgd ? "sgd+faults" : "kfac+faults";
    std::vector<double> base_loss;
    std::vector<float> base_params;
    for (const std::size_t threads : {0UL, 2UL, 8UL}) {
      core::FaultTolerantTrainer trainer(sched_ft_config(kind, threads));
      trainer.set_fault_plan(sched_fault_plan(), 4242);
      const auto loss = trainer.run(8);
      if (threads == 0) {
        base_loss = loss;
        base_params = trainer.parameters();
        continue;
      }
      ASSERT_EQ(loss.size(), base_loss.size()) << what;
      for (std::size_t i = 0; i < loss.size(); ++i) {
        EXPECT_EQ(loss[i], base_loss[i]) << what << " iteration " << i;
      }
      expect_bitwise_equal(base_params, trainer.parameters(), what);
    }
  }
}

TEST(SchedDeterminism, CheckpointResumeBitExactAcrossThreadCounts) {
  core::FaultTolerantTrainer straight(
      sched_ft_config(core::OptimizerKind::kKfac, 8));
  straight.run(12);

  // Interrupt at 6 under an 8-thread engine, resume under a 2-thread
  // one: checkpoints carry no engine or scheduler state, so the resumed
  // graph replays the identical transcript.
  core::FaultTolerantTrainer first(
      sched_ft_config(core::OptimizerKind::kKfac, 8));
  first.run(6);
  const auto frame = first.checkpoint();
  core::FaultTolerantTrainer resumed(
      sched_ft_config(core::OptimizerKind::kKfac, 2));
  resumed.restore(frame);
  EXPECT_EQ(resumed.iteration(), 6U);
  resumed.run(6);

  expect_bitwise_equal(straight.parameters(), resumed.parameters(),
                       "resumed trajectory");
}

// --- the overlap + idle-gap trace gate (ISSUE 6 tentpole criterion) ---

bool ticks_overlap(const obs::Tracer::Event& a, const obs::Tracer::Event& b) {
  return a.ts_ns < b.ts_ns + b.dur_ns && a.ts_ns + a.dur_ns > b.ts_ns;
}

TEST(SchedOverlap, CompressionOverlapsAnotherLayersCollective) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1, .aggregation = 2}, comm, f.ptrs);
  cc::CompressionEngine eng(2);
  kfac.set_engine(&eng);
  const auto compso = cc::make_compso({});
  const auto factor_comp = cc::make_compso(
      {.filter_bound = 0.0, .quant_bound = 1e-4, .use_filter = false});
  kfac.set_factor_compressor(factor_comp.get());
  ct::Rng data_rng(1), sr_rng(2);

  // Warm up without obs, then trace exactly one step so every span in
  // the export belongs to the same logical-tick timeline.
  for (std::size_t t = 0; t < 2; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  comm.set_obs({.metrics = &metrics, .tracer = &tracer});
  f.run_fwd_bwd(data_rng);
  kfac.step(2, 0.01, compso.get(), sr_rng);
  comm.set_obs({});

  const auto& st = kfac.last_sched_stats();
  EXPECT_GE(st.overlapped_comm, 1U);
  EXPECT_EQ(st.idle_comm, 0U);
  EXPECT_GE(st.max_in_flight, 2U);

  const auto events = tracer.events();
  std::vector<obs::Tracer::Event> task_spans;  // compute: [submit, reap)
  std::vector<obs::Tracer::Event> comm_spans;
  for (const auto& e : events) {
    if (e.cat == "sched.task") task_spans.push_back(e);
    if (e.cat == "sched.comm") comm_spans.push_back(e);
  }
  ASSERT_FALSE(task_spans.empty());
  ASSERT_FALSE(comm_spans.empty());

  // Headline overlap: some layer's compression span covers another
  // layer's collective span (the paper's Fig. 1 "compress while
  // communicating" shape). The fused covariance task carries the factor
  // compression, so match its span against a different slot's exchange.
  bool found_overlap = false;
  for (const auto& task : task_spans) {
    if (task.name.find("cov_compress") == std::string::npos) continue;
    const std::string slot = task.name.substr(task.name.size() - 1);
    for (const auto& comm_e : comm_spans) {
      const bool other_layer =
          (comm_e.name.find("factor_exchange") != std::string::npos ||
           comm_e.name.find("grad_allreduce") != std::string::npos) &&
          comm_e.name.substr(comm_e.name.size() - 1) != slot;
      if (other_layer && ticks_overlap(task, comm_e)) {
        found_overlap = true;
        break;
      }
    }
    if (found_overlap) break;
  }
  EXPECT_TRUE(found_overlap)
      << "no compression span overlaps another layer's collective";

  // Idle-gap gate: every per-layer collective runs with at least one
  // compute task in flight (the gather/update tail is the sink — by
  // construction nothing can overlap it, so it is exempt).
  for (const auto& comm_e : comm_spans) {
    if (comm_e.name.find("factor_exchange") == std::string::npos &&
        comm_e.name.find("grad_allreduce") == std::string::npos) {
      continue;
    }
    bool covered = false;
    for (const auto& task : task_spans) {
      if (ticks_overlap(task, comm_e)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "idle gap under " << comm_e.name;
  }
}

// --- steady-state allocations (ISSUE 6 satellite: evicted-rank slots) ---

TEST(SchedSteadyState, EvictedRankStepsAllocateNoMoreThanActiveSteps) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  // Refresh the eigendecomposition every step so the two measured steps
  // do identical work modulo the eviction.
  opt::DistKfac kfac({.damping = 0.1, .eigen_refresh_every = 1}, comm,
                     f.ptrs);
  ct::Rng data_rng(1), sr_rng(2);
  const auto one_step = [&](std::size_t t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, nullptr, sr_rng);
  };
  for (std::size_t t = 0; t < 3; ++t) one_step(t);  // reach steady state.

  const std::uint64_t before_active = ct::Tensor::allocation_count();
  one_step(3);
  const std::uint64_t active_delta =
      ct::Tensor::allocation_count() - before_active;

  comm.evict(3);
  one_step(4);  // transition step: inactive slots allocate once...
  const std::uint64_t before_evicted = ct::Tensor::allocation_count();
  one_step(5);  // ...then steady-state steps must reuse them in place.
  const std::uint64_t evicted_delta =
      ct::Tensor::allocation_count() - before_evicted;

  // The old implementation re-allocated two zero tensors per evicted
  // rank per layer per step, which would make the evicted step strictly
  // more allocation-hungry than the all-active one.
  EXPECT_LE(evicted_delta, active_delta)
      << "evicted-rank covariance slots are re-allocated per step";
}

}  // namespace
