// Failure-injection tests: decoding must never crash or loop on corrupted
// input — every codec and compressor either throws std::exception or
// returns data of the advertised size.

#include "src/codec/codec.hpp"
#include "src/compress/compressor.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

namespace cc = compso::codec;
namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

cc::Bytes sample_encoded(const cc::Codec& codec, std::size_t n,
                         std::uint64_t seed) {
  ct::Rng rng(seed);
  cc::Bytes data(n);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform_index(24));
  }
  return codec.encode(data);
}

/// Decodes and tolerates either an exception or a (possibly wrong) result.
/// Crashing / hanging is the only failure mode under test.
void expect_contained(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // acceptable: corruption detected
  }
}

class CodecCorruption : public ::testing::TestWithParam<cc::CodecKind> {};

TEST_P(CodecCorruption, TruncatedStreamIsContained) {
  const auto codec = cc::make_codec(GetParam());
  const auto enc = sample_encoded(*codec, 4096, 1);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, enc.size() / 2, enc.size() - 1}) {
    cc::ByteView cut(enc.data(), std::min(keep, enc.size()));
    expect_contained([&] { (void)codec->decode(cut); });
  }
}

TEST_P(CodecCorruption, BitFlipsAreContained) {
  const auto codec = cc::make_codec(GetParam());
  const auto enc = sample_encoded(*codec, 4096, 2);
  ct::Rng rng(3);
  for (int trial = 0; trial < 32; ++trial) {
    cc::Bytes mutated = enc;
    // Flip a random bit beyond the magic header so decode engages.
    const std::size_t pos =
        4 + rng.uniform_index(std::max<std::size_t>(mutated.size() - 4, 1));
    mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.uniform_index(8));
    expect_contained([&] { (void)codec->decode(mutated); });
  }
}

TEST_P(CodecCorruption, WrongCodecStreamRejected) {
  const auto codec = cc::make_codec(GetParam());
  // Feed a stream produced by a *different* codec: the magic must trip.
  const auto other = cc::make_codec(GetParam() == cc::CodecKind::kAns
                                        ? cc::CodecKind::kLz4
                                        : cc::CodecKind::kAns);
  const auto enc = sample_encoded(*other, 1024, 4);
  EXPECT_THROW((void)codec->decode(enc), std::invalid_argument);
}

TEST_P(CodecCorruption, EmptyStreamRejected) {
  const auto codec = cc::make_codec(GetParam());
  EXPECT_THROW((void)codec->decode({}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecCorruption,
                         ::testing::ValuesIn(std::vector<cc::CodecKind>(
                             std::begin(cc::kAllCodecKinds),
                             std::end(cc::kAllCodecKinds))),
                         [](const auto& info) {
                           return std::string(cc::to_string(info.param));
                         });

struct CompressorCase {
  const char* name;
  std::function<std::unique_ptr<cp::GradientCompressor>()> make;
};

class CompressorCorruption
    : public ::testing::TestWithParam<CompressorCase> {};

TEST_P(CompressorCorruption, TruncatedPayloadIsContained) {
  const auto c = GetParam().make();
  ct::Rng rng(5);
  const auto grad =
      ct::synthetic_gradient(5000, ct::GradientProfile::kfac(), rng);
  const auto payload = c->compress(grad, rng);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{7}, payload.size() / 3,
        payload.size() - 1}) {
    cc::ByteView cut(payload.data(), std::min(keep, payload.size()));
    expect_contained([&] { (void)c->decompress(cut); });
  }
}

TEST_P(CompressorCorruption, BitFlipsAreContained) {
  const auto c = GetParam().make();
  ct::Rng rng(6);
  const auto grad =
      ct::synthetic_gradient(5000, ct::GradientProfile::kfac(), rng);
  const auto payload = c->compress(grad, rng);
  for (int trial = 0; trial < 24; ++trial) {
    auto mutated = payload;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.uniform_index(8));
    expect_contained([&] { (void)c->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompressors, CompressorCorruption,
    ::testing::Values(
        CompressorCase{"COMPSO", [] { return cp::make_compso({}); }},
        CompressorCase{"QSGD", [] { return cp::make_qsgd(8); }},
        CompressorCase{"SZ", [] { return cp::make_sz(4e-3); }},
        CompressorCase{"Cocktail", [] { return cp::make_cocktail(0.2, 8); }},
        CompressorCase{"TopK", [] { return cp::make_topk(0.1); }},
        CompressorCase{"Identity", [] { return cp::make_identity(); }}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
