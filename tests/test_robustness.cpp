// Failure-injection tests: decoding must never crash or loop on corrupted
// input — every codec and compressor either throws std::exception or
// returns data of the advertised size.

#include "src/codec/codec.hpp"
#include "src/compress/compressor.hpp"
#include "src/quant/bitpack.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

namespace cc = compso::codec;
namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

cc::Bytes sample_encoded(const cc::Codec& codec, std::size_t n,
                         std::uint64_t seed) {
  ct::Rng rng(seed);
  cc::Bytes data(n);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform_index(24));
  }
  return codec.encode(data);
}

/// Decodes and tolerates either an exception or a (possibly wrong) result.
/// Crashing / hanging is the only failure mode under test.
void expect_contained(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception&) {
    // acceptable: corruption detected
  }
}

class CodecCorruption : public ::testing::TestWithParam<cc::CodecKind> {};

TEST_P(CodecCorruption, TruncatedStreamIsContained) {
  const auto codec = cc::make_codec(GetParam());
  const auto enc = sample_encoded(*codec, 4096, 1);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{4}, enc.size() / 2, enc.size() - 1}) {
    cc::ByteView cut(enc.data(), std::min(keep, enc.size()));
    expect_contained([&] { (void)codec->decode(cut); });
  }
}

TEST_P(CodecCorruption, BitFlipsAreContained) {
  const auto codec = cc::make_codec(GetParam());
  const auto enc = sample_encoded(*codec, 4096, 2);
  ct::Rng rng(3);
  for (int trial = 0; trial < 32; ++trial) {
    cc::Bytes mutated = enc;
    // Flip a random bit beyond the magic header so decode engages.
    const std::size_t pos =
        4 + rng.uniform_index(std::max<std::size_t>(mutated.size() - 4, 1));
    mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.uniform_index(8));
    expect_contained([&] { (void)codec->decode(mutated); });
  }
}

TEST_P(CodecCorruption, WrongCodecStreamRejected) {
  const auto codec = cc::make_codec(GetParam());
  // Feed a stream produced by a *different* codec: the magic must trip.
  const auto other = cc::make_codec(GetParam() == cc::CodecKind::kAns
                                        ? cc::CodecKind::kLz4
                                        : cc::CodecKind::kAns);
  const auto enc = sample_encoded(*other, 1024, 4);
  EXPECT_THROW((void)codec->decode(enc), std::invalid_argument);
}

TEST_P(CodecCorruption, EmptyStreamRejected) {
  const auto codec = cc::make_codec(GetParam());
  EXPECT_THROW((void)codec->decode({}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecCorruption,
                         ::testing::ValuesIn(std::vector<cc::CodecKind>(
                             std::begin(cc::kAllCodecKinds),
                             std::end(cc::kAllCodecKinds))),
                         [](const auto& info) {
                           return std::string(cc::to_string(info.param));
                         });

struct CompressorCase {
  const char* name;
  std::function<std::unique_ptr<cp::GradientCompressor>()> make;
};

class CompressorCorruption
    : public ::testing::TestWithParam<CompressorCase> {};

TEST_P(CompressorCorruption, TruncatedPayloadIsContained) {
  const auto c = GetParam().make();
  ct::Rng rng(5);
  const auto grad =
      ct::synthetic_gradient(5000, ct::GradientProfile::kfac(), rng);
  const auto payload = c->compress(grad, rng);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{7}, payload.size() / 3,
        payload.size() - 1}) {
    cc::ByteView cut(payload.data(), std::min(keep, payload.size()));
    expect_contained([&] { (void)c->decompress(cut); });
  }
}

TEST_P(CompressorCorruption, BitFlipsAreContained) {
  const auto c = GetParam().make();
  ct::Rng rng(6);
  const auto grad =
      ct::synthetic_gradient(5000, ct::GradientProfile::kfac(), rng);
  const auto payload = c->compress(grad, rng);
  for (int trial = 0; trial < 24; ++trial) {
    auto mutated = payload;
    const std::size_t pos = rng.uniform_index(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1U << rng.uniform_index(8));
    expect_contained([&] { (void)c->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompressors, CompressorCorruption,
    ::testing::Values(
        CompressorCase{"COMPSO", [] { return cp::make_compso({}); }},
        CompressorCase{"QSGD", [] { return cp::make_qsgd(8); }},
        CompressorCase{"SZ", [] { return cp::make_sz(4e-3); }},
        CompressorCase{"Cocktail", [] { return cp::make_cocktail(0.2, 8); }},
        CompressorCase{"TopK", [] { return cp::make_topk(0.1); }},
        CompressorCase{"Identity", [] { return cp::make_identity(); }}),
    [](const auto& info) { return std::string(info.param.name); });

// --- targeted regressions for the wire-format hardening ------------------

namespace cq = compso::quant;

TEST(BitpackHardening, WidthAbove64Throws) {
  // bits > 64 used to shift the read accumulator past its width (UB); both
  // the reader and the unpack entry point must reject it up front.
  cc::Bytes bytes(64, 0xAB);
  cq::BitReader r(bytes);
  EXPECT_THROW((void)r.read(65), compso::PayloadError);
  EXPECT_THROW((void)cq::unpack_codes(bytes, 65, 4), compso::PayloadError);
  EXPECT_THROW((void)cq::unpack_codes(bytes, 0, 4), compso::PayloadError);
}

TEST(BitpackHardening, TruncatedStreamThrowsInsteadOfZeroPadding) {
  // A stream that cannot hold count * bits bits used to decode the missing
  // tail as silent zeros.
  const std::vector<std::int64_t> codes{1, -2, 3, -4, 5, -6, 7, -8};
  const auto packed = cq::pack_codes(codes, 7);
  const auto ok = cq::unpack_codes(packed, 7, codes.size());
  EXPECT_EQ(ok, codes);
  cc::ByteView cut(packed.data(), packed.size() - 1);
  EXPECT_THROW((void)cq::unpack_codes(cut, 7, codes.size()),
               compso::PayloadError);
}

TEST(BitpackHardening, HostileCountRejectedBeforeAllocation) {
  // A corrupt 8-byte count field used to drive the output allocation
  // directly (up to 2^64 elements) before any consistency check.
  cc::Bytes bytes(16, 0xFF);
  EXPECT_THROW(
      (void)cq::unpack_codes(bytes, 8, ~std::uint64_t{0} / 2),
      compso::PayloadError);
}

TEST(CompressorHardening, CorruptBitWidthRejected) {
  const auto c = cp::make_compso({});
  ct::Rng rng(17);
  const auto grad =
      ct::synthetic_gradient(2000, ct::GradientProfile::kfac(), rng);
  auto payload = c->compress(grad, rng);
  // Body layout: [f64 step][u8 bit_width][u8 flags]...; the width byte sits
  // right after the 17-byte header + 8-byte step.
  payload[cc::wire::kHeaderSize + 8] = 200;
  EXPECT_THROW((void)c->decompress(payload), compso::PayloadError);
}

TEST(CompressorHardening, CorruptCountRejected) {
  const auto c = cp::make_compso({});
  ct::Rng rng(18);
  const auto grad =
      ct::synthetic_gradient(2000, ct::GradientProfile::kfac(), rng);
  auto payload = c->compress(grad, rng);
  // The count lives at header offset 5; any change must trip the frame CRC
  // before a count-driven allocation can happen.
  for (int byte = 5; byte < 13; ++byte) {
    auto mutated = payload;
    mutated[static_cast<std::size_t>(byte)] ^= 0x40U;
    EXPECT_THROW((void)c->decompress(mutated), compso::PayloadError) << byte;
  }
}

TEST(CompressorHardening, WrongCompressorPayloadRejected) {
  // Every compressor writes its own magic; feeding one compressor's frame
  // to another must fail on the magic check, not on downstream parsing.
  ct::Rng rng(19);
  const auto grad =
      ct::synthetic_gradient(500, ct::GradientProfile::kfac(), rng);
  const auto compso = cp::make_compso({});
  const auto qsgd = cp::make_qsgd(8);
  const auto identity = cp::make_identity();
  const auto payload = compso->compress(grad, rng);
  EXPECT_THROW((void)qsgd->decompress(payload), compso::PayloadError);
  EXPECT_THROW((void)identity->decompress(payload), compso::PayloadError);
  const auto raw = identity->compress(grad, rng);
  EXPECT_THROW((void)compso->decompress(raw), compso::PayloadError);
}

TEST(CompressorHardening, FilterDisabledShipsNoBitmap) {
  // With the filter off the old payload still carried an encoded all-zero
  // bitmap blob; now the flags bit says "no bitmap" and the survivor-count
  // and bitmap fields disappear from the body entirely.
  ct::Rng rng(20);
  const auto grad =
      ct::synthetic_gradient(4096, ct::GradientProfile::kfac(), rng);
  const auto with = cp::make_compso({});
  const auto without = cp::make_compso({.use_filter = false});
  ct::Rng sr_a(21), sr_b(21);
  const auto p_with = with->compress(grad, sr_a);
  const auto p_without = without->compress(grad, sr_b);
  // Body layout: [f64 step][u8 bit_width][u8 flags]; flags bit 0 = filter.
  EXPECT_EQ(p_with[cc::wire::kHeaderSize + 9], 1);
  EXPECT_EQ(p_without[cc::wire::kHeaderSize + 9], 0);
  // The unfiltered payload must still round-trip to full size.
  EXPECT_EQ(without->decompress(p_without).size(), grad.size());
}

}  // namespace
