// Deterministic observability across the COMPSO pipeline (DESIGN.md §12):
// with the tracer driven by the simulated comm clock, the exported
// trace.json and metrics snapshot are byte-identical at any engine thread
// count and across checkpoint/resume, and the byte counters reconcile
// exactly with the Communicator's CommStats / RecoveryStats.
//
// The fault plans here use drop / straggler / nan-gradient events only:
// kCorruptPayload consumes the injector's RNG to synthesize damage, so
// payload bytes after a corrupt event depend on injector RNG state, which
// a resumed run does not replay.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace obs = compso::obs;

namespace {

core::FtTrainerConfig obs_config(std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 4242};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 40;
  cfg.engine_threads = engine_threads;
  return cfg;
}

cm::FaultPlan resume_safe_plan() {
  return cm::FaultPlan{}
      .drop(2, 1)
      .straggler(4, 2, 0.25)
      .nan_gradient(6, 0);
}

struct Exports {
  std::string trace;
  std::string metrics;
};

/// Runs `steps` iterations with a fresh registry + tracer attached,
/// tracer driven by the simulated comm clock (deterministic).
Exports run_with_obs(std::size_t engine_threads, std::size_t steps,
                     bool with_faults) {
  core::FaultTolerantTrainer trainer(obs_config(engine_threads));
  if (with_faults) trainer.set_fault_plan(resume_safe_plan(), 77);

  obs::MetricsRegistry registry;
  const auto clock = cm::sim_time_clock(trainer.comm().clocks());
  obs::Tracer tracer(&clock);
  trainer.set_obs({.metrics = &registry, .tracer = &tracer});

  trainer.run(steps);
  return {tracer.trace_json(), registry.to_json()};
}

TEST(ObsDeterminism, ExportsByteIdenticalAcrossEngineThreadCounts) {
  const auto one = run_with_obs(1, 10, /*with_faults=*/false);
  const auto two = run_with_obs(2, 10, /*with_faults=*/false);
  const auto eight = run_with_obs(8, 10, /*with_faults=*/false);
  EXPECT_EQ(one.trace, two.trace);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.metrics, two.metrics);
  EXPECT_EQ(one.metrics, eight.metrics);
  EXPECT_EQ(obs::validate_trace(one.trace), std::nullopt);
}

TEST(ObsDeterminism, ExportsByteIdenticalAcrossThreadCountsUnderFaults) {
  const auto one = run_with_obs(1, 10, /*with_faults=*/true);
  const auto eight = run_with_obs(8, 10, /*with_faults=*/true);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.metrics, eight.metrics);
}

TEST(ObsDeterminism, CommByteCountersReconcileExactlyWithCommStats) {
  core::FaultTolerantTrainer trainer(obs_config(0));
  obs::MetricsRegistry registry;
  const auto clock = cm::sim_time_clock(trainer.comm().clocks());
  obs::Tracer tracer(&clock);
  trainer.set_obs({.metrics = &registry, .tracer = &tracer});

  trainer.run(8);
  const auto& stats = trainer.comm().stats();
  // The obs counters increment with the exact expressions CommStats uses,
  // so bytes reconcile to the bit (times only approximately: per-call
  // llround-to-ns sums differ from the rounded sum of seconds).
  EXPECT_EQ(registry.counter("comm.allreduce.bytes"), stats.allreduce_bytes);
  EXPECT_EQ(registry.counter("comm.allgather.bytes"), stats.allgather_bytes);
  EXPECT_GT(registry.counter("comm.allreduce.calls"), 0U);
  EXPECT_GT(registry.counter("comm.allgather.calls"), 0U);
  const double sim_s =
      static_cast<double>(registry.counter("comm.allreduce.sim_ns")) * 1e-9;
  EXPECT_NEAR(sim_s, stats.allreduce_s, 1e-6 * (1.0 + stats.allreduce_s));
}

TEST(ObsDeterminism, RecoveryCountersReconcileWithRecoveryStats) {
  core::FaultTolerantTrainer trainer(obs_config(0));
  trainer.set_fault_plan(cm::FaultPlan{}
                             .drop(1, 1)
                             .drop(3, 2)
                             .truncate(4, 0)
                             .straggler(5, 3, 0.5)
                             .nan_gradient(6, 1),
                         123);
  obs::MetricsRegistry registry;
  const auto clock = cm::sim_time_clock(trainer.comm().clocks());
  obs::Tracer tracer(&clock);
  trainer.set_obs({.metrics = &registry, .tracer = &tracer});

  trainer.run(10);
  const auto& rc = trainer.comm().recovery();
  const std::pair<const char*, std::uint64_t> expected[] = {
      {"recovery.corrupt_injected", rc.corrupt_injected},
      {"recovery.drops_injected", rc.drops_injected},
      {"recovery.truncations_injected", rc.truncations_injected},
      {"recovery.straggler_events", rc.straggler_events},
      {"recovery.decode_retries", rc.decode_retries},
      {"recovery.decode_failures", rc.decode_failures},
      {"recovery.fallback_steps", rc.fallback_steps},
      {"recovery.degraded_layers", rc.degraded_layers},
      {"recovery.evictions", rc.evictions},
      {"recovery.nonfinite_skips", rc.nonfinite_skips},
      {"recovery.bound_tightenings", rc.bound_tightenings},
      {"recovery.checkpoint_saves", rc.checkpoint_saves},
      {"recovery.checkpoint_restores", rc.checkpoint_restores},
  };
  for (const auto& [name, value] : expected) {
    EXPECT_EQ(registry.counter(name), value) << name;
  }
  // The plan must actually have exercised the interesting paths.
  EXPECT_EQ(rc.drops_injected, 2U);
  EXPECT_EQ(rc.straggler_events, 1U);
  EXPECT_GE(rc.nonfinite_skips, 1U);
  EXPECT_GE(rc.bound_tightenings, 1U);
}

TEST(ObsDeterminism, SaveResumeExportsByteIdentical) {
  constexpr std::size_t kSplit = 8, kTail = 8;

  // Uninterrupted run: train to the split point, then attach fresh obs
  // and record the tail.
  core::FaultTolerantTrainer a(obs_config(0));
  a.set_fault_plan(resume_safe_plan(), 77);
  a.run(kSplit);
  obs::MetricsRegistry reg_a;
  const auto clock_a = cm::sim_time_clock(a.comm().clocks());
  obs::Tracer tracer_a(&clock_a);
  a.set_obs({.metrics = &reg_a, .tracer = &tracer_a});
  a.run(kTail);

  // Interrupted run: train to the split point, checkpoint, restore into a
  // fresh trainer, attach fresh obs at the same logical step, record the
  // same tail.
  core::FaultTolerantTrainer b(obs_config(0));
  b.set_fault_plan(resume_safe_plan(), 77);
  b.run(kSplit);
  const auto frame = b.checkpoint();

  core::FaultTolerantTrainer c(obs_config(0));
  c.restore(frame);
  c.set_fault_plan(resume_safe_plan(), 77);
  ASSERT_EQ(c.iteration(), kSplit);
  obs::MetricsRegistry reg_c;
  const auto clock_c = cm::sim_time_clock(c.comm().clocks());
  obs::Tracer tracer_c(&clock_c);
  c.set_obs({.metrics = &reg_c, .tracer = &tracer_c});
  c.run(kTail);

  // The checkpoint carries the simulated per-rank clocks, so the resumed
  // trainer replays the exact absolute timeline: every llround-to-ns
  // conversion sees bit-identical doubles and the exports match bytewise.
  // (Relative timestamps alone would not survive — llround((T+dt)e9) -
  // llround(T*1e9) need not equal llround(dt*1e9).)
  EXPECT_EQ(tracer_a.trace_json(), tracer_c.trace_json());
  EXPECT_EQ(reg_a.to_json(), reg_c.to_json());
  EXPECT_EQ(obs::validate_trace(tracer_a.trace_json()), std::nullopt);
}

TEST(ObsDeterminism, TuneGaugesAreRecorded) {
  cm::Communicator comm(cm::Topology::with_gpus(8),
                        cm::NetworkModel::platform1());
  compso::optim::StepLr lr(0.1, 0.1, {25});
  core::CompsoFramework fw({}, lr, 100, comm);
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  fw.set_obs({.metrics = &registry, .tracer = &tracer});
  compso::tensor::Rng rng(8);
  const auto grad = compso::tensor::synthetic_gradient(
      1 << 14, compso::tensor::GradientProfile::kfac(), rng);
  fw.tune({1 << 16, 1 << 16, 1 << 16, 1 << 16}, grad, 0.4, rng);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.gauges.at("tune.selected.aggregation"),
            static_cast<double>(fw.aggregation()));
  EXPECT_DOUBLE_EQ(snap.gauges.at("tune.est_e2e"), fw.estimated_end_to_end());
  // One gauge pair per scored encoder, one per aggregation candidate.
  for (const auto& score : fw.encoder_scores()) {
    const std::string stem =
        std::string("tune.encoder.") + compso::codec::to_string(score.kind);
    EXPECT_DOUBLE_EQ(snap.gauges.at(stem + ".est_total_s"),
                     score.est_total_time);
  }
  for (std::size_t m : core::CompsoFramework::aggregation_candidates()) {
    EXPECT_TRUE(snap.gauges.contains("tune.aggregation.m" +
                                     std::to_string(m) + ".est_e2e"));
  }
  // One gauge pair per Eq. 5 family candidate (DESIGN.md §17), and the
  // selection matches the recorded argmax.
  ASSERT_FALSE(fw.family_scores().empty());
  for (const auto& score : fw.family_scores()) {
    const std::string stem = "tune.family." + score.name;
    EXPECT_DOUBLE_EQ(snap.gauges.at(stem + ".est_e2e"),
                     score.est_end_to_end);
    EXPECT_DOUBLE_EQ(snap.gauges.at(stem + ".ratio"),
                     score.compression_ratio);
  }
  // tune() ran entirely on this thread: five spans plus the parent.
  EXPECT_EQ(tracer.event_count(), 5U);
  EXPECT_EQ(obs::validate_trace(tracer.trace_json()), std::nullopt);
}

}  // namespace
