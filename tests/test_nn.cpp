// Tests for the NN substrate: layer forward/backward correctness (finite
// differences), losses, datasets, model zoo shapes.

#include "src/nn/dataset.hpp"
#include "src/nn/model.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nn = compso::nn;
namespace ct = compso::tensor;

namespace {

TEST(Linear, ForwardKnownValues) {
  ct::Rng rng(1);
  nn::Linear l(2, 3, rng);
  l.weight()->at(0, 0) = 1.0F; l.weight()->at(0, 1) = 2.0F;
  l.weight()->at(1, 0) = 0.0F; l.weight()->at(1, 1) = -1.0F;
  l.weight()->at(2, 0) = 0.5F; l.weight()->at(2, 1) = 0.5F;
  (*l.bias())[0] = 1.0F; (*l.bias())[1] = 0.0F; (*l.bias())[2] = -1.0F;
  ct::Tensor x({1, 2}, {3.0F, 4.0F});
  const auto y = l.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 12.0F);   // 3 + 8 + 1
  EXPECT_FLOAT_EQ(y.at(0, 1), -4.0F);   // -4 + 0
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.5F);    // 1.5 + 2 - 1
}

TEST(Linear, GradientMatchesFiniteDifference) {
  ct::Rng rng(2);
  nn::Linear l(4, 3, rng);
  ct::Tensor x({2, 4});
  rng.fill_normal(x.span());
  // Loss = sum(y): dL/dy = ones.
  auto y = l.forward(x);
  ct::Tensor ones({2, 3});
  ones.fill(1.0F);
  l.backward(ones);
  const ct::Tensor analytic = *l.weight_grad();

  const float eps = 1e-3F;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const float orig = l.weight()->at(r, c);
      l.weight()->at(r, c) = orig + eps;
      const auto yp = l.forward(x);
      l.weight()->at(r, c) = orig - eps;
      const auto ym = l.forward(x);
      l.weight()->at(r, c) = orig;
      double sp = 0.0, sm = 0.0;
      for (std::size_t i = 0; i < yp.size(); ++i) { sp += yp[i]; sm += ym[i]; }
      const double fd = (sp - sm) / (2.0 * eps);
      EXPECT_NEAR(analytic.at(r, c), fd, 2e-2) << r << "," << c;
    }
  }
}

TEST(Linear, InputGradientMatchesFiniteDifference) {
  ct::Rng rng(3);
  nn::Linear l(3, 2, rng);
  ct::Tensor x({1, 3});
  rng.fill_normal(x.span());
  l.forward(x);
  ct::Tensor ones({1, 2});
  ones.fill(1.0F);
  const auto gin = l.backward(ones);

  const float eps = 1e-3F;
  for (std::size_t c = 0; c < 3; ++c) {
    ct::Tensor xp = x, xm = x;
    xp.at(0, c) += eps;
    xm.at(0, c) -= eps;
    const auto yp = l.forward(xp);
    const auto ym = l.forward(xm);
    double sp = 0.0, sm = 0.0;
    for (std::size_t i = 0; i < yp.size(); ++i) { sp += yp[i]; sm += ym[i]; }
    EXPECT_NEAR(gin.at(0, c), (sp - sm) / (2.0 * eps), 2e-2);
  }
}

TEST(Linear, KfacHooksCaptureAugmentedInput) {
  ct::Rng rng(4);
  nn::Linear l(2, 2, rng);
  ct::Tensor x({3, 2});
  rng.fill_normal(x.span());
  l.forward(x);
  const ct::Tensor* a = l.kfac_input();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->rows(), 3U);
  EXPECT_EQ(a->cols(), 3U);  // in + 1 homogeneous column
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(a->at(r, 2), 1.0F);
}

TEST(Activations, ReluForwardBackward) {
  nn::Relu relu;
  ct::Tensor x({1, 4}, {-1.0F, 2.0F, 0.0F, -3.0F});
  const auto y = relu.forward(x);
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 2.0F);
  EXPECT_EQ(y[3], 0.0F);
  ct::Tensor g({1, 4}, {1.0F, 1.0F, 1.0F, 1.0F});
  const auto gin = relu.backward(g);
  EXPECT_EQ(gin[0], 0.0F);
  EXPECT_EQ(gin[1], 1.0F);
}

TEST(Activations, TanhGradient) {
  nn::Tanh tanh_l;
  ct::Tensor x({1, 1}, {0.5F});
  tanh_l.forward(x);
  ct::Tensor g({1, 1}, {1.0F});
  const auto gin = tanh_l.backward(g);
  const double expected = 1.0 - std::tanh(0.5) * std::tanh(0.5);
  EXPECT_NEAR(gin[0], expected, 1e-6);
}

TEST(Loss, SoftmaxCrossEntropyKnownValue) {
  ct::Tensor logits({1, 2}, {0.0F, 0.0F});
  ct::Tensor grad;
  const double loss = nn::softmax_cross_entropy(logits, {0}, grad);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(grad.at(0, 0), -0.5, 1e-6);
  EXPECT_NEAR(grad.at(0, 1), 0.5, 1e-6);
}

TEST(Loss, SoftmaxGradientMatchesFiniteDifference) {
  ct::Rng rng(5);
  ct::Tensor logits({2, 4});
  rng.fill_normal(logits.span());
  const std::vector<int> labels{1, 3};
  ct::Tensor grad;
  nn::softmax_cross_entropy(logits, labels, grad);
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    ct::Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    ct::Tensor g_unused;
    const double fp = nn::softmax_cross_entropy(lp, labels, g_unused);
    const double fm = nn::softmax_cross_entropy(lm, labels, g_unused);
    EXPECT_NEAR(grad[i], (fp - fm) / (2.0 * eps), 1e-3);
  }
}

TEST(Loss, MseKnownValue) {
  ct::Tensor pred({2}, {1.0F, 3.0F});
  ct::Tensor target({2}, {0.0F, 0.0F});
  ct::Tensor grad;
  EXPECT_NEAR(nn::mse_loss(pred, target, grad), 5.0, 1e-6);
  EXPECT_NEAR(grad[0], 1.0, 1e-6);
  EXPECT_NEAR(grad[1], 3.0, 1e-6);
}

TEST(Loss, AccuracyCountsArgmax) {
  ct::Tensor logits({2, 3}, {1.0F, 5.0F, 0.0F, 2.0F, 0.0F, 1.0F});
  EXPECT_NEAR(nn::accuracy(logits, {1, 0}), 1.0, 1e-9);
  EXPECT_NEAR(nn::accuracy(logits, {0, 0}), 0.5, 1e-9);
}

TEST(Model, ForwardBackwardThroughStack) {
  ct::Rng rng(6);
  auto m = nn::make_mlp_classifier(8, 16, 4, 2, rng);
  EXPECT_EQ(m.trainable_layers().size(), 3U);
  ct::Tensor x({5, 8});
  rng.fill_normal(x.span());
  const auto logits = m.forward(x);
  EXPECT_EQ(logits.rows(), 5U);
  EXPECT_EQ(logits.cols(), 4U);
  ct::Tensor grad;
  nn::softmax_cross_entropy(logits, {0, 1, 2, 3, 0}, grad);
  m.backward(grad);  // must not throw; gradients stored per layer
  for (std::size_t li : m.trainable_layers()) {
    EXPECT_GT(compso::tensor::l2_norm(m.layer(li).weight_grad()->span()), 0.0);
  }
}

TEST(Model, ParameterCount) {
  ct::Rng rng(7);
  auto m = nn::make_mlp_classifier(10, 20, 5, 1, rng);
  // (20*10 + 20) + (5*20 + 5) = 220 + 105.
  EXPECT_EQ(m.parameter_count(), 325U);
}

TEST(Dataset, ClustersAreLearnableStructure) {
  nn::ClusterDataset ds(16, 4, 0.3F, 42);
  ct::Rng rng(8);
  const auto b = ds.sample(64, rng);
  EXPECT_EQ(b.x.rows(), 64U);
  EXPECT_EQ(b.labels.size(), 64U);
  for (int y : b.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(Dataset, SpanBatchValidSpans) {
  nn::SpanDataset ds(10, 16, 0.2F, 43);
  ct::Rng rng(9);
  const auto b = ds.sample(128, rng);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_GE(b.start[i], 0);
    EXPECT_LE(b.start[i], b.end[i]);
    EXPECT_LT(b.end[i], 10);
  }
}

TEST(Dataset, SpanMetricsPerfectAndPartial) {
  const std::vector<int> gs{2, 5}, ge{4, 7};
  const auto perfect = nn::span_metrics(gs, ge, gs, ge);
  EXPECT_NEAR(perfect.f1, 100.0, 1e-9);
  EXPECT_NEAR(perfect.exact_match, 100.0, 1e-9);
  // Half-overlapping prediction on sample 0 only.
  const auto partial = nn::span_metrics({3, 0}, {5, 1}, gs, ge);
  EXPECT_LT(partial.f1, 100.0);
  EXPECT_GT(partial.f1, 0.0);
  EXPECT_NEAR(partial.exact_match, 0.0, 1e-9);
}

TEST(ModelZoo, ParameterCountsMatchRealModels) {
  // KFAC element counts ~ parameter counts (+bias columns); the tables
  // should land near the real models' sizes.
  const auto r50 = nn::resnet50_shape();
  EXPECT_NEAR(static_cast<double>(r50.total_elements()), 25.6e6, 3e6);
  const auto bert = nn::bert_large_shape();
  EXPECT_NEAR(static_cast<double>(bert.total_elements()), 335e6, 40e6);
  const auto gpt = nn::gpt_neo_125m_shape();
  EXPECT_NEAR(static_cast<double>(gpt.total_elements()), 125e6, 20e6);
  const auto mask = nn::mask_rcnn_shape();
  EXPECT_NEAR(static_cast<double>(mask.total_elements()), 44e6, 8e6);
}

TEST(ModelZoo, LayerSizesVaryWidely) {
  // §4.4's motivation for aggregation: per-layer sizes differ by orders of
  // magnitude.
  const auto r50 = nn::resnet50_shape();
  std::size_t min_b = SIZE_MAX, max_b = 0;
  for (const auto& l : r50.layers) {
    min_b = std::min(min_b, l.kfac_bytes());
    max_b = std::max(max_b, l.kfac_bytes());
  }
  EXPECT_GT(max_b / min_b, 100U);
}

TEST(ModelZoo, FourPaperModels) {
  const auto all = nn::paper_model_shapes();
  ASSERT_EQ(all.size(), 4U);
  EXPECT_EQ(all[0].name, "ResNet-50");
  EXPECT_EQ(all[1].name, "Mask R-CNN");
  EXPECT_EQ(all[2].name, "BERT-large");
  EXPECT_EQ(all[3].name, "GPT-neo-125M");
}

}  // namespace
