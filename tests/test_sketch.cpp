// Seeded randomized-linear compressors (DESIGN.md §17): unbiasedness and
// variance of the count-sketch / random-projection estimators over ≥1000
// independent seeded draws, counter-derived seed-stream determinism (same
// payload bytes at any engine thread count, counters surviving checkpoint
// resume), exact max_payload_bytes (chunked == monolithic), and typed
// PayloadError rejection of truncated / corrupted payloads.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

namespace core = compso::core;
namespace ckpt = compso::codec::ckpt;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace sd = compso::compress::sketch_detail;

namespace {

std::vector<float> test_vector(std::size_t n, std::uint64_t seed) {
  ct::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

core::FtTrainerConfig sketch_config(core::CompressorFamily family,
                                    std::size_t threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 99};
  cfg.optimizer = core::OptimizerKind::kSgd;
  cfg.family = family;
  cfg.total_iterations = 30;
  cfg.engine_threads = threads;
  return cfg;
}

// --- estimator properties (≥1000 seeded draws) -----------------------------

/// Runs `draws` independent compress/decompress round trips (each draw
/// advances the stream counter, so each payload gets a fresh seed) and
/// returns per-coordinate mean and mean-squared-error of the estimate.
struct DrawStats {
  std::vector<double> mean;
  std::vector<double> mse;
};

DrawStats accumulate_draws(const cp::GradientCompressor& c,
                           std::span<const float> x, int draws) {
  DrawStats s{std::vector<double>(x.size(), 0.0),
              std::vector<double>(x.size(), 0.0)};
  ct::Rng rng(5);  // counter-derived seeds: the Rng is never actually drawn.
  cp::Bytes payload;
  std::vector<float> decoded;
  for (int d = 0; d < draws; ++d) {
    c.compress_stream_into(0, x, rng, payload);
    c.decompress_into(payload, decoded);
    for (std::size_t i = 0; i < x.size(); ++i) {
      s.mean[i] += decoded[i];
      const double err = static_cast<double>(decoded[i]) - x[i];
      s.mse[i] += err * err;
    }
  }
  for (auto& m : s.mean) m /= draws;
  for (auto& m : s.mse) m /= draws;
  return s;
}

TEST(Sketch, CountSketchEstimatorIsUnbiased) {
  constexpr int kDraws = 1500;
  const auto x = test_vector(64, 3);
  const auto c = cp::make_count_sketch(0.25, 3, 0xA11CE);
  const auto s = accumulate_draws(*c, x, kDraws);
  // Monte-Carlo tolerance: the per-draw estimator variance is bounded by
  // ||x||²/w per row; with 1500 draws the mean settles well inside 0.25.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s.mean[i], x[i], 0.25) << "coordinate " << i;
  }
}

TEST(Sketch, RandomProjectionEstimatorIsUnbiased) {
  constexpr int kDraws = 1500;
  const auto x = test_vector(64, 4);
  const auto c = cp::make_random_projection(0.25, 0xB0B);
  const auto s = accumulate_draws(*c, x, kDraws);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s.mean[i], x[i], 0.3) << "coordinate " << i;
  }
}

TEST(Sketch, VarianceShrinksWithSketchSize) {
  // 4x the sketch budget → roughly 4x less estimator variance. Assert a
  // conservative 2x improvement in summed MSE so Monte-Carlo noise can't
  // flake the test.
  constexpr int kDraws = 1000;
  const auto x = test_vector(64, 6);
  const auto small = cp::make_count_sketch(0.125, 3, 0xC0);
  const auto large = cp::make_count_sketch(0.5, 3, 0xC0);
  const auto s_small = accumulate_draws(*small, x, kDraws);
  const auto s_large = accumulate_draws(*large, x, kDraws);
  double mse_small = 0.0, mse_large = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mse_small += s_small.mse[i];
    mse_large += s_large.mse[i];
  }
  EXPECT_LT(mse_large, mse_small / 2.0);
}

TEST(Sketch, DrawsAreIndependentAcrossCounterAdvance) {
  // Consecutive payloads on one stream must differ (fresh seed per draw)
  // while replaying the same counter (fresh compressor, same base seed)
  // reproduces byte-identical payloads.
  const auto x = test_vector(128, 7);
  const auto a = cp::make_count_sketch(0.25, 3, 42);
  ct::Rng rng(1);
  cp::Bytes p1, p2;
  a->compress_stream_into(9, x, rng, p1);
  a->compress_stream_into(9, x, rng, p2);
  EXPECT_NE(p1, p2);

  const auto b = cp::make_count_sketch(0.25, 3, 42);
  cp::Bytes q1, q2;
  b->compress_stream_into(9, x, rng, q1);
  b->compress_stream_into(9, x, rng, q2);
  EXPECT_EQ(p1, q1);
  EXPECT_EQ(p2, q2);

  // Distinct streams at equal counters also decorrelate.
  cp::Bytes other_stream;
  b->compress_stream_into(10, x, rng, other_stream);
  EXPECT_NE(q1, other_stream);
}

// --- geometry / wire-format contract ---------------------------------------

TEST(Sketch, MaxPayloadBytesIsExact) {
  ct::Rng rng(2);
  for (const double ratio : {0.1, 0.25, 0.5}) {
    const auto cs = cp::make_count_sketch(ratio, 3, 1);
    const auto rp = cp::make_random_projection(ratio, 1);
    for (const std::size_t n : {1UL, 7UL, 256UL, 300UL, 4096UL}) {
      const auto x = test_vector(n, n);
      EXPECT_EQ(cs->compress(x, rng).size(), cs->max_payload_bytes(n))
          << "count-sketch n=" << n << " ratio=" << ratio;
      EXPECT_EQ(rp->compress(x, rng).size(), rp->max_payload_bytes(n))
          << "projection n=" << n << " ratio=" << ratio;
    }
  }
}

TEST(Sketch, GeometryHelpersMatchPayloadLayout) {
  // Bucket width scales the total sketch size to ~ratio·n across rows, and
  // never collapses to zero.
  EXPECT_EQ(sd::count_sketch_width(0, 0.25, 3), 0U);  // empty input, no data.
  EXPECT_EQ(sd::count_sketch_width(1200, 0.25, 3), 100U);
  EXPECT_EQ(sd::projection_rows(256, 0.25), 64U);
  EXPECT_GE(sd::projection_rows(1, 0.01), 1U);
  // mix64 is a bijective finalizer: no fixed-point collisions among a few
  // small inputs (sanity, not a statistical test).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) seen.insert(sd::mix64(i));
  EXPECT_EQ(seen.size(), 64U);
}

TEST(Sketch, RoundTripPreservesCountAndDecodesFinite) {
  ct::Rng rng(3);
  for (const auto* which : {"cs", "rp"}) {
    const auto c = std::string(which) == "cs"
                       ? cp::make_count_sketch(0.25, 3, 77)
                       : cp::make_random_projection(0.25, 77);
    for (const std::size_t n : {1UL, 255UL, 256UL, 257UL, 1000UL}) {
      const auto x = test_vector(n, n + 1);
      const auto decoded = c->decompress(c->compress(x, rng));
      ASSERT_EQ(decoded.size(), n) << which;
      for (const float v : decoded) EXPECT_TRUE(std::isfinite(v)) << which;
    }
  }
}

TEST(Sketch, TruncatedAndCorruptedPayloadsThrowTyped) {
  ct::Rng rng(4);
  const auto x = test_vector(500, 9);
  for (const auto* which : {"cs", "rp"}) {
    const auto c = std::string(which) == "cs"
                       ? cp::make_count_sketch(0.25, 3, 5)
                       : cp::make_random_projection(0.25, 5);
    const auto payload = c->compress(x, rng);
    // Every truncation length, from empty to one-byte-short.
    for (std::size_t len = 0; len < payload.size();
         len += 1 + len / 16) {
      cp::Bytes cut(payload.begin(), payload.begin() + len);
      EXPECT_THROW(c->decompress(cut), compso::PayloadError)
          << which << " len=" << len;
    }
    // Seeded single-byte corruptions: the CRC (or geometry validation)
    // must catch every one.
    ct::Rng mut(11);
    for (int trial = 0; trial < 300; ++trial) {
      auto damaged = payload;
      const std::size_t at = mut.uniform_index(damaged.size());
      damaged[at] ^= static_cast<std::uint8_t>(1U << mut.uniform_index(8));
      EXPECT_THROW(c->decompress(damaged), compso::PayloadError)
          << which << " trial=" << trial;
    }
  }
}

// --- seed-state checkpoint contract ----------------------------------------

TEST(Sketch, SeedStateRoundTripsAndRejectsDamage) {
  const auto c = cp::make_count_sketch(0.25, 3, 123);
  auto* stateful = dynamic_cast<cp::StatefulCompressor*>(c.get());
  ASSERT_NE(stateful, nullptr);
  const auto x = test_vector(64, 1);
  ct::Rng rng(1);
  cp::Bytes payload;
  c->compress_stream_into(0, x, rng, payload);
  c->compress_stream_into(0, x, rng, payload);
  c->compress_stream_into(7, x, rng, payload);

  ckpt::Bytes state;
  stateful->serialize_state(state);

  // Restoring into a fresh instance resumes the exact counter positions:
  // the next payload per stream matches what the original produces next.
  const auto c2 = cp::make_count_sketch(0.25, 3, 123);
  {
    compso::codec::wire::Reader reader(state);
    dynamic_cast<cp::StatefulCompressor*>(c2.get())->deserialize_state(reader);
    EXPECT_EQ(reader.remaining(), 0U);
  }
  cp::Bytes next_a, next_b;
  c->compress_stream_into(0, x, rng, next_a);
  c2->compress_stream_into(0, x, rng, next_b);
  EXPECT_EQ(next_a, next_b);
  c->compress_stream_into(7, x, rng, next_a);
  c2->compress_stream_into(7, x, rng, next_b);
  EXPECT_EQ(next_a, next_b);

  // Damage is rejected with the typed error.
  for (std::size_t cut : {1UL, 4UL, state.size() - 1}) {
    ckpt::Bytes damaged(state.begin(), state.end() - cut);
    compso::codec::wire::Reader reader(damaged);
    EXPECT_THROW(
        dynamic_cast<cp::StatefulCompressor*>(c2.get())->deserialize_state(
            reader),
        compso::PayloadError);
  }
  ckpt::Bytes bad_magic = state;
  bad_magic[0] ^= 0xFF;
  compso::codec::wire::Reader reader(bad_magic);
  EXPECT_THROW(
      dynamic_cast<cp::StatefulCompressor*>(c2.get())->deserialize_state(
          reader),
      compso::PayloadError);
}

// --- trainer integration: determinism matrix --------------------------------

TEST(Sketch, TrainerBitExactAcrossEngineThreads) {
  for (const auto family : {core::CompressorFamily::kCountSketch,
                            core::CompressorFamily::kRandomProjection}) {
    std::vector<float> base;
    for (const std::size_t threads : {0UL, 2UL, 8UL}) {
      core::FaultTolerantTrainer trainer(sketch_config(family, threads));
      trainer.run(10);
      const auto params = trainer.parameters();
      if (threads == 0) {
        base = params;
        continue;
      }
      ASSERT_EQ(params.size(), base.size());
      EXPECT_EQ(
          std::memcmp(params.data(), base.data(), base.size() * sizeof(float)),
          0)
          << "threads=" << threads;
    }
  }
}

TEST(Sketch, TrainerResumeReplaysSeedCounters) {
  // Save at 5, resume, run the tail: the "compressor" CKPT section carries
  // the per-stream counters, so the resumed run's payload seeds — and the
  // whole trajectory — rejoin the straight run bit-exactly.
  core::FaultTolerantTrainer straight(
      sketch_config(core::CompressorFamily::kCountSketch, 2));
  straight.run(12);

  core::FaultTolerantTrainer saver(
      sketch_config(core::CompressorFamily::kCountSketch, 2));
  saver.run(5);
  const auto frame = saver.checkpoint();
  core::FaultTolerantTrainer resumed(
      sketch_config(core::CompressorFamily::kCountSketch, 2));
  resumed.restore(frame);
  ASSERT_EQ(resumed.iteration(), 5U);
  resumed.run(7);

  const auto a = straight.parameters();
  const auto b = resumed.parameters();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

}  // namespace
