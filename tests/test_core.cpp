// Tests for the COMPSO core: adaptive schedule (Alg. 1), framework tuning,
// performance simulator invariants, and end-to-end training integration.

#include "src/core/adaptive_schedule.hpp"
#include "src/core/framework.hpp"
#include "src/core/perf_sim.hpp"
#include "src/core/trainer.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

namespace cc = compso::core;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace cm = compso::comm;

namespace {

// --- adaptive schedule (Algorithm 1) ---

TEST(AdaptiveSchedule, StepLrSwitchesAtFirstDrop) {
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::AdaptiveSchedule sched(lr, 100);
  const auto early = sched.at(10);
  EXPECT_TRUE(early.use_filter);
  EXPECT_DOUBLE_EQ(early.filter_bound, 4e-3);
  EXPECT_DOUBLE_EQ(early.quant_bound, 4e-3);
  const auto late = sched.at(25);
  EXPECT_FALSE(late.use_filter);          // SR-only conservative mode
  EXPECT_DOUBLE_EQ(late.quant_bound, 2e-3);  // tighter bound
}

TEST(AdaptiveSchedule, SmoothLrDecaysPerStage) {
  compso::optim::SmoothLr lr(0.1, 10, 1000);
  cc::AdaptiveScheduleParams p;
  p.stages = 4;
  p.decay = 0.5;
  cc::AdaptiveSchedule sched(lr, 1000, p);
  EXPECT_EQ(sched.stage_length(), 250U);
  EXPECT_TRUE(sched.at(0).use_filter);       // stage 0 aggressive
  EXPECT_FALSE(sched.at(300).use_filter);    // later stages conservative
  EXPECT_NEAR(sched.at(300).quant_bound, 2e-3, 1e-12);  // 4e-3 * 0.5
  EXPECT_NEAR(sched.at(999).quant_bound, 5e-4, 1e-12);  // 4e-3 * 0.5^3
  EXPECT_EQ(sched.at(999).stage_index, 3U);
}

TEST(AdaptiveSchedule, BoundsDecreaseMonotonically) {
  compso::optim::SmoothLr lr(0.1, 10, 800);
  cc::AdaptiveSchedule sched(lr, 800);
  for (std::size_t t = 1; t < 800; ++t) {
    EXPECT_LE(sched.at(t).quant_bound, sched.at(t - 1).quant_bound);
  }
}

TEST(AdaptiveSchedule, ParamsFlowIntoCompressor) {
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::AdaptiveSchedule sched(lr, 100);
  const auto p0 = sched.params_at(0);
  EXPECT_TRUE(p0.use_filter);
  const auto p50 = sched.params_at(50);
  EXPECT_FALSE(p50.use_filter);
  EXPECT_LT(p50.quant_bound, p0.quant_bound);
}

TEST(AdaptiveSchedule, AggressiveCompressesMoreThanConservative) {
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::AdaptiveSchedule sched(lr, 100);
  ct::Rng rng(7);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), rng);
  const auto aggressive = cp::make_compso(sched.params_at(0));
  const auto conservative = cp::make_compso(sched.params_at(50));
  EXPECT_GT(aggressive->compression_ratio(grad, rng),
            conservative->compression_ratio(grad, rng));
}

TEST(AdaptiveSchedule, ZeroIterationsThrows) {
  compso::optim::StepLr lr(0.1, 0.1, {25});
  EXPECT_THROW(cc::AdaptiveSchedule(lr, 0), std::invalid_argument);
}

// --- framework ---

TEST(Framework, TuneSelectsEncoderAndAggregation) {
  cm::Communicator comm(cm::Topology::with_gpus(16),
                        cm::NetworkModel::platform1());
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::CompsoFramework fw({}, lr, 100, comm);
  ct::Rng rng(8);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), rng);
  std::vector<std::size_t> layer_bytes(32, 1 << 18);
  fw.tune(layer_bytes, grad, 0.4, rng);
  EXPECT_GE(fw.aggregation(), 1U);
  EXPECT_EQ(fw.encoder_scores().size(), 8U);
  EXPECT_GT(fw.estimated_end_to_end(), 1.0);
}

TEST(Framework, CompressorCachedPerStage) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::CompsoFramework fw({}, lr, 100, comm);
  const auto* c0 = fw.compressor_for(0);
  const auto* c1 = fw.compressor_for(10);
  EXPECT_EQ(c0, c1);  // same stage -> same instance
  const auto* c2 = fw.compressor_for(50);
  EXPECT_NE(c0, c2);  // stage changed at the LR drop
}

TEST(Framework, FixedModeUsesConfiguredAggregation) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  compso::optim::StepLr lr(0.1, 0.1, {25});
  cc::FrameworkConfig cfg;
  cfg.use_perf_model = false;
  cfg.fixed_aggregation = 4;
  cc::CompsoFramework fw(cfg, lr, 100, comm);
  ct::Rng rng(9);
  const auto grad =
      ct::synthetic_gradient(1 << 14, ct::GradientProfile::kfac(), rng);
  fw.tune({1 << 16, 1 << 16}, grad, 0.4, rng);
  EXPECT_EQ(fw.aggregation(), 4U);
}

// --- performance simulator ---

cc::PerfConfig rn50_config(std::size_t nodes) {
  cc::PerfConfig cfg;
  cfg.model = compso::nn::resnet50_shape();
  cfg.topo = cm::Topology{.nodes = nodes, .gpus_per_node = 4};
  return cfg;
}

TEST(PerfSim, BreakdownComponentsPositive) {
  cc::PerfSimulator sim(rn50_config(16));
  const auto& b = sim.baseline();
  EXPECT_GT(b.allgather_s, 0.0);
  EXPECT_GT(b.allreduce_s, 0.0);
  EXPECT_GT(b.kfac_compute_s, 0.0);
  EXPECT_GT(b.forward_backward_s, 0.0);
  EXPECT_GT(b.others_s, 0.0);
}

TEST(PerfSim, CommunicationExceedsThirtyPercent) {
  // The paper's motivating observation (§1, Fig. 1) for ResNet-50 /
  // BERT-large style workloads.
  for (auto shape :
       {compso::nn::resnet50_shape(), compso::nn::bert_large_shape()}) {
    cc::PerfConfig cfg;
    cfg.model = shape;
    cfg.topo = cm::Topology{.nodes = 16, .gpus_per_node = 4};
    cfg.batch_per_gpu = shape.name == "ResNet-50" ? 4 : 1;
    cc::PerfSimulator sim(cfg);
    EXPECT_GT(sim.baseline().comm_fraction(), 0.30) << shape.name;
  }
}

TEST(PerfSim, AllgatherShareGrowsWithGpuCount) {
  const auto b16 = cc::PerfSimulator(rn50_config(16)).baseline();
  const auto b64 = cc::PerfSimulator(rn50_config(64)).baseline();
  EXPECT_GT(b64.allgather_s / b64.total_s(), b16.allgather_s / b16.total_s());
}

TEST(PerfSim, KfacComputeShareFallsWithGpuCount) {
  const auto b16 = cc::PerfSimulator(rn50_config(16)).baseline();
  const auto b64 = cc::PerfSimulator(rn50_config(64)).baseline();
  EXPECT_LT(b64.kfac_compute_s / b64.total_s(),
            b16.kfac_compute_s / b16.total_s());
}

TEST(PerfSim, CompsoBeatsBaselinesEndToEnd) {
  cc::PerfSimulator sim(rn50_config(16));
  const auto compso = cp::make_compso({});
  const auto qsgd8 = cp::make_qsgd(8);
  const auto sz = cp::make_sz(4e-3);
  const auto cocktail = cp::make_cocktail(0.2, 8);
  const auto r_compso = sim.with_compressor(*compso, 4);
  EXPECT_GT(r_compso.end_to_end_speedup, 1.3);
  EXPECT_GT(r_compso.end_to_end_speedup,
            sim.with_compressor(*cocktail, 4).end_to_end_speedup);
  EXPECT_GE(r_compso.end_to_end_speedup,
            sim.with_compressor(*sz, 4).end_to_end_speedup * 0.99);
  EXPECT_GE(r_compso.end_to_end_speedup,
            sim.with_compressor(*qsgd8, 4).end_to_end_speedup * 0.99);
}

TEST(PerfSim, AggregationImprovesCommSpeedup) {
  cc::PerfSimulator sim(rn50_config(16));
  const auto compso = cp::make_compso({});
  const auto m1 = sim.with_compressor(*compso, 1);
  const auto m4 = sim.with_compressor(*compso, 4);
  EXPECT_GT(m4.comm_speedup, m1.comm_speedup);
}

TEST(PerfSim, SlowerNetworkGainsMoreFromCompression) {
  // §5.2: the speedup is greater on Slingshot 10 than Slingshot 11.
  cc::PerfConfig c1 = rn50_config(16);
  cc::PerfConfig c2 = rn50_config(16);
  c2.net = cm::NetworkModel::platform2();
  const auto compso = cp::make_compso({});
  const auto r1 = cc::PerfSimulator(c1).with_compressor(*compso, 4);
  const auto r2 = cc::PerfSimulator(c2).with_compressor(*compso, 4);
  EXPECT_GT(r1.end_to_end_speedup, r2.end_to_end_speedup);
}

TEST(PerfSim, CompressionRatioNearPaperHeadline) {
  cc::PerfSimulator sim(rn50_config(16));
  const auto compso = cp::make_compso({});
  const auto r = sim.with_compressor(*compso, 4);
  // Paper: average CR ~19-24x across models; demand the right ballpark.
  EXPECT_GT(r.compression_ratio, 12.0);
  EXPECT_LT(r.compression_ratio, 40.0);
}

// --- trainer integration ---

TEST(TrainerIntegration, KfacConvergesOnClusters) {
  cc::TrainerConfig cfg;
  cc::ClusterTrainer trainer(cfg);
  compso::optim::StepLr lr(0.02, 0.1, {60});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.03;
  const auto r = trainer.train_kfac(60, lr, nullptr, kc);
  EXPECT_GT(r.final_accuracy, 0.9);
  EXPECT_LT(r.final_loss, r.loss_curve.front());
}

TEST(TrainerIntegration, KfacWithCompsoMatchesNoCompression) {
  cc::TrainerConfig cfg;
  cc::ClusterTrainer trainer(cfg);
  compso::optim::StepLr lr(0.02, 0.1, {40});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.03;
  const auto base = trainer.train_kfac(60, lr, nullptr, kc);
  const auto compso = cp::make_compso({});
  const auto comp = trainer.train_kfac(
      60, lr, [&](std::size_t) { return compso.get(); }, kc);
  EXPECT_GT(comp.final_accuracy, base.final_accuracy - 0.05);
  EXPECT_GT(comp.avg_compression_ratio, 2.0);
}

TEST(TrainerIntegration, DeterministicAcrossRuns) {
  cc::TrainerConfig cfg;
  compso::optim::StepLr lr(0.02, 0.1, {40});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.03;
  cc::ClusterTrainer t1(cfg), t2(cfg);
  const auto r1 = t1.train_kfac(10, lr, nullptr, kc);
  const auto r2 = t2.train_kfac(10, lr, nullptr, kc);
  ASSERT_EQ(r1.loss_curve.size(), r2.loss_curve.size());
  for (std::size_t i = 0; i < r1.loss_curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.loss_curve[i], r2.loss_curve[i]);
  }
}

TEST(TrainerIntegration, SpanTrainerProducesMetrics) {
  cc::SpanTrainerConfig cfg;
  cc::SpanTrainer trainer(cfg);
  compso::optim::StepLr lr(0.02, 0.1, {100});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.03;
  const auto r = trainer.train_kfac(120, lr, nullptr, kc);
  EXPECT_GT(r.metrics.f1, 50.0);  // learnable structure is learned
  EXPECT_GE(r.metrics.f1, r.metrics.exact_match);
}

}  // namespace

namespace {

TEST(PerfSimOverlap, OverlapHidesCommunication) {
  auto cfg = rn50_config(16);
  cc::PerfSimulator exposed(cfg);
  cfg.comm_overlap = 0.5;
  cc::PerfSimulator overlapped(cfg);
  EXPECT_LT(overlapped.baseline().allgather_s,
            exposed.baseline().allgather_s);
  EXPECT_LT(overlapped.baseline().total_s(), exposed.baseline().total_s());
}

TEST(PerfSimOverlap, HiddenTimeBoundedByCompute) {
  auto cfg = rn50_config(16);
  cfg.comm_overlap = 1.0;
  cc::PerfSimulator sim(cfg);
  const auto& b = sim.baseline();
  cfg.comm_overlap = 0.0;
  const auto b0 = cc::PerfSimulator(cfg).baseline();
  const double hidden = b0.allgather_s - b.allgather_s;
  EXPECT_LE(hidden, b.kfac_compute_s + b.forward_backward_s + 1e-12);
  EXPECT_GE(b.allgather_s, 0.0);
}

TEST(PerfSimOverlap, CompressionGainShrinksWithOverlap) {
  const auto compso = cp::make_compso({});
  auto cfg = rn50_config(16);
  const double e0 =
      cc::PerfSimulator(cfg).with_compressor(*compso, 4).end_to_end_speedup;
  cfg.comm_overlap = 0.75;
  const double e75 =
      cc::PerfSimulator(cfg).with_compressor(*compso, 4).end_to_end_speedup;
  EXPECT_GT(e0, e75);
  EXPECT_GE(e75, 1.0);
}

}  // namespace
