// Tests for the simulated cluster: topology, network model, functional
// collectives, timing model monotonicity and scaling.

#include "src/comm/communicator.hpp"

#include <gtest/gtest.h>

namespace cm = compso::comm;

namespace {

TEST(Topology, RankMapping) {
  cm::Topology t{.nodes = 4, .gpus_per_node = 4};
  EXPECT_EQ(t.world_size(), 16U);
  EXPECT_EQ(t.node_of(0), 0U);
  EXPECT_EQ(t.node_of(5), 1U);
  EXPECT_EQ(t.local_of(5), 1U);
  EXPECT_TRUE(t.same_node(4, 7));
  EXPECT_FALSE(t.same_node(3, 4));
}

TEST(Topology, WithGpusPacksNodes) {
  const auto t = cm::Topology::with_gpus(64);
  EXPECT_EQ(t.nodes, 16U);
  EXPECT_EQ(t.gpus_per_node, 4U);
  const auto small = cm::Topology::with_gpus(2);
  EXPECT_EQ(small.nodes, 1U);
  EXPECT_EQ(small.gpus_per_node, 2U);
}

TEST(NetworkModel, IntraNodeFasterThanInter) {
  const auto net = cm::NetworkModel::platform1();
  cm::Topology t{.nodes = 2, .gpus_per_node = 4};
  const std::size_t mb = 1 << 20;
  EXPECT_LT(net.p2p_time(t, 0, 1, mb), net.p2p_time(t, 0, 4, mb));
}

TEST(NetworkModel, Platform2HasFasterInterconnect) {
  const auto p1 = cm::NetworkModel::platform1();
  const auto p2 = cm::NetworkModel::platform2();
  EXPECT_GT(p2.inter_node().bandwidth_Bps, p1.inter_node().bandwidth_Bps);
}

TEST(NetworkModel, NicSharingHalvesBandwidth) {
  const auto net = cm::NetworkModel::platform1();
  cm::Topology t{.nodes = 2, .gpus_per_node = 4};
  const std::size_t mb = 8 << 20;
  const double solo = net.p2p_time(t, 0, 4, mb, 1);
  const double shared = net.p2p_time(t, 0, 4, mb, 2);
  EXPECT_GT(shared, solo * 1.5);
}

class CollectiveCorrectness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectiveCorrectness, AllreduceSumsAcrossRanks) {
  const std::size_t world = GetParam();
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs(world, std::vector<float>(5));
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < 5; ++i) {
      bufs[r][i] = static_cast<float>(r + i);
    }
  }
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.allreduce_sum(views);
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < 5; ++i) {
      const float expected = static_cast<float>(
          world * i + world * (world - 1) / 2);
      EXPECT_FLOAT_EQ(bufs[r][i], expected) << "rank " << r << " i " << i;
    }
  }
}

TEST_P(CollectiveCorrectness, AllgatherConcatenatesInRankOrder) {
  const std::size_t world = GetParam();
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    send[r] = {static_cast<float>(r), static_cast<float>(r * 10)};
  }
  std::vector<std::vector<float>> recv;
  comm.allgather(send, recv);
  ASSERT_EQ(recv.size(), world);
  for (std::size_t r = 0; r < world; ++r) {
    ASSERT_EQ(recv[r].size(), 2 * world);
    for (std::size_t s = 0; s < world; ++s) {
      EXPECT_FLOAT_EQ(recv[r][2 * s], static_cast<float>(s));
      EXPECT_FLOAT_EQ(recv[r][2 * s + 1], static_cast<float>(s * 10));
    }
  }
}

TEST_P(CollectiveCorrectness, AllgathervVariableSizes) {
  const std::size_t world = GetParam();
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<std::uint8_t>> send(world);
  std::vector<std::uint8_t> expected;
  for (std::size_t r = 0; r < world; ++r) {
    send[r].assign(r + 1, static_cast<std::uint8_t>(r));
    expected.insert(expected.end(), send[r].begin(), send[r].end());
  }
  std::vector<std::vector<std::uint8_t>> recv;
  comm.allgatherv(send, recv);
  for (std::size_t r = 0; r < world; ++r) EXPECT_EQ(recv[r], expected);
}

TEST_P(CollectiveCorrectness, BroadcastReplicatesRoot) {
  const std::size_t world = GetParam();
  cm::Communicator comm(cm::Topology::with_gpus(world),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs(world, std::vector<float>(3, 0.0F));
  const std::size_t root = world / 2;
  bufs[root] = {1.0F, 2.0F, 3.0F};
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.broadcast(views, root);
  for (std::size_t r = 0; r < world; ++r) {
    EXPECT_EQ(bufs[r], (std::vector<float>{1.0F, 2.0F, 3.0F}));
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, CollectiveCorrectness,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(CollectiveTiming, MoreBytesTakeLonger) {
  cm::Communicator comm(cm::Topology::with_gpus(16),
                        cm::NetworkModel::platform1());
  EXPECT_LT(comm.allreduce_time(1 << 20), comm.allreduce_time(16 << 20));
  EXPECT_LT(comm.allgather_time(1 << 20), comm.allgather_time(16 << 20));
  EXPECT_LT(comm.broadcast_time(1 << 20), comm.broadcast_time(16 << 20));
}

TEST(CollectiveTiming, FasterNetworkIsFaster) {
  cm::Communicator c1(cm::Topology::with_gpus(32),
                      cm::NetworkModel::platform1());
  cm::Communicator c2(cm::Topology::with_gpus(32),
                      cm::NetworkModel::platform2());
  EXPECT_GT(c1.allgather_time(32 << 20), c2.allgather_time(32 << 20));
}

TEST(CollectiveTiming, SingleRankIsFree) {
  cm::Communicator comm(cm::Topology::with_gpus(1),
                        cm::NetworkModel::platform1());
  EXPECT_EQ(comm.allreduce_time(1 << 20), 0.0);
  EXPECT_EQ(comm.allgather_time(1 << 20), 0.0);
}

TEST(CollectiveTiming, SingleNodeUsesNvlink) {
  // 4 GPUs on one node (NVLink) vs 4 GPUs across nodes (NIC).
  cm::Communicator one_node(cm::Topology{.nodes = 1, .gpus_per_node = 4},
                            cm::NetworkModel::platform1());
  cm::Communicator four_nodes(cm::Topology{.nodes = 4, .gpus_per_node = 1},
                              cm::NetworkModel::platform1());
  EXPECT_LT(one_node.allgather_time(32 << 20),
            four_nodes.allgather_time(32 << 20) / 4.0);
}

TEST(CollectiveTiming, AllgathervBandwidthTermMatchesTotalMinusOwn) {
  cm::Communicator comm(cm::Topology::with_gpus(8),
                        cm::NetworkModel::platform1());
  // Equal chunks: allgatherv should match equal-chunk allgather closely.
  std::vector<std::size_t> equal(8, 4 << 20);
  const double tv = comm.allgatherv_time(equal);
  const double ta = comm.allgather_time(4 << 20);
  EXPECT_NEAR(tv / ta, 1.0, 0.05);
}

TEST(CollectiveTiming, CompressionShrinksAllgatherTime) {
  cm::Communicator comm(cm::Topology::with_gpus(16),
                        cm::NetworkModel::platform1());
  std::vector<std::size_t> orig(16, 8 << 20);
  std::vector<std::size_t> comp(16, (8 << 20) / 22);
  EXPECT_GT(comm.allgatherv_time(orig) / comm.allgatherv_time(comp), 10.0);
}

TEST(Clocks, CollectivesSynchronizeClocks) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  comm.clocks().advance(2, 1.0);  // rank 2 is behind/ahead
  std::vector<std::vector<float>> bufs(4, std::vector<float>(10, 1.0F));
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.allreduce_sum(views);
  // All clocks equal afterwards, and beyond the straggler's start.
  const double t0 = comm.clocks().at(0);
  EXPECT_GT(t0, 1.0);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(comm.clocks().at(r), t0);
  }
}

TEST(Clocks, StatsAccumulate) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs(4, std::vector<float>(1000, 1.0F));
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.allreduce_sum(views);
  EXPECT_GT(comm.stats().allreduce_s, 0.0);
  EXPECT_EQ(comm.stats().allreduce_bytes, 4000U);
  comm.reset_stats();
  EXPECT_EQ(comm.stats().allreduce_s, 0.0);
}

TEST(Clocks, SyncAdvanceEndsTogether) {
  cm::SimClocks clocks(3);
  clocks.advance(1, 2.0);
  clocks.sync_advance(0.5);
  // A synchronizing step starts at the latest clock and ends together.
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(clocks.at(r), 2.5);
  }
}

TEST(Clocks, StragglerEventDelaysCollectiveForAll) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  cm::FaultInjector injector(cm::FaultPlan{}.straggler(0, 2, 5.0), 7);
  comm.set_fault_injector(&injector);
  comm.begin_iteration(0);
  EXPECT_DOUBLE_EQ(comm.clocks().at(2), 5.0);
  EXPECT_EQ(comm.recovery().straggler_events, 1U);

  std::vector<std::vector<float>> bufs(4, std::vector<float>(10, 1.0F));
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.allreduce_sum(views);
  // The collective starts at the straggler's clock; everyone ends together
  // beyond it.
  const double t0 = comm.clocks().at(0);
  EXPECT_GT(t0, 5.0);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(comm.clocks().at(r), t0);
  }
  // One-shot: the next iteration sees no residual slowdown event.
  comm.begin_iteration(1);
  EXPECT_EQ(comm.recovery().straggler_events, 1U);
}

TEST(Faults, BroadcastBytesHitByPayloadFaultHook) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  comm.set_payload_fault([](std::vector<std::uint8_t>& bytes) {
    if (!bytes.empty()) bytes[0] ^= 0xFF;
  });
  std::vector<std::vector<std::uint8_t>> bufs(4);
  bufs[1] = {0x10, 0x20, 0x30};
  comm.broadcast_bytes(bufs, 1);
  // The root keeps its pristine copy; receivers get the damaged stream.
  EXPECT_EQ(bufs[1], (std::vector<std::uint8_t>{0x10, 0x20, 0x30}));
  for (std::size_t r : {0UL, 2UL, 3UL}) {
    EXPECT_EQ(bufs[r], (std::vector<std::uint8_t>{0xEF, 0x20, 0x30}));
  }
}

TEST(Faults, BroadcastBytesHitByInjector) {
  cm::Communicator comm(cm::Topology::with_gpus(3),
                        cm::NetworkModel::platform1());
  cm::FaultInjector injector(cm::FaultPlan{}.corrupt(0, 1), 11);
  comm.set_fault_injector(&injector);
  comm.begin_iteration(0);
  std::vector<std::vector<std::uint8_t>> bufs(3);
  bufs[1].assign(32, 0xAB);
  comm.broadcast_bytes(bufs, 1);
  EXPECT_EQ(comm.recovery().corrupt_injected, 1U);
  EXPECT_EQ(bufs[1], std::vector<std::uint8_t>(32, 0xAB));
  EXPECT_NE(bufs[0], bufs[1]);  // delivered copy is damaged
  EXPECT_EQ(bufs[0], bufs[2]);  // but identically so for every receiver
}

TEST(Validation, MismatchedBuffersThrow) {
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs{{1.0F, 2.0F}, {1.0F}};
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  EXPECT_THROW(comm.allreduce_sum(views), std::invalid_argument);
  EXPECT_THROW(comm.broadcast(views, 5), std::invalid_argument);
}

}  // namespace
