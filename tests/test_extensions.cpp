// Tests for the §7 future-work extensions: the automatic bound tuner,
// factor (A/G) compression in distributed KFAC, and the reduce-scatter
// collective.

#include "src/comm/communicator.hpp"
#include "src/core/bound_tuner.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cc = compso::core;
namespace cm = compso::comm;
namespace cp = compso::compress;
namespace ct = compso::tensor;
namespace nn = compso::nn;
namespace opt = compso::optim;

namespace {

// --- bound tuner ---

TEST(BoundTuner, DistortionMetricsKnownValues) {
  std::vector<float> a{1.0F, 0.0F};
  std::vector<float> same{1.0F, 0.0F};
  const auto d0 = cc::measure_distortion(a, same);
  EXPECT_NEAR(d0.relative_l2, 0.0, 1e-12);
  EXPECT_NEAR(d0.cosine_distortion, 0.0, 1e-9);
  std::vector<float> orth{0.0F, 1.0F};
  const auto d1 = cc::measure_distortion(a, orth);
  EXPECT_NEAR(d1.cosine_distortion, 1.0, 1e-9);
  EXPECT_NEAR(d1.relative_l2, std::sqrt(2.0), 1e-6);
}

TEST(BoundTuner, RespectsBudget) {
  ct::Rng rng(1);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), rng);
  cc::BoundTunerConfig cfg;
  cfg.max_relative_l2 = 0.05;
  cfg.max_cosine_distortion = 0.005;
  const auto tuned = cc::tune_bounds(grad, cfg, rng);
  EXPECT_LE(tuned.achieved_relative_l2, cfg.max_relative_l2);
  EXPECT_LE(tuned.achieved_cosine_distortion, cfg.max_cosine_distortion);
  EXPECT_GT(tuned.quant_bound, 0.0);
  EXPECT_GT(tuned.achieved_compression_ratio, 1.0);
}

TEST(BoundTuner, LooserBudgetGivesLooserBoundsAndHigherRatio) {
  ct::Rng rng(2);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), rng);
  cc::BoundTunerConfig tight;
  tight.max_relative_l2 = 0.01;
  tight.max_cosine_distortion = 1e-3;
  cc::BoundTunerConfig loose;
  loose.max_relative_l2 = 0.20;
  loose.max_cosine_distortion = 0.05;
  ct::Rng rng_a(3), rng_b(3);
  const auto t = cc::tune_bounds(grad, tight, rng_a);
  const auto l = cc::tune_bounds(grad, loose, rng_b);
  EXPECT_GT(l.quant_bound, t.quant_bound);
  EXPECT_GT(l.achieved_compression_ratio, t.achieved_compression_ratio);
}

TEST(BoundTuner, TunedBoundBeatsDefaultWhenBudgetAllows) {
  // With a generous budget the tuner should find a bound looser than the
  // paper's empirical 4e-3 default.
  ct::Rng rng(4);
  const auto grad =
      ct::synthetic_gradient(1 << 16, ct::GradientProfile::kfac(), rng);
  cc::BoundTunerConfig cfg;
  cfg.max_relative_l2 = 0.30;
  cfg.max_cosine_distortion = 0.05;
  const auto tuned = cc::tune_bounds(grad, cfg, rng);
  EXPECT_GT(tuned.quant_bound, 4e-3);
}

TEST(BoundTuner, ImpossibleBudgetReturnsTightestBound) {
  ct::Rng rng(5);
  const auto grad =
      ct::synthetic_gradient(1 << 14, ct::GradientProfile::kfac(), rng);
  cc::BoundTunerConfig cfg;
  cfg.max_relative_l2 = 1e-9;  // unreachable for lossy compression
  cfg.max_cosine_distortion = 1e-12;
  const auto tuned = cc::tune_bounds(grad, cfg, rng);
  EXPECT_GT(tuned.achieved_relative_l2, cfg.max_relative_l2);
  EXPECT_NEAR(tuned.quant_bound, cfg.min_bound, cfg.min_bound * 0.5);
}

TEST(BoundTuner, BadInputsThrow) {
  ct::Rng rng(6);
  std::vector<float> empty;
  EXPECT_THROW((void)cc::tune_bounds(empty, {}, rng), std::invalid_argument);
  std::vector<float> some(10, 1.0F);
  cc::BoundTunerConfig bad;
  bad.min_bound = 1.0;
  bad.max_bound = 0.5;
  EXPECT_THROW((void)cc::tune_bounds(some, bad, rng), std::invalid_argument);
}

// --- factor compression ---

struct KfacFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit KfacFixture(std::size_t world) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }
};

TEST(FactorCompression, BytesTrackedAndReduced) {
  KfacFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1}, comm, f.ptrs);
  cp::CompsoParams p;
  p.use_filter = false;
  p.quant_bound = 1e-3;
  const auto factor_comp = cp::make_compso(p);
  kfac.set_factor_compressor(factor_comp.get());
  ct::Rng data_rng(1), sr_rng(2);
  f.fwd_bwd(data_rng);
  kfac.step(0, 0.01, nullptr, sr_rng);
  EXPECT_GT(kfac.last_factor_original_bytes(), 0U);
  EXPECT_LT(kfac.last_factor_compressed_bytes(),
            kfac.last_factor_original_bytes());
}

TEST(FactorCompression, DisabledByDefault) {
  KfacFixture f(2);
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1}, comm, f.ptrs);
  ct::Rng data_rng(1), sr_rng(2);
  f.fwd_bwd(data_rng);
  kfac.step(0, 0.01, nullptr, sr_rng);
  EXPECT_EQ(kfac.last_factor_compressed_bytes(), 0U);
}

TEST(FactorCompression, TrainingStillConverges) {
  KfacFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1}, comm, f.ptrs);
  cp::CompsoParams p;
  p.use_filter = false;
  p.quant_bound = 1e-3;
  const auto factor_comp = cp::make_compso(p);
  kfac.set_factor_compressor(factor_comp.get());
  ct::Rng data_rng(1), sr_rng(2);
  ct::Rng eval_rng(9);
  for (std::size_t t = 0; t < 50; ++t) {
    f.fwd_bwd(data_rng);
    kfac.step(t, 0.01, nullptr, sr_rng);
  }
  const auto batch = f.dataset.sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(f.replicas[0].forward(batch.x), batch.labels), 0.9);
}

// --- reduce-scatter ---

TEST(ReduceScatter, SumsAndScatters) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs(4, std::vector<float>(8));
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t i = 0; i < 8; ++i) {
      bufs[r][i] = static_cast<float>(r + 1);
    }
  }
  comm.reduce_scatter_sum(bufs);
  // Sum over ranks of (r+1) = 10 at every position; chunk size 2.
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(bufs[r].size(), 2U);
    EXPECT_FLOAT_EQ(bufs[r][0], 10.0F);
    EXPECT_FLOAT_EQ(bufs[r][1], 10.0F);
  }
  EXPECT_GT(comm.stats().reduce_scatter_s, 0.0);
}

TEST(ReduceScatter, ComposesToAllreduce) {
  // reduce-scatter + allgather == allreduce (the classic identity).
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs{{1.0F, 2.0F, 3.0F, 4.0F},
                                       {5.0F, 6.0F, 7.0F, 8.0F}};
  comm.reduce_scatter_sum(bufs);
  std::vector<std::vector<float>> gathered;
  comm.allgather(bufs, gathered);
  const std::vector<float> expected{6.0F, 8.0F, 10.0F, 12.0F};
  EXPECT_EQ(gathered[0], expected);
  EXPECT_EQ(gathered[1], expected);
}

TEST(ReduceScatter, ValidatesDivisibility) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  std::vector<std::vector<float>> bufs(4, std::vector<float>(6));
  EXPECT_THROW(comm.reduce_scatter_sum(bufs), std::invalid_argument);
}

}  // namespace
