// CompressionEngine + parallel-vs-serial determinism: the engine's
// ticket/batch semantics, bit-identical optimizer trajectories for any
// worker count (DistSgd and DistKfac, including factor compression),
// FaultTolerantTrainer checkpoint/resume under a parallel engine, and a
// fuzz loop driving mutated payloads through the fused COMPSO decoder.

#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/compress/payload_fuzz.hpp"
#include "src/compso.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace opt = compso::optim;
namespace nn = compso::nn;
namespace ct = compso::tensor;
namespace cc = compso::compress;

namespace {

// --- engine unit semantics ---

TEST(CompressionEngine, SerialEngineDefersExceptionToWait) {
  cc::CompressionEngine eng(0);
  EXPECT_EQ(eng.thread_count(), 0U);
  const auto ok = eng.submit([] {});
  const auto bad = eng.submit([] { throw std::runtime_error("job boom"); });
  EXPECT_NO_THROW(eng.wait(ok));
  EXPECT_THROW(eng.wait(bad), std::runtime_error);
  EXPECT_NO_THROW(eng.wait(bad));  // double-wait is a no-op.
  EXPECT_NO_THROW(eng.wait_all());
}

TEST(CompressionEngine, ParallelEngineRunsJobsAndRethrows) {
  cc::CompressionEngine eng(3);
  EXPECT_EQ(eng.thread_count(), 3U);
  std::atomic<int> ran{0};
  std::vector<cc::CompressionEngine::Ticket> tickets;
  for (int i = 0; i < 20; ++i) {
    tickets.push_back(eng.submit([&ran] { ++ran; }));
  }
  const auto bad =
      eng.submit([] { throw std::runtime_error("parallel boom"); });
  for (auto t : tickets) eng.wait(t);
  EXPECT_EQ(ran.load(), 20);
  EXPECT_THROW(eng.wait(bad), std::runtime_error);
  EXPECT_NO_THROW(eng.wait_all());
}

TEST(CompressionEngine, RunBatchRunsEveryJobEvenWhenOneThrows) {
  for (std::size_t threads : {0UL, 2UL}) {
    cc::CompressionEngine eng(threads);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 8; ++i) {
      jobs.push_back([&ran, i] {
        ++ran;
        if (i == 3) throw std::runtime_error("batch boom");
      });
    }
    EXPECT_THROW(eng.run_batch(std::move(jobs)), std::runtime_error)
        << "threads=" << threads;
    // The barrier ran *all* jobs before rethrowing: a retried exchange
    // must not observe half-written buffers from an abandoned batch.
    EXPECT_EQ(ran.load(), 8) << "threads=" << threads;
  }
}

TEST(CompressionEngine, TaskRngIsDeterministicPerTaskId) {
  ct::Rng a = cc::CompressionEngine::task_rng(42, 7);
  ct::Rng b = cc::CompressionEngine::task_rng(42, 7);
  ct::Rng c = cc::CompressionEngine::task_rng(42, 8);
  bool differs = false;
  for (int i = 0; i < 16; ++i) {
    const auto va = a(), vb = b(), vc = c();
    EXPECT_EQ(va, vb);
    differs = differs || va != vc;
  }
  EXPECT_TRUE(differs);  // distinct task ids -> distinct streams.
}

// --- parallel == serial bit-exactness for the optimizers ---

struct DistFixture {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset{8, 3, 0.4F, 77};

  explicit DistFixture(std::size_t world) {
    for (std::size_t r = 0; r < world; ++r) {
      ct::Rng rng(555);
      replicas.push_back(nn::make_mlp_classifier(8, 12, 3, 1, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(ct::Rng& data_rng) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(8, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
  }

  std::vector<float> flat_params() {
    std::vector<float> out;
    for (std::size_t li : replicas[0].trainable_layers()) {
      auto& layer = replicas[0].layer(li);
      const auto w = layer.weight()->span();
      const auto b = layer.bias()->span();
      out.insert(out.end(), w.begin(), w.end());
      out.insert(out.end(), b.begin(), b.end());
    }
    return out;
  }
};

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " diverges at " << i;
  }
}

std::vector<float> run_sgd(std::size_t engine_threads) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistSgd sgd({.momentum = 0.9, .error_feedback = true}, comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  sgd.set_engine(&eng);
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 5; ++t) {
    f.run_fwd_bwd(data_rng);
    sgd.step(0.05, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(ParallelDeterminism, DistSgdBitExactAcrossEngineThreads) {
  const auto serial = run_sgd(0);
  expect_bitwise_equal(serial, run_sgd(1), "1-thread engine");
  expect_bitwise_equal(serial, run_sgd(4), "4-thread engine");
}

std::vector<float> run_kfac(std::size_t engine_threads,
                            bool factor_compression) {
  DistFixture f(4);
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1, .aggregation = 2}, comm, f.ptrs);
  cc::CompressionEngine eng(engine_threads);
  kfac.set_engine(&eng);
  const auto compso = cc::make_compso({});
  const auto factor_comp = cc::make_compso(
      {.filter_bound = 0.0, .quant_bound = 1e-4, .use_filter = false});
  if (factor_compression) kfac.set_factor_compressor(factor_comp.get());
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 4; ++t) {
    f.run_fwd_bwd(data_rng);
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  return f.flat_params();
}

TEST(ParallelDeterminism, DistKfacBitExactAcrossEngineThreads) {
  const auto serial = run_kfac(0, false);
  expect_bitwise_equal(serial, run_kfac(1, false), "1-thread engine");
  expect_bitwise_equal(serial, run_kfac(4, false), "4-thread engine");
}

TEST(ParallelDeterminism, DistKfacFactorCompressionBitExact) {
  const auto serial = run_kfac(0, true);
  expect_bitwise_equal(serial, run_kfac(1, true),
                       "1-thread engine + factor compression");
  expect_bitwise_equal(serial, run_kfac(4, true),
                       "4-thread engine + factor compression");
}

// Wider model + batch than DistFixture: the forward/backward gemms, the
// factor syrks, and the A-factor eigh all exceed the blocked math
// engine's small-op cutoff, so this run exercises the packed-panel
// kernels — and, with the engine's pool shared via MathPoolGuard, the
// pool-parallel row-block path — inside a real DistKfac step.
std::vector<float> run_kfac_blocked_math(std::size_t engine_threads) {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  for (std::size_t r = 0; r < 2; ++r) {
    ct::Rng rng(777);
    replicas.push_back(nn::make_mlp_classifier(48, 128, 4, 1, rng));
  }
  for (auto& m : replicas) ptrs.push_back(&m);
  nn::ClusterDataset dataset(48, 4, 0.4F, 99);

  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  opt::DistKfac kfac({.damping = 0.1, .eigen_refresh_every = 3}, comm, ptrs);
  cc::CompressionEngine eng(engine_threads);
  kfac.set_engine(&eng);
  ct::MathPoolGuard math(eng.pool());  // nullptr in serial mode.
  const auto compso = cc::make_compso({});
  ct::Rng data_rng(1), sr_rng(2);
  for (std::size_t t = 0; t < 3; ++t) {
    for (auto& m : replicas) {
      const auto batch = dataset.sample(128, data_rng);
      const auto logits = m.forward(batch.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      m.backward(grad);
    }
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }

  std::vector<float> out;
  for (std::size_t li : replicas[0].trainable_layers()) {
    auto& layer = replicas[0].layer(li);
    const auto w = layer.weight()->span();
    const auto b = layer.bias()->span();
    out.insert(out.end(), w.begin(), w.end());
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

TEST(ParallelDeterminism, DistKfacBlockedMathBitExactAcrossThreadCounts) {
  // Serial transcript (no engine workers, no math pool) vs the shared
  // pool at 1/2/8 threads: the deterministic static partition keeps every
  // gemm/syrk accumulation order fixed, so parameters must be bitwise
  // identical (ISSUE 4 acceptance criterion).
  const auto serial = run_kfac_blocked_math(0);
  expect_bitwise_equal(serial, run_kfac_blocked_math(1), "1 thread");
  expect_bitwise_equal(serial, run_kfac_blocked_math(2), "2 threads");
  expect_bitwise_equal(serial, run_kfac_blocked_math(8), "8 threads");
}

// --- fault-tolerant trainer under the parallel engine ---

core::FtTrainerConfig small_config(core::OptimizerKind kind,
                                   std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 31337};
  cfg.optimizer = kind;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 20;
  cfg.engine_threads = engine_threads;
  return cfg;
}

TEST(ParallelDeterminism, FtTrainerTrajectoryIndependentOfEngineThreads) {
  for (const auto kind :
       {core::OptimizerKind::kSgd, core::OptimizerKind::kKfac}) {
    core::FaultTolerantTrainer serial(small_config(kind, 0));
    core::FaultTolerantTrainer parallel(small_config(kind, 4));
    const auto loss_s = serial.run(6);
    const auto loss_p = parallel.run(6);
    ASSERT_EQ(loss_s.size(), loss_p.size());
    for (std::size_t i = 0; i < loss_s.size(); ++i) {
      EXPECT_EQ(loss_s[i], loss_p[i]) << "iteration " << i;
    }
    expect_bitwise_equal(serial.parameters(), parallel.parameters(),
                         kind == core::OptimizerKind::kSgd ? "sgd" : "kfac");
  }
}

TEST(ParallelDeterminism, CheckpointResumeBitExactUnderParallelEngine) {
  // Straight run with a parallel engine...
  core::FaultTolerantTrainer straight(
      small_config(core::OptimizerKind::kKfac, 4));
  straight.run(12);

  // ...vs interrupt at 6 under the parallel engine, resume under the
  // SERIAL engine (checkpoints carry no engine state, so the worker
  // count is free to change across restarts).
  core::FaultTolerantTrainer first(
      small_config(core::OptimizerKind::kKfac, 4));
  first.run(6);
  const auto frame = first.checkpoint();
  core::FaultTolerantTrainer resumed(
      small_config(core::OptimizerKind::kKfac, 0));
  resumed.restore(frame);
  EXPECT_EQ(resumed.iteration(), 6U);
  resumed.run(6);

  expect_bitwise_equal(straight.parameters(), resumed.parameters(),
                       "resumed trajectory");
}

// --- fuzz: mutated payloads against the fused decoder ---

TEST(FusedDecoder, MutatedPayloadsThrowOrDecodeBitExact) {
  ct::Rng grad_rng(404);
  const auto grad = ct::synthetic_gradient(
      20'000, ct::GradientProfile::kfac(), grad_rng);
  const auto compso = cc::make_compso({});
  ct::Rng c_rng(9);
  const auto payload = compso->compress(grad, c_rng);
  const auto reference = compso->decompress(payload);

  ct::Rng mut_rng(123);
  std::size_t rejected = 0;
  for (int i = 0; i < 400; ++i) {
    const auto mutated = cc::mutate_payload(payload, mut_rng);
    try {
      const auto out = compso->decompress(mutated);
      // A mutation that slipped past validation must have been benign:
      // the decode is bit-exact. Silent corruption is the bug class.
      ASSERT_EQ(out.size(), reference.size()) << "mutation " << i;
      for (std::size_t j = 0; j < out.size(); ++j) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(out[j]),
                  std::bit_cast<std::uint32_t>(reference[j]))
            << "mutation " << i << " float " << j;
      }
    } catch (const compso::PayloadError&) {
      ++rejected;
    }
  }
  // The CRC makes nearly every mutation detectable.
  EXPECT_GT(rejected, 350U);
}

}  // namespace
