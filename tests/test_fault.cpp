// Fault injection and recovery: deterministic FaultPlans, transport-level
// damage in the collectives, rank eviction (world-shrink), and the
// end-to-end recovery policies of the fault-tolerant trainer — bounded
// decode retries (bit-exact vs a fault-free run), uncompressed fallback /
// layer degradation, non-finite step skips with adaptive-bound tightening,
// and the crash drill from the ISSUE acceptance criteria.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cm = compso::comm;
namespace core = compso::core;

namespace {

core::FtTrainerConfig small_config(core::OptimizerKind kind) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 4242};
  cfg.optimizer = kind;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = 40;
  return cfg;
}

double relative_l2(const std::vector<float>& a, const std::vector<float>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / (den + 1e-12));
}

TEST(FaultPlan, RandomIsDeterministicAndInRange) {
  const auto a = cm::FaultPlan::random(16, 10, 4, 99);
  const auto b = cm::FaultPlan::random(16, 10, 4, 99);
  ASSERT_EQ(a.events().size(), 16U);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].iteration, b.events()[i].iteration);
    EXPECT_EQ(a.events()[i].rank, b.events()[i].rank);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_LT(a.events()[i].iteration, 10U);
    EXPECT_LT(a.events()[i].rank, 4U);
    EXPECT_NE(a.events()[i].kind, cm::FaultKind::kCrash);  // transient only
  }
}

TEST(FaultInjector, EventsAreOneShot) {
  cm::FaultInjector injector(cm::FaultPlan{}.corrupt(3, 1), 1);
  injector.begin_iteration(3);
  EXPECT_TRUE(injector.pending(cm::FaultKind::kCorruptPayload));
  EXPECT_FALSE(injector.take(cm::FaultKind::kCorruptPayload, 0));
  EXPECT_TRUE(injector.take(cm::FaultKind::kCorruptPayload, 1));
  EXPECT_FALSE(injector.take(cm::FaultKind::kCorruptPayload, 1));
  EXPECT_EQ(injector.fired_count(), 1U);
}

TEST(FaultInjector, DropRemovesEntryFromGatheredStream) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  cm::FaultInjector injector(cm::FaultPlan{}.drop(0, 2), 5);
  comm.set_fault_injector(&injector);
  comm.begin_iteration(0);
  std::vector<std::vector<std::uint8_t>> send(4);
  for (std::size_t r = 0; r < 4; ++r) {
    send[r].assign(4, static_cast<std::uint8_t>(r));
  }
  std::vector<std::vector<std::uint8_t>> recv;
  comm.allgatherv(send, recv);
  EXPECT_EQ(comm.recovery().drops_injected, 1U);
  ASSERT_EQ(recv[0].size(), 12U);  // 3 surviving entries of 4 bytes
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NE(recv[0][i], 2U);  // rank 2's bytes vanished in flight
  }
  // A retry of the same collective sees clean data (one-shot event).
  comm.allgatherv(send, recv);
  EXPECT_EQ(recv[0].size(), 16U);
  EXPECT_EQ(comm.recovery().drops_injected, 1U);
}

TEST(FaultInjector, TruncateShortensOneEntry) {
  cm::Communicator comm(cm::Topology::with_gpus(3),
                        cm::NetworkModel::platform1());
  cm::FaultInjector injector(cm::FaultPlan{}.truncate(1, 0), 5);
  comm.set_fault_injector(&injector);
  comm.begin_iteration(1);
  std::vector<std::vector<std::uint8_t>> send(3);
  for (auto& s : send) s.assign(8, 0x7F);
  std::vector<std::vector<std::uint8_t>> recv;
  comm.allgatherv(send, recv);
  EXPECT_EQ(comm.recovery().truncations_injected, 1U);
  EXPECT_LT(recv[0].size(), 24U);
  EXPECT_GE(recv[0].size(), 16U);  // only rank 0's entry lost bytes
}

TEST(Eviction, CollectivesRunOverSurvivors) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  comm.evict(1);
  comm.evict(1);  // idempotent
  EXPECT_EQ(comm.recovery().evictions, 1U);
  EXPECT_EQ(comm.active_count(), 3U);
  EXPECT_EQ(comm.active_ranks(), (std::vector<std::size_t>{0, 2, 3}));

  std::vector<std::vector<float>> bufs(4, std::vector<float>(2, 1.0F));
  bufs[1] = {100.0F, 100.0F};  // dead rank's buffer must not contribute
  std::vector<std::span<float>> views;
  for (auto& b : bufs) views.push_back(b);
  comm.allreduce_sum(views);
  for (std::size_t r : comm.active_ranks()) {
    EXPECT_FLOAT_EQ(bufs[r][0], 3.0F);
  }
  EXPECT_FLOAT_EQ(bufs[1][0], 100.0F);  // dead rank receives nothing
}

TEST(Eviction, LastRankCannotBeEvicted) {
  cm::Communicator comm(cm::Topology::with_gpus(2),
                        cm::NetworkModel::platform1());
  comm.evict(0);
  EXPECT_THROW(comm.evict(1), std::logic_error);
}

// A crash is detected, not announced: the plan only stops the rank's
// heartbeats, and eviction comes out of the membership ladder — missed
// beats at the crash step (deadline wait + step exclusion), suspicion at
// the second miss, backed-off probes, then eviction. The FaultPlan is
// never consulted as an oracle.
TEST(Eviction, CrashDetectionWalksTheHeartbeatLadder) {
  cm::Communicator comm(cm::Topology::with_gpus(4),
                        cm::NetworkModel::platform1());
  cm::FaultInjector injector(cm::FaultPlan{}.crash(2, 3), 5);
  comm.set_fault_injector(&injector);
  comm.begin_iteration(1);
  EXPECT_TRUE(comm.is_active(3));
  EXPECT_TRUE(comm.is_participating(3));

  // Crash step: first missed heartbeat. The group waits out the straggler
  // deadline, then continues without rank 3 — no eviction yet.
  comm.begin_iteration(2);
  EXPECT_TRUE(comm.is_active(3));
  EXPECT_FALSE(comm.is_participating(3));
  EXPECT_EQ(comm.membership().phase(3), cm::RankPhase::kHealthy);
  EXPECT_EQ(comm.recovery().heartbeat_misses, 1U);
  EXPECT_EQ(comm.recovery().deadline_waits, 1U);
  EXPECT_EQ(comm.recovery().deadline_exclusions, 1U);
  EXPECT_EQ(comm.recovery().evictions, 0U);

  // Second miss: suspicion. Probes back off (t+1, then t+2) and only
  // their exhaustion evicts.
  comm.begin_iteration(3);
  EXPECT_EQ(comm.membership().phase(3), cm::RankPhase::kSuspect);
  EXPECT_EQ(comm.recovery().suspicions, 1U);
  EXPECT_EQ(comm.recovery().evictions, 0U);
  comm.begin_iteration(4);  // probe 1 fails, interval doubles
  EXPECT_EQ(comm.recovery().evictions, 0U);
  comm.begin_iteration(5);  // inside backoff window: no probe
  comm.begin_iteration(6);  // probe 2 fails -> evict
  EXPECT_FALSE(comm.is_active(3));
  EXPECT_EQ(comm.membership().phase(3), cm::RankPhase::kEvicted);
  EXPECT_EQ(comm.recovery().evictions, 1U);
  // After eviction the ledger stops charging misses for the dead rank.
  const auto misses = comm.recovery().heartbeat_misses;
  comm.begin_iteration(7);
  EXPECT_EQ(comm.recovery().heartbeat_misses, misses);
}

// Transient transport faults are absorbed by the bounded re-send retry:
// the same compressed payloads go through a fresh collective, so the run's
// arithmetic — and therefore its final parameters — is bit-exact vs a
// fault-free run. Stragglers only move simulated clocks.
TEST(Recovery, TransientFaultsAreBitExactAfterRetry) {
  for (const auto kind : {core::OptimizerKind::kKfac,
                          core::OptimizerKind::kSgd}) {
    core::FaultTolerantTrainer clean(small_config(kind));
    clean.run(12);

    core::FaultTolerantTrainer faulty(small_config(kind));
    faulty.set_fault_plan(cm::FaultPlan{}
                              .corrupt(3, 0)
                              .truncate(5, 1)
                              .drop(7, 0)
                              .straggler(4, 2, 2.5),
                          77);
    faulty.run(12);

    const auto& rc = faulty.comm().recovery();
    EXPECT_EQ(rc.corrupt_injected, 1U);
    EXPECT_EQ(rc.truncations_injected, 1U);
    EXPECT_EQ(rc.drops_injected, 1U);
    EXPECT_EQ(rc.straggler_events, 1U);
    EXPECT_GE(rc.decode_retries, 3U);
    EXPECT_EQ(rc.decode_failures, 0U);
    EXPECT_EQ(rc.nonfinite_skips, 0U);
    EXPECT_EQ(faulty.parameters(), clean.parameters());
    // The straggler's stall is visible in the simulated clock.
    EXPECT_GT(faulty.comm().clocks().max_time(),
              clean.comm().clocks().max_time() + 2.0);
  }
}

TEST(Recovery, RetriesExhaustedFallsBackAndDegrades) {
  auto cfg = small_config(core::OptimizerKind::kSgd);
  cfg.recovery.max_decode_retries = 0;  // a single failure exhausts retries
  cfg.recovery.fallback_after = 1;      // ... and degrades immediately
  core::FaultTolerantTrainer trainer(cfg);
  trainer.set_fault_plan(cm::FaultPlan{}.corrupt(2, 1), 31);
  trainer.run(6);
  const auto& rc = trainer.comm().recovery();
  EXPECT_EQ(rc.decode_failures, 1U);
  EXPECT_GE(rc.fallback_steps, 1U);
  EXPECT_EQ(rc.degraded_layers, 1U);
  for (const float p : trainer.parameters()) {
    ASSERT_TRUE(std::isfinite(p));
  }
}

TEST(Recovery, NanGradientSkipsStepAndTightensBounds) {
  for (const auto kind : {core::OptimizerKind::kKfac,
                          core::OptimizerKind::kSgd}) {
    core::FaultTolerantTrainer trainer(small_config(kind));
    trainer.set_fault_plan(cm::FaultPlan{}.nan_gradient(2, 1), 13);
    trainer.run(8);
    const auto& rc = trainer.comm().recovery();
    EXPECT_GE(rc.nonfinite_skips, 1U);
    EXPECT_EQ(rc.bound_tightenings, 1U);
    EXPECT_TRUE(trainer.bounds_tightened());
    for (const float p : trainer.parameters()) {
      ASSERT_TRUE(std::isfinite(p));
    }
  }
}

TEST(Recovery, PolicyDisabledFailsFast) {
  auto cfg = small_config(core::OptimizerKind::kKfac);
  cfg.recovery.enabled = false;
  {
    core::FaultTolerantTrainer trainer(cfg);
    trainer.set_fault_plan(cm::FaultPlan{}.corrupt(1, 0), 3);
    EXPECT_THROW(trainer.run(4), compso::PayloadError);
  }
  {
    core::FaultTolerantTrainer trainer(cfg);
    trainer.set_fault_plan(cm::FaultPlan{}.nan_gradient(1, 0), 3);
    EXPECT_THROW(trainer.run(4), compso::NonFiniteError);
  }
}

// The ISSUE acceptance drill: corruption + straggler + one crash, end to
// end. The run completes without throwing, RecoveryStats records each
// event, and the final parameters stay within a loose bound of the
// fault-free run (the post-crash average is over 3 of 4 ranks).
TEST(Recovery, EndToEndFaultDrill) {
  auto cfg = small_config(core::OptimizerKind::kKfac);
  core::FaultTolerantTrainer clean(cfg);
  clean.run(16);

  core::FaultTolerantTrainer faulty(cfg);
  faulty.set_fault_plan(cm::FaultPlan{}
                            .corrupt(3, 0)
                            .straggler(5, 1, 4.0)
                            .crash(9, 3),
                        2024);
  std::vector<double> losses;
  ASSERT_NO_THROW(losses = faulty.run(16));
  ASSERT_EQ(losses.size(), 16U);
  for (const double l : losses) {
    ASSERT_TRUE(std::isfinite(l));
  }

  const auto& rc = faulty.comm().recovery();
  EXPECT_EQ(rc.corrupt_injected, 1U);
  EXPECT_EQ(rc.straggler_events, 1U);
  EXPECT_EQ(rc.evictions, 1U);
  EXPECT_GE(rc.faults_injected(), 2U);
  EXPECT_GE(rc.recovery_actions(), 2U);
  EXPECT_EQ(faulty.comm().active_count(), 3U);
  EXPECT_FALSE(rc.to_string().empty());

  // 7 of 16 iterations ran on the shrunken world: trajectories diverge,
  // but stay in the same basin. The bound is loose by design — the exact
  // drift depends on the stochastic-rounding dither schedule, which is an
  // implementation detail (e.g. per-task counter-derived Rng streams).
  const auto a = faulty.parameters();
  const auto b = clean.parameters();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LT(relative_l2(a, b), 0.75);
  EXPECT_GT(faulty.evaluate(), 0.5);
}

}  // namespace
