// Tests for the performance model: lookup table, Eq. 5 speedup, end-to-end
// formula, aggregation-factor search, encoder scoring.

#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pf = compso::perf;
namespace cm = compso::comm;
namespace cp = compso::compress;
namespace ct = compso::tensor;

namespace {

cm::Communicator plat1(std::size_t gpus) {
  return cm::Communicator(cm::Topology::with_gpus(gpus),
                          cm::NetworkModel::platform1());
}

TEST(LookupTable, ThroughputIncreasesWithMessageSize) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  EXPECT_LT(table.throughput(4 << 10), table.throughput(64 << 20));
}

TEST(LookupTable, InterpolationIsMonotoneAndBounded) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  double prev = 0.0;
  for (std::size_t b = 1 << 10; b <= (std::size_t{1} << 28); b <<= 1) {
    const double t = table.throughput(b);
    EXPECT_GE(t, prev * 0.999) << b;
    prev = t;
  }
  // Interpolated values lie between endpoints.
  const double t1 = table.throughput(3 << 20);
  EXPECT_GT(t1, table.throughput(1 << 20) * 0.99);
  EXPECT_LT(t1, table.throughput(16 << 20) * 1.01);
}

TEST(LookupTable, MatchesDirectTimingQuery) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const std::size_t bytes = 8 << 20;
  EXPECT_NEAR(table.allgather_time(bytes) / comm.allgather_time(bytes), 1.0,
              0.05);
}

TEST(LookupTable, BadRangeThrows) {
  const auto comm = plat1(4);
  EXPECT_THROW(pf::CommLookupTable(comm, 1024, 512), std::invalid_argument);
  EXPECT_THROW(pf::CommLookupTable(comm, 0, 1024), std::invalid_argument);
}

TEST(LookupTable, NarrowRangeHasNoDuplicateSamplePoints) {
  // A narrow [min, max] with many points rounds adjacent log-spaced sample
  // sizes to the same byte value; interpolation then divided by
  // log2(x1) - log2(x0) == 0 and returned NaN.
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm, 1024, 2048, 24);
  for (std::size_t b = 1024; b <= 2048; b += 64) {
    const double t = table.throughput(b);
    EXPECT_TRUE(std::isfinite(t)) << b;
    EXPECT_GT(t, 0.0) << b;
  }
}

TEST(Profiler, AveragesObservations) {
  pf::OnlineProfiler p;
  p.record(100, 10, 1.0, 0.5, 2.0, 10.0);
  p.record(300, 10, 1.0, 0.5, 3.0, 10.0);
  const auto w = p.finish();
  EXPECT_EQ(w.iterations, 2U);
  EXPECT_NEAR(w.compression_ratio, 20.0, 1e-9);
  EXPECT_NEAR(w.comp_throughput, 200.0, 1e-9);  // 400 bytes / 2 s
  EXPECT_NEAR(w.comm_fraction, 0.25, 1e-9);     // 5 / 20
}

TEST(Profiler, EmptyProfileIsNeutral) {
  pf::OnlineProfiler p;
  const auto w = p.finish();
  EXPECT_EQ(w.iterations, 0U);
  EXPECT_EQ(w.compression_ratio, 1.0);
}

TEST(Eq5, SpeedupGrowsWithCompressionRatio) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const std::size_t orig = 64 << 20;
  const double fast_codec = 200e9;
  const double s10 = pf::communication_speedup(orig, orig / 10, table,
                                               fast_codec, fast_codec);
  const double s20 = pf::communication_speedup(orig, orig / 20, table,
                                               fast_codec, fast_codec);
  EXPECT_GT(s20, s10);
  EXPECT_GT(s10, 4.0);
}

TEST(Eq5, SlowCompressorErasesGain) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const std::size_t orig = 64 << 20;
  const double s_fast =
      pf::communication_speedup(orig, orig / 20, table, 200e9, 200e9);
  const double s_slow =
      pf::communication_speedup(orig, orig / 20, table, 0.3e9, 0.3e9);
  EXPECT_GT(s_fast, s_slow * 2.0);
}

TEST(Eq5, NoCompressionIsUnitSpeedup) {
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const std::size_t orig = 64 << 20;
  // Same size, infinitely fast codec -> exactly 1.
  EXPECT_NEAR(pf::communication_speedup(orig, orig, table, 1e18, 1e18), 1.0,
              1e-6);
}

TEST(EndToEnd, PaperExample) {
  // §4.4: 50% comm ratio and 10x comm speedup -> ~1.8x end-to-end.
  EXPECT_NEAR(pf::end_to_end_speedup(0.5, 10.0), 1.0 / (0.5 + 0.05), 1e-9);
  EXPECT_NEAR(pf::end_to_end_speedup(0.5, 10.0), 1.818, 0.01);
}

TEST(EndToEnd, BoundsRespected) {
  EXPECT_NEAR(pf::end_to_end_speedup(0.0, 100.0), 1.0, 1e-9);
  EXPECT_NEAR(pf::end_to_end_speedup(1.0, 8.0), 8.0, 1e-9);
  // Amdahl ceiling: never beyond 1/(1-r).
  EXPECT_LT(pf::end_to_end_speedup(0.4, 1e9), 1.0 / 0.6 + 1e-6);
}

TEST(Aggregation, PrefersAggregatingSmallLayers) {
  // Many small layers: per-call overhead dominates at m=1, so the chosen
  // factor should be > 1.
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  std::vector<std::size_t> layer_bytes(64, 64 << 10);  // 64 KiB layers
  pf::WarmupProfile profile;
  profile.compression_ratio = 20.0;
  profile.comm_fraction = 0.45;
  const auto compso = cp::make_compso({});
  const auto decision = pf::choose_aggregation_factor(
      layer_bytes, profile, *compso, compso::gpusim::DeviceModel::a100(),
      table);
  EXPECT_GT(decision.factor, 1U);
  EXPECT_GT(decision.est_end_to_end, 1.0);
  EXPECT_EQ(decision.candidate_end_to_end.size(), 6U);
}

TEST(Aggregation, EstimateImprovesOverNoAggregationForTinyLayers) {
  const auto comm = plat1(64);
  pf::CommLookupTable table(comm);
  std::vector<std::size_t> layer_bytes(128, 16 << 10);
  pf::WarmupProfile profile;
  profile.compression_ratio = 22.0;
  profile.comm_fraction = 0.5;
  const auto compso = cp::make_compso({});
  const auto d = pf::choose_aggregation_factor(
      layer_bytes, profile, *compso, compso::gpusim::DeviceModel::a100(),
      table, {1, 4, 16});
  ASSERT_EQ(d.candidate_end_to_end.size(), 3U);
  EXPECT_GT(d.candidate_end_to_end[1], d.candidate_end_to_end[0]);
}

TEST(EncoderScoring, AnsWinsOnGradientLikeData) {
  // Table 2's outcome: ANS is the best overall encoder for the COMPSO
  // lossy-stage output (entropy-coder CR + near-Bitcomp throughput).
  ct::Rng rng(5);
  const auto grad = ct::synthetic_gradient(1 << 17,
                                           ct::GradientProfile::kfac(), rng);
  // Emulate the lossy-stage byte stream with quantized-code-like bytes.
  std::vector<std::uint8_t> stream;
  stream.reserve(grad.size());
  for (float g : grad) {
    const int code = static_cast<int>(g / 1e-3F);
    stream.push_back(static_cast<std::uint8_t>(
        std::clamp(code + 128, 0, 255)));
  }
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const auto scores =
      pf::score_encoders(stream, compso::gpusim::DeviceModel::a100(), table);
  ASSERT_EQ(scores.size(), 8U);
  EXPECT_EQ(scores.front().kind, compso::codec::CodecKind::kAns);
}

TEST(EncoderScoring, EntropyCodersBeatDictionaryOnRatio) {
  ct::Rng rng(6);
  const auto grad = ct::synthetic_gradient(1 << 16,
                                           ct::GradientProfile::kfac(), rng);
  std::vector<std::uint8_t> stream;
  for (float g : grad) {
    stream.push_back(static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(g / 1e-3F) + 128, 0, 255)));
  }
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const auto scores =
      pf::score_encoders(stream, compso::gpusim::DeviceModel::a100(), table);
  double ans_cr = 0.0, lz4_cr = 0.0;
  for (const auto& s : scores) {
    if (s.kind == compso::codec::CodecKind::kAns) ans_cr = s.compression_ratio;
    if (s.kind == compso::codec::CodecKind::kLz4) lz4_cr = s.compression_ratio;
  }
  EXPECT_GT(ans_cr, lz4_cr);
}

TEST(EncoderScoring, BitcompFastestThroughput) {
  ct::Rng rng(7);
  std::vector<std::uint8_t> stream(1 << 16);
  for (auto& b : stream) b = static_cast<std::uint8_t>(rng.uniform_index(32));
  const auto comm = plat1(16);
  pf::CommLookupTable table(comm);
  const auto scores =
      pf::score_encoders(stream, compso::gpusim::DeviceModel::a100(), table);
  double best_tput = 0.0;
  compso::codec::CodecKind best{};
  for (const auto& s : scores) {
    if (s.comp_throughput > best_tput) {
      best_tput = s.comp_throughput;
      best = s.kind;
    }
  }
  EXPECT_EQ(best, compso::codec::CodecKind::kBitcomp);
}

}  // namespace
