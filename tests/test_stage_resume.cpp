// Adaptive-stage checkpoint/resume (DESIGN.md §9 + Algorithm 1): resuming
// just before or just after an LR-drop stage transition must reproduce
// the uninterrupted run bit-exactly — the restored compressor bounds
// (including the post-NaN tightening override), the schedule cursor, the
// per-step losses, and the final parameters.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace cp = compso::compress;

namespace {

// StepLr with a milestone at 20: AdaptiveSchedule switches from the
// aggressive stage (filter on, loose bounds) to the conservative stage
// (filter off, tight bounds) exactly there.
core::FtTrainerConfig staged_config() {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 12,
              .classes = 4,
              .hidden = 12,
              .depth = 2,
              .noise = 0.7F,
              .seed = 4242};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.lr_milestones = {20};
  cfg.total_iterations = 40;
  return cfg;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

void expect_params_equal(const cp::CompsoParams& got,
                         const cp::CompsoParams& want) {
  EXPECT_DOUBLE_EQ(got.filter_bound, want.filter_bound);
  EXPECT_DOUBLE_EQ(got.quant_bound, want.quant_bound);
  EXPECT_EQ(got.use_filter, want.use_filter);
  EXPECT_EQ(got.encoder, want.encoder);
}

/// Interrupts an uninterrupted 30-step run at `split`, resumes in a fresh
/// trainer, and requires the remainder to match step for step.
void check_resume_at(std::size_t split) {
  constexpr std::size_t kTotal = 30;

  core::FaultTolerantTrainer full(staged_config());
  const auto full_losses = full.run(kTotal);

  core::FaultTolerantTrainer first_leg(staged_config());
  first_leg.run(split);
  const auto frame = first_leg.checkpoint();

  core::FaultTolerantTrainer resumed(staged_config());
  resumed.restore(frame);
  ASSERT_EQ(resumed.iteration(), split);

  // The restored schedule cursor must hand the optimizer the exact same
  // compressor bounds the uninterrupted run uses at each remaining step.
  for (std::size_t t = split; t < kTotal; ++t) {
    expect_params_equal(resumed.effective_params(t),
                        full.effective_params(t));
  }
  const auto resumed_losses = resumed.run(kTotal - split);
  for (std::size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_losses[i], full_losses[split + i]) << i;
  }
  EXPECT_TRUE(bitwise_equal(resumed.parameters(), full.parameters()));
}

TEST(StageResume, ScheduleTransitionsAtTheMilestone) {
  core::FaultTolerantTrainer trainer(staged_config());
  const auto before = trainer.effective_params(19);
  const auto after = trainer.effective_params(20);
  EXPECT_TRUE(before.use_filter);   // aggressive stage
  EXPECT_FALSE(after.use_filter);   // conservative stage
  EXPECT_LT(after.quant_bound, before.quant_bound);
  EXPECT_EQ(trainer.schedule().at(19).stage_index, 0U);
  EXPECT_EQ(trainer.schedule().at(20).stage_index, 1U);
}

TEST(StageResume, ResumeJustBeforeTransitionBitExact) { check_resume_at(19); }

TEST(StageResume, ResumeJustAfterTransitionBitExact) { check_resume_at(21); }

TEST(StageResume, TightenedBoundsSurviveResume) {
  const auto plan = cm::FaultPlan{}.nan_gradient(5, 1);

  core::FaultTolerantTrainer full(staged_config());
  full.set_fault_plan(plan, 31);
  const auto full_losses = full.run(30);
  ASSERT_TRUE(full.bounds_tightened());

  core::FaultTolerantTrainer first_leg(staged_config());
  first_leg.set_fault_plan(plan, 31);
  first_leg.run(12);
  ASSERT_TRUE(first_leg.bounds_tightened());
  const auto frame = first_leg.checkpoint();

  core::FaultTolerantTrainer resumed(staged_config());
  resumed.restore(frame);
  // The tightening flag is part of the checkpointed state: the resumed
  // run must keep compressing with filter off and the halved SR bound.
  EXPECT_TRUE(resumed.bounds_tightened());
  const auto p = resumed.effective_params(15);
  EXPECT_FALSE(p.use_filter);
  EXPECT_DOUBLE_EQ(p.quant_bound,
                   resumed.schedule().params_at(15).quant_bound * 0.5);
  expect_params_equal(p, full.effective_params(15));

  const auto resumed_losses = resumed.run(18);
  for (std::size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_losses[i], full_losses[12 + i]) << i;
  }
  EXPECT_TRUE(bitwise_equal(resumed.parameters(), full.parameters()));
}

}  // namespace
