// Fault-storm soak (DESIGN.md §14): ≥200 training steps under a seeded
// storm of crashes, recoveries, heartbeat silences, stragglers, dropped
// payloads, and a NaN poisoning — every membership rung fires (suspicion,
// probe backoff, deadline exclusion, eviction, readmission, resync), and
// the run stays bit-deterministic end to end:
//
//  - obs transcripts and metrics exports are byte-identical at 1/2/8
//    engine threads (the tracer rides the simulated comm clock);
//  - final parameters are bit-identical across thread counts, and every
//    replica — including ranks that crashed and rejoined mid-storm —
//    matches the lead bitwise;
//  - a checkpoint/restore in the middle of the storm continues to the
//    identical final parameters.
//
// The plan uses only resume-safe fault kinds (crash / recover / silence /
// straggler / drop / nan-gradient): none consumes the injector's RNG, so
// the resumed leg faces the exact storm the uninterrupted run saw.

#include "src/compso.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace cm = compso::comm;
namespace core = compso::core;
namespace obs = compso::obs;

namespace {

constexpr std::size_t kStormSteps = 200;
constexpr std::uint64_t kStormSeed = 2026;

core::FtTrainerConfig storm_config(std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  cfg.base = {.world = 4,
              .batch_per_rank = 8,
              .features = 10,
              .classes = 3,
              .hidden = 10,
              .depth = 2,
              .noise = 0.6F,
              .seed = 909};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 5;
  cfg.recovery = {.enabled = true,
                  .max_decode_retries = 2,
                  .fallback_after = 3,
                  .skip_nonfinite_steps = true};
  cfg.base_lr = 0.05;
  cfg.total_iterations = kStormSteps;
  cfg.engine_threads = engine_threads;
  return cfg;
}

/// Three full crash->evict->recover->rejoin cycles, three silences long
/// enough to reach the suspicion/probe rungs, one deadline-blowing and one
/// benign straggler, three dropped payloads, one NaN gradient.
cm::FaultPlan storm_plan() {
  return cm::FaultPlan{}
      .crash(10, 1)
      .drop(15, 2)
      .recover(25, 1)
      .silence(40, 2, 3)
      .nan_gradient(50, 2)
      .crash(60, 3)
      .straggler(75, 2, 12.0)
      .drop(85, 0)
      .recover(90, 3)
      .silence(120, 0, 4)
      .straggler(140, 0, 2.0)
      .drop(155, 1)
      .silence(170, 3, 2)
      .crash(180, 0)
      .recover(190, 0);
}

struct StormResult {
  std::string trace;
  std::string metrics;
  std::vector<float> params;
};

bool bit_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

StormResult run_storm(std::size_t engine_threads) {
  core::FaultTolerantTrainer trainer(storm_config(engine_threads));
  trainer.set_fault_plan(storm_plan(), kStormSeed);
  obs::MetricsRegistry registry;
  const auto clock = cm::sim_time_clock(trainer.comm().clocks());
  obs::Tracer tracer(&clock);
  trainer.set_obs({.metrics = &registry, .tracer = &tracer});

  trainer.run(kStormSteps);

  // The storm must actually have walked every rung of the ladder.
  const auto& rc = trainer.comm().recovery();
  EXPECT_EQ(rc.evictions, 3U);
  EXPECT_EQ(rc.readmissions, 3U);
  EXPECT_GE(rc.suspicions, 6U);
  EXPECT_GE(rc.heartbeat_misses, 6U);
  EXPECT_GE(rc.deadline_waits, 4U);
  EXPECT_GE(rc.deadline_exclusions, 4U);
  EXPECT_GE(rc.resyncs, 4U);
  EXPECT_EQ(rc.drops_injected, 3U);
  EXPECT_EQ(rc.straggler_events, 2U);
  EXPECT_GE(rc.nonfinite_skips, 1U);

  // Everybody healed: full group, all healthy, every replica bit-equal to
  // the lead (the rejoiners trained on from a survivor's exact state).
  EXPECT_EQ(trainer.comm().active_count(), 4U);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(trainer.comm().membership().phase(r), cm::RankPhase::kHealthy)
        << "rank " << r;
    EXPECT_TRUE(bit_equal(trainer.parameters(), trainer.replica_parameters(r)))
        << "rank " << r;
  }
  EXPECT_EQ(obs::validate_trace(tracer.trace_json()), std::nullopt);
  return {tracer.trace_json(), registry.to_json(), trainer.parameters()};
}

TEST(FaultStorm, TranscriptsAndParamsByteIdenticalAcrossEngineThreads) {
  const auto one = run_storm(1);
  const auto two = run_storm(2);
  const auto eight = run_storm(8);
  EXPECT_EQ(one.trace, two.trace);
  EXPECT_EQ(one.trace, eight.trace);
  EXPECT_EQ(one.metrics, two.metrics);
  EXPECT_EQ(one.metrics, eight.metrics);
  EXPECT_TRUE(bit_equal(one.params, two.params));
  EXPECT_TRUE(bit_equal(one.params, eight.params));
}

TEST(FaultStorm, SaveResumeMidStormReachesIdenticalFinalParams) {
  // Golden: the uninterrupted storm.
  core::FaultTolerantTrainer golden(storm_config(0));
  golden.set_fault_plan(storm_plan(), kStormSeed);
  golden.run(kStormSteps);

  // Interrupted: checkpoint halfway through (after the first crash cycle
  // and silence, before the second crash), restore into a fresh trainer,
  // ride out the rest of the storm.
  core::FaultTolerantTrainer first_half(storm_config(0));
  first_half.set_fault_plan(storm_plan(), kStormSeed);
  first_half.run(101);
  const auto frame = first_half.checkpoint();

  core::FaultTolerantTrainer resumed(storm_config(0));
  resumed.restore(frame);
  resumed.set_fault_plan(storm_plan(), kStormSeed);
  ASSERT_EQ(resumed.iteration(), 101U);
  resumed.run(kStormSteps - 101);

  EXPECT_TRUE(bit_equal(golden.parameters(), resumed.parameters()));
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(
        bit_equal(golden.replica_parameters(r), resumed.replica_parameters(r)))
        << "rank " << r;
  }
  // The counters ride the checkpoint too: the resumed run's totals match
  // the uninterrupted run's exactly.
  EXPECT_EQ(resumed.comm().recovery().evictions,
            golden.comm().recovery().evictions);
  EXPECT_EQ(resumed.comm().recovery().readmissions,
            golden.comm().recovery().readmissions);
  EXPECT_EQ(resumed.comm().recovery().resyncs,
            golden.comm().recovery().resyncs);
}

}  // namespace
