// Tests for rounding modes, error-bounded quantization, bit packing, and
// the COMPSO filter — including the §4.2 error-distribution properties.

#include "src/quant/bitpack.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/quant/rounding.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cq = compso::quant;
namespace ct = compso::tensor;

namespace {

TEST(Rounding, NearestIsDeterministic) {
  ct::Rng rng(1);
  EXPECT_EQ(cq::round_value(2.4, cq::RoundingMode::kNearest, rng), 2);
  EXPECT_EQ(cq::round_value(2.6, cq::RoundingMode::kNearest, rng), 3);
  EXPECT_EQ(cq::round_value(-2.6, cq::RoundingMode::kNearest, rng), -3);
}

TEST(Rounding, StochasticIsUnbiased) {
  ct::Rng rng(2);
  const double x = 3.3;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(
        cq::round_value(x, cq::RoundingMode::kStochastic, rng));
  }
  EXPECT_NEAR(sum / n, x, 0.01);
}

TEST(Rounding, StochasticNegativeUnbiased) {
  ct::Rng rng(3);
  const double x = -1.75;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(
        cq::round_value(x, cq::RoundingMode::kStochastic, rng));
  }
  EXPECT_NEAR(sum / n, x, 0.01);
}

TEST(Rounding, HalfProbabilityIsBiasedTowardMidpoint) {
  // P0.5 rounds up/down with p=1/2 regardless of the fraction, so for
  // x = 3.9 its expectation is 3.5, not 3.9.
  ct::Rng rng(4);
  const double x = 3.9;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(
        cq::round_value(x, cq::RoundingMode::kHalfProbability, rng));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.01);
}

TEST(Rounding, ExactIntegerIsStable) {
  ct::Rng rng(5);
  for (auto mode : {cq::RoundingMode::kNearest, cq::RoundingMode::kStochastic,
                    cq::RoundingMode::kHalfProbability}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(cq::round_value(7.0, mode, rng), 7) << cq::to_string(mode);
    }
  }
}

// --- §4.2 error-distribution shapes -------------------------------------

std::vector<float> quantization_errors(cq::RoundingMode mode,
                                       std::uint64_t seed) {
  ct::Rng rng(seed);
  std::vector<float> data(200000);
  rng.fill_uniform(data, -1.0F, 1.0F);
  const cq::ErrorBoundedQuantizer q(4e-3, mode);
  const auto block = q.quantize(data, rng);
  std::vector<float> rec(data.size());
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  std::vector<float> err(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) err[i] = rec[i] - data[i];
  return err;
}

TEST(ErrorDistribution, RnIsUniform) {
  const auto err = quantization_errors(cq::RoundingMode::kNearest, 6);
  EXPECT_NEAR(ct::kurtosis(err), 1.8, 0.1);  // uniform kurtosis
  EXPECT_NEAR(ct::mean(err), 0.0, 1e-4);
}

TEST(ErrorDistribution, SrIsTriangular) {
  const auto err = quantization_errors(cq::RoundingMode::kStochastic, 7);
  EXPECT_NEAR(ct::kurtosis(err), 2.4, 0.1);  // triangular kurtosis
  EXPECT_NEAR(ct::mean(err), 0.0, 1e-4);
}

TEST(ErrorDistribution, P05IsUniformButWider) {
  const auto errp = quantization_errors(cq::RoundingMode::kHalfProbability, 8);
  const auto errn = quantization_errors(cq::RoundingMode::kNearest, 8);
  EXPECT_NEAR(ct::kurtosis(errp), 1.8, 0.1);  // uniform shape
  // Twice the support of RN => 4x the variance.
  EXPECT_NEAR(ct::variance(errp) / ct::variance(errn), 4.0, 0.3);
}

TEST(ErrorDistribution, SrErrorStaysWithinOneStep) {
  ct::Rng rng(9);
  std::vector<float> data(50000);
  rng.fill_uniform(data, -2.0F, 2.0F);
  const cq::ErrorBoundedQuantizer q(1e-2, cq::RoundingMode::kStochastic);
  const auto block = q.quantize(data, rng);
  std::vector<float> rec(data.size());
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  EXPECT_LT(ct::max_abs_error(data, rec), block.step * (1.0 + 1e-6));
}

TEST(ErrorDistribution, RnErrorStaysWithinHalfStep) {
  ct::Rng rng(10);
  std::vector<float> data(50000);
  rng.fill_uniform(data, -2.0F, 2.0F);
  const cq::ErrorBoundedQuantizer q(1e-2, cq::RoundingMode::kNearest);
  const auto block = q.quantize(data, rng);
  std::vector<float> rec(data.size());
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  EXPECT_LE(ct::max_abs_error(data, rec), 0.5 * block.step * (1.0 + 1e-6));
}

// --- quantizer mechanics -------------------------------------------------

TEST(Quantizer, BinsAndBitsMatchPaperExample) {
  // Paper §4.3: eb = 1e-2 -> max ~100 bins -> 7-bit representation.
  EXPECT_EQ(cq::ErrorBoundedQuantizer::bins_for_bound(1e-2), 100U);
  EXPECT_EQ(cq::ErrorBoundedQuantizer::bits_for_bound(1e-2), 7U);
}

TEST(Quantizer, AllZeroBuffer) {
  ct::Rng rng(11);
  std::vector<float> data(100, 0.0F);
  const cq::ErrorBoundedQuantizer q(1e-2, cq::RoundingMode::kStochastic);
  const auto block = q.quantize(data, rng);
  EXPECT_EQ(block.step, 0.0);
  std::vector<float> rec(100);
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  for (float v : rec) EXPECT_EQ(v, 0.0F);
}

TEST(Quantizer, SmallerBoundGivesMoreBits) {
  ct::Rng rng(12);
  std::vector<float> data(10000);
  rng.fill_normal(data);
  const auto loose =
      cq::ErrorBoundedQuantizer(1e-1, cq::RoundingMode::kStochastic)
          .quantize(data, rng);
  const auto tight =
      cq::ErrorBoundedQuantizer(1e-3, cq::RoundingMode::kStochastic)
          .quantize(data, rng);
  EXPECT_LT(loose.bit_width, tight.bit_width);
}

TEST(Quantizer, InvalidBoundThrows) {
  ct::Rng rng(13);
  std::vector<float> data(10, 1.0F);
  const cq::ErrorBoundedQuantizer q(0.0, cq::RoundingMode::kNearest);
  EXPECT_THROW((void)q.quantize(data, rng), std::invalid_argument);
}

TEST(FixedBitQuantizer, CodesStayInRange) {
  ct::Rng rng(14);
  std::vector<float> data(10000);
  rng.fill_normal(data);
  for (unsigned bits : {2U, 4U, 8U}) {
    const cq::FixedBitQuantizer q(bits, cq::RoundingMode::kStochastic);
    const auto block = q.quantize(data, rng);
    const auto lim = static_cast<std::int64_t>((1ULL << (bits - 1)) - 1);
    for (auto c : block.codes) {
      EXPECT_GE(c, -lim);
      EXPECT_LE(c, lim);
    }
  }
}

TEST(FixedBitQuantizer, EightBitErrorIsSmall) {
  ct::Rng rng(15);
  std::vector<float> data(10000);
  rng.fill_normal(data);
  const cq::FixedBitQuantizer q(8, cq::RoundingMode::kStochastic);
  const auto block = q.quantize(data, rng);
  std::vector<float> rec(data.size());
  cq::ErrorBoundedQuantizer::dequantize(block, rec);
  const double abs_max = ct::extrema(std::span<const float>(data)).abs_max;
  EXPECT_LT(ct::max_abs_error(data, rec), abs_max / 127.0 * 1.01);
}

TEST(FixedBitQuantizer, BadBitsThrow) {
  ct::Rng rng(16);
  std::vector<float> data(4, 1.0F);
  EXPECT_THROW((void)cq::FixedBitQuantizer(1, cq::RoundingMode::kNearest)
                   .quantize(data, rng),
               std::invalid_argument);
  EXPECT_THROW((void)cq::FixedBitQuantizer(17, cq::RoundingMode::kNearest)
                   .quantize(data, rng),
               std::invalid_argument);
}

// --- bit packing ---------------------------------------------------------

TEST(BitPack, RoundtripVariousWidths) {
  ct::Rng rng(17);
  for (unsigned bits : {1U, 3U, 7U, 8U, 13U, 31U}) {
    std::vector<std::int64_t> codes(1000);
    const std::int64_t lim = bits >= 2 ? (1LL << (bits - 1)) - 1 : 0;
    for (auto& c : codes) {
      c = lim == 0 ? 0
                   : static_cast<std::int64_t>(rng.uniform_index(
                         static_cast<std::uint64_t>(2 * lim))) -
                         lim;
    }
    const unsigned width = cq::required_bits(codes);
    const auto packed = cq::pack_codes(codes, width);
    EXPECT_EQ(cq::unpack_codes(packed, width, codes.size()), codes)
        << "bits=" << bits;
  }
}

TEST(BitPack, RequiredBitsKnownValues) {
  std::vector<std::int64_t> zero{0};
  EXPECT_EQ(cq::required_bits(zero), 1U);
  std::vector<std::int64_t> one{1};      // zigzag(1) = 2 -> 2 bits
  EXPECT_EQ(cq::required_bits(one), 2U);
  std::vector<std::int64_t> minus{-1};   // zigzag(-1) = 1 -> 1 bit
  EXPECT_EQ(cq::required_bits(minus), 1U);
  std::vector<std::int64_t> fifty{50};   // zigzag(50) = 100 -> 7 bits
  EXPECT_EQ(cq::required_bits(fifty), 7U);
}

TEST(BitPack, ZigzagRoundtrip) {
  for (std::int64_t v : {-1000000LL, -1LL, 0LL, 1LL, 999999LL}) {
    EXPECT_EQ(cq::zigzag_decode(cq::zigzag_encode(v)), v);
  }
}

TEST(BitPack, PackedSizeIsTight) {
  std::vector<std::int64_t> codes(100, 3);
  const auto packed = cq::pack_codes(codes, 3);
  EXPECT_EQ(packed.size(), (100 * 3 + 7) / 8U);
}

TEST(BitPack, WriterRejectsBadWidth) {
  cq::BitWriter w;
  EXPECT_THROW(w.write(1, 0), std::invalid_argument);
  EXPECT_THROW(w.write(1, 65), std::invalid_argument);
}

TEST(BitPack, Write64BitValues) {
  cq::BitWriter w;
  const std::uint64_t v = 0xDEADBEEFCAFEBABEULL;
  w.write(v, 64);
  const auto bytes = w.take();
  cq::BitReader r(bytes);
  EXPECT_EQ(r.read(64), v);
}

// --- filter --------------------------------------------------------------

TEST(Filter, ThresholdSemantics) {
  std::vector<float> data{0.0F, 0.5F, -0.2F, 1.0F, 0.05F};
  const auto f = cq::apply_filter(data, 0.3);  // threshold = 0.3 * 1.0
  EXPECT_EQ(f.filtered, 3U);  // 0.0, -0.2, 0.05
  ASSERT_EQ(f.survivors.size(), 2U);
  EXPECT_EQ(f.survivors[0], 0.5F);
  EXPECT_EQ(f.survivors[1], 1.0F);
  std::vector<float> rec(5);
  cq::reconstruct_filtered(f, rec);
  EXPECT_EQ(rec[0], 0.0F);
  EXPECT_EQ(rec[1], 0.5F);
  EXPECT_EQ(rec[2], 0.0F);
  EXPECT_EQ(rec[3], 1.0F);
  EXPECT_EQ(rec[4], 0.0F);
}

TEST(Filter, ZeroBoundFiltersNothing) {
  std::vector<float> data{0.1F, -0.1F, 0.0F};
  const auto f = cq::apply_filter(data, 0.0);
  EXPECT_EQ(f.filtered, 0U);
}

TEST(Filter, FilteredErrorIsBounded) {
  ct::Rng rng(18);
  const auto data =
      ct::synthetic_gradient(50000, ct::GradientProfile::kfac(), rng);
  const double eb = 4e-3;
  const auto f = cq::apply_filter(data, eb);
  std::vector<float> rec(data.size());
  cq::reconstruct_filtered(f, rec);
  // Every introduced error is below the absolute threshold.
  EXPECT_LT(ct::max_abs_error(data, rec), f.threshold);
  // On KFAC-like gradients, a large fraction is filtered (this is where
  // COMPSO's ratio advantage comes from).
  EXPECT_GT(f.filtered_fraction(), 0.3);
}

TEST(Filter, ScatterValidatesCounts) {
  std::vector<std::uint8_t> bitmap{0b00000001};  // element 0 filtered
  std::vector<float> survivors{1.0F};            // need 2 for 3 slots
  std::vector<float> out(3);
  EXPECT_THROW(cq::scatter_survivors(bitmap, survivors, out),
               std::invalid_argument);
}

}  // namespace
