// Roundtrip and behaviour tests for the lossless codec family (Table 2 set).

#include "src/codec/ans.hpp"
#include "src/codec/codec.hpp"
#include "src/codec/elias.hpp"
#include "src/codec/huffman.hpp"
#include "src/codec/lz77.hpp"
#include "src/tensor/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cc = compso::codec;
using compso::tensor::Rng;

namespace {

cc::Bytes random_bytes(std::size_t n, Rng& rng) {
  cc::Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng() & 0xFF);
  return b;
}

cc::Bytes skewed_bytes(std::size_t n, Rng& rng) {
  // Zipf-ish distribution: mostly small byte values, like zigzagged
  // quantization codes of near-zero gradients.
  cc::Bytes b(n);
  for (auto& v : b) {
    const float u = rng.uniform();
    if (u < 0.55F) v = 0;
    else if (u < 0.80F) v = static_cast<std::uint8_t>(rng.uniform_index(4));
    else if (u < 0.95F) v = static_cast<std::uint8_t>(rng.uniform_index(16));
    else v = static_cast<std::uint8_t>(rng.uniform_index(256));
  }
  return b;
}

cc::Bytes runny_bytes(std::size_t n, Rng& rng) {
  cc::Bytes b;
  b.reserve(n);
  while (b.size() < n) {
    const auto v = static_cast<std::uint8_t>(rng.uniform_index(8));
    const std::size_t run = 1 + rng.uniform_index(64);
    for (std::size_t i = 0; i < run && b.size() < n; ++i) b.push_back(v);
  }
  return b;
}

cc::Bytes repetitive_bytes(std::size_t n, Rng& rng) {
  // Repeating phrases: the dictionary-codec-friendly shape.
  const cc::Bytes phrase = random_bytes(37, rng);
  cc::Bytes b;
  b.reserve(n);
  while (b.size() < n) {
    b.insert(b.end(), phrase.begin(), phrase.end());
    if (rng.uniform() < 0.2F) b.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
  }
  b.resize(n);
  return b;
}

struct CodecCase {
  cc::CodecKind kind;
  const char* data_shape;
  std::size_t size;
};

class CodecRoundtrip : public ::testing::TestWithParam<CodecCase> {};

cc::Bytes make_data(const CodecCase& c, Rng& rng) {
  const std::string shape = c.data_shape;
  if (shape == "random") return random_bytes(c.size, rng);
  if (shape == "skewed") return skewed_bytes(c.size, rng);
  if (shape == "runny") return runny_bytes(c.size, rng);
  if (shape == "repetitive") return repetitive_bytes(c.size, rng);
  if (shape == "zero") return cc::Bytes(c.size, 0);
  ADD_FAILURE() << "unknown shape " << shape;
  return {};
}

TEST_P(CodecRoundtrip, EncodeDecodeIdentity) {
  const CodecCase c = GetParam();
  Rng rng(0xC0DEC + c.size);
  const cc::Bytes data = make_data(c, rng);
  const auto codec = cc::make_codec(c.kind);
  const cc::Bytes enc = codec->encode(data);
  const cc::Bytes dec = codec->decode(enc);
  ASSERT_EQ(dec.size(), data.size()) << codec->name();
  EXPECT_EQ(dec, data) << codec->name() << " on " << c.data_shape;
}

std::vector<CodecCase> all_cases() {
  std::vector<CodecCase> cases;
  for (auto kind : cc::kAllCodecKinds) {
    for (const char* shape : {"random", "skewed", "runny", "repetitive", "zero"}) {
      for (std::size_t size : {0UL, 1UL, 7UL, 256UL, 4096UL, 70000UL}) {
        cases.push_back({kind, shape, size});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<CodecCase>& info) {
  return std::string(cc::to_string(info.param.kind)) + "_" +
         info.param.data_shape + "_" + std::to_string(info.param.size);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundtrip,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(CodecCompression, SkewedDataCompressesWithEntropyCoders) {
  Rng rng(7);
  const cc::Bytes data = skewed_bytes(1 << 16, rng);
  for (auto kind : {cc::CodecKind::kAns, cc::CodecKind::kDeflate,
                    cc::CodecKind::kZstd}) {
    const auto codec = cc::make_codec(kind);
    const auto enc = codec->encode(data);
    EXPECT_LT(enc.size(), data.size() / 2)
        << codec->name() << " should at least halve skewed data";
  }
}

TEST(CodecCompression, EntropyCodersBeatDictionaryOnNonUniformNoise) {
  // Paper §5.2: entropy coding (ANS/Deflate/Zstd) achieves higher CR than
  // dictionary matching (LZ4/Snappy) on gradient-like non-uniform data
  // without long repeats.
  Rng rng(8);
  const cc::Bytes data = skewed_bytes(1 << 16, rng);
  const auto ans = cc::make_codec(cc::CodecKind::kAns)->encode(data);
  const auto lz4 = cc::make_codec(cc::CodecKind::kLz4)->encode(data);
  const auto snappy = cc::make_codec(cc::CodecKind::kSnappy)->encode(data);
  EXPECT_LT(ans.size(), lz4.size());
  EXPECT_LT(ans.size(), snappy.size());
}

TEST(CodecCompression, CascadedWinsOnRuns) {
  Rng rng(9);
  const cc::Bytes data = runny_bytes(1 << 16, rng);
  const auto cas = cc::make_codec(cc::CodecKind::kCascaded)->encode(data);
  EXPECT_LT(cas.size(), data.size() / 4);
}

TEST(CodecCompression, RandomDataDoesNotExplode) {
  Rng rng(10);
  const cc::Bytes data = random_bytes(1 << 14, rng);
  for (auto kind : cc::kAllCodecKinds) {
    const auto codec = cc::make_codec(kind);
    const auto enc = codec->encode(data);
    // Stored-block fallback bounds expansion to header + mode byte.
    EXPECT_LE(enc.size(), data.size() + 64) << codec->name();
  }
}

TEST(CodecRegistry, LookupByName) {
  for (auto kind : cc::kAllCodecKinds) {
    const auto codec = cc::make_codec(std::string_view(cc::to_string(kind)));
    EXPECT_EQ(codec->name(), cc::to_string(kind));
  }
  EXPECT_THROW((void)cc::make_codec("nope"), std::invalid_argument);
}

TEST(CodecRegistry, CostProfilesAreSane) {
  for (auto kind : cc::kAllCodecKinds) {
    const auto p = cc::make_codec(kind)->cost_profile();
    EXPECT_GT(p.encode_passes, 0.0);
    EXPECT_GT(p.decode_passes, 0.0);
    EXPECT_GT(p.parallel_fraction, 0.0);
    EXPECT_LE(p.parallel_fraction, 1.0);
    EXPECT_GT(p.bandwidth_efficiency, 0.0);
    EXPECT_LE(p.bandwidth_efficiency, 1.0);
  }
}

TEST(Huffman, EntropyOfUniformBytesIsEight) {
  cc::Bytes data(256 * 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 256);
  }
  EXPECT_NEAR(cc::byte_entropy(data), 8.0, 1e-9);
}

TEST(Huffman, EntropyOfConstantIsZero) {
  const cc::Bytes data(1024, 42);
  EXPECT_NEAR(cc::byte_entropy(data), 0.0, 1e-12);
}

TEST(Huffman, SingleSymbolRoundtrip) {
  const cc::Bytes data(1000, 7);
  EXPECT_EQ(cc::huffman_decode(cc::huffman_encode(data)), data);
}

TEST(Huffman, WrongMagicThrows) {
  Rng rng(3);
  const cc::Bytes enc = cc::rans_encode(random_bytes(100, rng));
  EXPECT_THROW((void)cc::huffman_decode(enc), std::invalid_argument);
}

TEST(Ans, CompressedSizeTracksEntropy) {
  Rng rng(11);
  const cc::Bytes data = skewed_bytes(1 << 16, rng);
  const double h = cc::byte_entropy(data);
  const auto enc = cc::rans_encode(data);
  const double bits_per_byte =
      8.0 * static_cast<double>(enc.size()) / static_cast<double>(data.size());
  // rANS should land within ~0.35 bits/byte of the entropy (incl. table).
  EXPECT_NEAR(bits_per_byte, h, 0.35);
}

TEST(EliasGamma, RoundtripUnsigned) {
  std::vector<std::uint64_t> values{1, 2, 3, 4, 5, 100, 1000, 1ULL << 40, 1};
  const auto enc = cc::elias_gamma_encode(values);
  EXPECT_EQ(cc::elias_gamma_decode(enc, values.size()), values);
}

TEST(EliasGamma, RoundtripSignedCodes) {
  Rng rng(12);
  std::vector<std::int64_t> codes(5000);
  for (auto& c : codes) {
    c = static_cast<std::int64_t>(rng.uniform_index(17)) - 8;
  }
  const auto enc = cc::elias_gamma_encode_signed(codes);
  EXPECT_EQ(cc::elias_gamma_decode_signed(enc, codes.size()), codes);
}

TEST(EliasGamma, ZeroValueThrows) {
  std::vector<std::uint64_t> values{0};
  EXPECT_THROW((void)cc::elias_gamma_encode(values), std::invalid_argument);
}

TEST(EliasGamma, SmallValuesCodeShort) {
  // All-ones should cost exactly 1 bit per value.
  std::vector<std::uint64_t> ones(800, 1);
  const auto enc = cc::elias_gamma_encode(ones);
  EXPECT_EQ(enc.size(), 100U);
}

TEST(Lz77, ReconstructOverlappingMatch) {
  // "abcabcabc...": matches overlap their own output (distance < length).
  cc::Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>('a' + i % 3));
  const auto tokens = cc::lz77_parse(data, cc::Lz77Params{});
  const auto streams = cc::lz77_serialize(data, tokens);
  const auto rec =
      cc::lz77_deserialize(streams.literals, streams.tokens, data.size());
  EXPECT_EQ(rec, data);
  // The parse must have found matches (few literals).
  EXPECT_LT(streams.literals.size(), 32U);
}

TEST(Lz77, EmptyInput) {
  const auto tokens = cc::lz77_parse({}, cc::Lz77Params{});
  EXPECT_TRUE(tokens.empty());
}

}  // namespace
