// Codec edge cases: block boundaries, degenerate alphabets, window limits,
// and exact-size bookkeeping that the broad roundtrip sweep can miss.

#include "src/codec/ans.hpp"
#include "src/codec/codec.hpp"
#include "src/codec/huffman.hpp"
#include "src/codec/lz77.hpp"
#include "src/tensor/rng.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace cc = compso::codec;
using compso::tensor::Rng;

namespace {

TEST(BitcompEdge, BlockBoundarySizes) {
  const auto codec = cc::make_codec(cc::CodecKind::kBitcomp);
  Rng rng(1);
  for (std::size_t n : {4095UL, 4096UL, 4097UL, 8192UL, 12287UL}) {
    cc::Bytes data(n);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(7));
    EXPECT_EQ(codec->decode(codec->encode(data)), data) << n;
  }
}

TEST(BitcompEdge, PerBlockRangesAreExploited) {
  // Two blocks with different tight ranges must both pack narrow.
  cc::Bytes data;
  data.insert(data.end(), 4096, 100);  // width 0 block
  for (int i = 0; i < 4096; ++i) {
    data.push_back(static_cast<std::uint8_t>(200 + (i % 4)));  // width 2
  }
  const auto codec = cc::make_codec(cc::CodecKind::kBitcomp);
  const auto enc = codec->encode(data);
  EXPECT_LT(enc.size(), data.size() / 4);
  EXPECT_EQ(codec->decode(enc), data);
}

TEST(CascadedEdge, SingleRunCollapses) {
  const cc::Bytes data(100000, 42);
  const auto codec = cc::make_codec(cc::CodecKind::kCascaded);
  const auto enc = codec->encode(data);
  EXPECT_LT(enc.size(), 64U);
  EXPECT_EQ(codec->decode(enc), data);
}

TEST(CascadedEdge, AlternatingBytesWorstCase) {
  cc::Bytes data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 2 ? 255 : 0);
  }
  const auto codec = cc::make_codec(cc::CodecKind::kCascaded);
  // Run length 1 everywhere: stored-block fallback keeps it bounded.
  const auto enc = codec->encode(data);
  EXPECT_LE(enc.size(), data.size() + 64);
  EXPECT_EQ(codec->decode(enc), data);
}

TEST(AnsEdge, FullAlphabetUniform) {
  cc::Bytes data(256 * 64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 256);
  }
  EXPECT_EQ(cc::rans_decode(cc::rans_encode(data)), data);
}

TEST(AnsEdge, ExtremeSkew) {
  // One symbol at ~99.99%, 200 rare symbols with 1-2 occurrences: the
  // frequency normalizer must keep every present symbol >= 1 slot.
  cc::Bytes data(100000, 7);
  Rng rng(2);
  for (int s = 0; s < 200; ++s) {
    data[rng.uniform_index(data.size())] = static_cast<std::uint8_t>(s);
  }
  const auto enc = cc::rans_encode(data);
  EXPECT_LT(enc.size(), data.size() / 10);
  EXPECT_EQ(cc::rans_decode(enc), data);
}

TEST(AnsEdge, TwoSymbols) {
  Rng rng(3);
  cc::Bytes data(50000);
  for (auto& b : data) b = rng.uniform() < 0.9F ? 0 : 255;
  const auto enc = cc::rans_encode(data);
  // H(0.9) ~ 0.469 bits/byte -> ~8.5% of original + table.
  EXPECT_LT(enc.size(), data.size() / 6);
  EXPECT_EQ(cc::rans_decode(enc), data);
}

TEST(HuffmanEdge, TwoSymbolAlphabetIsOneBit) {
  cc::Bytes data(80000);
  Rng rng(4);
  for (auto& b : data) b = rng.uniform() < 0.5F ? 'a' : 'b';
  const auto enc = cc::huffman_encode(data);
  // 1 bit/byte + 256-byte table + header.
  EXPECT_LT(enc.size(), data.size() / 7);
  EXPECT_EQ(cc::huffman_decode(enc), data);
}

TEST(HuffmanEdge, DeepTreeFromExponentialSkew) {
  // Frequencies ~2^-k build a maximally deep tree; decode must handle
  // long codes.
  cc::Bytes data;
  std::size_t count = 1;
  for (int s = 0; s < 20; ++s) {
    data.insert(data.end(), count, static_cast<std::uint8_t>(s));
    count *= 2;
  }
  Rng rng(5);
  // Shuffle so the encoder sees interleaved symbols.
  for (std::size_t i = data.size(); i > 1; --i) {
    std::swap(data[i - 1], data[rng.uniform_index(i)]);
  }
  EXPECT_EQ(cc::huffman_decode(cc::huffman_encode(data)), data);
}

TEST(Lz77Edge, MatchAtWindowLimit) {
  // A phrase recurring exactly at the window boundary must still decode
  // (whether or not the parser chose to match it).
  cc::Lz77Params params;
  params.window = 1024;
  cc::Bytes data;
  Rng rng(6);
  cc::Bytes phrase(32);
  for (auto& b : phrase) b = static_cast<std::uint8_t>(rng() & 0xFF);
  data.insert(data.end(), phrase.begin(), phrase.end());
  // Filler of exactly window - phrase size.
  for (std::size_t i = 0; i < 1024 - 32; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
  }
  data.insert(data.end(), phrase.begin(), phrase.end());
  const auto tokens = cc::lz77_parse(data, params);
  const auto s = cc::lz77_serialize(data, tokens);
  EXPECT_EQ(cc::lz77_deserialize(s.literals, s.tokens, data.size()), data);
}

TEST(Lz77Edge, MaxMatchLengthHonored) {
  cc::Lz77Params params;
  params.max_match = 64;
  const cc::Bytes data(10000, 9);  // one giant run
  const auto tokens = cc::lz77_parse(data, params);
  for (const auto& t : tokens) {
    EXPECT_LE(t.match_len, 64U);
  }
  const auto s = cc::lz77_serialize(data, tokens);
  EXPECT_EQ(cc::lz77_deserialize(s.literals, s.tokens, data.size()), data);
}

TEST(Lz77Edge, LazyParseRoundtrips) {
  cc::Lz77Params params;
  params.lazy = true;
  Rng rng(7);
  cc::Bytes data;
  cc::Bytes phrase(23);
  for (auto& b : phrase) b = static_cast<std::uint8_t>(rng.uniform_index(5));
  while (data.size() < 30000) {
    data.insert(data.end(), phrase.begin(), phrase.end());
    data.push_back(static_cast<std::uint8_t>(rng() & 0xFF));
  }
  const auto tokens = cc::lz77_parse(data, params);
  const auto s = cc::lz77_serialize(data, tokens);
  EXPECT_EQ(cc::lz77_deserialize(s.literals, s.tokens, data.size()), data);
}

TEST(StoredFallback, HeaderOverheadIsBounded) {
  // Incompressible single bytes: every codec's output stays within header
  // + mode overhead of the input, even for size 1.
  Rng rng(8);
  for (auto kind : cc::kAllCodecKinds) {
    const auto codec = cc::make_codec(kind);
    for (std::size_t n : {1UL, 2UL, 3UL}) {
      cc::Bytes data(n);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng() & 0xFF);
      const auto enc = codec->encode(data);
      EXPECT_LE(enc.size(), n + 32) << codec->name() << " n=" << n;
      EXPECT_EQ(codec->decode(enc), data) << codec->name();
    }
  }
}

}  // namespace
