// Tests for the Conv2d (im2col) layer: finite-difference gradient checks,
// KFAC hook shapes, and end-to-end CNN training with distributed KFAC.

#include "src/comm/communicator.hpp"
#include "src/nn/conv.hpp"
#include "src/nn/dataset.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/first_order.hpp"
#include "src/tensor/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nn = compso::nn;
namespace ct = compso::tensor;

namespace {

TEST(Conv2d, IdentityKernelPassesThrough) {
  // 1x1 "kernel": k must be odd, use k=1: conv with weight=1 is identity.
  ct::Rng rng(1);
  nn::Conv2d conv(1, 1, 1, 4, 4, rng);
  conv.weight()->fill(1.0F);
  (*conv.bias())[0] = 0.0F;
  ct::Tensor x({2, 16});
  rng.fill_normal(x.span());
  const auto y = conv.forward(x);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, KnownAveragingKernel) {
  // 3x3 all-ones kernel on a constant image: interior outputs are 9,
  // edges/corners less (zero padding).
  ct::Rng rng(2);
  nn::Conv2d conv(1, 1, 3, 3, 3, rng);
  conv.weight()->fill(1.0F);
  (*conv.bias())[0] = 0.0F;
  ct::Tensor x({1, 9});
  x.fill(1.0F);
  const auto y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 4), 9.0F);  // center
  EXPECT_FLOAT_EQ(y.at(0, 0), 4.0F);  // corner
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.0F);  // edge
}

TEST(Conv2d, WeightGradientMatchesFiniteDifference) {
  ct::Rng rng(3);
  nn::Conv2d conv(2, 2, 3, 4, 4, rng);
  ct::Tensor x({2, 2 * 16});
  rng.fill_normal(x.span());
  conv.forward(x);
  ct::Tensor ones({2, 2 * 16});
  ones.fill(1.0F);
  conv.backward(ones);
  const ct::Tensor analytic = *conv.weight_grad();

  const float eps = 1e-2F;
  // Spot-check a scattering of weight coordinates.
  for (std::size_t idx : {0UL, 5UL, 17UL, 23UL, 35UL}) {
    const float orig = conv.weight()->data()[idx];
    conv.weight()->data()[idx] = orig + eps;
    const auto yp = conv.forward(x);
    conv.weight()->data()[idx] = orig - eps;
    const auto ym = conv.forward(x);
    conv.weight()->data()[idx] = orig;
    double sp = 0.0, sm = 0.0;
    for (std::size_t i = 0; i < yp.size(); ++i) {
      sp += yp[i];
      sm += ym[i];
    }
    EXPECT_NEAR(analytic[idx], (sp - sm) / (2.0 * eps), 0.05) << idx;
  }
}

TEST(Conv2d, InputGradientMatchesFiniteDifference) {
  ct::Rng rng(4);
  nn::Conv2d conv(1, 2, 3, 3, 3, rng);
  ct::Tensor x({1, 9});
  rng.fill_normal(x.span());
  conv.forward(x);
  ct::Tensor ones({1, 18});
  ones.fill(1.0F);
  const auto gin = conv.backward(ones);

  const float eps = 1e-2F;
  for (std::size_t i = 0; i < 9; ++i) {
    ct::Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const auto yp = conv.forward(xp);
    const auto ym = conv.forward(xm);
    double sp = 0.0, sm = 0.0;
    for (std::size_t j = 0; j < yp.size(); ++j) {
      sp += yp[j];
      sm += ym[j];
    }
    EXPECT_NEAR(gin[i], (sp - sm) / (2.0 * eps), 0.05) << i;
  }
}

TEST(Conv2d, KfacHooksHavePatchShapes) {
  ct::Rng rng(5);
  nn::Conv2d conv(2, 3, 3, 4, 4, rng);
  ct::Tensor x({2, 2 * 16});
  rng.fill_normal(x.span());
  conv.forward(x);
  ct::Tensor g({2, 3 * 16});
  rng.fill_normal(g.span());
  conv.backward(g);
  // A-factor input: (batch*positions, in_ch*k*k + 1).
  ASSERT_NE(conv.kfac_input(), nullptr);
  EXPECT_EQ(conv.kfac_input()->rows(), 2U * 16U);
  EXPECT_EQ(conv.kfac_input()->cols(), 2U * 9U + 1U);
  // G-factor input: (batch*positions, out_ch).
  ASSERT_NE(conv.kfac_grad_output(), nullptr);
  EXPECT_EQ(conv.kfac_grad_output()->rows(), 2U * 16U);
  EXPECT_EQ(conv.kfac_grad_output()->cols(), 3U);
}

TEST(Conv2d, EvenKernelRejected) {
  ct::Rng rng(6);
  EXPECT_THROW(nn::Conv2d(1, 1, 2, 4, 4, rng), std::invalid_argument);
}

TEST(CnnTraining, SgdLearnsSpatialPattern) {
  // Classify 6x6 single-channel images by which quadrant carries a bright
  // blob — a genuinely spatial task a conv should learn quickly.
  ct::Rng rng(7);
  auto model = nn::make_cnn_classifier(1, 6, 4, 4, rng);
  compso::optim::Sgd sgd(0.9);
  auto sample = [&](std::size_t batch, ct::Rng& r) {
    nn::Batch b;
    b.x = ct::Tensor({batch, 36});
    b.labels.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto q = static_cast<int>(r.uniform_index(4));
      b.labels[i] = q;
      for (auto& v : b.x.span().subspan(i * 36, 36)) v = r.normal(0.0F, 0.3F);
      const std::size_t oy = (q / 2) * 3, ox = (q % 2) * 3;
      for (std::size_t dy = 0; dy < 3; ++dy) {
        for (std::size_t dx = 0; dx < 3; ++dx) {
          b.x.at(i, (oy + dy) * 6 + ox + dx) += 2.0F;
        }
      }
    }
    return b;
  };
  ct::Rng data_rng(8);
  for (int t = 0; t < 120; ++t) {
    const auto b = sample(16, data_rng);
    const auto logits = model.forward(b.x);
    ct::Tensor grad;
    nn::softmax_cross_entropy(logits, b.labels, grad);
    model.backward(grad);
    sgd.step(model, 0.02);
  }
  ct::Rng eval_rng(9);
  const auto b = sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(model.forward(b.x), b.labels), 0.9);
}

TEST(CnnTraining, DistributedKfacOnConvLayersConverges) {
  // The KFAC hooks of Conv2d feed the same DistKfac machinery: the factor
  // shapes differ per layer but the pipeline is unchanged (KFC form).
  const std::size_t world = 2;
  std::vector<nn::Model> replicas;
  for (std::size_t r = 0; r < world; ++r) {
    ct::Rng rng(99);
    replicas.push_back(nn::make_cnn_classifier(1, 5, 3, 3, rng));
  }
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  compso::comm::Communicator comm(compso::comm::Topology::with_gpus(world),
                                  compso::comm::NetworkModel::platform1());
  compso::optim::DistKfacConfig cfg;
  cfg.damping = 0.1;
  compso::optim::DistKfac kfac(cfg, comm, ptrs);
  const auto compso = compso::compress::make_compso({});

  auto sample = [&](std::size_t batch, ct::Rng& r) {
    nn::Batch b;
    b.x = ct::Tensor({batch, 25});
    b.labels.resize(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto cls = static_cast<int>(r.uniform_index(3));
      b.labels[i] = cls;
      for (auto& v : b.x.span().subspan(i * 25, 25)) v = r.normal(0.0F, 0.3F);
      // Class = which row band is bright.
      for (std::size_t c = 0; c < 5; ++c) {
        b.x.at(i, static_cast<std::size_t>(cls) * 2 * 5 + c) += 2.0F;
      }
    }
    return b;
  };
  ct::Rng data_rng(10), sr_rng(11);
  for (std::size_t t = 0; t < 50; ++t) {
    for (auto& m : replicas) {
      const auto b = sample(8, data_rng);
      const auto logits = m.forward(b.x);
      ct::Tensor grad;
      nn::softmax_cross_entropy(logits, b.labels, grad);
      m.backward(grad);
    }
    kfac.step(t, 0.01, compso.get(), sr_rng);
  }
  ct::Rng eval_rng(12);
  const auto b = sample(256, eval_rng);
  EXPECT_GT(nn::accuracy(replicas[0].forward(b.x), b.labels), 0.9);
}

}  // namespace
