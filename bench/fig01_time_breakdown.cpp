// Figure 1 — Time breakdown of distributed KFAC training on ResNet-50,
// Mask R-CNN, BERT-large and GPT-neo-125M with 16 / 32 / 64 nodes
// (4 x A100 per node), as percentages of the iteration:
//   KFAC Allgather | KFAC Allreduce | KFAC Computations |
//   Forward+Backward | Others
//
// Paper reference points (16 -> 64 nodes): ResNet-50 allgather 35.1 ->
// 36.4%, GPT-neo 41.6 -> 50.9%; KFAC compute share falls with GPU count.

#include "bench/bench_util.hpp"

int main() {
  using namespace compso;
  bench::print_header(
      "Figure 1: time breakdown of distributed KFAC (Platform 1)");
  std::printf("%-14s %6s | %9s %9s %9s %8s %7s | %9s\n", "model", "nodes",
              "Allgather", "Allreduce", "KFAC-comp", "Fwd+Bwd", "Others",
              "iter(ms)");
  bench::print_rule();
  for (const auto& shape : nn::paper_model_shapes()) {
    for (std::size_t nodes : {16, 32, 64}) {
      const auto cfg = bench::perf_config(shape, nodes,
                                          comm::NetworkModel::platform1());
      const core::PerfSimulator sim(cfg);
      const auto& b = sim.baseline();
      const double t = b.total_s();
      std::printf("%-14s %6zu | %8.1f%% %8.1f%% %8.1f%% %7.1f%% %6.1f%% | %9.1f\n",
                  shape.name.c_str(), nodes, 100.0 * b.allgather_s / t,
                  100.0 * b.allreduce_s / t, 100.0 * b.kfac_compute_s / t,
                  100.0 * b.forward_backward_s / t, 100.0 * b.others_s / t,
                  1000.0 * t);
    }
    bench::print_rule();
  }
  std::printf(
      "Shape checks: allgather is the largest share and grows with GPU\n"
      "count; KFAC compute share falls with GPU count; communication\n"
      "(allgather+allreduce) exceeds 30%% for ResNet-50 and BERT-large.\n");
  return 0;
}
