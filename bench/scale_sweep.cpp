// 1000-rank scale-out sweep (DESIGN.md §16): distributed preconditioning
// shards + topology-aware collective algorithm selection.
//
// Four legs, all gated deterministically (model arithmetic and bit-exact
// trajectories — no wall-clock gates, so the gates hold under sanitizers
// too; only the functional world sizes shrink in --smoke):
//
//  1. Sharded-vs-KAISA bit-identity: the same training run under the
//     replicated kKaisa layout and the kSharded + kCostBalanced layout
//     must produce bit-identical parameters (the reduce-to-owner uses the
//     allreduce's canonical summation order, so layout changes memory
//     placement, never bits).
//  2. A real sharded DistKfac step at large world (1024 ranks; 256 in
//     --smoke): every replica steps through the functional collectives,
//     and shard_stats() must show per-rank peak factor memory strictly
//     below the replicated total — the O(L/P) claim, measured.
//  3. The analytic O(L/P) curve on BERT-large: per-rank peak factor bytes
//     under LPT sharding must shrink ~linearly with world size
//     (peak(4) >= 4x peak(32)) until worlds outrun layers.
//  4. Modeled collective sweep over worlds {256..4096} x message sizes
//     {1KB..32MB}: per-bucket ring / recursive-doubling / hierarchical
//     allreduce times plus the auto-selected algorithm, with the gate
//     hierarchical < flat ring at >= 256 ranks for >= 1MB messages.
//
// Emits BENCH_scale.json: host_concurrency, selected algorithm per
// message-size bucket, per-rank peak factor-memory bytes (functional and
// analytic), grid throughputs, and every gate verdict.
//
//   scale_sweep [--smoke] [output.json]

#include "bench/bench_util.hpp"
#include "src/comm/collectives.hpp"
#include "src/nn/dataset.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/perf/perf_model.hpp"

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace compso;

namespace {

obs::MetricsRegistry g_metrics;

/// Replicated tiny-MLP fixture (the test-suite DistFixture shape): every
/// rank holds a bit-identical model copy and samples its own batch.
struct Fleet {
  std::vector<nn::Model> replicas;
  std::vector<nn::Model*> ptrs;
  nn::ClusterDataset dataset;

  Fleet(std::size_t world, std::size_t features, std::size_t hidden,
        std::size_t classes, std::size_t depth)
      : dataset(features, classes, 0.4F, 77) {
    replicas.reserve(world);
    for (std::size_t r = 0; r < world; ++r) {
      tensor::Rng rng(555);
      replicas.push_back(
          nn::make_mlp_classifier(features, hidden, classes, depth, rng));
    }
    for (auto& m : replicas) ptrs.push_back(&m);
  }

  void run_fwd_bwd(tensor::Rng& data_rng, std::size_t batch) {
    for (auto& m : replicas) {
      const auto b = dataset.sample(batch, data_rng);
      const auto logits = m.forward(b.x);
      tensor::Tensor grad;
      nn::softmax_cross_entropy(logits, b.labels, grad);
      m.backward(grad);
    }
  }

  /// All trainable parameters (weights + biases) of replica 0, flattened.
  std::vector<float> parameters() {
    std::vector<float> out;
    auto& m = replicas[0];
    for (const std::size_t li : m.trainable_layers()) {
      for (const float v : m.layer(li).weight()->span()) out.push_back(v);
      if (auto* b = m.layer(li).bias()) {
        for (const float v : b->span()) out.push_back(v);
      }
    }
    return out;
  }

  /// Max bitwise divergence across replicas (must be 0 after every step).
  bool replicas_identical() {
    for (const std::size_t li : replicas[0].trainable_layers()) {
      const auto w0 = replicas[0].layer(li).weight()->span();
      for (std::size_t r = 1; r < replicas.size(); ++r) {
        const auto wr = replicas[r].layer(li).weight()->span();
        for (std::size_t i = 0; i < w0.size(); ++i) {
          if (std::bit_cast<std::uint32_t>(w0[i]) !=
              std::bit_cast<std::uint32_t>(wr[i])) {
            return false;
          }
        }
      }
    }
    return true;
  }
};

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

/// Runs `steps` DistKfac steps at `world` under `layout` / `assignment`
/// and returns replica 0's final parameters. With `compress`, even steps
/// run through the COMPSO compressor (odd steps exercise the plain
/// reduce/allreduce exchange).
std::vector<float> run_layout(std::size_t world, std::size_t steps,
                              optim::PrecondLayout layout,
                              optim::ShardAssignment assignment,
                              bool compress_steps, bool* replicas_ok) {
  Fleet fleet(world, 8, 12, 3, 2);
  comm::Communicator comm(comm::Topology::with_gpus(world),
                          comm::NetworkModel::platform1());
  optim::DistKfacConfig cfg;
  cfg.damping = 0.1;
  cfg.eigen_refresh_every = 2;
  cfg.layout = layout;
  cfg.assignment = assignment;
  optim::DistKfac kfac(cfg, comm, fleet.ptrs);
  const auto compso_c = compress::make_compso({});
  tensor::Rng data_rng(1), sr_rng(2);
  bool ok = true;
  for (std::size_t t = 0; t < steps; ++t) {
    fleet.run_fwd_bwd(data_rng, 8);
    kfac.step(t, 0.01,
              (compress_steps && t % 2 == 0) ? compso_c.get() : nullptr,
              sr_rng);
    ok = ok && fleet.replicas_identical();
  }
  if (replicas_ok != nullptr) *replicas_ok = ok;
  return fleet.parameters();
}

const char* algo_name(comm::CollectiveAlgo a) {
  return comm::to_string(a);
}

}  // namespace

int usage(const char* argv0, const char* bad) {
  std::fprintf(stderr, "unknown argument: %s\n", bad);
  std::fprintf(stderr, "usage: %s [--smoke] [output.json]\n", argv0);
  return 1;
}

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  bool have_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (!arg.empty() && arg[0] != '-' && !have_out) {
      out_path = arg;
      have_out = true;
    } else {
      return usage(argv[0], argv[i]);
    }
  }
  const unsigned host_concurrency = std::thread::hardware_concurrency();
  int failures = 0;

  // --- leg 1: sharded vs KAISA bit-identity -------------------------------
  // Three comparisons pin down exactly when the sharded layout is
  // bit-identical to the replicated one:
  //  a) kSharded + kRoundRobin vs kKaisa, alternating compressed steps:
  //     same owner map, same gather grouping, same Rng streams — the
  //     layout alone must never change bits.
  //  b) kSharded + kCostBalanced vs kKaisa, UNCOMPRESSED: the LPT map
  //     regroups the gather, but raw payloads are placement-independent,
  //     so bits still match.
  //  (Cost-balanced + compression regroups the payloads the stochastic
  //  compressor sees, so that trajectory is legitimately different; the
  //  replica-consistency check below still applies to it.)
  const std::size_t id_world = smoke ? 4 : 8;
  const std::size_t id_steps = 6;
  bool ok_a0 = false, ok_a1 = false, ok_b0 = false, ok_b1 = false;
  bool ok_c = false;
  const auto kaisa_comp =
      run_layout(id_world, id_steps, optim::PrecondLayout::kKaisa,
                 optim::ShardAssignment::kRoundRobin, true, &ok_a0);
  const auto sharded_rr =
      run_layout(id_world, id_steps, optim::PrecondLayout::kSharded,
                 optim::ShardAssignment::kRoundRobin, true, &ok_a1);
  const auto kaisa_plain =
      run_layout(id_world, id_steps, optim::PrecondLayout::kKaisa,
                 optim::ShardAssignment::kRoundRobin, false, &ok_b0);
  const auto sharded_lpt =
      run_layout(id_world, id_steps, optim::PrecondLayout::kSharded,
                 optim::ShardAssignment::kCostBalanced, false, &ok_b1);
  const auto sharded_lpt_comp =
      run_layout(id_world, id_steps, optim::PrecondLayout::kSharded,
                 optim::ShardAssignment::kCostBalanced, true, &ok_c);
  (void)sharded_lpt_comp;
  const bool identity_ok = bitwise_equal(kaisa_comp, sharded_rr) &&
                           bitwise_equal(kaisa_plain, sharded_lpt) &&
                           ok_a0 && ok_a1 && ok_b0 && ok_b1 && ok_c;
  bench::print_header("Scale sweep: sharded preconditioning + collectives");
  std::printf(
      "  sharded vs KAISA (world=%zu, %zu steps): round-robin+compressed "
      "%s, cost-balanced+plain %s, replicas consistent %s\n",
      id_world, id_steps,
      bitwise_equal(kaisa_comp, sharded_rr) ? "bit-identical" : "MISMATCH",
      bitwise_equal(kaisa_plain, sharded_lpt) ? "bit-identical" : "MISMATCH",
      (ok_a0 && ok_a1 && ok_b0 && ok_b1 && ok_c) ? "yes" : "NO");
  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: sharded layout diverged from the replicated KAISA "
                 "layout where bits must match\n");
    ++failures;
  }

  // --- leg 2: real sharded step at large world ----------------------------
  const std::size_t big_world = smoke ? 256 : 1024;
  optim::DistKfac::ShardStats big_stats;
  double big_step_s = 0.0;
  bool big_ok = true;
  {
    Fleet fleet(big_world, 6, 6, 3, 1);
    comm::Communicator comm(comm::Topology::with_gpus(big_world),
                            comm::NetworkModel::platform1());
    optim::DistKfacConfig cfg;
    cfg.layout = optim::PrecondLayout::kSharded;
    cfg.assignment = optim::ShardAssignment::kCostBalanced;
    optim::DistKfac kfac(cfg, comm, fleet.ptrs);
    tensor::Rng data_rng(11), sr_rng(12);
    fleet.run_fwd_bwd(data_rng, 4);
    big_step_s = bench::time_once(g_metrics, "bench.scale.big_step", [&] {
      kfac.step(0, 0.01, nullptr, sr_rng);
    });
    big_ok = fleet.replicas_identical();
    big_stats = kfac.shard_stats();
  }
  // Each slot is charged exactly once under the sharded layout, so the
  // replicated (KAISA) per-rank total is the sum over all ranks.
  std::uint64_t replicated_bytes = 0;
  for (const auto b : big_stats.factor_bytes) replicated_bytes += b;
  const bool memory_ok =
      big_stats.peak_factor_bytes > 0 &&
      big_stats.peak_factor_bytes < replicated_bytes;
  std::printf(
      "  %zu-rank sharded step: %.3fs, peak factor bytes %llu / replicated "
      "%llu (%s), replicas %s\n",
      big_world, big_step_s,
      static_cast<unsigned long long>(big_stats.peak_factor_bytes),
      static_cast<unsigned long long>(replicated_bytes),
      memory_ok ? "O(L/P) holds" : "NOT SHARDED", big_ok ? "ok" : "MISMATCH");
  if (!memory_ok || !big_ok) {
    std::fprintf(stderr,
                 "FAIL: large-world sharded step (memory_ok=%d replicas=%d)\n",
                 memory_ok ? 1 : 0, big_ok ? 1 : 0);
    ++failures;
  }

  // --- leg 3: analytic O(L/P) curve on BERT-large -------------------------
  core::PerfConfig pcfg;
  pcfg.model = nn::bert_large_shape();
  pcfg.topo = comm::Topology::with_gpus(256);
  core::PerfSimulator sim(pcfg);
  const std::vector<std::size_t> curve_worlds{4, 8, 16, 32, 64,
                                              256, 1024, 4096};
  std::vector<core::PerfSimulator::PrecondMemory> curve;
  curve.reserve(curve_worlds.size());
  for (const std::size_t w : curve_worlds) {
    curve.push_back(sim.precond_memory(w));
  }
  const bool curve_ok =
      curve[0].sharded_peak_bytes >= 4 * curve[3].sharded_peak_bytes;
  std::printf("  BERT-large per-rank peak factor MiB by world:");
  for (std::size_t i = 0; i < curve_worlds.size(); ++i) {
    std::printf(" %zu:%.0f", curve_worlds[i],
                static_cast<double>(curve[i].sharded_peak_bytes) /
                    (1024.0 * 1024.0));
  }
  std::printf("  (replicated %.0f MiB, linear-shrink gate %s)\n",
              static_cast<double>(curve[0].replicated_bytes) /
                  (1024.0 * 1024.0),
              curve_ok ? "ok" : "FAIL");
  if (!curve_ok) {
    std::fprintf(stderr,
                 "FAIL: sharded peak bytes did not shrink ~linearly "
                 "(peak(4)=%zu < 4x peak(32)=%zu)\n",
                 curve[0].sharded_peak_bytes, curve[3].sharded_peak_bytes);
    ++failures;
  }

  // --- leg 4: modeled collective sweep ------------------------------------
  const auto net = comm::NetworkModel::platform1();
  comm::CollectiveConfig auto_cfg;
  auto_cfg.auto_select = true;
  const std::vector<std::size_t> sweep_worlds{256, 512, 1024, 2048, 4096};
  const std::vector<std::size_t> sweep_bytes{std::size_t{1} << 10,
                                             std::size_t{1} << 15,
                                             std::size_t{1} << 20,
                                             std::size_t{1} << 25};
  struct Bucket {
    std::size_t world, bytes;
    double ring_s, rd_s, hier_s;
    comm::CollectiveAlgo selected;
  };
  std::vector<Bucket> sweep;
  bool hier_ok = true;
  for (const std::size_t w : sweep_worlds) {
    const auto topo = comm::Topology::with_gpus(w);
    for (const std::size_t n : sweep_bytes) {
      Bucket b;
      b.world = w;
      b.bytes = n;
      b.ring_s = comm::allreduce_time(comm::CollectiveAlgo::kRing, topo, net,
                                      w, n);
      b.rd_s = comm::allreduce_time(comm::CollectiveAlgo::kRecursiveDoubling,
                                    topo, net, w, n);
      b.hier_s = comm::allreduce_time(comm::CollectiveAlgo::kHierarchical,
                                      topo, net, w, n);
      b.selected = comm::select_allreduce_algo(auto_cfg, topo, net, w, n);
      if (n >= (std::size_t{1} << 20) && !(b.hier_s < b.ring_s)) {
        hier_ok = false;
      }
      sweep.push_back(b);
    }
  }
  std::printf("  hierarchical vs flat ring at >= 256 ranks, >= 1MB: %s "
              "(e.g. 256 ranks / 1MB: ring %.3fms, hier %.3fms)\n",
              hier_ok ? "hier wins everywhere" : "FAIL",
              sweep[2].ring_s * 1e3, sweep[2].hier_s * 1e3);
  if (!hier_ok) {
    std::fprintf(stderr,
                 "FAIL: hierarchical allreduce did not beat the flat ring on "
                 "some >= 256-rank, >= 1MB bucket\n");
    ++failures;
  }

  // --- Eq. 5 grid priced under selection ----------------------------------
  const auto grid = perf::CommLookupGrid::scale_sweep(net, auto_cfg);
  // And the PerfSimulator's modeled BERT-large iteration at 256 ranks,
  // legacy flat formulas vs auto-selected algorithms.
  core::PerfConfig legacy_cfg = pcfg;
  core::PerfConfig auto_sel_cfg = pcfg;
  auto_sel_cfg.collectives = auto_cfg;
  const auto legacy_b = core::PerfSimulator(legacy_cfg).baseline();
  const auto auto_b = core::PerfSimulator(auto_sel_cfg).baseline();
  const bool select_ok = auto_b.allreduce_s <= legacy_b.allreduce_s * 1.0001;
  std::printf("  BERT-large @256 ranks factor allreduce: legacy %.3fms, "
              "auto-selected %.3fms (%s)\n",
              legacy_b.allreduce_s * 1e3, auto_b.allreduce_s * 1e3,
              select_ok ? "no regression" : "FAIL");
  if (!select_ok) {
    std::fprintf(stderr,
                 "FAIL: algorithm selection made the modeled factor "
                 "allreduce slower than the legacy ring\n");
    ++failures;
  }

  // --- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"scale_sweep\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"host_concurrency\": %u,\n", host_concurrency);
  std::fprintf(f,
               "  \"sharded_vs_kaisa\": {\"world\": %zu, \"steps\": %zu, "
               "\"bit_identical\": %s},\n",
               id_world, id_steps, identity_ok ? "true" : "false");
  std::fprintf(f,
               "  \"big_world\": {\"world\": %zu, \"step_seconds\": %.6f, "
               "\"peak_factor_bytes\": %llu, \"replicated_bytes\": %llu, "
               "\"replicas_bit_identical\": %s},\n",
               big_world, big_step_s,
               static_cast<unsigned long long>(big_stats.peak_factor_bytes),
               static_cast<unsigned long long>(replicated_bytes),
               big_ok ? "true" : "false");
  std::fprintf(f, "  \"bert_memory_curve\": [");
  for (std::size_t i = 0; i < curve_worlds.size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"world\": %zu, \"sharded_peak_bytes\": %zu, "
                 "\"replicated_bytes\": %zu}",
                 i == 0 ? "" : ",", curve_worlds[i],
                 curve[i].sharded_peak_bytes, curve[i].replicated_bytes);
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"collective_sweep\": [");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& b = sweep[i];
    std::fprintf(f,
                 "%s\n    {\"world\": %zu, \"bytes\": %zu, "
                 "\"ring_s\": %.9f, \"recursive_doubling_s\": %.9f, "
                 "\"hierarchical_s\": %.9f, \"selected\": \"%s\"}",
                 i == 0 ? "" : ",", b.world, b.bytes, b.ring_s, b.rd_s,
                 b.hier_s, algo_name(b.selected));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"lookup_grid\": [");
  for (std::size_t i = 0; i < grid.worlds().size(); ++i) {
    std::fprintf(f,
                 "%s\n    {\"world\": %zu, \"throughput_1mb\": %.3f}",
                 i == 0 ? "" : ",", grid.worlds()[i],
                 grid.throughput(grid.worlds()[i], std::size_t{1} << 20));
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f,
               "  \"selection\": {\"legacy_allreduce_s\": %.9f, "
               "\"auto_allreduce_s\": %.9f},\n",
               legacy_b.allreduce_s, auto_b.allreduce_s);
  std::fprintf(f,
               "  \"gates\": {\"bit_identity\": %s, \"sharded_memory\": %s, "
               "\"linear_shrink\": %s, \"hierarchical_wins\": %s, "
               "\"selection_no_regression\": %s},\n",
               identity_ok ? "true" : "false", memory_ok ? "true" : "false",
               curve_ok ? "true" : "false", hier_ok ? "true" : "false",
               select_ok ? "true" : "false");
  std::fprintf(f, "  \"metrics\": %s\n}\n", g_metrics.to_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  return failures == 0 ? 0 : 1;
}
