// Microbenchmarks (google-benchmark): real single-core CPU throughput of
// the codec implementations and the COMPSO compressor stages.
//
// These complement the modeled GPU numbers in table2/fig08: they measure
// what this repository's implementations actually do on the host, and
// their *relative* ordering mirrors the algorithmic costs the GPU model
// charges (Bitcomp/ANS cheap; Deflate/Zstd dictionary matching expensive).

#include <benchmark/benchmark.h>

#include "src/codec/codec.hpp"
#include "src/compress/compressor.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/synthetic.hpp"

namespace {

using namespace compso;

std::vector<std::uint8_t> code_stream(std::size_t n) {
  tensor::Rng rng(5);
  const auto grad =
      tensor::synthetic_gradient(n, tensor::GradientProfile::kfac(), rng);
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(grad[i] / 1e-3F) + 128, 0, 255));
  }
  return out;
}

void BM_CodecEncode(benchmark::State& state, codec::CodecKind kind) {
  const auto codec = codec::make_codec(kind);
  const auto data = code_stream(1 << 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_CodecDecode(benchmark::State& state, codec::CodecKind kind) {
  const auto codec = codec::make_codec(kind);
  const auto data = code_stream(1 << 18);
  const auto enc = codec->encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->decode(enc));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_CompsoCompress(benchmark::State& state) {
  tensor::Rng rng(6);
  const auto grad = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);
  const auto compso = compress::make_compso({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(compso->compress(grad, rng));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(grad.size() * sizeof(float)));
}

void BM_CompsoRoundtrip(benchmark::State& state) {
  tensor::Rng rng(7);
  const auto grad = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);
  const auto compso = compress::make_compso({});
  const auto payload = compso->compress(grad, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compso->decompress(payload));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(grad.size() * sizeof(float)));
}

void BM_FilterStage(benchmark::State& state) {
  tensor::Rng rng(8);
  const auto grad = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::apply_filter(grad, 4e-3));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(grad.size() * sizeof(float)));
}

void BM_QuantizeStage(benchmark::State& state) {
  tensor::Rng rng(9);
  const auto grad = tensor::synthetic_gradient(
      1 << 18, tensor::GradientProfile::kfac(), rng);
  const quant::ErrorBoundedQuantizer q(4e-3,
                                       quant::RoundingMode::kStochastic);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.quantize(grad, rng));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(grad.size() * sizeof(float)));
}

}  // namespace

BENCHMARK_CAPTURE(BM_CodecEncode, ANS, codec::CodecKind::kAns);
BENCHMARK_CAPTURE(BM_CodecEncode, Bitcomp, codec::CodecKind::kBitcomp);
BENCHMARK_CAPTURE(BM_CodecEncode, Cascaded, codec::CodecKind::kCascaded);
BENCHMARK_CAPTURE(BM_CodecEncode, Deflate, codec::CodecKind::kDeflate);
BENCHMARK_CAPTURE(BM_CodecEncode, LZ4, codec::CodecKind::kLz4);
BENCHMARK_CAPTURE(BM_CodecEncode, Snappy, codec::CodecKind::kSnappy);
BENCHMARK_CAPTURE(BM_CodecEncode, Zstd, codec::CodecKind::kZstd);
BENCHMARK_CAPTURE(BM_CodecDecode, ANS, codec::CodecKind::kAns);
BENCHMARK_CAPTURE(BM_CodecDecode, Bitcomp, codec::CodecKind::kBitcomp);
BENCHMARK_CAPTURE(BM_CodecDecode, Deflate, codec::CodecKind::kDeflate);
BENCHMARK(BM_CompsoCompress);
BENCHMARK(BM_CompsoRoundtrip);
BENCHMARK(BM_FilterStage);
BENCHMARK(BM_QuantizeStage);

BENCHMARK_MAIN();
