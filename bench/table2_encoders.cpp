// Table 2 — Overall compression ratio (CR), compression throughput
// (C-GB/s) and decompression throughput (D-GB/s) of the eight candidate
// lossless encoders on COMPSO's lossy-stage output for ResNet-50 (left)
// and BERT-large (right) KFAC gradients.
//
// Paper result: entropy coders (ANS / Deflate / Gdeflate / Zstd) reach the
// highest ratios on the non-uniform gradient codes; ANS combines a top
// ratio with by far the best throughput among them and is the overall
// winner; Bitcomp is fastest but compresses least among the leaders.

#include "bench/bench_util.hpp"

#include "src/perf/perf_model.hpp"
#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <map>

namespace {

using namespace compso;

struct LossyStream {
  std::vector<std::uint8_t> bytes;
  std::size_t gradient_bytes = 0;  ///< FP32 bytes the stream represents.
};

/// COMPSO lossy stage (filter + SR + bitpack) on synthetic KFAC gradients
/// shaped like `model`'s layers; returns the byte stream the encoder sees.
LossyStream lossy_stage_stream(const nn::ModelShape& model,
                               std::uint64_t seed) {
  tensor::Rng rng(seed);
  LossyStream out;
  const auto profile = tensor::GradientProfile::kfac();
  std::size_t budget = 12U << 20;  // sample ~12 MB of gradient data
  for (const auto& layer : model.layers) {
    if (budget == 0) break;
    const std::size_t elems =
        std::min<std::size_t>(layer.kfac_elements(), 1 << 18);
    const auto grad = tensor::synthetic_gradient(elems, profile, rng);
    const double abs_max =
        tensor::extrema(std::span<const float>(grad)).abs_max;
    const auto filt = quant::apply_filter(grad, 4e-3, abs_max);
    const quant::ErrorBoundedQuantizer q(4e-3,
                                         quant::RoundingMode::kStochastic);
    const auto block = q.quantize(filt.survivors, rng, abs_max);
    const auto packed = quant::pack_codes(block.codes, block.bit_width);
    out.bytes.insert(out.bytes.end(), filt.bitmap.begin(), filt.bitmap.end());
    out.bytes.insert(out.bytes.end(), packed.begin(), packed.end());
    out.gradient_bytes += elems * sizeof(float);
    budget -= std::min(budget, elems * sizeof(float));
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: encoder comparison on COMPSO lossy-stage output");
  const auto dev = gpusim::DeviceModel::a100();
  const comm::Communicator comm(comm::Topology::with_gpus(64),
                                comm::NetworkModel::platform1());
  const perf::CommLookupTable table(comm);

  struct ModelCase {
    nn::ModelShape shape;
    std::uint64_t seed;
  };
  const ModelCase cases[] = {{nn::resnet50_shape(), 21},
                             {nn::bert_large_shape(), 22}};

  // Per-encoder scores for both models, plus the lossy-stage reduction
  // that the encoder ratio multiplies (overall CR is vs FP32 gradients).
  std::map<std::string, std::pair<perf::EncoderScore, perf::EncoderScore>>
      rows;
  double lossy_cr[2] = {1.0, 1.0};
  for (int c = 0; c < 2; ++c) {
    const auto stream = lossy_stage_stream(cases[c].shape, cases[c].seed);
    lossy_cr[c] = static_cast<double>(stream.gradient_bytes) /
                  static_cast<double>(stream.bytes.size());
    const auto scores = perf::score_encoders(stream.bytes, dev, table);
    for (const auto& s : scores) {
      auto& row = rows[codec::to_string(s.kind)];
      (c == 0 ? row.first : row.second) = s;
    }
    std::printf("%-11s: %.1f MB gradient sampled, lossy stage %.2fx\n",
                cases[c].shape.name.c_str(),
                static_cast<double>(stream.gradient_bytes) / 1e6,
                lossy_cr[c]);
  }

  std::printf("\n%-9s | %8s %7s %8s | %8s %7s %8s\n", "Encoder", "C-GB/s",
              "CR", "D-GB/s", "C-GB/s", "CR", "D-GB/s");
  std::printf("%-9s | %25s | %25s\n", "", "ResNet-50", "BERT-large");
  bench::print_rule();
  for (const auto& [name, pair] : rows) {
    const auto& a = pair.first;
    const auto& b = pair.second;
    std::printf("%-9s | %8.2f %7.2f %8.2f | %8.2f %7.2f %8.2f\n",
                name.c_str(), a.comp_throughput / 1e9,
                a.compression_ratio * lossy_cr[0], a.decomp_throughput / 1e9,
                b.comp_throughput / 1e9, b.compression_ratio * lossy_cr[1],
                b.decomp_throughput / 1e9);
  }
  std::printf(
      "\nShape checks: entropy coders (ANS/Deflate/Gdeflate/Zstd) out-\n"
      "compress dictionary (LZ4/Snappy) and RLE (Cascaded) coders; ANS has\n"
      "the best ratio-throughput combination; Bitcomp has the highest\n"
      "throughput with a lower ratio. CR column is overall (vs FP32).\n");
  return 0;
}
