// Figure 9 — Overall end-to-end training speedup of cuSZ / QSGD /
// CocktailSGD / COMPSO-f (fixed aggregation factor 4) / COMPSO-p
// (performance-model aggregation) over the no-compression KFAC baseline,
// per model, GPU count and platform.
//
// Paper result: COMPSO up to 1.9x (avg ~1.3-1.5x); COMPSO-p > COMPSO-f;
// COMPSO's margin over CocktailSGD grows with GPU count (10% -> 40%).

#include "bench/bench_util.hpp"

#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

int main() {
  using namespace compso;
  bench::print_header("Figure 9: overall end-to-end speedup");

  const auto cusz = compress::make_sz(4e-3);
  const auto qsgd = compress::make_qsgd(8);
  const auto cocktail = compress::make_cocktail(0.2, 8);
  const auto compso = compress::make_compso({});

  for (int plat = 1; plat <= 2; ++plat) {
    const auto net = plat == 1 ? comm::NetworkModel::platform1()
                               : comm::NetworkModel::platform2();
    std::printf("\n--- Platform %d (%s) ---\n", plat, net.name().c_str());
    std::printf("%-14s %5s | %6s %6s %9s | %9s %9s (agg m)\n", "model",
                "GPUs", "cuSZ", "QSGD", "Cocktail", "COMPSO-f", "COMPSO-p");
    bench::print_rule();
    double best = 0.0, sum_f = 0.0, sum_p = 0.0;
    int n = 0;
    for (const auto& shape : nn::paper_model_shapes()) {
      for (std::size_t gpus : {8, 16, 32, 64}) {
        const auto cfg = bench::perf_config(shape, (gpus + 3) / 4, net);
        const core::PerfSimulator sim(cfg);
        const double s_cusz =
            sim.with_compressor(*cusz, 1).end_to_end_speedup;
        const double s_qsgd =
            sim.with_compressor(*qsgd, 1).end_to_end_speedup;
        const double s_cocktail =
            sim.with_compressor(*cocktail, 1).end_to_end_speedup;
        const double s_f = sim.with_compressor(*compso, 4).end_to_end_speedup;

        // COMPSO-p: pick m via the §4.4 performance model, then realize it.
        const comm::Communicator comm(cfg.topo, cfg.net);
        const perf::CommLookupTable table(comm);
        tensor::Rng rng(31);
        const auto sample = tensor::synthetic_gradient(
            1 << 16, tensor::GradientProfile::kfac(), rng);
        perf::WarmupProfile profile;
        {
          perf::OnlineProfiler profiler;
          const auto payload = compso->compress(sample, rng);
          const std::size_t in_bytes = sample.size() * sizeof(float);
          profiler.record(
              in_bytes, payload.size(),
              in_bytes / compso->modeled_throughput(cfg.dev, in_bytes,
                                                    payload.size()),
              payload.size() / compso->modeled_throughput(
                                   cfg.dev, payload.size(), in_bytes),
              sim.baseline().allgather_s + sim.baseline().allreduce_s,
              sim.baseline().total_s());
          profile = profiler.finish();
        }
        const auto decision = perf::choose_aggregation_factor(
            sim.layer_bytes(), profile, *compso, cfg.dev, table);
        const double s_p =
            sim.with_compressor(*compso, decision.factor).end_to_end_speedup;

        std::printf("%-14s %5zu | %6.2f %6.2f %9.2f | %9.2f %9.2f (m=%zu)\n",
                    shape.name.c_str(), gpus, s_cusz, s_qsgd, s_cocktail,
                    s_f, s_p, decision.factor);
        best = std::max(best, s_p);
        sum_f += s_f;
        sum_p += s_p;
        ++n;
      }
    }
    std::printf("COMPSO-f avg %.2fx, COMPSO-p avg %.2fx, best %.2fx\n",
                sum_f / n, sum_p / n, best);
  }
  std::printf(
      "\nShape checks: COMPSO-p >= COMPSO-f >= baselines; COMPSO beats\n"
      "CocktailSGD by a margin that grows with GPU count; best case ~1.7-2x.\n");
  return 0;
}
