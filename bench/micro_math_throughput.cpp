// Blocked math engine vs. naive reference throughput (DESIGN.md §11).
//
// Measures the packed-panel GEMM/syrk kernels and the fused cyclic-Jacobi
// eigh against the retained naive references, plus the pool-parallel GEMM
// path, verifies blocked-vs-reference accuracy and blocked-vs-parallel
// bit-identity, prints a table, and writes BENCH_math.json (the compute
// side of the repo's perf trajectory, next to BENCH_compress.json). Usage:
//
//   micro_math_throughput [--smoke] [--threads=N] [output.json]
//                                             (default BENCH_math.json)
//
// The parallel gemm leg needs a real pool: the worker count defaults to
// the host's concurrency but is floored at 2 (overridable with
// --threads=N), and the JSON records the requested count, the effective
// pool size, and the host concurrency so a 1-core run is recognizable.
//
// --smoke trims repetitions and the eigh sizes for CI, but keeps the
// 512x512x512 gemm row: the run fails (exit 1) unless the blocked
// single-thread gemm beats the naive reference by the acceptance-criterion
// factor there, and unless the parallel gemm is bit-identical to serial.

#include "bench/bench_util.hpp"
#include "src/common/thread_pool.hpp"
#include "src/tensor/eigen.hpp"
#include "src/tensor/matrix_ops.hpp"
#include "src/tensor/rng.hpp"
#include "src/tensor/tensor.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace compso;
namespace ct = compso::tensor;

namespace {

// Sanitizer instrumentation flattens the blocked-vs-naive gap (both sides
// pay per-access shadow checks, but the packed panels pay them twice); the
// speedup gate only has teeth in an uninstrumented build.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr double kMinGemm512Speedup = 1.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr double kMinGemm512Speedup = 1.0;
#else
constexpr double kMinGemm512Speedup = 4.0;
#endif
#else
constexpr double kMinGemm512Speedup = 4.0;
#endif

ct::Tensor rand2(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  ct::Tensor t({rows, cols});
  ct::Rng rng(seed);
  rng.fill_uniform(t.span(), -1.0F, 1.0F);
  return t;
}

/// All wall timings flow through bench::time_best into this registry; the
/// snapshot is embedded in BENCH_math.json under "metrics".
obs::MetricsRegistry g_metrics;

template <typename Fn>
double time_best(std::string_view name, int reps, Fn&& fn) {
  return bench::time_best(g_metrics, name, reps, static_cast<Fn&&>(fn));
}

bool bitwise_equal(const ct::Tensor& a, const ct::Tensor& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

double max_rel_err(const ct::Tensor& got, const ct::Tensor& want) {
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(double{want[i]}));
    worst = std::max(worst, std::fabs(double{got[i]} - want[i]) / denom);
  }
  return worst;
}

struct GemmRow {
  std::size_t size;
  double naive_gflops, blocked_gflops, parallel_gflops;
  double max_rel_err;
  bool parallel_bit_identical;
};

struct EighRow {
  std::size_t size;
  double naive_ms, fused_ms;
};

}  // namespace

int usage(const char* argv0, const char* bad) {
  std::fprintf(stderr, "unknown argument: %s\n", bad);
  std::fprintf(stderr, "usage: %s [--smoke] [--threads=N] [output.json]\n",
               argv0);
  return 1;
}

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t requested_threads = 0;  // 0 = host default.
  std::string out_path = "BENCH_math.json";
  bool have_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--threads=", 0) == 0 && arg.size() > 10) {
      const std::string_view digits = arg.substr(10);
      std::size_t value = 0;
      bool ok = true;
      for (const char c : digits) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        value = value * 10 + static_cast<std::size_t>(c - '0');
      }
      if (!ok || value == 0) return usage(argv[0], argv[i]);
      requested_threads = value;
    } else if (!arg.empty() && arg[0] != '-' && !have_out) {
      out_path = arg;
      have_out = true;
    } else {
      return usage(argv[0], argv[i]);
    }
  }

  const int reps = smoke ? 2 : 5;
  const std::vector<std::size_t> gemm_sizes =
      smoke ? std::vector<std::size_t>{512}
            : std::vector<std::size_t>{128, 256, 512};
  const std::vector<std::size_t> eigh_sizes =
      smoke ? std::vector<std::size_t>{96}
            : std::vector<std::size_t>{96, 192, 256};

  const unsigned host_concurrency = std::thread::hardware_concurrency();
  if (requested_threads == 0) {
    requested_threads = std::max(1U, host_concurrency);
  }
  if (host_concurrency <= 1) {
    std::fprintf(stderr,
                 "WARNING: host reports %u hardware thread(s); the parallel "
                 "gemm leg timeshares one core and measures scheduler noise, "
                 "not scaling.\n",
                 host_concurrency);
  }
  // Floor at 2 so the "parallel" rows exercise an actual pool even on a
  // 1-core host (where the old hardware-concurrency default quietly ran
  // a 1-thread pool and reported a meaningless comparison).
  common::ThreadPool pool(std::max<std::size_t>(2, requested_threads));
  const std::size_t threads = pool.size();

  // --- gemm: naive reference vs blocked vs pool-parallel blocked ---
  std::printf("gemm (square, single precision)\n");
  std::printf("%6s | %12s %12s %12s | %9s | %s\n", "size", "naive GF/s",
              "blocked GF/s", "parallel GF/s", "speedup", "parallel bits");
  std::vector<GemmRow> gemm_rows;
  bool all_identical = true;
  double gemm512_speedup = 0.0;
  for (std::size_t n : gemm_sizes) {
    const auto a = rand2(n, n, 1000 + n);
    const auto b = rand2(n, n, 2000 + n);
    const double flops = 2.0 * static_cast<double>(n) * n * n;

    ct::Tensor c_ref, c_blk, c_par;
    const std::string stem = "bench.gemm" + std::to_string(n);
    const double t_naive =
        time_best(stem + ".naive", reps, [&] { ct::gemm_reference(a, b, c_ref); });
    const double t_blocked =
        time_best(stem + ".blocked", reps, [&] { ct::gemm(a, b, c_blk); });
    double t_parallel;
    {
      ct::MathPoolGuard guard(&pool);
      t_parallel =
          time_best(stem + ".parallel", reps, [&] { ct::gemm(a, b, c_par); });
    }

    GemmRow row;
    row.size = n;
    row.naive_gflops = flops / t_naive / 1e9;
    row.blocked_gflops = flops / t_blocked / 1e9;
    row.parallel_gflops = flops / t_parallel / 1e9;
    row.max_rel_err = max_rel_err(c_blk, c_ref);
    row.parallel_bit_identical = bitwise_equal(c_par, c_blk);
    gemm_rows.push_back(row);
    all_identical = all_identical && row.parallel_bit_identical;
    if (n == 512) gemm512_speedup = t_naive / t_blocked;

    std::printf("%6zu | %12.2f %12.2f %12.2f | %8.2fx | %s\n", n,
                row.naive_gflops, row.blocked_gflops, row.parallel_gflops,
                row.blocked_gflops / row.naive_gflops,
                row.parallel_bit_identical ? "identical" : "MISMATCH");
  }

  // --- syrk_tn: the KFAC covariance kernel ---
  const std::size_t syrk_n = smoke ? 192 : 256, syrk_d = 512;
  const auto sa = rand2(syrk_n, syrk_d, 3003);
  ct::Tensor s_ref, s_blk;
  const double syrk_flops =
      static_cast<double>(syrk_n) * syrk_d * (syrk_d + 1);
  const double syrk_t_naive = time_best(
      "bench.syrk.naive", reps, [&] { ct::syrk_tn_reference(sa, 0.5F, 0.0F, s_ref); });
  const double syrk_t_blocked =
      time_best("bench.syrk.blocked", reps, [&] { ct::syrk_tn(sa, 0.5F, 0.0F, s_blk); });
  const double syrk_err = max_rel_err(s_blk, s_ref);
  std::printf("\nsyrk_tn (A %zux%zu)\n", syrk_n, syrk_d);
  std::printf("  naive %.2f GF/s, blocked %.2f GF/s, speedup %.2fx\n",
              syrk_flops / syrk_t_naive / 1e9,
              syrk_flops / syrk_t_blocked / 1e9,
              syrk_t_naive / syrk_t_blocked);

  // --- eigh: fused cyclic-by-rows Jacobi vs two-pass reference ---
  std::printf("\neigh (symmetric, double-precision Jacobi)\n");
  std::printf("%6s | %10s %10s | %s\n", "size", "naive ms", "fused ms",
              "speedup");
  std::vector<EighRow> eigh_rows;
  for (std::size_t n : eigh_sizes) {
    ct::Tensor m = rand2(n, n, 4000 + n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const float avg = 0.5F * (m.at(i, j) + m.at(j, i));
        m.at(i, j) = m.at(j, i) = avg;
      }
    }
    EighRow row;
    row.size = n;
    const std::string stem = "bench.eigh" + std::to_string(n);
    row.naive_ms = 1e3 * time_best(stem + ".naive", reps,
                                   [&] { (void)ct::eigh_reference(m); });
    row.fused_ms =
        1e3 * time_best(stem + ".fused", reps, [&] { (void)ct::eigh(m); });
    eigh_rows.push_back(row);
    std::printf("%6zu | %10.2f %10.2f | %6.2fx\n", n, row.naive_ms,
                row.fused_ms, row.naive_ms / row.fused_ms);
  }

  // --- JSON ---
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_math_throughput\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"host_concurrency\": %u,\n", host_concurrency);
  std::fprintf(f, "  \"requested_threads\": %zu,\n", requested_threads);
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
    const GemmRow& r = gemm_rows[i];
    std::fprintf(
        f,
        "    {\"size\": %zu, \"naive_gflops\": %.3f, \"blocked_gflops\":"
        " %.3f, \"parallel_gflops\": %.3f, \"speedup\": %.3f,\n"
        "     \"max_rel_err\": %.3e, \"parallel_bit_identical\": %s}%s\n",
        r.size, r.naive_gflops, r.blocked_gflops, r.parallel_gflops,
        r.blocked_gflops / r.naive_gflops, r.max_rel_err,
        r.parallel_bit_identical ? "true" : "false",
        i + 1 < gemm_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"syrk_tn\": {\"n\": %zu, \"d\": %zu, \"naive_gflops\": %.3f,"
      " \"blocked_gflops\": %.3f, \"speedup\": %.3f, \"max_rel_err\":"
      " %.3e},\n",
      syrk_n, syrk_d, syrk_flops / syrk_t_naive / 1e9,
      syrk_flops / syrk_t_blocked / 1e9, syrk_t_naive / syrk_t_blocked,
      syrk_err);
  std::fprintf(f, "  \"eigh\": [\n");
  for (std::size_t i = 0; i < eigh_rows.size(); ++i) {
    const EighRow& r = eigh_rows[i];
    std::fprintf(f,
                 "    {\"size\": %zu, \"naive_ms\": %.3f, \"fused_ms\":"
                 " %.3f, \"speedup\": %.3f}%s\n",
                 r.size, r.naive_ms, r.fused_ms, r.naive_ms / r.fused_ms,
                 i + 1 < eigh_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"gemm512_speedup\": %.3f, \"gemm512_speedup_gate\":"
                  " %.1f,\n",
               gemm512_speedup, kMinGemm512Speedup);
  std::fprintf(f, "  \"metrics\": %s\n}\n", g_metrics.to_json().c_str());
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // --- self-checks (the bench doubles as a ctest perf gate) ---
  int failures = 0;
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel gemm not bit-identical to serial\n");
    ++failures;
  }
  for (const GemmRow& r : gemm_rows) {
    if (!(r.max_rel_err < 1e-3)) {
      std::fprintf(stderr, "FAIL: blocked gemm rel err %.3e at %zu\n",
                   r.max_rel_err, r.size);
      ++failures;
    }
  }
  if (!(syrk_err < 1e-3)) {
    std::fprintf(stderr, "FAIL: blocked syrk rel err %.3e\n", syrk_err);
    ++failures;
  }
  if (gemm512_speedup < kMinGemm512Speedup) {
    std::fprintf(stderr,
                 "FAIL: blocked gemm %.2fx naive at 512^3 (gate %.1fx)\n",
                 gemm512_speedup, kMinGemm512Speedup);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}
