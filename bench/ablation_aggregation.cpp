// Ablation — layer-aggregation factor m (DESIGN.md §5.1).
//
// Sweeps m over the four models and both platforms, reporting the
// comm speedup and end-to-end speedup realized by the simulator, plus the
// factor the §4.4 performance model would choose. Shows why COMPSO-f's
// fixed m=4 is a good default and where COMPSO-p's dynamic choice wins.

#include "bench/bench_util.hpp"

#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

int main() {
  using namespace compso;
  bench::print_header("Ablation: layer-aggregation factor");
  const auto compso = compress::make_compso({});
  const std::size_t factors[] = {1, 2, 4, 8, 16, 32};

  for (const auto& shape : nn::paper_model_shapes()) {
    const auto cfg =
        bench::perf_config(shape, 16, comm::NetworkModel::platform1());
    const core::PerfSimulator sim(cfg);
    std::printf("\n%-14s (64 GPUs, Platform 1)\n", shape.name.c_str());
    std::printf("%6s | %12s %10s %8s\n", "m", "comm-speedup", "e2e", "CR");
    bench::print_rule();
    std::size_t best_m = 1;
    double best_e2e = 0.0;
    for (std::size_t m : factors) {
      const auto r = sim.with_compressor(*compso, m);
      std::printf("%6zu | %12.1f %10.2f %8.1f\n", m, r.comm_speedup,
                  r.end_to_end_speedup, r.compression_ratio);
      if (r.end_to_end_speedup > best_e2e) {
        best_e2e = r.end_to_end_speedup;
        best_m = m;
      }
    }
    std::printf("best realized m = %zu (e2e %.2fx); fixed m=4 gives %.2fx\n",
                best_m, best_e2e,
                sim.with_compressor(*compso, 4).end_to_end_speedup);
  }
  std::printf(
      "\nShape checks: m > 1 always beats per-layer compression (launch\n"
      "overhead + per-collective latency amortize); gains saturate once\n"
      "chunks reach the flat part of the throughput curves.\n");
  return 0;
}
