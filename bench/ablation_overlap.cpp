// Ablation — KAISA's computation-communication overlap (paper §2.2,
// contribution 2) interacting with compression.
//
// The paper's motivating claim: communication exceeds 30% of the
// iteration "even considering the computation-communication overlap"
// (§3). This sweep shows (a) how much overlap alone can hide, and (b)
// that compression still pays on top of full overlap — because the
// exposed communication shrinks by the compression ratio too.

#include "bench/bench_util.hpp"

#include "src/compress/compressor.hpp"

int main() {
  using namespace compso;
  bench::print_header(
      "Ablation: comp-comm overlap vs compression (ResNet-50, 64 GPUs)");
  const auto compso = compress::make_compso({});
  std::printf("%8s | %12s %12s | %10s\n", "overlap", "comm-share",
              "iter (ms)", "COMPSO e2e");
  bench::print_rule();
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto cfg = bench::perf_config(nn::resnet50_shape(), 16,
                                  comm::NetworkModel::platform1());
    cfg.comm_overlap = overlap;
    const core::PerfSimulator sim(cfg);
    const auto& b = sim.baseline();
    const auto r = sim.with_compressor(*compso, 4);
    std::printf("%7.0f%% | %11.1f%% %12.1f | %9.2fx\n", 100.0 * overlap,
                100.0 * b.comm_fraction(), 1e3 * b.total_s(),
                r.end_to_end_speedup);
  }
  std::printf(
      "\nShape checks: overlap shrinks the exposed communication and with\n"
      "it compression's headroom — but at the paper's operating regime\n"
      "(exposed comm > 30%%, i.e. overlap <= ~50%% here) COMPSO still\n"
      "delivers a 1.3-1.6x end-to-end gain. Amdahl in action: compression\n"
      "and overlap attack the same term.\n");
  return 0;
}
