// Ablation — KAISA's computation-communication overlap (paper §2.2,
// contribution 2) interacting with compression, plus the chunked
// streaming pipeline (DESIGN.md §15) that converts the serial
// compress -> wire -> decompress chain of Eq. 5's denominator into a
// 3-stage pipeline.
//
// The paper's motivating claim: communication exceeds 30% of the
// iteration "even considering the computation-communication overlap"
// (§3). This bench shows (a) how much overlap alone can hide, (b) that
// compression still pays on top of full overlap, and (c) how much of the
// codec's serial cost chunked streaming wins back — the measured
// chunked-vs-unchunked payload-pipeline ratio next to the Eq. 5 chunked
// prediction, at Slingshot-10 scale.
//
//   ablation_overlap [--smoke] [output.json]   (default BENCH_overlap.json)
//
// --smoke gates the acceptance criteria: chunked >= 1.3x unchunked at
// Slingshot-10, reassembled chunk payloads byte-identical to the
// unchunked payload (real ChunkedStream round trip), and the transport's
// per-round wire charge equal to the network model's (sum of per-round
// allgatherv_time) — the two views must agree exactly.

#include "bench/bench_util.hpp"

#include "src/compress/chunked_stream.hpp"
#include "src/compress/compressor.hpp"
#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

using namespace compso;

namespace {

struct OverlapRow {
  double overlap = 0.0;
  double comm_fraction = 0.0;
  double iter_ms = 0.0;
  double e2e_speedup = 1.0;
};

struct ChunkRow {
  std::size_t chunk_bytes = 0;
  std::size_t chunks = 0;
  double serial_ms = 0.0;
  double pipeline_ms = 0.0;
  double ratio = 1.0;
  double eq5_predicted = 1.0;
};

/// Real ChunkedStream round trip: frame `payload` at `chunk_bytes`, feed
/// every frame through a consumer cursor, compare the reassembly.
bool chunk_roundtrip_identical(const compress::Bytes& payload,
                               std::size_t chunk_bytes) {
  compress::ChunkedProducer producer;
  producer.frame(compress::ByteView(payload), chunk_bytes);
  compress::ChunkedConsumer consumer;
  for (std::size_t k = 0; k < producer.chunk_count(); ++k) {
    consumer.feed(producer.chunk(k));
  }
  if (!consumer.complete()) return false;
  const auto out = consumer.payload();
  return out.size() == payload.size() &&
         (payload.empty() ||
          std::memcmp(out.data(), payload.data(), payload.size()) == 0);
}

/// Transport/model agreement: the simulated time a chunked collective
/// charges must equal the sum of the network model's per-round
/// allgatherv_time over the same frame sizes.
bool transport_matches_model(std::size_t chunk_bytes) {
  comm::Topology topo{.nodes = 2, .gpus_per_node = 2};
  comm::Communicator c(topo, comm::NetworkModel::platform1());
  const std::size_t world = topo.world_size();
  std::vector<compress::Bytes> payloads(world);
  std::vector<compress::ChunkedProducer> producers(world);
  std::size_t rounds = 0;
  for (std::size_t r = 0; r < world; ++r) {
    payloads[r].assign(1000 + 700 * r, static_cast<std::uint8_t>(r));
    producers[r].frame(compress::ByteView(payloads[r]), chunk_bytes);
    rounds = std::max(rounds, producers[r].chunk_count());
  }
  double expected = 0.0;
  for (std::size_t k = 0; k < rounds; ++k) {
    std::vector<std::span<const std::uint8_t>> frames(world);
    std::vector<std::size_t> sizes;
    for (std::size_t r = 0; r < world; ++r) {
      if (k < producers[r].chunk_count()) frames[r] = producers[r].chunk(k);
      sizes.push_back(frames[r].size());
    }
    expected += c.allgatherv_time(sizes);
    std::vector<std::vector<std::uint8_t>> recv;
    c.allgatherv_chunks(frames, recv, k);
  }
  return std::abs(c.stats().allgather_s - expected) <= 1e-15 * rounds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_overlap.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::print_header(
      "Ablation: comp-comm overlap + chunked streaming (ResNet-50, 64 GPUs, "
      "Slingshot-10)");
  const auto compso = compress::make_compso({});
  constexpr std::size_t kAggregation = 4;

  // --- Part (a)/(b): the overlap sweep (unchanged shape from the paper's
  // §3 claim).
  std::vector<OverlapRow> overlap_rows;
  std::printf("%8s | %12s %12s | %10s\n", "overlap", "comm-share",
              "iter (ms)", "COMPSO e2e");
  bench::print_rule();
  for (double overlap : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto cfg = bench::perf_config(nn::resnet50_shape(), 16,
                                  comm::NetworkModel::platform1());
    cfg.comm_overlap = overlap;
    const core::PerfSimulator sim(cfg);
    const auto& b = sim.baseline();
    const auto r = sim.with_compressor(*compso, kAggregation);
    overlap_rows.push_back({overlap, b.comm_fraction(), 1e3 * b.total_s(),
                            r.end_to_end_speedup});
    std::printf("%7.0f%% | %11.1f%% %12.1f | %9.2fx\n", 100.0 * overlap,
                100.0 * b.comm_fraction(), 1e3 * b.total_s(),
                r.end_to_end_speedup);
  }

  // --- Part (c): the chunked payload pipeline. serial = the codec+wire
  // chain Eq. 5 charges in series; pipeline = the 3-stage chunk makespan
  // on the identical compression ratios, codec throughputs, and network
  // model. The Eq. 5 prediction prices the same totals on the offline
  // CommLookupTable (the §4.4 decision path), so measured-vs-predicted is
  // a genuine cross-check of two independent calculations.
  const auto cfg = bench::perf_config(nn::resnet50_shape(), 16,
                                      comm::NetworkModel::platform1());
  const core::PerfSimulator sim(cfg);
  const comm::Communicator lookup_comm(cfg.topo, cfg.net);
  const perf::CommLookupTable table(lookup_comm, 1 << 10,
                                    std::size_t{1} << 28, 24,
                                    perf::CollectiveKind::kPipelinedBroadcast);

  std::printf("\n%12s | %7s | %11s %11s | %8s | %9s\n", "chunk", "chunks",
              "serial (ms)", "piped (ms)", "ratio", "Eq.5 pred");
  bench::print_rule();
  std::vector<ChunkRow> chunk_rows;
  for (std::size_t cb : {std::size_t{64} << 10, std::size_t{256} << 10,
                         std::size_t{1} << 20, std::size_t{4} << 20}) {
    const auto p = sim.with_chunked_compressor(*compso, kAggregation, cb);
    ChunkRow row;
    row.chunk_bytes = cb;
    row.chunks = p.chunks;
    row.serial_ms = 1e3 * p.serial_s;
    row.pipeline_ms = 1e3 * p.pipeline_s;
    row.ratio = p.ratio();
    // Feed Eq. 5 the effective codec throughputs the simulator actually
    // charged (per-group launch overheads included); the wire pricing
    // stays independent — offline lookup table vs direct network model.
    std::size_t orig_bytes = 0;
    for (const auto& l : cfg.model.layers) orig_bytes += l.kfac_bytes();
    row.eq5_predicted = perf::chunked_pipeline_speedup(
        orig_bytes, p.comp_bytes, p.chunks, table,
        p.comp_s > 0.0 ? static_cast<double>(orig_bytes) / p.comp_s : 1e18,
        p.decomp_s > 0.0 ? static_cast<double>(p.comp_bytes) / p.decomp_s
                         : 1e18);
    chunk_rows.push_back(row);
    std::printf("%9zu KiB | %7zu | %11.2f %11.2f | %7.2fx | %8.2fx\n",
                cb >> 10, row.chunks, row.serial_ms, row.pipeline_ms,
                row.ratio, row.eq5_predicted);
  }

  // --- Byte-identity + transport agreement (the §15 contracts).
  tensor::Rng grad_rng(20250808);
  const auto grad = tensor::synthetic_gradient(
      1 << 16, tensor::GradientProfile::kfac(), grad_rng);
  tensor::Rng comp_rng(7);
  const auto payload = compso->compress(grad, comp_rng);
  const bool bytes_identical = chunk_roundtrip_identical(payload, 4096);
  const bool transport_agrees = transport_matches_model(512);
  double best_ratio = 1.0;
  for (const auto& r : chunk_rows) best_ratio = std::max(best_ratio, r.ratio);

  std::printf(
      "\nShape checks: overlap shrinks the exposed communication and with\n"
      "it compression's headroom — but at the paper's operating regime\n"
      "(exposed comm > 30%%) COMPSO still delivers a 1.3-1.6x end-to-end\n"
      "gain. Chunked streaming then overlaps the codec with the wire:\n"
      "best payload-pipeline ratio %.2fx (gate: >= 1.30x). Round-trip\n"
      "bytes %s, transport/model agreement %s.\n",
      best_ratio, bytes_identical ? "identical" : "MISMATCH",
      transport_agrees ? "exact" : "BROKEN");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_overlap\",\n");
  std::fprintf(f, "  \"model\": \"%s\",\n", cfg.model.name.c_str());
  std::fprintf(f, "  \"network\": \"%s\",\n", cfg.net.name().c_str());
  std::fprintf(f, "  \"aggregation\": %zu,\n", kAggregation);
  std::fprintf(f, "  \"overlap_rows\": [\n");
  for (std::size_t i = 0; i < overlap_rows.size(); ++i) {
    const auto& r = overlap_rows[i];
    std::fprintf(f,
                 "    {\"overlap\": %.2f, \"comm_fraction\": %.4f,"
                 " \"iter_ms\": %.4f, \"e2e_speedup\": %.4f}%s\n",
                 r.overlap, r.comm_fraction, r.iter_ms, r.e2e_speedup,
                 i + 1 < overlap_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"chunk_rows\": [\n");
  for (std::size_t i = 0; i < chunk_rows.size(); ++i) {
    const auto& r = chunk_rows[i];
    std::fprintf(f,
                 "    {\"chunk_bytes\": %zu, \"chunks\": %zu,"
                 " \"serial_ms\": %.4f, \"pipeline_ms\": %.4f,"
                 " \"chunked_vs_unchunked\": %.4f,"
                 " \"eq5_predicted\": %.4f}%s\n",
                 r.chunk_bytes, r.chunks, r.serial_ms, r.pipeline_ms,
                 r.ratio, r.eq5_predicted,
                 i + 1 < chunk_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"best_chunked_ratio\": %.4f,\n", best_ratio);
  std::fprintf(f, "  \"payload_bytes_identical\": %s,\n",
               bytes_identical ? "true" : "false");
  std::fprintf(f, "  \"transport_matches_model\": %s\n",
               transport_agrees ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (smoke) {
    if (!bytes_identical) {
      std::fprintf(stderr, "SMOKE FAIL: chunk round trip not bit-identical\n");
      return 1;
    }
    if (!transport_agrees) {
      std::fprintf(stderr,
                   "SMOKE FAIL: transport wire time != network model\n");
      return 1;
    }
    if (best_ratio < 1.3) {
      std::fprintf(stderr,
                   "SMOKE FAIL: chunked pipeline ratio %.3f < 1.3\n",
                   best_ratio);
      return 1;
    }
    std::printf("smoke OK: ratio %.2fx, bytes identical, transport exact\n",
                best_ratio);
  }
  return 0;
}
