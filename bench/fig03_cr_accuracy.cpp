// Figure 3 — Compression ratio (left) and validation accuracy (right) of
// SZ 1e-1 / QSGD 4-bit / SZ 4e-3 / QSGD 8-bit applied to KFAC gradients,
// for ResNet-50-like and BERT-large-like workloads.
//
// Paper result (shape):
//   CR: SZ 1e-1 >> QSGD 4-bit > SZ 4e-3 ~ QSGD 8-bit; all higher on
//       BERT-large than ResNet-50.
//   Accuracy: SZ 1e-1 and QSGD 4-bit fall well below the KFAC baseline;
//       SZ 4e-3 and QSGD 8-bit track it.
//
// CR is measured on synthetic KFAC gradients shaped by the real layer
// tables; accuracy comes from really training the proxy models under each
// compressor at a deliberately compression-sensitive operating point
// (see EXPERIMENTS.md).

#include "bench/bench_util.hpp"

#include "src/core/trainer.hpp"
#include "src/tensor/synthetic.hpp"

namespace {

using namespace compso;

struct Method {
  const char* name;
  std::unique_ptr<compress::GradientCompressor> c;
};

std::vector<Method> methods() {
  std::vector<Method> m;
  m.push_back({"SZ 1E-1", compress::make_sz(1e-1)});
  m.push_back({"QSGD 4bit", compress::make_qsgd(4)});
  m.push_back({"SZ 4E-3", compress::make_sz(4e-3)});
  m.push_back({"QSGD 8bit", compress::make_qsgd(8)});
  return m;
}

/// CR on layer-table-shaped synthetic KFAC gradients.
double measured_cr(const nn::ModelShape& shape,
                   const compress::GradientCompressor& c,
                   std::uint64_t seed) {
  tensor::Rng rng(seed);
  const auto profile = tensor::GradientProfile::kfac();
  std::size_t orig = 0, comp = 0;
  std::size_t budget = 8U << 20;
  for (const auto& layer : shape.layers) {
    if (budget == 0) break;
    const std::size_t elems =
        std::min<std::size_t>(layer.kfac_elements(), 1 << 17);
    const auto grad = tensor::synthetic_gradient(elems, profile, rng);
    const auto payload = c.compress(grad, rng);
    orig += grad.size() * sizeof(float);
    comp += payload.size();
    budget -= std::min(budget, elems * sizeof(float));
  }
  return static_cast<double>(orig) / static_cast<double>(comp);
}

/// BERT-like gradients have a narrower, more compressible distribution
/// (the paper's CRs on BERT-large are ~3x those on ResNet-50).
double measured_cr_bert(const compress::GradientCompressor& c,
                        std::uint64_t seed) {
  tensor::Rng rng(seed);
  tensor::GradientProfile profile;        // KFAC profile, narrower body
  profile.near_zero_fraction = 0.82F;     // fine-tuned LM gradients are
  profile.near_zero_scale = 2e-4F;        // extremely zero-concentrated
  std::size_t orig = 0, comp = 0;
  for (int i = 0; i < 48; ++i) {
    const auto grad = tensor::synthetic_gradient(1 << 17, profile, rng);
    const auto payload = c.compress(grad, rng);
    orig += grad.size() * sizeof(float);
    comp += payload.size();
  }
  return static_cast<double>(orig) / static_cast<double>(comp);
}

}  // namespace

int main() {
  bench::print_header("Figure 3 (left): compression ratio on KFAC gradients");
  auto ms = methods();
  std::printf("%-10s | %10s %11s\n", "method", "ResNet-50", "BERT-large");
  bench::print_rule();
  for (auto& m : ms) {
    std::printf("%-10s | %10.1f %11.1f\n", m.name,
                measured_cr(nn::resnet50_shape(), *m.c, 41),
                measured_cr_bert(*m.c, 42));
  }

  bench::print_header(
      "Figure 3 (right): validation accuracy after training with each "
      "compressor");
  // Compression-sensitive operating point: hard cluster task, fixed
  // iteration count matching the uncompressed baseline (paper protocol).
  core::TrainerConfig cfg;
  cfg.noise = 1.3F;
  cfg.classes = 10;
  cfg.features = 20;
  cfg.hidden = 20;
  cfg.depth = 3;
  cfg.batch_per_rank = 8;
  const compso::optim::StepLr lr(0.02, 0.1, {40});
  compso::optim::DistKfacConfig kc;
  kc.damping = 0.03;
  kc.aggregation = 4;  // the paper fixes the aggregation factor to 4
  const std::size_t iters = 60;
  const int seeds = 3;

  auto avg_acc = [&](const compress::GradientCompressor* c) {
    double acc = 0.0;
    for (int s = 0; s < seeds; ++s) {
      auto scfg = cfg;
      scfg.seed = 1234 + static_cast<std::uint64_t>(s);
      core::ClusterTrainer trainer(scfg);
      const auto r = trainer.train_kfac(
          iters, lr, [&](std::size_t) { return c; }, kc);
      acc += r.final_accuracy;
    }
    return 100.0 * acc / seeds;
  };

  const double baseline = avg_acc(nullptr);
  std::printf("KFAC validation accuracy (no compression): %.1f\n", baseline);
  std::printf("%-10s | %9s\n", "method", "accuracy");
  bench::print_rule();
  for (auto& m : ms) {
    std::printf("%-10s | %9.1f\n", m.name, avg_acc(m.c.get()));
  }
  std::printf(
      "\nShape checks: SZ 1E-1 and QSGD 4bit have the highest CRs but lose\n"
      "accuracy vs the KFAC baseline; SZ 4E-3 and QSGD 8bit preserve it at\n"
      "modest CRs — the tension COMPSO resolves (§3 challenge 1).\n");
  return 0;
}
