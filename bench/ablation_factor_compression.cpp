// Ablation — factor-matrix (A/G) compression, the paper's §7 future-work
// item 2: "exploring compression techniques for intermediate data in
// KFAC, specifically the factor matrices A and G".
//
// Trains the proxy with (a) no compression, (b) COMPSO on the gradient
// allgather only, and (c) COMPSO on the allgather + a conservative
// error-bounded compressor on the covariance exchange, then reports
// accuracy and both communication volumes, plus the modeled allreduce-time
// saving at ResNet-50 scale.

#include "bench/bench_util.hpp"

#include "src/core/trainer.hpp"
#include "src/optim/dist_kfac.hpp"

namespace {

using namespace compso;

struct Run {
  double accuracy = 0.0;
  double grad_cr = 1.0;
  double factor_cr = 1.0;
};

Run run_case(bool compress_grads, bool compress_factors) {
  core::TrainerConfig cfg;
  cfg.noise = 1.1F;
  cfg.classes = 10;
  cfg.features = 20;
  cfg.hidden = 24;
  cfg.depth = 2;
  cfg.batch_per_rank = 8;

  // Build the trainer pieces manually so the factor compressor can be
  // attached (ClusterTrainer does not expose it).
  std::vector<nn::Model> replicas;
  for (std::size_t r = 0; r < cfg.world; ++r) {
    tensor::Rng rng(cfg.seed);
    replicas.push_back(nn::make_mlp_classifier(cfg.features, cfg.hidden,
                                               cfg.classes, cfg.depth, rng));
  }
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  comm::Communicator comm(comm::Topology::with_gpus(cfg.world),
                          comm::NetworkModel::platform1());
  optim::DistKfacConfig kc;
  kc.damping = 0.1;
  kc.aggregation = 4;  // the paper fixes the aggregation factor to 4
  optim::DistKfac kfac(kc, comm, ptrs);

  const auto grad_comp = compress::make_compso({});
  compress::CompsoParams factor_params;
  factor_params.filter_bound = 0.0;   // factors are dense: SR-only,
  factor_params.quant_bound = 1e-3;   // conservative bound
  factor_params.use_filter = false;
  const auto factor_comp = compress::make_compso(factor_params);
  if (compress_factors) kfac.set_factor_compressor(factor_comp.get());

  nn::ClusterDataset dataset(cfg.features, cfg.classes, cfg.noise,
                             cfg.seed ^ 0xDA7A5E7ULL);
  tensor::Rng data_rng(cfg.seed ^ 0xBA7C4ULL), sr_rng(cfg.seed ^ 0x5121ULL);
  const optim::StepLr lr(0.01, 0.1, {60});
  Run out;
  double gcr = 0.0, fcr = 0.0;
  for (std::size_t t = 0; t < 100; ++t) {
    for (std::size_t r = 0; r < cfg.world; ++r) {
      const auto batch = dataset.sample(cfg.batch_per_rank, data_rng);
      const auto logits = replicas[r].forward(batch.x);
      tensor::Tensor grad;
      nn::softmax_cross_entropy(logits, batch.labels, grad);
      replicas[r].backward(grad);
    }
    kfac.step(t, lr.lr(t), compress_grads ? grad_comp.get() : nullptr,
              sr_rng);
    gcr += static_cast<double>(kfac.last_original_bytes()) /
           static_cast<double>(kfac.last_compressed_bytes());
    if (compress_factors) {
      fcr += static_cast<double>(kfac.last_factor_original_bytes()) /
             static_cast<double>(kfac.last_factor_compressed_bytes());
    }
  }
  out.grad_cr = gcr / 100.0;
  out.factor_cr = compress_factors ? fcr / 100.0 : 1.0;
  tensor::Rng eval_rng(cfg.seed ^ 0xE7A1ULL);
  const auto batch = dataset.sample(512, eval_rng);
  out.accuracy = nn::accuracy(replicas[0].forward(batch.x), batch.labels);
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: factor (A/G) compression — paper §7 future work");
  const Run base = run_case(false, false);
  const Run grads = run_case(true, false);
  const Run both = run_case(true, true);
  std::printf("%-28s | %9s %9s %10s\n", "configuration", "accuracy",
              "grad CR", "factor CR");
  bench::print_rule();
  std::printf("%-28s | %8.1f%% %9.1f %10.1f\n", "no compression",
              100 * base.accuracy, base.grad_cr, base.factor_cr);
  std::printf("%-28s | %8.1f%% %9.1f %10.1f\n", "COMPSO on gradients",
              100 * grads.accuracy, grads.grad_cr, grads.factor_cr);
  std::printf("%-28s | %8.1f%% %9.1f %10.1f\n", "COMPSO grads + factors",
              100 * both.accuracy, both.grad_cr, both.factor_cr);

  // What the factor ratio buys at real scale: ResNet-50's factor
  // allreduce on Platform 1 / 64 GPUs.
  const auto cfg = bench::perf_config(nn::resnet50_shape(), 16,
                                      comm::NetworkModel::platform1());
  const core::PerfSimulator sim(cfg);
  const double ar = sim.baseline().allreduce_s;
  std::printf(
      "\nmodeled factor-allreduce time at ResNet-50/64 GPU scale: %.2f ms\n"
      "-> %.2f ms with the measured factor CR (%.1fx)\n",
      1e3 * ar, 1e3 * ar / both.factor_cr, both.factor_cr);
  std::printf(
      "\nShape checks: factor compression preserves accuracy at the\n"
      "conservative bound while shrinking the covariance exchange several\n"
      "fold — the §7 direction is viable.\n");
  return 0;
}
