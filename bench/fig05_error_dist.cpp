// Figure 5 — Distribution of KFAC-gradient compression error with error
// bound 4e-3, rounding-to-nearest (left) vs stochastic rounding (right),
// for two layer types, sampled repeatedly across "iterations".
//
// Paper result: RN produces a uniform error distribution, SR a triangular
// one; the shapes are stable across layers and iterations. (§4.2 links
// the triangular shape to preserved accuracy.)

#include "bench/bench_util.hpp"

#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"
#include "src/tensor/synthetic.hpp"

#include <cmath>
#include <vector>

namespace {

using namespace compso;

std::vector<float> errors(quant::RoundingMode mode,
                          const tensor::GradientProfile& profile,
                          std::uint64_t seed) {
  tensor::Rng rng(seed);
  std::vector<float> all_err;
  // "every 50 iterations": several snapshots, same distribution shape.
  for (int snapshot = 0; snapshot < 5; ++snapshot) {
    const auto grad = tensor::synthetic_gradient(40000, profile, rng);
    const quant::ErrorBoundedQuantizer q(4e-3, mode);
    const auto block = q.quantize(grad, rng);
    std::vector<float> rec(grad.size());
    quant::ErrorBoundedQuantizer::dequantize(block, rec);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      all_err.push_back(rec[i] - grad[i]);
    }
  }
  return all_err;
}

void print_histogram(const char* title, std::span<const float> err) {
  const auto ex = tensor::extrema(err);
  const double lim = ex.abs_max;
  const auto h = tensor::histogram(err, -lim, lim, 21);
  std::printf("%s  (kurtosis %.2f: uniform=1.8, triangular=2.4)\n", title,
              tensor::kurtosis(err));
  double dmax = 0.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    dmax = std::max(dmax, h.density(i));
  }
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const int bars = static_cast<int>(std::lround(40.0 * h.density(i) / dmax));
    std::printf("  %+9.2e |%.*s\n", h.bucket_center(i), bars,
                "########################################");
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 5: KFAC-gradient quantization error distribution (eb = 4e-3)");
  // Two "layer types": conv-like (KFAC profile) and fc-like (SGD profile
  // stands in for a narrower-range layer).
  struct LayerType {
    const char* name;
    tensor::GradientProfile profile;
  };
  const LayerType types[] = {
      {"layer type 1 (conv-like)", tensor::GradientProfile::kfac()},
      {"layer type 2 (fc-like)", tensor::GradientProfile::sgd()},
  };
  for (const auto& t : types) {
    std::printf("\n--- %s ---\n", t.name);
    const auto rn = errors(quant::RoundingMode::kNearest, t.profile, 11);
    print_histogram("Rounding to Nearest", rn);
    const auto sr = errors(quant::RoundingMode::kStochastic, t.profile, 12);
    print_histogram("Stochastic Rounding", sr);
    // P0.5 for the §4.2 discussion: on near-zero-concentrated gradients,
    // flipping a coin regardless of the fractional part inflates the error
    // far beyond RN's (tiny values jump a full step half the time) — the
    // mechanism behind P0.5's accuracy loss at equal bit width.
    const auto p05 =
        errors(quant::RoundingMode::kHalfProbability, t.profile, 13);
    std::printf("P0.5 kurtosis %.2f, error variance %.1fx RN's "
                "(the accuracy-killing inflation, §4.2)\n",
                tensor::kurtosis(p05),
                tensor::variance(p05) / tensor::variance(rn));
  }
  std::printf(
      "\nShape checks: RN kurtosis ~1.8 (uniform), SR ~2.4 (triangular),\n"
      "stable across layer types and snapshots.\n");
  return 0;
}
