// Figure 6 — Convergence comparison of SGD+CocktailSGD, KFAC (no
// compression), KFAC+cuSZ, KFAC+QSGD, KFAC+CocktailSGD, KFAC+COMPSO on
// three proxy workloads (image-classification proxy for ResNet-50, a
// harder detection-style proxy for Mask R-CNN, and an LM-style proxy for
// GPT-neo-125M), plus the Fig. 6b final-metric table.
//
// Paper result (shape): the KFAC optimizer reaches its converged accuracy
// in fewer iterations than SGD (the paper grants SGD 1.5x more); all
// SR-based compressors (QSGD 8-bit, CocktailSGD, COMPSO) track the
// uncompressed KFAC curve; COMPSO switches from aggressive to conservative
// bounds at the LR drop without losing accuracy.

#include "bench/bench_util.hpp"

#include "src/core/adaptive_schedule.hpp"
#include "src/core/trainer.hpp"

namespace {

using namespace compso;

struct Workload {
  const char* name;
  core::TrainerConfig cfg;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    core::TrainerConfig c;
    c.noise = 1.1F; c.classes = 10; c.features = 20; c.hidden = 24;
    c.depth = 2; c.batch_per_rank = 8;
    w.push_back({"ResNet-50 proxy", c});
  }
  {
    core::TrainerConfig c;
    c.noise = 1.2F; c.classes = 12; c.features = 24; c.hidden = 24;
    c.depth = 2; c.batch_per_rank = 8; c.seed = 4321;
    w.push_back({"Mask R-CNN proxy", c});
  }
  {
    core::TrainerConfig c;
    c.noise = 1.0F; c.classes = 16; c.features = 24; c.hidden = 28;
    c.depth = 2; c.batch_per_rank = 8; c.seed = 9876;
    w.push_back({"GPT-neo proxy", c});
  }
  return w;
}

void print_curve(const char* label, const std::vector<double>& evals) {
  std::printf("  %-18s", label);
  for (double a : evals) std::printf(" %5.2f", a);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Figure 6: convergence under compression");
  constexpr std::size_t kIters = 100;   // KFAC budget
  constexpr std::size_t kLrDrop = 60;
  struct Row {
    std::string workload;
    double sgd_cocktail, kfac, cusz, qsgd, cocktail, compso;
    double sgd_iteration_ratio;
  };
  std::vector<Row> table;

  for (const auto& w : workloads()) {
    std::printf("\n--- %s (KFAC budget %zu iters, LR drop @%zu) ---\n",
                w.name, kIters, kLrDrop);
    core::ClusterTrainer trainer(w.cfg);
    const optim::StepLr kfac_lr(0.01, 0.1, {kLrDrop});
    const optim::StepLr sgd_lr(0.05, 0.1, {2 * kLrDrop});
    optim::DistKfacConfig kc;
    kc.damping = 0.1;
    kc.aggregation = 4;  // the paper fixes the aggregation factor to 4

    const auto cusz = compress::make_sz(4e-3);
    const auto qsgd = compress::make_qsgd(8);
    const auto cocktail = compress::make_cocktail(0.2, 8);
    // COMPSO uses the iteration-wise adaptive schedule (Alg. 1):
    // aggressive (filter+SR) before the LR drop, conservative after.
    const core::AdaptiveSchedule sched(kfac_lr, kIters);
    const auto compso_aggr = compress::make_compso(sched.params_at(0));
    const auto compso_cons = compress::make_compso(sched.params_at(kLrDrop));
    const auto compso_provider = [&](std::size_t t) {
      return sched.at(t).use_filter ? compso_aggr.get() : compso_cons.get();
    };

    const auto r_kfac = trainer.train_kfac(kIters, kfac_lr, nullptr, kc);
    // SGD gets a 2x budget; the "iterations to KFAC accuracy" ratio is the
    // paper's KFAC-vs-SGD iteration advantage.
    const auto r_sgd =
        trainer.train_sgd(2 * kIters, sgd_lr, cocktail.get());
    double ratio = 2.0;
    bool crossed = false;
    for (std::size_t i = 0; i < r_sgd.eval_curve.size(); ++i) {
      if (r_sgd.eval_curve[i] >= r_kfac.final_accuracy) {
        ratio = static_cast<double>((i + 1) * 2 * kIters) /
                static_cast<double>(r_sgd.eval_curve.size()) /
                static_cast<double>(kIters);
        crossed = true;
        break;
      }
    }
    const auto r_cusz = trainer.train_kfac(
        kIters, kfac_lr, [&](std::size_t) { return cusz.get(); }, kc);
    const auto r_qsgd = trainer.train_kfac(
        kIters, kfac_lr, [&](std::size_t) { return qsgd.get(); }, kc);
    const auto r_cocktail = trainer.train_kfac(
        kIters, kfac_lr, [&](std::size_t) { return cocktail.get(); }, kc);
    const auto r_compso =
        trainer.train_kfac(kIters, kfac_lr, compso_provider, kc);

    std::printf("validation accuracy over training (20 eval points):\n");
    print_curve("SGD+CocktailSGD", r_sgd.eval_curve);
    print_curve("KFAC (No Comp.)", r_kfac.eval_curve);
    print_curve("KFAC+cuSZ", r_cusz.eval_curve);
    print_curve("KFAC+QSGD", r_qsgd.eval_curve);
    print_curve("KFAC+CocktailSGD", r_cocktail.eval_curve);
    print_curve("KFAC+COMPSO", r_compso.eval_curve);
    std::printf("  SGD needs %s%.1fx the KFAC iterations to reach KFAC's "
                "final accuracy\n",
                crossed ? "" : ">", ratio);
    std::printf("  KFAC+COMPSO avg CR during training: %.1fx\n",
                r_compso.avg_compression_ratio);

    table.push_back({w.name, 100 * r_sgd.final_accuracy,
                     100 * r_kfac.final_accuracy, 100 * r_cusz.final_accuracy,
                     100 * r_qsgd.final_accuracy,
                     100 * r_cocktail.final_accuracy,
                     100 * r_compso.final_accuracy, ratio});
  }

  bench::print_header("Figure 6b: final validation accuracy (%)");
  std::printf("%-18s | %8s %8s %8s %8s %10s %8s | %9s\n", "workload",
              "SGD+Ckt", "KFAC", "cuSZ", "QSGD", "Cocktail", "COMPSO",
              "SGD iters");
  bench::print_rule();
  for (const auto& r : table) {
    std::printf("%-18s | %8.1f %8.1f %8.1f %8.1f %10.1f %8.1f | %8.1fx\n",
                r.workload.c_str(), r.sgd_cocktail, r.kfac, r.cusz, r.qsgd,
                r.cocktail, r.compso, r.sgd_iteration_ratio);
  }
  std::printf(
      "\nShape checks: SGD needs >1.5x the iterations KFAC needs (paper:\n"
      "1.2-1.5x); KFAC+COMPSO and KFAC+QSGD track KFAC (No Comp.) within\n"
      "noise; KFAC+CocktailSGD trails (random sampling without error\n"
      "feedback in the KFAC path).\n");
  return 0;
}
