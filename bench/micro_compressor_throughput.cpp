// Fused vs. unfused COMPSO compressor throughput (single thread, host).
//
// Measures the fused single-pass pipeline (make_compso: blockwise extrema
// + filter/quantize/pack in one streaming pass, scratch reuse) against
// the retained multi-pass reference (make_compso_reference) on synthetic
// KFAC-profile gradients, verifies the payloads are bit-identical, prints
// a table, and writes BENCH_compress.json (for the Fig. 8 host-throughput
// mapping — see EXPERIMENTS.md). Usage:
//
//   micro_compressor_throughput [output.json]   (default BENCH_compress.json)

#include "src/compress/compressor.hpp"
#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

using namespace compso;

namespace {

struct Row {
  std::size_t elems;
  perf::HostThroughput fused;
  perf::HostThroughput unfused;
  bool payloads_identical;
};

double gbps(double bytes_per_s) { return bytes_per_s / 1e9; }

/// Combined one-way pipeline throughput: bytes of gradient moved through
/// compress + decompress per second (harmonic combination, the number a
/// training step actually experiences on its critical path).
double roundtrip_bytes_per_s(const perf::HostThroughput& t) {
  if (t.compress_bytes_per_s <= 0.0 || t.decompress_bytes_per_s <= 0.0) {
    return 0.0;
  }
  return 1.0 /
         (1.0 / t.compress_bytes_per_s + 1.0 / t.decompress_bytes_per_s);
}

bool payloads_match(const compress::GradientCompressor& a,
                    const compress::GradientCompressor& b,
                    std::span<const float> values, std::uint64_t seed) {
  tensor::Rng ra(seed), rb(seed);
  return a.compress(values, ra) == b.compress(values, rb);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_compress.json";
  const auto fused = compress::make_compso({});
  const auto unfused = compress::make_compso_reference({});

  // 2^16 .. 2^20 floats = 256 KiB .. 4 MiB gradients; the paper's layer
  // sizes for BERT-large/GPT-neo live in this range, and the acceptance
  // criterion reads the >= 1 MiB rows.
  const std::vector<std::size_t> sizes = {1UL << 16, 1UL << 18, 1UL << 20};
  constexpr std::uint64_t kSeed = 20240806;
  std::vector<Row> rows;

  std::printf(
      "%10s | %21s | %21s | %9s | %s\n"
      "%10s | %10s %10s | %10s %10s | %9s |\n",
      "elems", "fused GB/s", "unfused GB/s", "roundtrip", "payloads",
      "", "comp", "decomp", "comp", "decomp", "speedup");
  std::printf(
      "-----------+-----------------------+-----------------------+-----------"
      "+---------\n");

  for (std::size_t n : sizes) {
    tensor::Rng grad_rng(kSeed ^ n);
    const auto grad =
        tensor::synthetic_gradient(n, tensor::GradientProfile::kfac(),
                                   grad_rng);
    Row row;
    row.elems = n;
    row.payloads_identical = payloads_match(*fused, *unfused, grad, kSeed);
    row.fused = perf::measure_host_throughput(*fused, grad, kSeed, 12);
    row.unfused = perf::measure_host_throughput(*unfused, grad, kSeed, 12);
    rows.push_back(row);

    const double speedup =
        roundtrip_bytes_per_s(row.fused) / roundtrip_bytes_per_s(row.unfused);
    std::printf("%10zu | %10.3f %10.3f | %10.3f %10.3f | %8.2fx | %s\n", n,
                gbps(row.fused.compress_bytes_per_s),
                gbps(row.fused.decompress_bytes_per_s),
                gbps(row.unfused.compress_bytes_per_s),
                gbps(row.unfused.decompress_bytes_per_s), speedup,
                row.payloads_identical ? "identical" : "MISMATCH");
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_compressor_throughput\",\n");
  std::fprintf(f, "  \"units\": \"GB/s of FP32 gradient input\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"elements\": %zu, \"input_bytes\": %zu,\n"
        "     \"fused\": {\"compress_gbps\": %.4f, \"decompress_gbps\": %.4f,"
        " \"roundtrip_gbps\": %.4f, \"ratio\": %.3f},\n"
        "     \"unfused\": {\"compress_gbps\": %.4f, \"decompress_gbps\":"
        " %.4f, \"roundtrip_gbps\": %.4f, \"ratio\": %.3f},\n"
        "     \"roundtrip_speedup\": %.3f, \"payloads_identical\": %s}%s\n",
        r.elems, r.fused.input_bytes, gbps(r.fused.compress_bytes_per_s),
        gbps(r.fused.decompress_bytes_per_s),
        gbps(roundtrip_bytes_per_s(r.fused)), r.fused.compression_ratio,
        gbps(r.unfused.compress_bytes_per_s),
        gbps(r.unfused.decompress_bytes_per_s),
        gbps(roundtrip_bytes_per_s(r.unfused)), r.unfused.compression_ratio,
        roundtrip_bytes_per_s(r.fused) / roundtrip_bytes_per_s(r.unfused),
        r.payloads_identical ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  // Self-check: payload identity must hold at every size (the fused
  // kernel is only a win if it is also exactly the same compressor).
  for (const Row& r : rows) {
    if (!r.payloads_identical) {
      std::fprintf(stderr, "FAIL: payload mismatch at %zu elements\n",
                   r.elems);
      return 1;
    }
  }
  return 0;
}
