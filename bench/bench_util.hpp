#pragma once
// Shared helpers for the figure/table reproduction binaries.
//
// Each bench regenerates one table or figure from the paper: it prints the
// same rows/series the paper reports, from this repository's simulators
// and trainers. Absolute numbers come from the substituted substrate (see
// DESIGN.md); the shapes are the reproduction target.

#include "src/core/perf_sim.hpp"
#include "src/nn/model_zoo.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace compso::bench {

/// Per-GPU batch used for the performance experiments, matching each
/// model's practical training regime (see EXPERIMENTS.md, calibration).
inline std::size_t batch_for(const std::string& model_name) {
  if (model_name == "ResNet-50") return 4;
  return 1;  // Mask R-CNN / BERT-large / GPT-neo-125M train at batch ~1/GPU
}

inline core::PerfConfig perf_config(const nn::ModelShape& shape,
                                    std::size_t nodes,
                                    const comm::NetworkModel& net) {
  core::PerfConfig cfg;
  cfg.model = shape;
  cfg.topo = comm::Topology{.nodes = nodes, .gpus_per_node = 4};
  cfg.net = net;
  cfg.batch_per_gpu = batch_for(shape.name);
  return cfg;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace compso::bench
