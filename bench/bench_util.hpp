#pragma once
// Shared helpers for the figure/table reproduction binaries.
//
// Each bench regenerates one table or figure from the paper: it prints the
// same rows/series the paper reports, from this repository's simulators
// and trainers. Absolute numbers come from the substituted substrate (see
// DESIGN.md); the shapes are the reproduction target.

#include "src/core/perf_sim.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/obs/clock.hpp"
#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace compso::bench {

/// Registry-backed wall timing, replacing the benches' ad-hoc chrono
/// plumbing (DESIGN.md §12): best-of-`reps` wall time of fn(), in
/// seconds. Every repetition also lands in `registry` — a nanosecond
/// histogram observation under `name` plus a "<name>.reps" counter — so
/// the metrics snapshot each bench embeds in its BENCH_*.json records
/// exactly what was timed and how often, in one uniform schema.
template <typename Fn>
double time_best(obs::MetricsRegistry& registry, std::string_view name,
                 int reps, Fn&& fn) {
  const obs::SteadyClock clock;
  const std::string hist_name(name);
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t t0 = clock.now_ns();
    fn();
    const std::uint64_t t1 = clock.now_ns();
    const std::uint64_t dt = t1 > t0 ? t1 - t0 : 0;
    registry.observe(hist_name, dt);
    registry.add(hist_name + ".reps", 1);
    best = std::min(best, static_cast<double>(dt) * 1e-9);
  }
  return best;
}

/// Single timed run of fn(), recorded like time_best; returns seconds.
template <typename Fn>
double time_once(obs::MetricsRegistry& registry, std::string_view name,
                 Fn&& fn) {
  return time_best(registry, name, 1, static_cast<Fn&&>(fn));
}

/// Per-GPU batch used for the performance experiments, matching each
/// model's practical training regime (see EXPERIMENTS.md, calibration).
inline std::size_t batch_for(const std::string& model_name) {
  if (model_name == "ResNet-50") return 4;
  return 1;  // Mask R-CNN / BERT-large / GPT-neo-125M train at batch ~1/GPU
}

inline core::PerfConfig perf_config(const nn::ModelShape& shape,
                                    std::size_t nodes,
                                    const comm::NetworkModel& net) {
  core::PerfConfig cfg;
  cfg.model = shape;
  cfg.topo = comm::Topology{.nodes = nodes, .gpus_per_node = 4};
  cfg.net = net;
  cfg.batch_per_gpu = batch_for(shape.name);
  return cfg;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace compso::bench
