// Figure 7 — Communication speedup (codec overhead excluded, like the
// paper's metric) of cuSZ / QSGD / CocktailSGD / COMPSO-compressed KFAC
// gradients over the no-compression baseline, for the four models across
// GPU counts on both platforms.
//
// Paper result: COMPSO reaches up to ~14.5x / ~11.2x on Platforms 1 / 2
// (avg ~11x / ~7x); cuSZ and QSGD are limited by their accuracy-preserving
// settings (low CR); the slower network (Platform 1) benefits more; the
// speedup grows with GPU count.

#include "bench/bench_util.hpp"

#include "src/compress/compressor.hpp"

int main() {
  using namespace compso;
  bench::print_header("Figure 7: communication speedup vs no compression");

  const auto cusz = compress::make_sz(4e-3);
  const auto qsgd = compress::make_qsgd(8);
  const auto cocktail = compress::make_cocktail(0.2, 8);
  const auto compso = compress::make_compso({});
  struct Method {
    const char* name;
    const compress::GradientCompressor* c;
  };
  const Method methods[] = {{"cuSZ", cusz.get()},
                            {"QSGD", qsgd.get()},
                            {"CocktailSGD", cocktail.get()},
                            {"COMPSO", compso.get()}};

  for (int plat = 1; plat <= 2; ++plat) {
    const auto net = plat == 1 ? comm::NetworkModel::platform1()
                               : comm::NetworkModel::platform2();
    std::printf("\n--- Platform %d (%s) ---\n", plat, net.name().c_str());
    std::printf("%-14s %5s | %8s %8s %12s %8s\n", "model", "GPUs", "cuSZ",
                "QSGD", "CocktailSGD", "COMPSO");
    bench::print_rule();
    double compso_max = 0.0, compso_sum = 0.0;
    int n = 0;
    for (const auto& shape : nn::paper_model_shapes()) {
      for (std::size_t gpus : {8, 16, 32, 64}) {
        const core::PerfSimulator sim(
            bench::perf_config(shape, (gpus + 3) / 4, net));
        double speedups[4];
        for (int m = 0; m < 4; ++m) {
          // COMPSO aggregates layers (factor 4, the paper's default);
          // baselines compress per layer as published.
          const std::size_t agg = m == 3 ? 4 : 1;
          speedups[m] = sim.with_compressor(*methods[m].c, agg).comm_speedup;
        }
        std::printf("%-14s %5zu | %8.1f %8.1f %12.1f %8.1f\n",
                    shape.name.c_str(), gpus, speedups[0], speedups[1],
                    speedups[2], speedups[3]);
        compso_max = std::max(compso_max, speedups[3]);
        compso_sum += speedups[3];
        ++n;
      }
    }
    std::printf("COMPSO: max %.1fx, average %.1fx on this platform\n",
                compso_max, compso_sum / n);
  }
  std::printf(
      "\nShape checks: COMPSO > baselines everywhere; Platform 1 (slower\n"
      "network) gains more than Platform 2; speedup grows with GPU count.\n");
  return 0;
}
