// End-to-end DistKfac training throughput (steps/s) on the host substrate.
//
// Runs the FaultTolerantTrainer (KFAC + COMPSO compression, the paper's
// full per-step pipeline: forward/backward gemms, factor syrks, factor
// exchange, eigendecomposition refresh, preconditioning, compressed
// gather) with the serial engine and with the shared thread pool (engine
// workers + math-kernel row blocks, DESIGN.md §11), verifies the two
// parameter trajectories are bit-identical, prints steps/s, and writes
// BENCH_train.json — the host-side counterpart of the paper's §5.4
// training-hours table (see EXPERIMENTS.md).
//
// With --trace[=path] it additionally runs the observability smoke gate
// (DESIGN.md §12): a serial run with metrics + tracer attached, whose
// trace.json export is schema-validated in-process, whose parameter
// trajectory must stay bit-identical to the uninstrumented run, and whose
// wall time must stay within the overhead budget of the obs-off baseline
// (min-of-3, interleaved; budget relaxed in sanitized builds). Usage:
//
// The parallel run needs a real pool to say anything about overlap: the
// engine thread count defaults to the host's concurrency but is floored
// at 2, and can be pinned with --threads=N. The JSON records both the
// requested and effective counts plus the host concurrency, and the
// speedup gate (>= 1.5x) is only enforced on unsanitized hosts with at
// least 4 cores — a 1-core host timesharing a 2-thread pool measures
// scheduler noise, not overlap, and says so on stderr. Usage:
//
//   micro_train_throughput [--smoke] [--trace[=trace.json]] [--threads=N]
//                          [output.json]

#include "bench/bench_util.hpp"
#include "src/core/ft_trainer.hpp"
#include "src/obs/json.hpp"
#include "src/obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace compso;

namespace {

// Sanitizer instrumentation inflates the relative cost of the obs layer's
// atomics and event bookkeeping (every access pays shadow checks); the 5%
// overhead budget only has teeth in an uninstrumented build.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitizedBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitizedBuild = true;
#else
constexpr bool kSanitizedBuild = false;
#endif
#else
constexpr bool kSanitizedBuild = false;
#endif
constexpr double kMaxObsOverhead = kSanitizedBuild ? 2.0 : 1.05;

/// Overlap gate (ISSUE 6): with a real multi-thread pool the scheduler's
/// compute/communication overlap must buy at least this much end-to-end
/// speedup. Only meaningful when the host can actually run the pool
/// concurrently, so the gate is enforced on >= 4-core unsanitized hosts.
constexpr double kMinParallelSpeedup = 1.5;
constexpr unsigned kMinGateCores = 4;

/// All wall timings flow through bench::time_* into this registry; the
/// snapshot is embedded in the output JSON under "metrics".
obs::MetricsRegistry g_metrics;

core::FtTrainerConfig bench_config(bool smoke, std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  // Batch/hidden sized so the forward/backward gemms and the KFAC factor
  // work land in the blocked engine (and, with a pool, its parallel
  // row-block path) rather than the small-op reference fallback.
  cfg.base = {.world = 2,
              .batch_per_rank = 128,
              .features = 64,
              .classes = 8,
              .hidden = smoke ? 128UL : 192UL,
              .depth = 2,
              .noise = 0.5F,
              .seed = 20260806};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 4;
  cfg.kfac.aggregation = 2;
  cfg.base_lr = 0.02;
  cfg.total_iterations = 64;
  cfg.engine_threads = engine_threads;
  return cfg;
}

struct Run {
  double steps_per_s = 0.0;
  std::vector<float> params;
};

Run run_trainer(bool smoke, std::size_t engine_threads, std::size_t steps,
                std::string_view timer_name) {
  core::FaultTolerantTrainer trainer(bench_config(smoke, engine_threads));
  trainer.run(1);  // warmup: allocations, factor init, first eigh.
  const double secs =
      bench::time_once(g_metrics, timer_name, [&] { trainer.run(steps); });
  Run r;
  r.steps_per_s = static_cast<double>(steps) / secs;
  r.params = trainer.parameters();
  return r;
}

/// Faulted-throughput leg (DESIGN.md §14): the same serial pipeline under
/// a scripted membership storm — a heartbeat silence, a deadline-blowing
/// straggler, and (when the timed window is long enough) a full
/// crash -> evict -> recover -> rejoin cycle with its checkpoint-framed
/// re-sync. recovery_overhead = clean steps/s / faulted steps/s in wall
/// time; the deadline waits themselves land on the *simulated* clocks, so
/// the wall-time ratio isolates the detection + resync machinery.
Run run_faulted(bool smoke, std::size_t steps) {
  core::FaultTolerantTrainer trainer(bench_config(smoke, 0));
  auto plan = comm::FaultPlan{}.silence(1, 1, 1).straggler(2, 1, 10.0);
  if (steps >= 12) plan.crash(3, 1).recover(9, 1);
  trainer.set_fault_plan(plan, 40);
  trainer.run(1);  // warmup, same as the clean legs.
  const double secs = bench::time_once(g_metrics, "bench.train.faulted",
                                       [&] { trainer.run(steps); });
  Run r;
  r.steps_per_s = static_cast<double>(steps) / secs;
  r.params = trainer.parameters();
  return r;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

struct ObsGate {
  bool params_identical = false;
  bool trace_valid = false;
  bool metrics_valid = false;
  double overhead = 0.0;  ///< obs-on wall time / obs-off wall time.
  std::size_t trace_events = 0;
  std::string error;
};

/// Observability smoke gate: obs-off vs obs-on serial runs, interleaved
/// min-of-3 timing, bit-exact parameter check, and in-process schema
/// validation of the exported trace + metrics documents.
ObsGate run_obs_gate(bool smoke, std::size_t steps,
                     const std::string& trace_path) {
  core::FaultTolerantTrainer off(bench_config(smoke, 0));
  core::FaultTolerantTrainer on(bench_config(smoke, 0));

  obs::MetricsRegistry registry;
  obs::Tracer tracer;  // built-in steady clock: real wall timestamps.
  on.set_obs({.metrics = &registry, .tracer = &tracer});

  off.run(1);
  on.run(1);
  tracer.reset();  // trace covers the timed steps only.

  double best_off = 1e100;
  double best_on = 1e100;
  for (int r = 0; r < 3; ++r) {  // interleave so load noise hits both sides.
    best_off = std::min(best_off, bench::time_once(g_metrics,
                                                   "bench.train.obs_off",
                                                   [&] { off.run(steps); }));
    best_on = std::min(best_on, bench::time_once(g_metrics,
                                                 "bench.train.obs_on",
                                                 [&] { on.run(steps); }));
  }

  ObsGate gate;
  gate.overhead = best_on / best_off;
  gate.params_identical = bitwise_equal(off.parameters(), on.parameters());

  const std::string trace = tracer.trace_json();
  gate.trace_events = tracer.event_count();
  if (const auto err = obs::validate_trace(trace)) {
    gate.error = *err;
  } else {
    gate.trace_valid = true;
  }
  gate.metrics_valid = obs::parse_json(registry.to_json()).has_value();
  if (!gate.metrics_valid && gate.error.empty()) {
    gate.error = "metrics snapshot is not valid JSON";
  }

  std::FILE* tf = std::fopen(trace_path.c_str(), "w");
  if (tf == nullptr) {
    gate.trace_valid = false;
    gate.error = "cannot open " + trace_path;
    return gate;
  }
  std::fwrite(trace.data(), 1, trace.size(), tf);
  std::fclose(tf);
  return gate;
}

}  // namespace

int usage(const char* argv0, const char* bad) {
  std::fprintf(stderr, "unknown argument: %s\n", bad);
  std::fprintf(stderr,
               "usage: %s [--smoke] [--trace[=trace.json]] [--threads=N] "
               "[output.json]\n",
               argv0);
  return 1;
}

int main(int argc, char** argv) {
  bool smoke = false;
  bool with_obs_gate = false;
  std::size_t requested_threads = 0;  // 0 = host default.
  std::string trace_path = "trace.json";
  std::string out_path = "BENCH_train.json";
  bool have_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    // Exact-match flags only: the old prefix match quietly accepted
    // (and ignored the tail of) strings like --traceXYZ, turning a typo
    // into a silently different benchmark configuration.
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--trace") {
      with_obs_gate = true;
    } else if (arg.rfind("--trace=", 0) == 0 && arg.size() > 8) {
      with_obs_gate = true;
      trace_path = arg.substr(8);
    } else if (arg.rfind("--threads=", 0) == 0 && arg.size() > 10) {
      const std::string_view digits = arg.substr(10);
      std::size_t value = 0;
      bool ok = true;
      for (const char c : digits) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        value = value * 10 + static_cast<std::size_t>(c - '0');
      }
      if (!ok || value == 0) return usage(argv[0], argv[i]);
      requested_threads = value;
    } else if (!arg.empty() && arg[0] != '-' && !have_out) {
      out_path = arg;
      have_out = true;
    } else {
      return usage(argv[0], argv[i]);
    }
  }

  const std::size_t steps = smoke ? 4 : 16;
  const unsigned host_concurrency = std::thread::hardware_concurrency();
  if (requested_threads == 0) {
    requested_threads = std::max(1U, host_concurrency);
  }
  // The parallel leg needs an actual pool — a 1-thread "pool" only
  // measures queueing overhead and reports a meaningless speedup.
  const std::size_t threads = std::max<std::size_t>(2, requested_threads);
  const bool gate_enforced =
      !kSanitizedBuild && host_concurrency >= kMinGateCores;
  if (host_concurrency <= 1) {
    std::fprintf(stderr,
                 "WARNING: host reports %u hardware thread(s); the %zu-thread "
                 "pool timeshares one core, so parallel_speedup measures "
                 "scheduler noise, not overlap. Speedup gate skipped.\n",
                 host_concurrency, threads);
  }

  const Run serial = run_trainer(smoke, 0, steps, "bench.train.serial");
  const Run parallel =
      run_trainer(smoke, threads, steps, "bench.train.parallel");
  const bool identical = bitwise_equal(serial.params, parallel.params);
  const Run faulted = run_faulted(smoke, steps);
  const double recovery_overhead = serial.steps_per_s / faulted.steps_per_s;

  const auto cfg = bench_config(smoke, 0);
  std::printf(
      "DistKfac end-to-end (world=%zu, batch/rank=%zu, hidden=%zu, "
      "depth=%zu, %zu timed steps)\n",
      cfg.base.world, cfg.base.batch_per_rank, cfg.base.hidden,
      cfg.base.depth, steps);
  std::printf("  serial engine      : %7.3f steps/s\n", serial.steps_per_s);
  std::printf("  %zu-thread shared pool: %7.3f steps/s  (%.2fx, gate %s)\n",
              threads, parallel.steps_per_s,
              parallel.steps_per_s / serial.steps_per_s,
              gate_enforced ? "enforced" : "skipped");
  std::printf("  parameters: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  std::printf("  faulted (membership storm): %7.3f steps/s  "
              "(recovery overhead %.3fx)\n",
              faulted.steps_per_s, recovery_overhead);

  ObsGate gate;
  if (with_obs_gate) {
    gate = run_obs_gate(smoke, steps, trace_path);
    std::printf("  obs gate: overhead %.3fx (budget %.2fx), %zu trace "
                "events, trace %s, params %s\n",
                gate.overhead, kMaxObsOverhead, gate.trace_events,
                gate.trace_valid ? "valid" : "INVALID",
                gate.params_identical ? "bit-identical" : "MISMATCH");
    if (gate.trace_valid) std::printf("  wrote %s\n", trace_path.c_str());
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_train_throughput\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"world\": %zu, \"batch_per_rank\": %zu,"
               " \"features\": %zu, \"classes\": %zu, \"hidden\": %zu,"
               " \"depth\": %zu, \"timed_steps\": %zu},\n",
               cfg.base.world, cfg.base.batch_per_rank, cfg.base.features,
               cfg.base.classes, cfg.base.hidden, cfg.base.depth, steps);
  std::fprintf(f, "  \"serial_steps_per_s\": %.4f,\n", serial.steps_per_s);
  std::fprintf(f, "  \"host_concurrency\": %u,\n", host_concurrency);
  std::fprintf(f, "  \"requested_threads\": %zu,\n", requested_threads);
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"parallel_steps_per_s\": %.4f,\n",
               parallel.steps_per_s);
  std::fprintf(f, "  \"parallel_speedup\": %.4f,\n",
               parallel.steps_per_s / serial.steps_per_s);
  std::fprintf(f,
               "  \"recovery_overhead\": {\"clean_steps_per_s\": %.4f,"
               " \"faulted_steps_per_s\": %.4f, \"ratio\": %.4f},\n",
               serial.steps_per_s, faulted.steps_per_s, recovery_overhead);
  std::fprintf(f, "  \"speedup_gate\": %.2f,\n", kMinParallelSpeedup);
  std::fprintf(f, "  \"speedup_gate_enforced\": %s,\n",
               gate_enforced ? "true" : "false");
  if (with_obs_gate) {
    std::fprintf(f,
                 "  \"obs\": {\"overhead\": %.4f, \"overhead_budget\": %.2f,"
                 " \"trace_events\": %zu, \"trace_valid\": %s,"
                 " \"params_bit_identical\": %s},\n",
                 gate.overhead, kMaxObsOverhead, gate.trace_events,
                 gate.trace_valid ? "true" : "false",
                 gate.params_identical ? "true" : "false");
  }
  std::fprintf(f, "  \"parameters_bit_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"metrics\": %s\n}\n", g_metrics.to_json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  int failures = 0;
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel trajectory diverged from serial transcript\n");
    ++failures;
  }
  if (gate_enforced &&
      !(parallel.steps_per_s / serial.steps_per_s >= kMinParallelSpeedup)) {
    std::fprintf(stderr,
                 "FAIL: parallel_speedup %.3fx below %.2fx gate "
                 "(host_concurrency=%u, pool_threads=%zu)\n",
                 parallel.steps_per_s / serial.steps_per_s,
                 kMinParallelSpeedup, host_concurrency, threads);
    ++failures;
  }
  if (with_obs_gate) {
    if (!gate.params_identical) {
      std::fprintf(stderr,
                   "FAIL: attaching observability changed the parameter "
                   "trajectory\n");
      ++failures;
    }
    if (!gate.trace_valid || !gate.metrics_valid) {
      std::fprintf(stderr, "FAIL: exported documents invalid: %s\n",
                   gate.error.c_str());
      ++failures;
    }
    if (!(gate.overhead <= kMaxObsOverhead)) {
      std::fprintf(stderr,
                   "FAIL: obs overhead %.3fx exceeds %.2fx budget\n",
                   gate.overhead, kMaxObsOverhead);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
