// End-to-end DistKfac training throughput (steps/s) on the host substrate.
//
// Runs the FaultTolerantTrainer (KFAC + COMPSO compression, the paper's
// full per-step pipeline: forward/backward gemms, factor syrks, factor
// exchange, eigendecomposition refresh, preconditioning, compressed
// gather) with the serial engine and with the shared thread pool (engine
// workers + math-kernel row blocks, DESIGN.md §11), verifies the two
// parameter trajectories are bit-identical, prints steps/s, and writes
// BENCH_train.json — the host-side counterpart of the paper's §5.4
// training-hours table (see EXPERIMENTS.md). Usage:
//
//   micro_train_throughput [--smoke] [output.json]  (default BENCH_train.json)

#include "src/core/ft_trainer.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace compso;

namespace {

core::FtTrainerConfig bench_config(bool smoke, std::size_t engine_threads) {
  core::FtTrainerConfig cfg;
  // Batch/hidden sized so the forward/backward gemms and the KFAC factor
  // work land in the blocked engine (and, with a pool, its parallel
  // row-block path) rather than the small-op reference fallback.
  cfg.base = {.world = 2,
              .batch_per_rank = 128,
              .features = 64,
              .classes = 8,
              .hidden = smoke ? 128UL : 192UL,
              .depth = 2,
              .noise = 0.5F,
              .seed = 20260806};
  cfg.optimizer = core::OptimizerKind::kKfac;
  cfg.kfac.eigen_refresh_every = 4;
  cfg.kfac.aggregation = 2;
  cfg.base_lr = 0.02;
  cfg.total_iterations = 64;
  cfg.engine_threads = engine_threads;
  return cfg;
}

struct Run {
  double steps_per_s = 0.0;
  std::vector<float> params;
};

Run run_trainer(bool smoke, std::size_t engine_threads, std::size_t steps) {
  core::FaultTolerantTrainer trainer(bench_config(smoke, engine_threads));
  trainer.run(1);  // warmup: allocations, factor init, first eigh.
  const auto t0 = std::chrono::steady_clock::now();
  trainer.run(steps);
  const auto t1 = std::chrono::steady_clock::now();
  Run r;
  r.steps_per_s =
      static_cast<double>(steps) /
      std::chrono::duration<double>(t1 - t0).count();
  r.params = trainer.parameters();
  return r;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_train.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::size_t steps = smoke ? 4 : 16;
  const std::size_t threads =
      std::max(1U, std::thread::hardware_concurrency());

  const Run serial = run_trainer(smoke, 0, steps);
  const Run parallel = run_trainer(smoke, threads, steps);
  const bool identical = bitwise_equal(serial.params, parallel.params);

  const auto cfg = bench_config(smoke, 0);
  std::printf(
      "DistKfac end-to-end (world=%zu, batch/rank=%zu, hidden=%zu, "
      "depth=%zu, %zu timed steps)\n",
      cfg.base.world, cfg.base.batch_per_rank, cfg.base.hidden,
      cfg.base.depth, steps);
  std::printf("  serial engine      : %7.3f steps/s\n", serial.steps_per_s);
  std::printf("  %zu-thread shared pool: %7.3f steps/s  (%.2fx)\n", threads,
              parallel.steps_per_s,
              parallel.steps_per_s / serial.steps_per_s);
  std::printf("  parameters: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_train_throughput\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"config\": {\"world\": %zu, \"batch_per_rank\": %zu,"
               " \"features\": %zu, \"classes\": %zu, \"hidden\": %zu,"
               " \"depth\": %zu, \"timed_steps\": %zu},\n",
               cfg.base.world, cfg.base.batch_per_rank, cfg.base.features,
               cfg.base.classes, cfg.base.hidden, cfg.base.depth, steps);
  std::fprintf(f, "  \"serial_steps_per_s\": %.4f,\n", serial.steps_per_s);
  std::fprintf(f, "  \"pool_threads\": %zu,\n", threads);
  std::fprintf(f, "  \"parallel_steps_per_s\": %.4f,\n",
               parallel.steps_per_s);
  std::fprintf(f, "  \"parallel_speedup\": %.4f,\n",
               parallel.steps_per_s / serial.steps_per_s);
  std::fprintf(f, "  \"parameters_bit_identical\": %s\n}\n",
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel trajectory diverged from serial transcript\n");
    return 1;
  }
  return 0;
}
