// Ablation — iteration-wise adaptive error bounds (DESIGN.md §5.2).
//
// Compares three COMPSO policies over a full training run:
//   fixed-aggressive  : filter + SR at loose bounds for every iteration,
//   fixed-conservative: SR-only at tight bounds for every iteration,
//   adaptive (Alg. 1) : aggressive before the LR drop, conservative after.
//
// Expected shape: adaptive matches fixed-conservative accuracy while
// achieving (almost) fixed-aggressive compression during the early phase —
// the Ok-topk contrast the paper draws in §4.3.

#include "bench/bench_util.hpp"

#include "src/core/adaptive_schedule.hpp"
#include "src/core/trainer.hpp"

int main() {
  using namespace compso;
  bench::print_header("Ablation: iteration-wise adaptive compression");

  core::TrainerConfig cfg;
  cfg.noise = 1.2F;
  cfg.classes = 12;
  cfg.features = 24;
  cfg.hidden = 24;
  cfg.depth = 2;
  cfg.batch_per_rank = 8;
  const std::size_t iters = 120;
  const std::size_t drop = 70;
  const optim::StepLr lr(0.01, 0.1, {drop});
  optim::DistKfacConfig kc;
  kc.damping = 0.1;
  kc.aggregation = 4;  // the paper fixes the aggregation factor to 4

  const core::AdaptiveSchedule sched(lr, iters);
  const auto aggressive = compress::make_compso(sched.params_at(0));
  const auto conservative = compress::make_compso(sched.params_at(drop));

  struct Policy {
    const char* name;
    core::CompressorProvider provider;
  };
  const Policy policies[] = {
      {"fixed-aggressive",
       [&](std::size_t) { return aggressive.get(); }},
      {"fixed-conservative",
       [&](std::size_t) { return conservative.get(); }},
      {"adaptive (Alg. 1)",
       [&](std::size_t t) {
         return sched.at(t).use_filter ? aggressive.get()
                                       : conservative.get();
       }},
  };

  const int seeds = 3;
  std::printf("%-20s | %9s %8s\n", "policy", "accuracy", "avg CR");
  bench::print_rule();
  double base_acc = 0.0;
  for (int s = 0; s < seeds; ++s) {
    auto c = cfg;
    c.seed = 1234 + static_cast<std::uint64_t>(s);
    core::ClusterTrainer trainer(c);
    base_acc += trainer.train_kfac(iters, lr, nullptr, kc).final_accuracy;
  }
  std::printf("%-20s | %8.1f%% %8s\n", "no compression",
              100.0 * base_acc / seeds, "1.0");
  for (const auto& p : policies) {
    double acc = 0.0, cr = 0.0;
    for (int s = 0; s < seeds; ++s) {
      auto c = cfg;
      c.seed = 1234 + static_cast<std::uint64_t>(s);
      core::ClusterTrainer trainer(c);
      const auto r = trainer.train_kfac(iters, lr, p.provider, kc);
      acc += r.final_accuracy;
      cr += r.avg_compression_ratio;
    }
    std::printf("%-20s | %8.1f%% %8.1f\n", p.name, 100.0 * acc / seeds,
                cr / seeds);
  }
  std::printf(
      "\nShape checks: adaptive accuracy ~ conservative ~ no-compression;\n"
      "adaptive CR sits between the two fixed policies, close to\n"
      "aggressive (most iterations precede the LR drop).\n");
  return 0;
}
