// Ablation — GPU kernel fusion and reduction strategy (DESIGN.md §5.3,
// paper §4.5).
//
// Part A: the same COMPSO pipeline under the three dispatch strategies
// (fused kernel / separate kernels / PyTorch-style framework ops).
// Part B: the extrema (range) computation under the three reduction
// strategies (global atomics / block shared-memory / block + warp
// shuffle), plus the padding/imbalance stats of the layer-block map.

#include "bench/bench_util.hpp"

#include "src/compress/compressor.hpp"
#include "src/gpusim/layer_mapping.hpp"
#include "src/gpusim/reduction.hpp"

int main() {
  using namespace compso;
  const auto dev = gpusim::DeviceModel::a100();
  bench::print_header("Ablation A: pipeline dispatch (COMPSO lossy+encode)");
  const auto compso = compress::make_compso({});
  const auto base = compso->gpu_profile();
  std::printf("%10s | %10s %14s %14s\n", "size(MB)", "fused", "separate",
              "framework");
  bench::print_rule();
  for (std::size_t mb : {1, 8, 64}) {
    const std::size_t in = mb << 20;
    const std::size_t out = in / 22;
    double t[3];
    const gpusim::Dispatch modes[] = {gpusim::Dispatch::kFusedKernel,
                                      gpusim::Dispatch::kSeparateKernels,
                                      gpusim::Dispatch::kFrameworkOps};
    for (int i = 0; i < 3; ++i) {
      const gpusim::PipelineSpec spec{
          .input_bytes = in,
          .output_bytes = out,
          .stages = base.stages,
          .flops_per_byte = base.flops_per_byte,
          .bandwidth_efficiency = base.bandwidth_efficiency,
          .framework_ops_per_stage = 4,
          .memory_passes = base.memory_passes};
      t[i] = gpusim::pipeline_throughput(dev, spec, modes[i]);
    }
    std::printf("%10zu | %8.1f G %12.1f G %12.1f G\n", mb, t[0] / 1e9,
                t[1] / 1e9, t[2] / 1e9);
  }

  bench::print_header("Ablation B: extrema reduction strategy");
  std::printf("%12s | %14s %14s %16s\n", "elements", "global-atomic",
              "block-shared", "block+shuffle");
  bench::print_rule();
  for (std::size_t n : {1UL << 20, 1UL << 24, 1UL << 27}) {
    std::printf("%12zu | %11.3f ms %11.3f ms %13.3f ms\n", n,
                1e3 * gpusim::reduction_time(
                          dev, n, gpusim::ReductionStrategy::kGlobalAtomic),
                1e3 * gpusim::reduction_time(
                          dev, n, gpusim::ReductionStrategy::kBlockShared),
                1e3 * gpusim::reduction_time(
                          dev, n,
                          gpusim::ReductionStrategy::kBlockWarpShuffle));
  }

  bench::print_header("Ablation B2: layer-block map (per-layer padding)");
  const auto r50 = nn::resnet50_shape();
  std::vector<std::size_t> sizes;
  for (const auto& l : r50.layers) sizes.push_back(l.kfac_elements());
  for (std::size_t elems_per_block : {1024, 4096, 16384}) {
    const gpusim::LayerBlockMap map(sizes, elems_per_block);
    std::printf("block %6zu elems: %5zu blocks, padding %5.2f%%, "
                "imbalance %.2f\n",
                elems_per_block, map.block_count(),
                100.0 * map.padding_overhead(), map.imbalance());
  }
  std::printf(
      "\nShape checks: fused > separate > framework at every size (the\n"
      "gap shrinks as launch overhead amortizes); shuffle < shared <<\n"
      "atomic for the range computation; padding overhead grows with block\n"
      "size (the §4.5 trade-off behind the precomputed layer-block map).\n");
  return 0;
}
