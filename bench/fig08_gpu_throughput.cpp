// Figure 8 — GPU (de)compression throughput vs data size on A100 for:
//   SZ (CUDA / cuSZ), QSGD (CUDA), QSGD (PyTorch), CocktailSGD (PyTorch),
//   COMPSO (CUDA).
//
// Paper result: fused CUDA pipelines (QSGD, COMPSO) sit on top; cuSZ below
// them (prediction dependency chain + separate Huffman kernels); the
// PyTorch-dispatched variants are far slower, and COMPSO is ~1.7x faster
// than CocktailSGD.

#include "bench/bench_util.hpp"

#include "src/compress/compressor.hpp"

int main() {
  using namespace compso;
  bench::print_header("Figure 8: GPU compression throughput vs data size");
  const auto dev = gpusim::DeviceModel::a100();

  const auto compso = compress::make_compso({});
  const auto qsgd = compress::make_qsgd(8);
  const auto sz = compress::make_sz(4e-3);
  const auto cocktail = compress::make_cocktail(0.2, 8);

  // QSGD (PyTorch): same algorithm dispatched through an eager framework.
  auto pytorch_throughput = [&](const compress::GradientCompressor& c,
                                std::size_t in, std::size_t out) {
    auto p = c.gpu_profile();
    p.dispatch = gpusim::Dispatch::kFrameworkOps;
    p.framework_ops_per_stage = 5;
    const gpusim::PipelineSpec spec{.input_bytes = in,
                                    .output_bytes = out,
                                    .stages = p.stages,
                                    .flops_per_byte = p.flops_per_byte,
                                    .bandwidth_efficiency =
                                        p.bandwidth_efficiency,
                                    .framework_ops_per_stage =
                                        p.framework_ops_per_stage};
    return gpusim::pipeline_throughput(dev, spec, p.dispatch);
  };

  std::printf("%10s | %12s %12s %14s %18s %14s\n", "size(MB)", "SZ(CUDA)",
              "QSGD(CUDA)", "QSGD(PyTorch)", "CocktailSGD(PyT)",
              "COMPSO(CUDA)");
  std::printf("%10s | %12s %12s %14s %18s %14s\n", "", "GB/s", "GB/s", "GB/s",
              "GB/s", "GB/s");
  bench::print_rule();
  double compso_t = 0.0, cocktail_t = 0.0;
  for (std::size_t mb : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const std::size_t in = mb << 20;
    const double t_sz = sz->modeled_throughput(dev, in, in / 6);
    const double t_qsgd = qsgd->modeled_throughput(dev, in, in / 5);
    const double t_qsgd_pt = pytorch_throughput(*qsgd, in, in / 5);
    const double t_cocktail = cocktail->modeled_throughput(dev, in, in / 20);
    const double t_compso = compso->modeled_throughput(dev, in, in / 22);
    std::printf("%10zu | %12.1f %12.1f %14.1f %18.1f %14.1f\n", mb,
                t_sz / 1e9, t_qsgd / 1e9, t_qsgd_pt / 1e9, t_cocktail / 1e9,
                t_compso / 1e9);
    compso_t = t_compso;
    cocktail_t = t_cocktail;
  }
  std::printf(
      "\nShape checks: QSGD(CUDA) > COMPSO(CUDA) > SZ(CUDA) >> PyTorch\n"
      "variants; COMPSO/CocktailSGD speedup at 128 MB: %.1fx (paper: ~1.7x).\n",
      compso_t / cocktail_t);
  return 0;
}
