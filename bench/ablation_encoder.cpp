// Ablation — encoder choice sensitivity (DESIGN.md §5.5).
//
// Runs the end-to-end simulator with COMPSO configured to each of the
// eight encoders, on ResNet-50 / 64 GPUs / Platform 1, and compares the
// realized end-to-end speedup against the perf model's selection.

#include "bench/bench_util.hpp"

#include "src/perf/perf_model.hpp"
#include "src/tensor/synthetic.hpp"

#include <algorithm>

int main() {
  using namespace compso;
  bench::print_header("Ablation: COMPSO encoder choice (ResNet-50, 64 GPUs)");
  const auto cfg = bench::perf_config(nn::resnet50_shape(), 16,
                                      comm::NetworkModel::platform1());
  const core::PerfSimulator sim(cfg);

  std::printf("%-9s | %8s %12s %10s\n", "encoder", "CR", "comm-speedup",
              "e2e");
  bench::print_rule();
  double best_e2e = 0.0;
  codec::CodecKind best{};
  for (auto kind : codec::kAllCodecKinds) {
    compress::CompsoParams p;
    p.encoder = kind;
    const auto compso = compress::make_compso(p);
    const auto r = sim.with_compressor(*compso, 4);
    std::printf("%-9s | %8.1f %12.1f %10.2f\n", codec::to_string(kind),
                r.compression_ratio, r.comm_speedup, r.end_to_end_speedup);
    if (r.end_to_end_speedup > best_e2e) {
      best_e2e = r.end_to_end_speedup;
      best = kind;
    }
  }
  std::printf("\nbest realized encoder: %s (e2e %.2fx)\n",
              codec::to_string(best), best_e2e);

  // What the §4.4 perf model picks from a lossy-stage sample.
  const comm::Communicator comm(cfg.topo, cfg.net);
  const perf::CommLookupTable table(comm);
  tensor::Rng rng(77);
  const auto grad =
      tensor::synthetic_gradient(1 << 17, tensor::GradientProfile::kfac(),
                                 rng);
  std::vector<std::uint8_t> stream(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    stream[i] = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(grad[i] / 1e-3F) + 128, 0, 255));
  }
  const auto scores = perf::score_encoders(stream, cfg.dev, table);
  std::printf("perf-model selection:  %s\n",
              codec::to_string(scores.front().kind));
  std::printf(
      "\nShape checks: ANS is at (or within noise of) the realized optimum\n"
      "and is what the perf model selects (Table 2's conclusion).\n");
  return 0;
}
