// Table 1 — SQuAD-style fine-tuning quality (F1 / exact match) of the
// span-extraction proxy under each compression method, mirroring the
// BERT-large SQuAD v1.1 evaluation.
//
// Paper result (shape): SR-based methods (QSGD 8-bit, CocktailSGD, COMPSO)
// and the no-compression baseline cluster together; cuSZ (RN, 4e-3) trails
// by about a point; SGD+CocktailSGD matches with more iterations.

#include "bench/bench_util.hpp"

#include "src/core/adaptive_schedule.hpp"
#include "src/core/trainer.hpp"

int main() {
  using namespace compso;
  bench::print_header("Table 1: span-extraction fine-tuning (SQuAD proxy)");

  core::SpanTrainerConfig cfg;
  cfg.positions = 12;
  cfg.features = 24;
  cfg.hidden = 32;
  cfg.depth = 2;
  cfg.noise = 0.85F;
  const std::size_t kfac_iters = 160;   // "1000 iterations, 4 stages"
  const std::size_t sgd_iters = 208;    // LAMB uses ~1.3x more (paper)
  core::SpanTrainer trainer(cfg);
  const optim::StepLr kfac_lr(0.02, 0.1, {120});
  const optim::StepLr sgd_lr(0.05, 0.1, {156});
  optim::DistKfacConfig kc;
  kc.damping = 0.03;
  kc.aggregation = 4;  // the paper fixes the aggregation factor to 4

  const auto cusz = compress::make_sz(4e-3);
  const auto qsgd = compress::make_qsgd(8);
  const auto cocktail = compress::make_cocktail(0.2, 8);
  // COMPSO: 4 stages refining the bound from 4e-3 to 2e-3 (paper setup) —
  // realized with the SmoothLR branch of the adaptive schedule.
  const optim::SmoothLr stage_lr(0.02, 8, kfac_iters);
  core::AdaptiveScheduleParams sp;
  sp.stages = 4;
  sp.decay = 0.7937;  // 4e-3 -> ~2e-3 over stages 0..3 (0.7937^3 = 0.5)
  const core::AdaptiveSchedule sched(stage_lr, kfac_iters, sp);
  std::vector<std::unique_ptr<compress::GradientCompressor>> stage_comp;
  for (std::size_t s = 0; s < sp.stages; ++s) {
    stage_comp.push_back(
        compress::make_compso(sched.params_at(s * sched.stage_length())));
  }
  const auto compso_provider = [&](std::size_t t) {
    return stage_comp[sched.at(t).stage_index].get();
  };

  struct Row {
    const char* approach;
    const char* error_control;
    nn::SpanMetrics m;
  };
  std::vector<Row> rows;
  rows.push_back({"SGD+CocktailSGD", "20% sparsity + 8-bit quant.",
                  trainer.train_sgd(sgd_iters, sgd_lr, cocktail.get())
                      .metrics});
  rows.push_back({"KFAC (No Comp.)", "(n/a)",
                  trainer.train_kfac(kfac_iters, kfac_lr, nullptr, kc)
                      .metrics});
  rows.push_back(
      {"KFAC+cuSZ", "4E-3, relative to range",
       trainer.train_kfac(kfac_iters, kfac_lr,
                          [&](std::size_t) { return cusz.get(); }, kc)
           .metrics});
  rows.push_back(
      {"KFAC+QSGD", "8-bit quant.",
       trainer.train_kfac(kfac_iters, kfac_lr,
                          [&](std::size_t) { return qsgd.get(); }, kc)
           .metrics});
  rows.push_back(
      {"KFAC+CocktailSGD", "20% sparsity + 8-bit quant.",
       trainer.train_kfac(kfac_iters, kfac_lr,
                          [&](std::size_t) { return cocktail.get(); }, kc)
           .metrics});
  rows.push_back(
      {"KFAC+COMPSO", "iteration-wise adaptive",
       trainer.train_kfac(kfac_iters, kfac_lr, compso_provider, kc).metrics});

  std::printf("%-18s %-28s | %8s %12s\n", "Approach", "Equiv. error control",
              "F1", "Exact Match");
  bench::print_rule();
  for (const auto& r : rows) {
    std::printf("%-18s %-28s | %8.2f %12.2f\n", r.approach, r.error_control,
                r.m.f1, r.m.exact_match);
  }
  std::printf(
      "\nShape checks: every method sits within ~1 F1 point of the\n"
      "no-compression target, as in the paper's Table 1 (spread 89.4-91.0);\n"
      "F1 >= exact match for every method. The paper's ~1-point cuSZ (RN)\n"
      "penalty is below this proxy's noise floor — fig03 shows where RN\n"
      "visibly hurts.\n");
  return 0;
}
