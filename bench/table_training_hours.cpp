// §5.4's end-to-end training-time narrative (no figure number; the text
// reports it): combining KFAC's iteration advantage over SGD with the
// per-iteration speedup from compression.
//
// Paper reference points (8 GPUs): KFAC baseline training times ~5 / 1 /
// 54 / 1 hours for ResNet-50 / Mask R-CNN / BERT-large / GPT-neo; COMPSO
// reduces them to ~3.5 / 0.7 / 36 / 0.7 h. Versus SGD+CocktailSGD (which
// needs 1.2-1.5x the iterations), KFAC+COMPSO is up to 2.5x (avg 1.8x)
// faster end-to-end — "reducing training time from 60 hours to 33 hours"
// for BERT-large.
//
// Here: iteration counts come from the paper's reported convergence
// budgets; per-iteration times come from this repository's simulator. The
// measured fig06 iteration-advantage (1.8-2.0x) would only strengthen the
// ratios; the paper's conservative 1.3x is used.

#include "bench/bench_util.hpp"

#include "src/compress/compressor.hpp"

int main() {
  using namespace compso;
  bench::print_header(
      "Section 5.4: end-to-end training hours (8 GPUs, Platform 1)");

  struct Workload {
    nn::ModelShape shape;
    double kfac_iterations;  ///< iterations to convergence with KFAC.
    double sgd_iteration_factor = 1.3;  ///< SGD needs this x more (paper).
  };
  // Iteration budgets scaled so the KFAC baseline lands near the paper's
  // reported hours at the simulator's per-iteration times.
  const Workload workloads[] = {
      {nn::resnet50_shape(), 500000.0, 60.0 / 40.0},   // 60 vs 40 epochs
      {nn::mask_rcnn_shape(), 20000.0, 1800.0 / 1000.0},
      {nn::bert_large_shape(), 500000.0, 1563.0 / 1000.0},
      {nn::gpt_neo_125m_shape(), 15000.0, 5000.0 / 3000.0},
  };

  const auto compso = compress::make_compso({});
  const auto cocktail = compress::make_cocktail(0.2, 8);

  std::printf("%-14s | %9s %12s | %11s %14s | %8s\n", "model",
              "KFAC base", "KFAC+COMPSO", "SGD+Cktail", "vs SGD+Cktail",
              "vs base");
  std::printf("%-14s | %9s %12s | %11s %14s | %8s\n", "", "(hours)",
              "(hours)", "(hours)", "(speedup)", "");
  bench::print_rule();
  double sum_vs_sgd = 0.0;
  int n = 0;
  for (const auto& w : workloads) {
    const auto cfg =
        bench::perf_config(w.shape, 2, comm::NetworkModel::platform1());
    const core::PerfSimulator sim(cfg);
    const double t_base = sim.baseline().total_s();
    const double t_compso =
        t_base / sim.with_compressor(*compso, 4).end_to_end_speedup;
    // SGD iteration: no KFAC phases; fwd/bwd + gradient exchange
    // (CocktailSGD-compressed allgather of the full gradient) + others +
    // CocktailSGD's PyTorch-dispatched (de)compression overhead (§5.3 —
    // the expensive part the paper calls out).
    const auto& b = sim.baseline();
    const auto sgd_it = sim.with_compressor(*cocktail, 1);
    const double t_sgd = b.forward_backward_s + b.others_s +
                         sgd_it.breakdown.allgather_s +
                         sgd_it.breakdown.comp_s + sgd_it.breakdown.decomp_s;

    const double hours_base = t_base * w.kfac_iterations / 3600.0;
    const double hours_compso = t_compso * w.kfac_iterations / 3600.0;
    const double hours_sgd =
        t_sgd * w.kfac_iterations * w.sgd_iteration_factor / 3600.0;
    const double vs_sgd = hours_sgd / hours_compso;
    std::printf("%-14s | %9.1f %12.1f | %11.1f %13.2fx | %7.2fx\n",
                w.shape.name.c_str(), hours_base, hours_compso, hours_sgd,
                vs_sgd, hours_base / hours_compso);
    sum_vs_sgd += vs_sgd;
    ++n;
  }
  std::printf("average KFAC+COMPSO speedup over SGD+CocktailSGD: %.2fx\n",
              sum_vs_sgd / n);
  std::printf(
      "\nShape checks: KFAC+COMPSO cuts the KFAC baseline's hours by the\n"
      "fig09 end-to-end factor, and beats SGD+CocktailSGD by more (the\n"
      "iteration advantage compounds with the per-iteration gain) — the\n"
      "paper's '60 h -> 33 h' BERT-large story.\n");
  return 0;
}
