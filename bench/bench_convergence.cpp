// Fig. 6-style differential convergence harness for the compressor
// families of DESIGN.md §17: trains the distributed-SGD proxy once per
// family — COMPSO, error-feedback-wrapped COMPSO, top-k with and without
// error feedback, CocktailSGD with and without error feedback, the seeded
// sketches (count-sketch, random projection), and the uncompressed
// identity reference — and emits the per-family loss curves into
// BENCH_convergence.json (EXPERIMENTS.md maps the file onto the paper's
// Fig. 6 panels).
//
//   bench_convergence [--smoke] [output.json]  (default BENCH_convergence.json)
//
// --smoke gates the §17 acceptance claim: at equal compression budget —
// EF-over-top-k and plain top-k keep the identical coordinate count k per
// payload; only the Elias-gamma entropy of which indices survive moves
// the byte counts, bounded here to a 5% band — the error-feedback run
// must reach a lower final loss than the plain run. Also gated: every
// family's curve stays finite.

#include "bench/bench_util.hpp"

#include "src/core/trainer.hpp"

#include <cmath>
#include <string_view>

namespace {

using namespace compso;

struct FamilyRun {
  std::string name;
  core::TrainResult result;
  bool finite = true;
};

core::TrainerConfig workload() {
  core::TrainerConfig c;
  c.world = 4;
  c.batch_per_rank = 8;
  c.features = 20;
  c.classes = 10;
  c.hidden = 24;
  c.depth = 2;
  c.noise = 1.1F;
  c.seed = 20250808;
  return c;
}

bool all_finite(const std::vector<double>& curve) {
  for (const double v : curve) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Mean loss over the last quarter of the curve — steadier than the single
/// final-iteration loss for the smoke comparison.
double tail_loss(const std::vector<double>& curve) {
  const std::size_t tail = std::max<std::size_t>(1, curve.size() / 4);
  double sum = 0.0;
  for (std::size_t i = curve.size() - tail; i < curve.size(); ++i) {
    sum += curve[i];
  }
  return sum / static_cast<double>(tail);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_convergence.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::print_header(
      "Convergence by compressor family (distributed SGD proxy)");
  constexpr std::size_t kIters = 120;
  constexpr double kKeep = 0.05;     // aggressive top-k: EF has real work.
  constexpr double kSketchRatio = 0.25;
  constexpr std::uint64_t kSeed = 0x5EED;
  const optim::StepLr lr(0.05, 0.1, {80});
  core::ClusterTrainer trainer(workload());

  struct Candidate {
    const char* name;
    std::unique_ptr<compress::GradientCompressor> compressor;
  };
  std::vector<Candidate> pool;
  pool.push_back({"Identity", compress::make_identity()});
  pool.push_back({"COMPSO", compress::make_compso({})});
  pool.push_back({"EF+COMPSO",
                  compress::make_error_feedback(compress::make_compso({}))});
  pool.push_back({"TopK", compress::make_topk(kKeep)});
  pool.push_back(
      {"EF+TopK", compress::make_error_feedback(compress::make_topk(kKeep))});
  pool.push_back({"CocktailSGD", compress::make_cocktail(0.2, 8)});
  pool.push_back({"EF+CocktailSGD", compress::make_error_feedback(
                                        compress::make_cocktail(0.2, 8))});
  pool.push_back(
      {"CountSketch", compress::make_count_sketch(kSketchRatio, 3, kSeed)});
  pool.push_back(
      {"RandProj", compress::make_random_projection(kSketchRatio, kSeed)});

  std::vector<FamilyRun> runs;
  std::printf("%-16s | %10s | %10s | %8s\n", "family", "final loss",
              "tail loss", "avg CR");
  bench::print_rule();
  for (const auto& cand : pool) {
    FamilyRun run;
    run.name = cand.name;
    // The trainer's built-in residual stays off: the EF wrapper itself is
    // the (only) error-feedback mechanism under test for every family.
    run.result = trainer.train_sgd(kIters, lr, cand.compressor.get(),
                                   /*error_feedback=*/false);
    run.finite = all_finite(run.result.loss_curve);
    std::printf("%-16s | %10.4f | %10.4f | %7.1fx%s\n", cand.name,
                run.result.final_loss, tail_loss(run.result.loss_curve),
                run.result.avg_compression_ratio, run.finite ? "" : "  NaN!");
    runs.push_back(std::move(run));
  }

  const auto find = [&runs](std::string_view name) -> const FamilyRun& {
    for (const auto& r : runs) {
      if (r.name == name) return r;
    }
    std::abort();  // pool names are fixed above.
  };
  const FamilyRun& plain_topk = find("TopK");
  const FamilyRun& ef_topk = find("EF+TopK");
  const double plain_tail = tail_loss(plain_topk.result.loss_curve);
  const double ef_tail = tail_loss(ef_topk.result.loss_curve);

  std::printf(
      "\nShape checks: error feedback recovers the gradient mass top-k at\n"
      "keep=%.0f%% discards — EF+TopK tail loss %.4f vs plain TopK %.4f at\n"
      "identical wire traffic (CR %.1fx vs %.1fx). The sketches trade\n"
      "per-step variance for unbiasedness and still converge.\n",
      100.0 * kKeep, ef_tail, plain_tail,
      ef_topk.result.avg_compression_ratio,
      plain_topk.result.avg_compression_ratio);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_convergence\",\n");
  std::fprintf(f, "  \"iterations\": %zu,\n", kIters);
  std::fprintf(f, "  \"topk_keep\": %.4f,\n", kKeep);
  std::fprintf(f, "  \"sketch_ratio\": %.4f,\n", kSketchRatio);
  std::fprintf(f, "  \"families\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"final_loss\": %.6f,"
                 " \"tail_loss\": %.6f, \"avg_compression_ratio\": %.4f,"
                 " \"loss_curve\": [",
                 r.name.c_str(), r.result.final_loss,
                 tail_loss(r.result.loss_curve),
                 r.result.avg_compression_ratio);
    for (std::size_t j = 0; j < r.result.loss_curve.size(); ++j) {
      std::fprintf(f, "%s%.6f", j > 0 ? ", " : "", r.result.loss_curve[j]);
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"ef_topk_tail_loss\": %.6f,\n", ef_tail);
  std::fprintf(f, "  \"plain_topk_tail_loss\": %.6f\n", plain_tail);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (smoke) {
    for (const auto& r : runs) {
      if (!r.finite || !std::isfinite(r.result.final_loss)) {
        std::fprintf(stderr, "SMOKE FAIL: %s diverged (non-finite loss)\n",
                     r.name.c_str());
        return 1;
      }
    }
    // Equal-budget precondition: both runs keep the identical coordinate
    // count k per payload, so the information budget matches exactly. The
    // wire bytes differ only through the Elias-gamma entropy of *which*
    // indices survive (EF shifts the kept set), so the measured ratios
    // must agree within a tight band rather than bit-exactly.
    const double cr_gap =
        std::abs(ef_topk.result.avg_compression_ratio -
                 plain_topk.result.avg_compression_ratio) /
        plain_topk.result.avg_compression_ratio;
    if (cr_gap > 0.05) {
      std::fprintf(stderr,
                   "SMOKE FAIL: EF+TopK CR %.4f vs plain TopK CR %.4f "
                   "(gap %.1f%% > 5%%)\n",
                   ef_topk.result.avg_compression_ratio,
                   plain_topk.result.avg_compression_ratio, 100.0 * cr_gap);
      return 1;
    }
    // The §17 acceptance gate: error feedback beats plain top-k at equal
    // compression ratio.
    if (!(ef_tail < plain_tail)) {
      std::fprintf(stderr,
                   "SMOKE FAIL: EF+TopK tail loss %.4f !< plain TopK %.4f\n",
                   ef_tail, plain_tail);
      return 1;
    }
    std::printf("smoke OK: EF+TopK %.4f < TopK %.4f at CR %.1fx\n", ef_tail,
                plain_tail, plain_topk.result.avg_compression_ratio);
  }
  return 0;
}
