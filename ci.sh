#!/usr/bin/env bash
# CI entry point: build and test the normal and sanitized configurations.
#
#   ./ci.sh            all configs, full test suite under each
#   ./ci.sh fault      fault-tolerance suites only (ctest -L fault)
#   ./ci.sh perf       bench smoke gates only (ctest -L perf)
#   ./ci.sh obs        observability suites only (ctest -L obs)
#   ./ci.sh sched      step-graph scheduler suites only (ctest -L sched)
#   ./ci.sh pipeline   chunked streaming suites only (ctest -L pipeline)
#   ./ci.sh scale      1000-rank scale-out suites only (ctest -L scale)
#   ./ci.sh convergence  compressor-family convergence suites (ctest -L convergence)
#
# The sanitized config (-DCOMPSO_SANITIZE=ON) runs everything under
# AddressSanitizer + UBSan, which is what gives the fault/recovery paths
# their teeth: an out-of-bounds decode of a corrupted payload or a damaged
# checkpoint frame (test_ckpt_fuzz mutates every checkpoint section ≥1000
# times) fails the build's tests even if it happens not to crash.
#
# The fault lane (ctest -L fault) runs in all three configs and covers the
# recovery policies (test_fault), checkpoint round-trips (test_checkpoint),
# the membership/liveness ladder + rejoin re-sync (test_membership), the
# 200-step fault-storm bit-determinism soak (test_fault_storm), the
# checkpoint fuzz contract (test_ckpt_fuzz), and the end-to-end drill
# (example_fault_drill, which exits nonzero unless the crashed rank
# rejoins and the resumed run is bit-exact).
#
# The TSan config (-DCOMPSO_TSAN=ON) runs everything under
# ThreadSanitizer — that is what keeps the parallel compression engine
# (thread pool + engine batches in DistSgd/DistKfac) AND the blocked math
# engine's parallel_for_static row-block path (test_math, test_engine,
# bench_math_smoke, bench_train_smoke) honest. ASan and TSan cannot share
# a binary, hence the separate build directory.
#
# The obs lane (ctest -L obs) runs in all three configs: the normal
# config checks byte-identical trace/metrics exports across thread
# counts and save/resume, the ASan+UBSan config keeps the JSON exporter
# clean under the adversarial span-name fuzz, and the TSan config
# validates the metrics registry's sharded cross-thread accumulation.
# The bench_obs_smoke gate (micro_train_throughput --smoke --trace)
# additionally schema-validates the emitted trace.json and enforces the
# metrics-on vs metrics-off overhead budget.
#
# The sched lane (ctest -L sched) also runs in all three configs: the
# normal config checks the scheduler's deterministic order, bit-exact
# trajectories at any engine thread count (clean, fault-injected, and
# across checkpoint resume) and the trace-derived overlap/idle-gap gate;
# the ASan+UBSan and TSan configs keep the graph's submit/reap lifetime
# and cross-thread task handoff honest.
#
# The pipeline lane (ctest -L pipeline) also runs in all three configs
# (DESIGN.md §15): test_pipeline covers chunk-frame/cursor round trips
# and mid-stream resume, the >= 1000-mutation-per-category chunk fuzz
# (header, CRC, mid-chunk truncation, duplicate — whose OOB teeth come
# from the ASan+UBSan config), the chunk-scoped fault plan, the
# per-round chunk collective, and the chunked == unchunked bit-exact
# trajectory gates (clean, fault-injected + retried, and across
# checkpoint resume; the TSan config drives the per-round frame tasks
# on the engine pool). The bench_pipeline_smoke gate (ablation_overlap
# --smoke) enforces chunked >= 1.3x unchunked at Slingshot-10 plus
# byte-identity and transport/model agreement.
#
# The scale lane (ctest -L scale) also runs in all three configs
# (DESIGN.md §16): test_scale covers the Topology rank-map properties,
# per-algorithm collective byte-identity against the flat canonical
# reduction (adversarial world sizes, masked participation), the
# selection/time-model invariants (legacy formulas bit-for-bit with
# selection off; hierarchical beats the flat ring at >= 256 ranks), and
# the sharded preconditioning contract: sharded-vs-KAISA bit-identity at
# any engine thread count (TSan keeps the owner-grouped engine batches
# honest), deterministic owner reassignment on eviction, and bit-exact
# checkpoint resume between a reassignment and the next eigh refresh.
# The bench_scale_smoke gate (scale_sweep --smoke) re-proves the
# bit-identity and memory gates end to end and emits BENCH_scale.json —
# every gate is deterministic, so it holds under both sanitizers.
#
# The convergence lane (ctest -L convergence) also runs in all three
# configs (DESIGN.md §17): test_error_feedback covers the EF wrapper's
# residual properties (plateau bound, EF-over-identity == identity SGD
# bit-for-bit), the rollback-on-fallback / reset-on-rejoin lifecycle, the
# versioned EF CKPT section's typed validation (ASan+UBSan gives the
# damage paths their teeth), and the trainer determinism matrix for the
# EF families (engine threads x corrupt/drop/NaN faults x resume);
# test_sketch covers the sketch estimators' unbiasedness/variance over
# >= 1000 seeded draws, counter-derived seed-stream determinism (TSan
# keeps the concurrent per-stream counters honest), exact
# max_payload_bytes, and payload/state damage rejection. The
# bench_convergence_smoke gate fails unless EF-over-top-k beats plain
# top-k at equal compression budget and every family's curve is finite.
#
# The full default pass includes the two bench smoke gates
# (bench/micro_math_throughput --smoke, bench/micro_train_throughput
# --smoke): they enforce the blocked >= 4x naive gemm criterion at 512^3
# (uninstrumented configs) and serial == parallel bit-identity, and leave
# BENCH_math.json / BENCH_train.json in each build directory.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
LABEL="${1:-}"

run_suite() {
  local dir="$1"; shift
  cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  if [[ "$LABEL" == "fault" ]]; then
    ctest --test-dir "$dir" -L fault --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "perf" ]]; then
    ctest --test-dir "$dir" -L perf --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "obs" ]]; then
    ctest --test-dir "$dir" -L obs --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "sched" ]]; then
    ctest --test-dir "$dir" -L sched --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "pipeline" ]]; then
    ctest --test-dir "$dir" -L pipeline --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "scale" ]]; then
    ctest --test-dir "$dir" -L scale --output-on-failure -j "$JOBS"
  elif [[ "$LABEL" == "convergence" ]]; then
    ctest --test-dir "$dir" -L convergence --output-on-failure -j "$JOBS"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

echo "=== config 1/3: normal ==="
run_suite build-ci

echo "=== config 2/3: AddressSanitizer + UBSan ==="
run_suite build-asan -DCOMPSO_SANITIZE=ON

echo "=== config 3/3: ThreadSanitizer ==="
run_suite build-tsan -DCOMPSO_TSAN=ON

echo "ci.sh: all green"
