#!/usr/bin/env bash
# CI entry point: build and test the normal and sanitized configurations.
#
#   ./ci.sh            both configs, full test suite under each
#   ./ci.sh fault      fault-tolerance suites only (ctest -L fault)
#
# The sanitized config (-DCOMPSO_SANITIZE=ON) runs everything under
# AddressSanitizer + UBSan, which is what gives the fault/recovery paths
# their teeth: an out-of-bounds decode of a corrupted payload fails the
# build's tests even if it happens not to crash.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
LABEL="${1:-}"

run_suite() {
  local dir="$1"; shift
  cmake -S . -B "$dir" -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  if [[ "$LABEL" == "fault" ]]; then
    ctest --test-dir "$dir" -L fault --output-on-failure -j "$JOBS"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
  fi
}

echo "=== config 1/2: normal ==="
run_suite build-ci

echo "=== config 2/2: AddressSanitizer + UBSan ==="
run_suite build-asan -DCOMPSO_SANITIZE=ON

echo "ci.sh: all green"
