#pragma once
// Fused single-pass compression kernels (paper §4.5, DESIGN.md §10).
//
// The reference COMPSO pipeline is four separate sweeps over the gradient
// (extrema, filter, quantize, pack), each materializing an intermediate
// buffer — the PyTorch-style multi-pass dispatch the paper argues against.
// These kernels are the fused rewrite:
//
//   - extrema_blockwise: hierarchical min/max reduction (block partials +
//     lane-unrolled tree merge, the CPU mirror of the paper's
//     block-reduction + warp-shuffle scheme). Min/max is associative and
//     commutative, so the result is bit-identical to the sequential scan.
//   - fused_filter_quantize: ONE pass that decides the filter bit, emits
//     the bitmap bytewise, and stochastic-rounds survivors into a compact
//     int32 code scratch while tracking the max zigzag code (so the
//     separate required_bits sweep disappears).
//   - pack_scratch_codes: zigzag bit-packing of the int32 scratch into an
//     exactly-presized byte buffer (same LSB-first layout as BitWriter).
//   - fused_scatter_dequant / fused_dequant: the decode-side fusion —
//     bitmap scatter + dequantize in one pass over a 64-bit bit-stream
//     accumulator, instead of unpack-to-int64 + dequantize + per-bit
//     scatter.
//
// All kernels consume the Rng in exactly the order the reference pipeline
// does (one uniform per survivor, survivor order), so payloads are
// bit-identical for a fixed seed. The scratch is caller-owned (the
// compressor keeps one per thread), so steady-state calls allocate
// nothing once capacities have grown to the largest layer.

#include "src/quant/rounding.hpp"
#include "src/tensor/rng.hpp"
#include "src/tensor/stats.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace compso::quant {

/// Elements per block of the fused pass; sized so the block's codes and
/// bitmap stay L1-resident between the quantize and pack stages.
constexpr std::size_t kFusedBlockElems = 4096;

/// Reusable per-thread workspace of the fused compress path.
struct FusedScratch {
  std::vector<std::int32_t> codes;   ///< survivor codes, compact order.
  std::vector<std::uint8_t> bitmap;  ///< filter bitmap (LSB-first).
  std::vector<std::uint8_t> packed;  ///< zigzag bit-packed codes.
};

/// Hierarchical extrema reduction; bit-identical to tensor::extrema for
/// finite inputs (abs_max is sign-insensitive, so ±0 ordering is moot).
tensor::Extrema extrema_blockwise(std::span<const float> v) noexcept;

/// True when every code the quantizer can emit for this bound fits the
/// int32 scratch (zigzag included). Bounds down to ~1e-9 qualify; callers
/// fall back to the reference pipeline for pathological tighter bounds.
bool codes_fit_int32(double quant_bound) noexcept;

/// Outcome of the fused filter+quantize pass.
struct FusedEncodeInfo {
  std::size_t survivors = 0;  ///< codes written to scratch.codes.
  unsigned bit_width = 1;     ///< required_bits of the survivor codes.
  double step = 0.0;          ///< quantization step (0 = all-zero buffer).
  bool filtered = false;      ///< a bitmap was produced.
  /// fused_filter_quantize already wrote scratch.packed[i] = low byte of
  /// zigzag(code i) for every survivor, so an 8-bit pack is a resize.
  bool packed8_valid = false;
};

/// The fused pass. `abs_max` is the precomputed extrema result;
/// `filter_bound` <= 0 or `use_filter` == false disables the filter
/// branch (no bitmap is built). Draws one rng uniform per survivor in
/// survivor order — the exact stream the unfused pipeline consumes.
FusedEncodeInfo fused_filter_quantize(std::span<const float> values,
                                      double filter_bound, double quant_bound,
                                      bool use_filter, double abs_max,
                                      RoundingMode mode, tensor::Rng& rng,
                                      FusedScratch& scratch);

/// Packs scratch.codes[0..info.survivors) at info.bit_width into
/// scratch.packed (resized to exactly ceil(survivors * bit_width / 8)).
void pack_scratch_codes(const FusedEncodeInfo& info, FusedScratch& scratch);

/// Decode fusion, filtered payloads: reads `survivors` fixed-width zigzag
/// codes from `packed` and scatters their dequantized values through the
/// bitmap into `out` (filtered positions become 0). The caller has
/// already validated popcount/size consistency.
void fused_scatter_dequant(std::span<const std::uint8_t> packed,
                           unsigned bit_width, double step,
                           std::span<const std::uint8_t> bitmap,
                           std::size_t survivors, std::span<float> out);

/// Decode fusion, unfiltered payloads: dequantize all `out.size()` codes
/// straight into `out`.
void fused_dequant(std::span<const std::uint8_t> packed, unsigned bit_width,
                   double step, std::span<float> out);

}  // namespace compso::quant
