#include "src/quant/fused.hpp"

#include "src/quant/bitpack.hpp"
#include "src/quant/filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace compso::quant {

namespace {

/// Merges a block's [min, max] partial into the running extrema.
inline void merge_minmax(float& mn, float& mx, float bmn, float bmx) noexcept {
  mn = std::min(mn, bmn);
  mx = std::max(mx, bmx);
}

/// Zigzag for the int32 scratch codes (same mapping as the 64-bit one).
inline std::uint32_t zigzag32(std::int32_t v) noexcept {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}

/// Stochastic rounding, inlined: identical arithmetic to round_value's
/// kStochastic case (Eq. 4) — floor, fractional part, one uniform draw
/// compared in double — but visible to the optimizer inside the fused
/// loop, where the out-of-line call per survivor otherwise dominates.
inline std::int64_t sr_round(double x, tensor::Rng& rng) noexcept {
  const double lo = std::floor(x);
  const double frac = x - lo;
  const bool up = static_cast<double>(rng.uniform()) < frac;
  return static_cast<std::int64_t>(lo) + (up ? 1 : 0);
}

}  // namespace

tensor::Extrema extrema_blockwise(std::span<const float> v) noexcept {
  tensor::Extrema e;
  if (v.empty()) return e;
  float mn = v[0];
  float mx = v[0];
  std::size_t i = 0;
  const std::size_t n = v.size();
#if defined(__SSE2__)
  // Vector lanes per block (the CPU analogue of the paper's warp-level
  // tree reduction): min/max is associative + commutative over the finite
  // floats gradients contain, so lane order cannot change the result.
  // _mm_min_ps(v, mn) evaluates (v < mn) ? v : mn — the same expression
  // as std::min(mn, v) — so the scalar tail and merge agree exactly.
  for (; i + kFusedBlockElems <= n; i += kFusedBlockElems) {
    __m128 vmn0 = _mm_loadu_ps(v.data() + i);
    __m128 vmn1 = _mm_loadu_ps(v.data() + i + 4);
    __m128 vmx0 = vmn0;
    __m128 vmx1 = vmn1;
    for (std::size_t j = 8; j < kFusedBlockElems; j += 8) {
      const __m128 a = _mm_loadu_ps(v.data() + i + j);
      const __m128 b = _mm_loadu_ps(v.data() + i + j + 4);
      vmn0 = _mm_min_ps(a, vmn0);
      vmx0 = _mm_max_ps(a, vmx0);
      vmn1 = _mm_min_ps(b, vmn1);
      vmx1 = _mm_max_ps(b, vmx1);
    }
    alignas(16) float lmn[4];
    alignas(16) float lmx[4];
    _mm_store_ps(lmn, _mm_min_ps(vmn0, vmn1));
    _mm_store_ps(lmx, _mm_max_ps(vmx0, vmx1));
    merge_minmax(mn, mx,
                 std::min(std::min(lmn[0], lmn[1]), std::min(lmn[2], lmn[3])),
                 std::max(std::max(lmx[0], lmx[1]), std::max(lmx[2], lmx[3])));
  }
#else
  for (; i + kFusedBlockElems <= n; i += kFusedBlockElems) {
    // Four independent lanes per block: same tree reduction, scalar ILP.
    float mn0 = v[i], mn1 = v[i + 1], mn2 = v[i + 2], mn3 = v[i + 3];
    float mx0 = mn0, mx1 = mn1, mx2 = mn2, mx3 = mn3;
    for (std::size_t j = 4; j < kFusedBlockElems; j += 4) {
      mn0 = std::min(mn0, v[i + j]);
      mx0 = std::max(mx0, v[i + j]);
      mn1 = std::min(mn1, v[i + j + 1]);
      mx1 = std::max(mx1, v[i + j + 1]);
      mn2 = std::min(mn2, v[i + j + 2]);
      mx2 = std::max(mx2, v[i + j + 2]);
      mn3 = std::min(mn3, v[i + j + 3]);
      mx3 = std::max(mx3, v[i + j + 3]);
    }
    merge_minmax(mn, mx, std::min(std::min(mn0, mn1), std::min(mn2, mn3)),
                 std::max(std::max(mx0, mx1), std::max(mx2, mx3)));
  }
#endif
  for (; i < n; ++i) merge_minmax(mn, mx, v[i], v[i]);
  e.min = mn;
  e.max = mx;
  e.abs_max = std::max(std::fabs(mn), std::fabs(mx));
  return e;
}

bool codes_fit_int32(double quant_bound) noexcept {
  if (quant_bound <= 0.0) return false;
  // |x| <= 1/(2 eb) before rounding, so |code| <= 1/(2 eb) + 1; keep one
  // more unit of headroom so zigzag32 can never wrap.
  return 1.0 / (2.0 * quant_bound) + 2.0 <= 2147483646.0;
}

FusedEncodeInfo fused_filter_quantize(std::span<const float> values,
                                      double filter_bound, double quant_bound,
                                      bool use_filter, double abs_max,
                                      RoundingMode mode, tensor::Rng& rng,
                                      FusedScratch& scratch) {
  if (quant_bound <= 0.0) {
    throw std::invalid_argument("fused_filter_quantize: eb must be > 0");
  }
  const std::size_t n = values.size();
  FusedEncodeInfo info;
  info.filtered = use_filter && filter_bound > 0.0;
  scratch.codes.resize(n);  // worst case: nothing filtered
  if (info.filtered) {
    scratch.bitmap.assign((n + 7) / 8, 0);
  } else {
    scratch.bitmap.clear();
  }
  // Grow-only: pack_scratch_codes sets the exact size afterwards, so the
  // pass can emit speculative 8-bit packed bytes via data() without a
  // value-initializing resize on every call.
  if (scratch.packed.size() < n) scratch.packed.resize(n);

  if (abs_max == 0.0) {
    // All-zero buffer: the reference filter threshold is 0 (nothing is
    // filtered, fabs(v) < 0 never holds) and the reference quantizer
    // early-returns all-zero codes without touching the rng.
    std::fill(scratch.codes.begin(), scratch.codes.end(), 0);
    info.survivors = n;
    info.step = 0.0;
    info.bit_width = 1;
    return info;
  }

  const double threshold = info.filtered ? filter_bound * abs_max : 0.0;
  const double step = 2.0 * quant_bound * abs_max;
  info.step = step;
  std::int32_t* codes = scratch.codes.data();
  std::uint8_t* packed8 = scratch.packed.data();
  std::size_t survivors = 0;
  // OR of all zigzag codes: bit_width(or) == bit_width(max) since the OR
  // is >= the max and < the max's next power of two. Cheaper than a
  // per-survivor max, and it feeds the speculative 8-bit pack below.
  std::uint32_t zz_or = 0;

  // The filter test `fabs(double(v)) < threshold` is reformulated as an
  // unsigned integer compare on the float's magnitude bits: with
  // pred = the largest float strictly below threshold, a float |v| is
  // below the (double) threshold iff |v| <= pred, and magnitude bits are
  // monotone over non-negative floats (denormals included; NaN/Inf bits
  // sort above every finite pred, matching the `<` comparison's false).
  // This drops the convert/abs/compare FP chain to a mask + compare per
  // element — bit-identical filtering decisions.
  std::uint32_t pred_bits = 0;
  if (info.filtered) {
    const auto ft = static_cast<float>(threshold);
    const float pred = static_cast<double>(ft) < threshold
                           ? ft
                           : std::nextafterf(ft, 0.0F);
    pred_bits = std::bit_cast<std::uint32_t>(pred);
  }
  const auto filtered_bit = [pred_bits](float v) noexcept -> unsigned {
    return (std::bit_cast<std::uint32_t>(v) & 0x7FFFFFFFU) <= pred_bits;
  };

  // Per-survivor emission: code to the int32 scratch, the zigzag low byte
  // to the speculative 8-bit pack buffer (used verbatim when the final
  // width lands on 8 bits — the common case for gradient-scale bounds),
  // and the zigzag OR for the width reduction.
  const auto emit = [&](std::int32_t c) {
    const std::uint32_t zz = zigzag32(c);
    codes[survivors] = c;
    packed8[survivors] = static_cast<std::uint8_t>(zz);
    ++survivors;
    zz_or |= zz;
  };

  // One streaming pass, processed in L1-resident blocks: filter decision,
  // bitmap emission (byte-wise accumulator), stochastic rounding, and the
  // running required-bits maximum all happen per element, with no
  // intermediate survivor/code vectors. The rounding mode is dispatched
  // once out here so the dominant stochastic path inlines its draw.
  const auto pass = [&](auto&& round_one) {
    for (std::size_t base = 0; base < n; base += kFusedBlockElems) {
      const std::size_t end = std::min(n, base + kFusedBlockElems);
      if (info.filtered) {
        std::size_t i = base;
        // Full byte groups (base is block-aligned, blocks are multiples
        // of 8): build the filter byte with branch-free compares, then
        // visit only the survivor lanes in ascending order via
        // countr_zero. The data-dependent filter branch — mispredicted
        // ~2x per byte on gradient-shaped inputs — disappears; the rng
        // draw order (one uniform per survivor, index order) is
        // unchanged.
        for (; i + 8 <= end; i += 8) {
          std::uint8_t bits;
#if defined(__SSE2__)
          // Vectorized magnitude compare: both |v|'s bits and pred_bits
          // sit in [0, 0x7FFFFFFF], i.e. non-negative as signed int32, so
          // the signed PCMPGTD equals the unsigned `>` and MOVMSKPS of
          // its all-ones lanes yields the survivor bits directly.
          const __m128i vmask = _mm_set1_epi32(0x7FFFFFFF);
          const __m128i vpred =
              _mm_set1_epi32(static_cast<std::int32_t>(pred_bits));
          __m128i a = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(values.data() + i));
          __m128i b = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(values.data() + i + 4));
          a = _mm_and_si128(a, vmask);
          b = _mm_and_si128(b, vmask);
          const int sa =
              _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(a, vpred)));
          const int sb =
              _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(b, vpred)));
          bits = static_cast<std::uint8_t>(~(sa | (sb << 4)));
#else
          bits = 0;
          for (unsigned k = 0; k < 8; ++k) {
            bits |= static_cast<std::uint8_t>(filtered_bit(values[i + k])
                                              << k);
          }
#endif
          scratch.bitmap[i / 8] |= bits;
          auto surv = static_cast<std::uint8_t>(~bits);
          while (surv != 0) {
            const auto k = static_cast<unsigned>(std::countr_zero(surv));
            surv = static_cast<std::uint8_t>(surv & (surv - 1));
            emit(static_cast<std::int32_t>(
                round_one(static_cast<double>(values[i + k]) / step)));
          }
        }
        for (; i < end; ++i) {
          const float v = values[i];
          if (filtered_bit(v) != 0) {
            scratch.bitmap[i / 8] |=
                static_cast<std::uint8_t>(1U << (i % 8));
          } else {
            emit(static_cast<std::int32_t>(
                round_one(static_cast<double>(v) / step)));
          }
        }
      } else {
        for (std::size_t i = base; i < end; ++i) {
          emit(static_cast<std::int32_t>(
              round_one(static_cast<double>(values[i]) / step)));
        }
      }
    }
  };
  if (mode == RoundingMode::kStochastic) {
    pass([&rng](double x) { return sr_round(x, rng); });
  } else {
    pass([&rng, mode](double x) { return round_value(x, mode, rng); });
  }

  info.survivors = survivors;
  const unsigned bits = static_cast<unsigned>(std::bit_width(zz_or));
  info.bit_width = bits == 0 ? 1 : bits;
  info.packed8_valid = true;
  return info;
}

void pack_scratch_codes(const FusedEncodeInfo& info, FusedScratch& scratch) {
  const std::size_t n = info.survivors;
  const unsigned bits = info.bit_width;
  scratch.packed.resize((n * bits + 7) / 8);
  std::uint8_t* out = scratch.packed.data();
  // Byte-aligned widths are the common case for gradient-scale error
  // bounds (eb ~1e-3 -> 8-bit codes): LSB-first packing of an aligned
  // width is plain little-endian bytes, no accumulator needed — and when
  // the fused pass already emitted them speculatively, no pass at all
  // (the resize above trims the buffer in place, preserving the prefix).
  if (bits == 8) {
    if (info.packed8_valid) return;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(zigzag32(scratch.codes[i]));
    }
    return;
  }
  if (bits == 16) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t zz = zigzag32(scratch.codes[i]);
      out[2 * i] = static_cast<std::uint8_t>(zz & 0xFF);
      out[2 * i + 1] = static_cast<std::uint8_t>((zz >> 8) & 0xFF);
    }
    return;
  }
  std::size_t pos = 0;
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // bits <= 33 (int32 zigzag), so the accumulator never overflows:
    // acc_bits < 8 on entry, acc_bits < 41 after the OR.
    acc |= static_cast<std::uint64_t>(zigzag32(scratch.codes[i])) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 8) {
      out[pos++] = static_cast<std::uint8_t>(acc & 0xFF);
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out[pos++] = static_cast<std::uint8_t>(acc & 0xFF);
}

namespace {

/// Streaming LSB-first bit reader over a validated payload blob: refills
/// a 64-bit accumulator a byte at a time, so a w-bit read is one mask +
/// shift instead of BitReader's per-byte loop. Callers guarantee the
/// stream holds every bit they read (the compressor validates blob size
/// against survivors * bit_width up front), so there is no end-of-stream
/// branch in the hot loop beyond the refill bound.
struct FastBitStream {
  const std::uint8_t* p;
  const std::uint8_t* end;
  std::uint64_t acc = 0;
  unsigned acc_bits = 0;

  explicit FastBitStream(std::span<const std::uint8_t> bytes) noexcept
      : p(bytes.data()), end(bytes.data() + bytes.size()) {}

  inline void refill() noexcept {
    if (acc_bits > 56) return;
    // The wide path can leave partial-byte garbage above acc_bits (bits of
    // the 8-byte load that were OR'd in but not counted as consumed);
    // clear it before inserting fresh bytes.
    acc &= (std::uint64_t{1} << acc_bits) - 1;
    if constexpr (std::endian::native == std::endian::little) {
      if (end - p >= 8) {
        // Wide refill: one 8-byte load instead of a byte loop. Advancing
        // by (63 - acc_bits)/8 bytes and setting acc_bits |= 56 is the
        // standard identity — afterwards acc_bits = 56 + (old & 7), which
        // counts exactly the bytes consumed.
        std::uint64_t w;
        std::memcpy(&w, p, sizeof(w));
        acc |= w << acc_bits;
        p += (63 - acc_bits) >> 3;
        acc_bits |= 56;
        return;
      }
    }
    while (acc_bits <= 56 && p != end) {
      acc |= static_cast<std::uint64_t>(*p++) << acc_bits;
      acc_bits += 8;
    }
  }

  /// bits in [1, 57]; the wide-width decode path splits larger reads.
  inline std::uint64_t read(unsigned bits) noexcept {
    refill();
    const std::uint64_t out = acc & ((1ULL << bits) - 1);
    const unsigned used = std::min(bits, acc_bits);
    acc >>= used;
    acc_bits -= used;
    return out;
  }

  /// Full-range read (bits in [1, 64]) for hostile-but-valid payloads
  /// that claim extreme widths.
  inline std::uint64_t read_wide(unsigned bits) noexcept {
    if (bits <= 57) return read(bits);
    const std::uint64_t lo = read(32);
    return lo | (read(bits - 32) << 32);
  }
};

inline float dequant_one(std::uint64_t zz, double step) noexcept {
  return static_cast<float>(static_cast<double>(zigzag_decode(zz)) * step);
}

}  // namespace

void fused_scatter_dequant(std::span<const std::uint8_t> packed,
                           unsigned bit_width, double step,
                           std::span<const std::uint8_t> bitmap,
                           std::size_t survivors, std::span<float> out) {
  if (bit_width == 0 || bit_width > 64) {
    throw std::invalid_argument("fused_scatter_dequant: bad bit width");
  }
  FastBitStream bs(packed);
  const std::size_t n = out.size();
  std::size_t read_codes = 0;
  // The per-bit filtered/survivor branch is the expensive part of the
  // scatter (data-dependent, mispredicted ~2x per byte). Instead: zero
  // the whole 8-lane group unconditionally (one vector store), then
  // overwrite just the survivor lanes in ascending order via
  // countr_zero — the same code order the packer emitted. `next_value`
  // yields the next survivor's dequantized float.
  const auto scatter = [&](auto&& next_value) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const std::uint8_t byte = bitmap[i / 8];
      if (byte == 0) {
        // Full byte of survivors: no zeroing, no bit iteration.
        for (unsigned k = 0; k < 8; ++k) out[i + k] = next_value();
        read_codes += 8;
        continue;
      }
      for (unsigned k = 0; k < 8; ++k) out[i + k] = 0.0F;
      auto surv = static_cast<std::uint8_t>(~byte);
      while (surv != 0) {
        const auto k = static_cast<unsigned>(std::countr_zero(surv));
        surv = static_cast<std::uint8_t>(surv & (surv - 1));
        out[i + k] = next_value();
        ++read_codes;
      }
    }
    for (; i < n; ++i) {
      if ((bitmap[i / 8] >> (i % 8)) & 1U) {
        out[i] = 0.0F;
      } else {
        out[i] = next_value();
        ++read_codes;
      }
    }
  };
  if (bit_width == 8) {
    // Byte-aligned codes: stage the whole dequantization as a separate
    // vectorizable sweep — zigzag decode and float(double(c) * step)
    // four lanes at a time, with the exact scalar double-rounding (the
    // int32 zigzag agrees with the int64 one for byte codes, cvtepi32_pd
    // is exact, and mulpd/cvtpd_ps round exactly like the scalar ops) —
    // then the branchy bitmap scatter just moves finished floats. The
    // serial convert chain leaves the mispredicting loop entirely.
    static thread_local std::vector<float> staged;
    if (staged.size() < survivors) staged.resize(survivors);
    const std::uint8_t* pc = packed.data();
    const std::size_t m = std::min(survivors, packed.size());
    float* sd = staged.data();
    std::size_t i = 0;
#if defined(__SSE2__)
    const __m128d vstep = _mm_set1_pd(step);
    const __m128i zero = _mm_setzero_si128();
    const __m128i one = _mm_set1_epi32(1);
    for (; i + 4 <= m; i += 4) {
      std::uint32_t w;
      std::memcpy(&w, pc + i, 4);
      __m128i z = _mm_cvtsi32_si128(static_cast<int>(w));
      z = _mm_unpacklo_epi8(z, zero);
      z = _mm_unpacklo_epi16(z, zero);  // 4 lanes of zz in [0, 255]
      const __m128i c = _mm_xor_si128(_mm_srli_epi32(z, 1),
                                      _mm_sub_epi32(zero,
                                                    _mm_and_si128(z, one)));
      const __m128d d0 = _mm_cvtepi32_pd(c);
      const __m128d d1 = _mm_cvtepi32_pd(
          _mm_shuffle_epi32(c, _MM_SHUFFLE(1, 0, 3, 2)));
      const __m128 f0 = _mm_cvtpd_ps(_mm_mul_pd(d0, vstep));
      const __m128 f1 = _mm_cvtpd_ps(_mm_mul_pd(d1, vstep));
      _mm_storeu_ps(sd + i, _mm_movelh_ps(f0, f1));
    }
#endif
    for (; i < m; ++i) sd[i] = dequant_one(pc[i], step);
    // Past-end codes read as zero bits (mirrors FastBitStream; only
    // reachable through direct API misuse — wire payloads are
    // size-validated before reaching here).
    for (; i < survivors; ++i) sd[i] = dequant_one(0, step);
    const float* sp = sd;
    const float* const send = sd + survivors;
    scatter([&sp, send] { return sp < send ? *sp++ : 0.0F; });
  } else if (bit_width == 16) {
    const std::uint8_t* pc = packed.data();
    const std::uint8_t* const pcend = pc + packed.size();
    scatter([&pc, pcend, step]() -> float {
      std::uint64_t zz;
      if (pcend - pc < 2) {
        zz = pc < pcend ? static_cast<std::uint64_t>(*pc++) : 0ULL;
      } else {
        zz = static_cast<std::uint64_t>(pc[0]) |
             (static_cast<std::uint64_t>(pc[1]) << 8);
        pc += 2;
      }
      return dequant_one(zz, step);
    });
  } else if (bit_width <= 57) {
    scatter([&bs, bit_width, step] {
      return dequant_one(bs.read(bit_width), step);
    });
  } else {
    scatter([&bs, bit_width, step] {
      return dequant_one(bs.read_wide(bit_width), step);
    });
  }
  if (read_codes != survivors) {
    // The caller's popcount check makes this unreachable for wire data;
    // keep it as a cheap invariant for direct API misuse.
    throw std::invalid_argument(
        "fused_scatter_dequant: survivor count mismatch");
  }
}

void fused_dequant(std::span<const std::uint8_t> packed, unsigned bit_width,
                   double step, std::span<float> out) {
  if (bit_width == 0 || bit_width > 64) {
    throw std::invalid_argument("fused_dequant: bad bit width");
  }
  if (bit_width == 8) {
    const std::uint8_t* pc = packed.data();
    const std::uint8_t* const pcend = pc + packed.size();
    for (float& o : out) {
      const std::uint64_t zz =
          pc < pcend ? static_cast<std::uint64_t>(*pc++) : 0ULL;
      o = dequant_one(zz, step);
    }
    return;
  }
  FastBitStream bs(packed);
  if (bit_width <= 57) {
    for (float& o : out) o = dequant_one(bs.read(bit_width), step);
  } else {
    for (float& o : out) o = dequant_one(bs.read_wide(bit_width), step);
  }
}

}  // namespace compso::quant
