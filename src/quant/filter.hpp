#pragma once
// COMPSO's lossy filter (§4.3, Alg. 1 "Filter Branch"): values whose
// magnitude is below the filter bound map to zero and are recorded in a
// bitmap; survivors are compacted for the SR branch.
//
// The bound is *relative to the buffer's value range* (like the SZ error
// bound the paper compares against): threshold = eb_f * abs_max.

#include <cstdint>
#include <span>
#include <vector>

namespace compso::quant {

/// Output of the filter stage.
struct FilterResult {
  /// Bit i set => value i was filtered (zeroed). LSB-first packing.
  std::vector<std::uint8_t> bitmap;
  /// The surviving values, in original order.
  std::vector<float> survivors;
  std::size_t total = 0;     ///< original element count.
  std::size_t filtered = 0;  ///< number of zeroed values.
  double threshold = 0.0;    ///< absolute threshold actually applied.

  double filtered_fraction() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(filtered) /
                            static_cast<double>(total);
  }
};

/// Applies the filter with a relative bound; pass `abs_max <= 0` to have it
/// computed from `values`.
FilterResult apply_filter(std::span<const float> values,
                          double relative_bound, double abs_max = -1.0);

/// Scatters `survivors` back into a full-size buffer using the bitmap
/// (filtered positions become 0). `out.size()` must equal `total`.
void reconstruct_filtered(const FilterResult& f, std::span<float> out);

/// Scatter variant used after dequantization: survivors come from an
/// external buffer (the dequantized SR branch), the bitmap from the filter.
void scatter_survivors(std::span<const std::uint8_t> bitmap,
                       std::span<const float> survivors,
                       std::span<float> out);

/// Bitmap helpers.
inline bool bitmap_get(std::span<const std::uint8_t> bm,
                       std::size_t i) noexcept {
  return (bm[i / 8] >> (i % 8)) & 1U;
}

/// Set bits among the first `total_bits` of `bm`, via byte-wise popcount
/// with the tail byte masked (stray pad bits never count). Survivor
/// counting and the decoder's bitmap-vs-survivor-count consistency check
/// both ride this instead of a per-bit loop.
std::size_t bitmap_count_set(std::span<const std::uint8_t> bm,
                             std::size_t total_bits) noexcept;

}  // namespace compso::quant
