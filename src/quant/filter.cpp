#include "src/quant/filter.hpp"

#include "src/tensor/stats.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace compso::quant {

FilterResult apply_filter(std::span<const float> values,
                          double relative_bound, double abs_max) {
  if (relative_bound < 0.0) {
    throw std::invalid_argument("apply_filter: bound must be >= 0");
  }
  if (abs_max <= 0.0) abs_max = tensor::extrema(values).abs_max;
  FilterResult out;
  out.total = values.size();
  out.threshold = relative_bound * abs_max;
  out.bitmap.assign((values.size() + 7) / 8, 0);
  out.survivors.reserve(values.size() / 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::fabs(static_cast<double>(values[i])) < out.threshold) {
      out.bitmap[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
      ++out.filtered;
    } else {
      out.survivors.push_back(values[i]);
    }
  }
  return out;
}

std::size_t bitmap_count_set(std::span<const std::uint8_t> bm,
                             std::size_t total_bits) noexcept {
  const std::size_t full_bytes = total_bits / 8;
  std::size_t count = 0;
  for (std::size_t b = 0; b < full_bytes; ++b) {
    count += static_cast<std::size_t>(std::popcount(bm[b]));
  }
  const unsigned tail_bits = static_cast<unsigned>(total_bits % 8);
  if (tail_bits != 0 && full_bytes < bm.size()) {
    const std::uint8_t mask =
        static_cast<std::uint8_t>((1U << tail_bits) - 1U);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint8_t>(bm[full_bytes] & mask)));
  }
  return count;
}

void reconstruct_filtered(const FilterResult& f, std::span<float> out) {
  if (out.size() != f.total) {
    throw std::invalid_argument("reconstruct_filtered: size mismatch");
  }
  scatter_survivors(f.bitmap, f.survivors, out);
}

void scatter_survivors(std::span<const std::uint8_t> bitmap,
                       std::span<const float> survivors,
                       std::span<float> out) {
  std::size_t s = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (bitmap_get(bitmap, i)) {
      out[i] = 0.0F;
    } else {
      if (s >= survivors.size()) {
        throw std::invalid_argument(
            "scatter_survivors: survivor count below bitmap zeros");
      }
      out[i] = survivors[s++];
    }
  }
  if (s != survivors.size()) {
    throw std::invalid_argument(
        "scatter_survivors: survivor count above bitmap zeros");
  }
}

}  // namespace compso::quant
