#pragma once
// Variable-width bit packing: the mechanism that turns COMPSO's
// error-bound-derived code width (e.g. 7 bits for eb = 1e-2, §4.3) into a
// byte stream, instead of rounding the width up to 8/4-bit like fixed-rate
// quantizers.

#include "src/common/payload_error.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace compso::quant {

/// Append-only bit stream writer (LSB-first within each byte).
class BitWriter {
 public:
  /// Pre-sizes the byte buffer for `bits` further bits (no reallocation
  /// while writing up to that many).
  void reserve(std::size_t bits);
  /// Writes the low `bits` bits of `value` (bits in [1, 64]).
  void write(std::uint64_t value, unsigned bits);
  /// Flushes and MOVES the byte buffer out; the writer resets to empty.
  /// (Historically this copied, leaving the writer usable — every caller
  /// took exactly once, so the copy was pure waste on the hot path.)
  std::vector<std::uint8_t> take();
  std::size_t bit_count() const noexcept { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint64_t acc_ = 0;
  unsigned acc_bits_ = 0;
  std::size_t bit_count_ = 0;
};

/// Sequential bit stream reader (matching BitWriter's layout).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `bits` bits (bits in [0, 64]); returns them in the low bits of
  /// the result. Reading past the end yields zero bits; widths above 64
  /// throw PayloadError (they can only come from corrupt wire data and
  /// would otherwise shift past the accumulator width).
  std::uint64_t read(unsigned bits);
  bool exhausted() const noexcept;

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t byte_pos_ = 0;
  unsigned bit_pos_ = 0;
};

/// ZigZag mapping so small-magnitude signed codes become small unsigned
/// values (dense low range -> entropy coders and bit packing both win).
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Smallest width that can hold every (zigzag-encoded) code.
unsigned required_bits(std::span<const std::int64_t> codes) noexcept;

/// Packs signed codes at the given width (zigzag + fixed-width).
std::vector<std::uint8_t> pack_codes(std::span<const std::int64_t> codes,
                                     unsigned bits);
/// Inverse of pack_codes; `count` codes are read. Validates up front that
/// `bits` is in [1, 64] and that `bytes` holds at least count * bits bits;
/// throws PayloadError otherwise (a truncated stream must never silently
/// decode missing codes as zeros).
std::vector<std::int64_t> unpack_codes(std::span<const std::uint8_t> bytes,
                                       unsigned bits, std::size_t count);

}  // namespace compso::quant
