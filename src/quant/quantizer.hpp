#pragma once
// Quantizers:
//  - ErrorBoundedQuantizer: COMPSO's fine-grained scheme (§4.3). The step
//    is derived from a *relative* error bound against the buffer's value
//    range (Eq. 3's normalization), so the code width follows the bound
//    (eb = 1e-2 -> ~100 bins -> 7 bits) instead of a rigid 4/8-bit grid.
//  - FixedBitQuantizer: QSGD-style n-bit quantization for the baselines.

#include "src/quant/bitpack.hpp"
#include "src/quant/rounding.hpp"
#include "src/tensor/rng.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace compso::quant {

/// Integer codes plus the metadata to dequantize them.
struct QuantizedBlock {
  std::vector<std::int64_t> codes;
  double step = 0.0;        ///< dequantized value = code * step.
  unsigned bit_width = 0;   ///< bits per packed code (zigzag).
  RoundingMode mode = RoundingMode::kStochastic;

  std::size_t packed_bytes() const noexcept {
    return (codes.size() * bit_width + 7) / 8;
  }
};

/// Error-bounded uniform quantizer. For rounding mode RN the absolute
/// reconstruction error is <= eb * abs_max(values); for SR it is
/// < 2 * eb * abs_max but unbiased (E[dequant] = value).
class ErrorBoundedQuantizer {
 public:
  ErrorBoundedQuantizer(double relative_error_bound, RoundingMode mode)
      : eb_(relative_error_bound), mode_(mode) {}

  double error_bound() const noexcept { return eb_; }
  RoundingMode mode() const noexcept { return mode_; }

  /// Quantizes `values`; `abs_max` may be precomputed (e.g. by the fused
  /// extrema kernel); pass <= 0 to compute it here.
  QuantizedBlock quantize(std::span<const float> values, tensor::Rng& rng,
                          double abs_max = -1.0) const;

  /// Dequantizes into `out` (size must equal codes.size()).
  static void dequantize(const QuantizedBlock& block, std::span<float> out);

  /// Number of quantization bins implied by the bound (paper: 1e-2 -> ~100).
  static std::size_t bins_for_bound(double relative_error_bound) noexcept;
  /// Bit width implied by the bound (paper: 1e-2 -> 7 bits).
  static unsigned bits_for_bound(double relative_error_bound) noexcept;

 private:
  double eb_;
  RoundingMode mode_;
};

/// QSGD-style fixed n-bit quantizer (Eq. 3): scale by abs_max, map into
/// [-2^(n-1), 2^(n-1)], round (SR in QSGD).
class FixedBitQuantizer {
 public:
  FixedBitQuantizer(unsigned bits, RoundingMode mode)
      : bits_(bits), mode_(mode) {}

  unsigned bits() const noexcept { return bits_; }

  QuantizedBlock quantize(std::span<const float> values,
                          tensor::Rng& rng) const;

 private:
  unsigned bits_;
  RoundingMode mode_;
};

}  // namespace compso::quant
