#include "src/quant/quantizer.hpp"

#include "src/tensor/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace compso::quant {

QuantizedBlock ErrorBoundedQuantizer::quantize(std::span<const float> values,
                                               tensor::Rng& rng,
                                               double abs_max) const {
  if (eb_ <= 0.0) {
    throw std::invalid_argument("ErrorBoundedQuantizer: eb must be > 0");
  }
  if (abs_max <= 0.0) abs_max = tensor::extrema(values).abs_max;
  QuantizedBlock out;
  out.mode = mode_;
  out.codes.resize(values.size());
  if (abs_max == 0.0) {
    // All-zero buffer: step 0 marks "everything is exactly zero".
    out.step = 0.0;
    out.bit_width = 1;
    return out;
  }
  out.step = 2.0 * eb_ * abs_max;
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.codes[i] = round_value(values[i] / out.step, mode_, rng);
  }
  out.bit_width = required_bits(out.codes);
  return out;
}

void ErrorBoundedQuantizer::dequantize(const QuantizedBlock& block,
                                       std::span<float> out) {
  if (out.size() != block.codes.size()) {
    throw std::invalid_argument("dequantize: size mismatch");
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(static_cast<double>(block.codes[i]) *
                                block.step);
  }
}

std::size_t ErrorBoundedQuantizer::bins_for_bound(
    double relative_error_bound) noexcept {
  if (relative_error_bound <= 0.0) return 0;
  // Codes span [-1/(2 eb), 1/(2 eb)] after dividing by step = 2 eb absmax:
  // about 1/eb bins total (paper: eb = 1e-2 -> 100 bins).
  return static_cast<std::size_t>(std::ceil(1.0 / relative_error_bound));
}

unsigned ErrorBoundedQuantizer::bits_for_bound(
    double relative_error_bound) noexcept {
  const std::size_t bins = bins_for_bound(relative_error_bound);
  unsigned bits = 1;
  while ((std::size_t{1} << bits) < bins + 1) ++bits;
  return bits;
}

QuantizedBlock FixedBitQuantizer::quantize(std::span<const float> values,
                                           tensor::Rng& rng) const {
  if (bits_ < 2 || bits_ > 16) {
    throw std::invalid_argument("FixedBitQuantizer: bits must be in [2, 16]");
  }
  const double abs_max = tensor::extrema(values).abs_max;
  QuantizedBlock out;
  out.mode = mode_;
  out.codes.resize(values.size());
  out.bit_width = bits_;
  if (abs_max == 0.0) {
    out.step = 0.0;
    return out;
  }
  const auto levels = static_cast<double>((1ULL << (bits_ - 1)) - 1);
  out.step = abs_max / levels;  // codes in [-levels, levels]
  const auto lim = static_cast<std::int64_t>(levels);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::int64_t c = round_value(values[i] / out.step, mode_, rng);
    out.codes[i] = std::clamp<std::int64_t>(c, -lim, lim);
  }
  return out;
}

}  // namespace compso::quant
