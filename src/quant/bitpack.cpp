#include "src/quant/bitpack.hpp"

#include <bit>
#include <stdexcept>

namespace compso::quant {

void BitWriter::write(std::uint64_t value, unsigned bits) {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("BitWriter::write: bits must be in [1, 64]");
  }
  if (bits < 64) value &= (1ULL << bits) - 1;
  bit_count_ += bits;
  while (bits > 0) {
    const unsigned take = std::min(bits, 64 - acc_bits_);
    acc_ |= (take == 64 ? value : (value & ((1ULL << take) - 1))) << acc_bits_;
    acc_bits_ += take;
    value >>= (take == 64 ? 0 : take);
    bits -= take;
    while (acc_bits_ >= 8) {
      bytes_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      acc_bits_ -= 8;
    }
  }
}

void BitWriter::reserve(std::size_t bits) {
  bytes_.reserve(bytes_.size() + (bits + 7) / 8);
}

std::vector<std::uint8_t> BitWriter::take() {
  if (acc_bits_ > 0) bytes_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
  std::vector<std::uint8_t> out = std::move(bytes_);
  bytes_.clear();
  acc_ = 0;
  acc_bits_ = 0;
  bit_count_ = 0;
  return out;
}

std::uint64_t BitReader::read(unsigned bits) {
  if (bits > 64) {
    // A width beyond 64 can only come from a corrupt payload; letting it
    // through would shift `chunk << got` past the accumulator width (UB).
    throw PayloadError("BitReader: bit width out of range");
  }
  std::uint64_t out = 0;
  unsigned got = 0;
  while (got < bits && byte_pos_ < bytes_.size()) {
    const unsigned avail = 8 - bit_pos_;
    const unsigned take = std::min(avail, bits - got);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(bytes_[byte_pos_]) >> bit_pos_) &
        ((1ULL << take) - 1);
    out |= chunk << got;
    got += take;
    bit_pos_ += take;
    if (bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }
  return out;
}

bool BitReader::exhausted() const noexcept { return byte_pos_ >= bytes_.size(); }

unsigned required_bits(std::span<const std::int64_t> codes) noexcept {
  std::uint64_t max_zz = 0;
  for (std::int64_t c : codes) max_zz = std::max(max_zz, zigzag_encode(c));
  const unsigned bits = static_cast<unsigned>(std::bit_width(max_zz));
  return bits == 0 ? 1 : bits;
}

std::vector<std::uint8_t> pack_codes(std::span<const std::int64_t> codes,
                                     unsigned bits) {
  BitWriter w;
  w.reserve(codes.size() * bits);  // exact final size, no re-growth
  for (std::int64_t c : codes) w.write(zigzag_encode(c), bits);
  return w.take();
}

std::vector<std::int64_t> unpack_codes(std::span<const std::uint8_t> bytes,
                                       unsigned bits, std::size_t count) {
  if (bits == 0 || bits > 64) {
    throw PayloadError("unpack_codes: bit width out of range");
  }
  // Validate before the allocation: the blob must actually hold all
  // `count` codes, or a corrupt count would silently decode the missing
  // tail as zeros (and a hostile count would allocate unbounded memory).
  if (count > bytes.size() * 8 / bits) {
    throw PayloadError("unpack_codes: bit-packed stream truncated");
  }
  BitReader r(bytes);
  std::vector<std::int64_t> out(count);
  for (auto& c : out) c = zigzag_decode(r.read(bits));
  return out;
}

}  // namespace compso::quant
