#include "src/quant/rounding.hpp"

#include <cmath>

namespace compso::quant {

const char* to_string(RoundingMode mode) noexcept {
  switch (mode) {
    case RoundingMode::kNearest: return "RN";
    case RoundingMode::kStochastic: return "SR";
    case RoundingMode::kHalfProbability: return "P0.5";
  }
  return "?";
}

std::int64_t round_value(double x, RoundingMode mode,
                         tensor::Rng& rng) noexcept {
  switch (mode) {
    case RoundingMode::kNearest:
      return static_cast<std::int64_t>(std::llround(x));
    case RoundingMode::kStochastic: {
      const double lo = std::floor(x);
      const double frac = x - lo;  // p in Eq. 4
      const bool up = static_cast<double>(rng.uniform()) < frac;
      return static_cast<std::int64_t>(lo) + (up ? 1 : 0);
    }
    case RoundingMode::kHalfProbability: {
      const double lo = std::floor(x);
      if (x == lo) return static_cast<std::int64_t>(lo);
      const bool up = rng.uniform() < 0.5F;
      return static_cast<std::int64_t>(lo) + (up ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace compso::quant
