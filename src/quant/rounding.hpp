#pragma once
// Rounding schemes studied in §4.2: rounding-to-nearest (RN), stochastic
// rounding (SR, Eq. 4), and P0.5 ("mode-2 SR": up/down with probability
// one-half regardless of the fractional part).
//
// Their error distributions differ in exactly the way the paper reports:
// RN and P0.5 give uniform error; SR gives triangular error (and is
// unbiased). Tests assert those shapes via stats::kurtosis.

#include "src/tensor/rng.hpp"

#include <cstdint>

namespace compso::quant {

enum class RoundingMode {
  kNearest,          ///< deterministic, uniform error in [-step/2, step/2].
  kStochastic,       ///< Eq. 4: unbiased, triangular error in (-step, step).
  kHalfProbability,  ///< P0.5: up/down with p = 1/2, uniform error.
};

const char* to_string(RoundingMode mode) noexcept;

/// Rounds `x` (a value already divided by the quantization step) to an
/// integer code under the given mode.
std::int64_t round_value(double x, RoundingMode mode,
                         tensor::Rng& rng) noexcept;

}  // namespace compso::quant
