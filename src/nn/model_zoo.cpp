#include "src/nn/model_zoo.hpp"

#include <array>

namespace compso::nn {

std::size_t ModelShape::total_elements() const noexcept {
  std::size_t n = 0;
  for (const auto& l : layers) n += l.kfac_elements();
  return n;
}

namespace {

void add_conv(ModelShape& m, const std::string& name, std::size_t out_ch,
              std::size_t in_ch, std::size_t k, std::size_t spatial) {
  m.layers.push_back(LayerShape{
      .name = name, .out = out_ch, .in = in_ch * k * k,
      .work_multiplier = spatial});
}

void add_fc(ModelShape& m, const std::string& name, std::size_t out,
            std::size_t in, std::size_t work = 1) {
  m.layers.push_back(
      LayerShape{.name = name, .out = out, .in = in, .work_multiplier = work});
}

void add_embedding(ModelShape& m, const std::string& name, std::size_t out,
                   std::size_t in) {
  m.layers.push_back(LayerShape{
      .name = name, .out = out, .in = in, .work_multiplier = 1,
      .embedding = true});
}

/// ResNet bottleneck stages: {blocks, planes, output feature-map side}.
void add_resnet50_backbone(ModelShape& m, const std::string& prefix) {
  add_conv(m, prefix + "conv1", 64, 3, 7, 112 * 112);
  struct Stage { std::size_t blocks, planes, side; };
  constexpr std::array<Stage, 4> stages{
      {{3, 64, 56}, {4, 128, 28}, {6, 256, 14}, {3, 512, 7}}};
  std::size_t in_ch = 64;
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto [blocks, planes, side] = stages[s];
    const std::size_t spatial = side * side;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::string p =
          prefix + "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      add_conv(m, p + ".conv1", planes, in_ch, 1, spatial);
      add_conv(m, p + ".conv2", planes, planes, 3, spatial);
      add_conv(m, p + ".conv3", planes * 4, planes, 1, spatial);
      if (b == 0) add_conv(m, p + ".downsample", planes * 4, in_ch, 1, spatial);
      in_ch = planes * 4;
    }
  }
}

}  // namespace

ModelShape resnet50_shape() {
  ModelShape m{"ResNet-50", {}};
  add_resnet50_backbone(m, "");
  add_fc(m, "fc", 1000, 2048);
  return m;
}

ModelShape mask_rcnn_shape() {
  // ResNet-50-FPN backbone + RPN + box/mask heads (Detectron2 shapes).
  ModelShape m{"Mask R-CNN", {}};
  add_resnet50_backbone(m, "backbone.");
  // FPN lateral 1x1 + output 3x3 convs over the pyramid levels.
  constexpr std::array<std::size_t, 4> c_outs{256, 512, 1024, 2048};
  constexpr std::array<std::size_t, 4> sides{200, 100, 50, 25};
  for (std::size_t i = 0; i < c_outs.size(); ++i) {
    add_conv(m, "fpn.lateral" + std::to_string(i), 256, c_outs[i], 1,
             sides[i] * sides[i]);
    add_conv(m, "fpn.output" + std::to_string(i), 256, 256, 3,
             sides[i] * sides[i]);
  }
  // RPN (runs over every pyramid level; fold into one spatial factor).
  add_conv(m, "rpn.conv", 256, 256, 3, 200 * 200);
  add_conv(m, "rpn.objectness", 3, 256, 1, 200 * 200);
  add_conv(m, "rpn.anchor_deltas", 12, 256, 1, 200 * 200);
  // Box head over ~512 proposals of 7x7x256 each.
  add_fc(m, "box_head.fc1", 1024, 256 * 7 * 7, 512);
  add_fc(m, "box_head.fc2", 1024, 1024, 512);
  add_fc(m, "box_predictor.cls", 81, 1024, 512);
  add_fc(m, "box_predictor.bbox", 320, 1024, 512);
  // Mask head over ~100 detections of 14x14 maps.
  for (int i = 0; i < 4; ++i) {
    add_conv(m, "mask_head.conv" + std::to_string(i), 256, 256, 3,
             100 * 14 * 14);
  }
  add_conv(m, "mask_head.deconv", 256, 256, 2, 100 * 28 * 28);
  add_conv(m, "mask_head.predictor", 80, 256, 1, 100 * 28 * 28);
  return m;
}

ModelShape bert_large_shape() {
  ModelShape m{"BERT-large", {}};
  constexpr std::size_t h = 1024, ffn = 4096, layers = 24, vocab = 30522;
  constexpr std::size_t seq = 512;
  add_embedding(m, "embeddings.word", h, vocab);
  add_embedding(m, "embeddings.position", h, 512);
  add_embedding(m, "embeddings.token_type", h, 2);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::string p = "encoder.layer" + std::to_string(l);
    add_fc(m, p + ".attn.q", h, h, seq);
    add_fc(m, p + ".attn.k", h, h, seq);
    add_fc(m, p + ".attn.v", h, h, seq);
    add_fc(m, p + ".attn.out", h, h, seq);
    add_fc(m, p + ".ffn.up", ffn, h, seq);
    add_fc(m, p + ".ffn.down", h, ffn, seq);
  }
  add_fc(m, "pooler", h, h);
  return m;
}

ModelShape gpt_neo_125m_shape() {
  ModelShape m{"GPT-neo-125M", {}};
  constexpr std::size_t h = 768, ffn = 3072, layers = 12, vocab = 50257;
  constexpr std::size_t seq = 2048;
  add_embedding(m, "wte", h, vocab);
  add_embedding(m, "wpe", h, 2048);
  for (std::size_t l = 0; l < layers; ++l) {
    const std::string p = "h" + std::to_string(l);
    add_fc(m, p + ".attn.q", h, h, seq);
    add_fc(m, p + ".attn.k", h, h, seq);
    add_fc(m, p + ".attn.v", h, h, seq);
    add_fc(m, p + ".attn.out", h, h, seq);
    add_fc(m, p + ".mlp.up", ffn, h, seq);
    add_fc(m, p + ".mlp.down", h, ffn, seq);
  }
  return m;
}

std::vector<ModelShape> paper_model_shapes() {
  return {resnet50_shape(), mask_rcnn_shape(), bert_large_shape(),
          gpt_neo_125m_shape()};
}

Model make_mlp_classifier(std::size_t features, std::size_t hidden,
                          std::size_t classes, std::size_t depth,
                          tensor::Rng& rng) {
  Model m;
  std::size_t in = features;
  for (std::size_t d = 0; d < depth; ++d) {
    m.add(std::make_unique<Linear>(in, hidden, rng,
                                   "fc" + std::to_string(d)));
    m.add(std::make_unique<Relu>());
    in = hidden;
  }
  m.add(std::make_unique<Linear>(in, classes, rng, "head"));
  return m;
}

Model make_span_model(std::size_t features, std::size_t hidden,
                      std::size_t positions, std::size_t depth,
                      tensor::Rng& rng) {
  Model m;
  std::size_t in = features;
  for (std::size_t d = 0; d < depth; ++d) {
    m.add(std::make_unique<Linear>(in, hidden, rng,
                                   "trunk" + std::to_string(d)));
    m.add(std::make_unique<Tanh>());
    in = hidden;
  }
  m.add(std::make_unique<Linear>(in, 2 * positions, rng, "span_head"));
  return m;
}

}  // namespace compso::nn
