#include "src/nn/attention.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace compso::nn {

TokenLinear::TokenLinear(std::size_t seq, std::size_t in_dim,
                         std::size_t out_dim, tensor::Rng& rng,
                         std::string name)
    : name_(std::move(name)),
      seq_(seq),
      in_(in_dim),
      out_(out_dim),
      weight_({out_dim, in_dim}),
      bias_({out_dim}),
      weight_grad_({out_dim, in_dim}),
      bias_grad_({out_dim}) {
  const float bound = std::sqrt(6.0F / static_cast<float>(in_dim));
  rng.fill_uniform(weight_.span(), -bound, bound);
}

Tensor TokenLinear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.cols() != seq_ * in_) {
    throw std::invalid_argument("TokenLinear::forward: bad input shape");
  }
  const std::size_t batch = x.rows();
  // Reinterpret as (batch*seq, in) token rows (same memory order).
  rows_ = x;
  rows_.reshape({batch * seq_, in_});
  // Scratch reuse: every element is overwritten below.
  tensor::ensure_shape2(rows_aug_, batch * seq_, in_ + 1);
  for (std::size_t r = 0; r < batch * seq_; ++r) {
    for (std::size_t c = 0; c < in_; ++c) {
      rows_aug_.at(r, c) = rows_.at(r, c);
    }
    rows_aug_.at(r, in_) = 1.0F;
  }
  Tensor y;
  tensor::gemm_nt(rows_, weight_, y);  // (batch*seq, out)
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < out_; ++c) y.at(r, c) += bias_[c];
  }
  y.reshape({batch, seq_ * out_});
  return y;
}

Tensor TokenLinear::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.cols() != seq_ * out_ ||
      grad_out.rows() * seq_ != rows_.rows()) {
    throw std::invalid_argument("TokenLinear::backward: bad gradient shape");
  }
  const std::size_t batch = grad_out.rows();
  grad_rows_ = grad_out;
  grad_rows_.reshape({batch * seq_, out_});
  tensor::gemm_tn(grad_rows_, rows_, weight_grad_);
  bias_grad_.fill(0.0F);
  for (std::size_t r = 0; r < grad_rows_.rows(); ++r) {
    for (std::size_t c = 0; c < out_; ++c) {
      bias_grad_[c] += grad_rows_.at(r, c);
    }
  }
  Tensor grad_in;
  tensor::gemm(grad_rows_, weight_, grad_in);  // (batch*seq, in)
  grad_in.reshape({batch, seq_ * in_});
  return grad_in;
}

Tensor SelfAttention::forward(const Tensor& x) {
  if (x.rank() != 2 || x.cols() != seq_ * dim_) {
    throw std::invalid_argument("SelfAttention::forward: bad input shape");
  }
  const std::size_t batch = x.rows();
  input_ = x;
  weights_ = Tensor({batch, seq_ * seq_});
  Tensor y({batch, seq_ * dim_});
  const float scale = 1.0F / std::sqrt(static_cast<float>(dim_));
  for (std::size_t b = 0; b < batch; ++b) {
    // Token matrix view: X (seq, dim).
    Tensor xb({seq_, dim_},
              std::vector<float>(x.data() + b * seq_ * dim_,
                                 x.data() + (b + 1) * seq_ * dim_));
    // S = X X^T * scale, A = row-softmax(S).
    Tensor s;
    tensor::gemm_nt(xb, xb, s);
    for (std::size_t i = 0; i < seq_; ++i) {
      float maxv = -1e30F;
      for (std::size_t j = 0; j < seq_; ++j) {
        s.at(i, j) *= scale;
        maxv = std::max(maxv, s.at(i, j));
      }
      double denom = 0.0;
      for (std::size_t j = 0; j < seq_; ++j) {
        denom += std::exp(static_cast<double>(s.at(i, j) - maxv));
      }
      for (std::size_t j = 0; j < seq_; ++j) {
        weights_.at(b, i * seq_ + j) = static_cast<float>(
            std::exp(static_cast<double>(s.at(i, j) - maxv)) / denom);
      }
    }
    // Y = A X.
    Tensor a({seq_, seq_},
             std::vector<float>(weights_.data() + b * seq_ * seq_,
                                weights_.data() + (b + 1) * seq_ * seq_));
    Tensor yb;
    tensor::gemm(a, xb, yb);
    std::copy(yb.span().begin(), yb.span().end(),
              y.data() + b * seq_ * dim_);
  }
  return y;
}

Tensor SelfAttention::backward(const Tensor& grad_out) {
  const std::size_t batch = input_.rows();
  if (grad_out.rank() != 2 || grad_out.rows() != batch ||
      grad_out.cols() != seq_ * dim_) {
    throw std::invalid_argument("SelfAttention::backward: bad gradient shape");
  }
  Tensor grad_in({batch, seq_ * dim_});
  const float scale = 1.0F / std::sqrt(static_cast<float>(dim_));
  for (std::size_t b = 0; b < batch; ++b) {
    Tensor xb({seq_, dim_},
              std::vector<float>(input_.data() + b * seq_ * dim_,
                                 input_.data() + (b + 1) * seq_ * dim_));
    Tensor a({seq_, seq_},
             std::vector<float>(weights_.data() + b * seq_ * seq_,
                                weights_.data() + (b + 1) * seq_ * seq_));
    Tensor g({seq_, dim_},
             std::vector<float>(grad_out.data() + b * seq_ * dim_,
                                grad_out.data() + (b + 1) * seq_ * dim_));
    // Value path: dX += A^T G.
    Tensor dx;
    tensor::gemm_tn(a, g, dx);
    // dA = G X^T.
    Tensor da;
    tensor::gemm_nt(g, xb, da);
    // Softmax backward per row: dS_ij = a_ij (da_ij - sum_k a_ik da_ik).
    Tensor ds({seq_, seq_});
    for (std::size_t i = 0; i < seq_; ++i) {
      double dot = 0.0;
      for (std::size_t k = 0; k < seq_; ++k) {
        dot += static_cast<double>(a.at(i, k)) * da.at(i, k);
      }
      for (std::size_t j = 0; j < seq_; ++j) {
        ds.at(i, j) = static_cast<float>(
            a.at(i, j) * (da.at(i, j) - dot) * scale);
      }
    }
    // S = scale * X X^T (scale folded into ds above):
    // dX += dS X + dS^T X.
    Tensor t1, t2;
    tensor::gemm(ds, xb, t1);
    tensor::gemm_tn(ds, xb, t2);
    for (std::size_t i = 0; i < dx.size(); ++i) {
      dx[i] += t1[i] + t2[i];
    }
    std::copy(dx.span().begin(), dx.span().end(),
              grad_in.data() + b * seq_ * dim_);
  }
  return grad_in;
}

Model make_transformer_classifier(std::size_t seq, std::size_t features,
                                  std::size_t dim, std::size_t classes,
                                  std::size_t depth, tensor::Rng& rng) {
  Model m;
  // Token embedding: per-token features -> dim.
  m.add(std::make_unique<TokenLinear>(seq, features, dim, rng, "embed"));
  for (std::size_t d = 0; d < depth; ++d) {
    m.add(std::make_unique<SelfAttention>(seq, dim,
                                          "attn" + std::to_string(d)));
    m.add(std::make_unique<TokenLinear>(seq, dim, dim, rng,
                                        "ffn" + std::to_string(d)));
    m.add(std::make_unique<Tanh>());
  }
  m.add(std::make_unique<Linear>(seq * dim, classes, rng, "head"));
  return m;
}

}  // namespace compso::nn
