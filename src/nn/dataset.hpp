#pragma once
// Synthetic datasets for the convergence experiments (Fig. 6, Table 1).
//
// These stand in for ImageNet/COCO/Pile/SQuAD (see DESIGN.md): what the
// convergence experiments measure — KFAC's iteration advantage over SGD
// and the accuracy impact of compression error — are optimizer/compressor
// properties that manifest on any non-trivial learning problem.

#include "src/tensor/rng.hpp"
#include "src/tensor/tensor.hpp"

#include <vector>

namespace compso::nn {

/// A classification batch.
struct Batch {
  tensor::Tensor x;         ///< (batch, features)
  std::vector<int> labels;  ///< length batch
};

/// Gaussian-mixture classification: `classes` clusters in `features` dims
/// with per-class means on a noisy simplex; within-class noise controls
/// difficulty.
class ClusterDataset {
 public:
  ClusterDataset(std::size_t features, std::size_t classes, float noise,
                 std::uint64_t seed);

  Batch sample(std::size_t batch, tensor::Rng& rng) const;
  std::size_t features() const noexcept { return features_; }
  std::size_t classes() const noexcept { return classes_; }

 private:
  std::size_t features_;
  std::size_t classes_;
  float noise_;
  tensor::Tensor means_;  ///< (classes, features)
};

/// Span-extraction proxy for the SQuAD fine-tuning benchmark (Table 1):
/// the input encodes a "context" of `positions` slots; exactly one
/// contiguous span [start, end] is marked by a planted linear pattern.
/// The model predicts start and end positions (two classification heads
/// share the trunk; here they are folded into a single 2*positions-way
/// output). F1 / exact match are computed like SQuAD's token-overlap
/// metrics.
class SpanDataset {
 public:
  SpanDataset(std::size_t positions, std::size_t features, float noise,
              std::uint64_t seed);

  struct SpanBatch {
    tensor::Tensor x;         ///< (batch, features)
    std::vector<int> start;   ///< gold start per sample
    std::vector<int> end;     ///< gold end per sample
  };

  SpanBatch sample(std::size_t batch, tensor::Rng& rng) const;
  std::size_t positions() const noexcept { return positions_; }
  std::size_t features() const noexcept { return features_; }

 private:
  std::size_t positions_;
  std::size_t features_;
  float noise_;
  tensor::Tensor start_pattern_;  ///< (positions, features)
  tensor::Tensor end_pattern_;    ///< (positions, features)
};

/// SQuAD-style metrics from predicted/gold spans.
struct SpanMetrics {
  double f1 = 0.0;
  double exact_match = 0.0;
};
SpanMetrics span_metrics(const std::vector<int>& pred_start,
                         const std::vector<int>& pred_end,
                         const std::vector<int>& gold_start,
                         const std::vector<int>& gold_end);

}  // namespace compso::nn
