#pragma once
// 2-D convolution via im2col + GEMM — the formulation KFAC uses for conv
// layers (the Kronecker factors come from the im2col patch matrix and the
// per-position output gradients, so the KFAC hooks are exactly the Linear
// ones with batch*positions rows).

#include "src/nn/layer.hpp"
#include "src/nn/model.hpp"

namespace compso::nn {

/// Conv2d over NCHW input flattened to (batch, in_ch*H*W) rows.
/// 'same' padding, stride 1. Weight is (out_ch, in_ch*k*k).
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t height, std::size_t width,
         tensor::Rng& rng, std::string name = "conv");

  std::string_view name() const noexcept override { return name_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  bool has_params() const noexcept override { return true; }
  Tensor* weight() noexcept override { return &weight_; }
  Tensor* bias() noexcept override { return &bias_; }
  Tensor* weight_grad() noexcept override { return &weight_grad_; }
  Tensor* bias_grad() noexcept override { return &bias_grad_; }
  const Tensor* kfac_input() const noexcept override { return &cols_aug_; }
  const Tensor* kfac_grad_output() const noexcept override {
    return &grad_cols_;
  }

  std::size_t out_features() const noexcept {
    return out_ch_ * height_ * width_;
  }
  std::size_t in_features() const noexcept {
    return in_ch_ * height_ * width_;
  }

 private:
  /// (batch, in_ch*H*W) -> (batch*H*W, in_ch*k*k) patch matrix, written
  /// into `cols` (reusing its allocation when the shape is unchanged).
  void im2col_into(const Tensor& x, Tensor& cols) const;
  /// Inverse scatter-add of im2col for the input gradient.
  Tensor col2im(const Tensor& cols, std::size_t batch) const;

  std::string name_;
  std::size_t in_ch_, out_ch_, k_, height_, width_;
  Tensor weight_;       // (out_ch, in_ch*k*k)
  Tensor bias_;         // (out_ch)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cols_;         // (batch*H*W, in_ch*k*k) last forward patches
  Tensor cols_aug_;     // with homogeneous column (KFAC A factor input)
  Tensor grad_cols_;    // (batch*H*W, out_ch) last backward grads
};

/// Small trainable CNN classifier: conv -> relu -> conv -> relu -> fc.
/// Input is (batch, channels*side*side).
Model make_cnn_classifier(std::size_t channels, std::size_t side,
                          std::size_t conv_channels, std::size_t classes,
                          tensor::Rng& rng);

}  // namespace compso::nn
