#include "src/nn/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace compso::nn {

ClusterDataset::ClusterDataset(std::size_t features, std::size_t classes,
                               float noise, std::uint64_t seed)
    : features_(features),
      classes_(classes),
      noise_(noise),
      means_({classes, features}) {
  tensor::Rng rng(seed);
  rng.fill_normal(means_.span(), 0.0F, 1.0F);
}

Batch ClusterDataset::sample(std::size_t batch, tensor::Rng& rng) const {
  Batch b;
  b.x = tensor::Tensor({batch, features_});
  b.labels.resize(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const auto y = static_cast<int>(rng.uniform_index(classes_));
    b.labels[r] = y;
    for (std::size_t c = 0; c < features_; ++c) {
      b.x.at(r, c) =
          means_.at(static_cast<std::size_t>(y), c) + rng.normal(0.0F, noise_);
    }
  }
  return b;
}

SpanDataset::SpanDataset(std::size_t positions, std::size_t features,
                         float noise, std::uint64_t seed)
    : positions_(positions),
      features_(features),
      noise_(noise),
      start_pattern_({positions, features}),
      end_pattern_({positions, features}) {
  tensor::Rng rng(seed ^ 0x5350414EULL);
  rng.fill_normal(start_pattern_.span(), 0.0F, 1.0F);
  rng.fill_normal(end_pattern_.span(), 0.0F, 1.0F);
}

SpanDataset::SpanBatch SpanDataset::sample(std::size_t batch,
                                           tensor::Rng& rng) const {
  SpanBatch b;
  b.x = tensor::Tensor({batch, features_});
  b.start.resize(batch);
  b.end.resize(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    const auto s = static_cast<int>(rng.uniform_index(positions_));
    const auto max_len = positions_ - static_cast<std::size_t>(s);
    const auto len = 1 + static_cast<int>(
                             rng.uniform_index(std::min<std::size_t>(max_len, 5)));
    const int e = std::min<int>(s + len - 1, static_cast<int>(positions_) - 1);
    b.start[r] = s;
    b.end[r] = e;
    // x = start_pattern[s] + end_pattern[e] + noise.
    for (std::size_t c = 0; c < features_; ++c) {
      b.x.at(r, c) = start_pattern_.at(static_cast<std::size_t>(s), c) +
                     end_pattern_.at(static_cast<std::size_t>(e), c) +
                     rng.normal(0.0F, noise_);
    }
  }
  return b;
}

SpanMetrics span_metrics(const std::vector<int>& pred_start,
                         const std::vector<int>& pred_end,
                         const std::vector<int>& gold_start,
                         const std::vector<int>& gold_end) {
  if (pred_start.size() != gold_start.size() ||
      pred_end.size() != gold_end.size() ||
      pred_start.size() != pred_end.size()) {
    throw std::invalid_argument("span_metrics: size mismatch");
  }
  SpanMetrics m;
  const std::size_t n = pred_start.size();
  if (n == 0) return m;
  double f1_sum = 0.0;
  std::size_t exact = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int ps = std::min(pred_start[i], pred_end[i]);
    const int pe = std::max(pred_start[i], pred_end[i]);
    const int gs = gold_start[i];
    const int ge = gold_end[i];
    if (ps == gs && pe == ge) ++exact;
    const int inter =
        std::max(0, std::min(pe, ge) - std::max(ps, gs) + 1);
    const int pred_len = pe - ps + 1;
    const int gold_len = ge - gs + 1;
    if (inter > 0) {
      const double prec = static_cast<double>(inter) / pred_len;
      const double rec = static_cast<double>(inter) / gold_len;
      f1_sum += 2.0 * prec * rec / (prec + rec);
    }
  }
  m.f1 = 100.0 * f1_sum / static_cast<double>(n);
  m.exact_match = 100.0 * static_cast<double>(exact) / static_cast<double>(n);
  return m;
}

}  // namespace compso::nn
