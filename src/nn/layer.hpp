#pragma once
// Minimal NN layer abstraction with the two hooks KFAC needs (paper Eq. 1):
// each trainable layer exposes its last input activations a_{l-1} and its
// last output-gradient g_l, from which the Kronecker factors A = a a^T and
// G = g g^T are accumulated.

#include "src/tensor/rng.hpp"
#include "src/tensor/tensor.hpp"

#include <memory>
#include <string>
#include <string_view>

namespace compso::nn {

using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Forward pass; `x` is (batch, in_features).
  virtual Tensor forward(const Tensor& x) = 0;

  /// Backward pass; `grad_out` is (batch, out_features); returns
  /// (batch, in_features) and stores parameter gradients internally.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// True for layers with trainable parameters (KFAC targets these).
  virtual bool has_params() const noexcept { return false; }

  /// Parameter / gradient access (only when has_params()).
  virtual Tensor* weight() noexcept { return nullptr; }
  virtual Tensor* bias() noexcept { return nullptr; }
  virtual Tensor* weight_grad() noexcept { return nullptr; }
  virtual Tensor* bias_grad() noexcept { return nullptr; }

  /// KFAC hooks: activations into this layer (with the bias-homogeneous
  /// column appended) and gradients out of it, captured last step.
  virtual const Tensor* kfac_input() const noexcept { return nullptr; }
  virtual const Tensor* kfac_grad_output() const noexcept { return nullptr; }
};

/// Fully-connected layer: y = x W^T + b. Weight is (out, in).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, tensor::Rng& rng,
         std::string name = "linear");

  std::string_view name() const noexcept override { return name_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  bool has_params() const noexcept override { return true; }
  Tensor* weight() noexcept override { return &weight_; }
  Tensor* bias() noexcept override { return &bias_; }
  Tensor* weight_grad() noexcept override { return &weight_grad_; }
  Tensor* bias_grad() noexcept override { return &bias_grad_; }
  const Tensor* kfac_input() const noexcept override { return &input_aug_; }
  const Tensor* kfac_grad_output() const noexcept override {
    return &grad_out_;
  }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::string name_;
  std::size_t in_, out_;
  Tensor weight_;       // (out, in)
  Tensor bias_;         // (out)
  Tensor weight_grad_;  // (out, in)
  Tensor bias_grad_;    // (out)
  Tensor input_;        // (batch, in)  last forward input
  Tensor input_aug_;    // (batch, in+1) with homogeneous 1s column (KFAC)
  Tensor grad_out_;     // (batch, out) last backward grad
};

/// ReLU activation.
class Relu final : public Layer {
 public:
  std::string_view name() const noexcept override { return "relu"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor mask_;
};

/// Tanh activation.
class Tanh final : public Layer {
 public:
  std::string_view name() const noexcept override { return "tanh"; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor out_;
};

}  // namespace compso::nn
