#include "src/nn/layer.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace compso::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               tensor::Rng& rng, std::string name)
    : name_(std::move(name)),
      in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  // Kaiming-uniform-ish init.
  const float bound = std::sqrt(6.0F / static_cast<float>(in_features));
  rng.fill_uniform(weight_.span(), -bound, bound);
  bias_.fill(0.0F);
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.cols() != in_) {
    throw std::invalid_argument("Linear::forward: bad input shape");
  }
  input_ = x;
  // Augmented input for KFAC's A factor: [x | 1]. Reuses the previous
  // step's allocation when the batch shape is unchanged (every element is
  // overwritten below).
  tensor::ensure_shape2(input_aug_, x.rows(), in_ + 1);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < in_; ++c) input_aug_.at(r, c) = x.at(r, c);
    input_aug_.at(r, in_) = 1.0F;
  }
  Tensor y;
  tensor::gemm_nt(x, weight_, y);  // (batch, out)
  for (std::size_t r = 0; r < y.rows(); ++r) {
    for (std::size_t c = 0; c < out_; ++c) y.at(r, c) += bias_[c];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.cols() != out_ ||
      grad_out.rows() != input_.rows()) {
    throw std::invalid_argument("Linear::backward: bad gradient shape");
  }
  grad_out_ = grad_out;
  // dW = grad_out^T x ; db = sum_rows(grad_out) ; dx = grad_out W.
  tensor::gemm_tn(grad_out, input_, weight_grad_);
  bias_grad_.fill(0.0F);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    for (std::size_t c = 0; c < out_; ++c) {
      bias_grad_[c] += grad_out.at(r, c);
    }
  }
  Tensor grad_in;
  tensor::gemm(grad_out, weight_, grad_in);
  return grad_in;
}

Tensor Relu::forward(const Tensor& x) {
  mask_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0F) y[i] = 0.0F;
    mask_[i] = x[i] > 0.0F ? 1.0F : 0.0F;
  }
  return y;
}

Tensor Relu::backward(const Tensor& grad_out) {
  if (grad_out.size() != mask_.size()) {
    throw std::invalid_argument("Relu::backward: shape mismatch");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask_[i];
  return g;
}

Tensor Tanh::forward(const Tensor& x) {
  out_ = x;
  for (auto& v : out_.span()) v = std::tanh(v);
  return out_;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (grad_out.size() != out_.size()) {
    throw std::invalid_argument("Tanh::backward: shape mismatch");
  }
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0F - out_[i] * out_[i];
  return g;
}

}  // namespace compso::nn
