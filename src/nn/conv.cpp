#include "src/nn/conv.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <cmath>
#include <stdexcept>

namespace compso::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t height, std::size_t width,
               tensor::Rng& rng, std::string name)
    : name_(std::move(name)),
      in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      height_(height),
      width_(width),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels * kernel * kernel}),
      bias_grad_({out_channels}) {
  if (kernel % 2 == 0) {
    throw std::invalid_argument("Conv2d: kernel must be odd ('same' padding)");
  }
  const float bound =
      std::sqrt(6.0F / static_cast<float>(in_channels * kernel * kernel));
  rng.fill_uniform(weight_.span(), -bound, bound);
}

void Conv2d::im2col_into(const Tensor& x, Tensor& cols) const {
  const std::size_t batch = x.rows();
  const std::size_t positions = height_ * width_;
  const std::size_t patch = in_ch_ * k_ * k_;
  const auto pad = static_cast<long>(k_ / 2);
  // Scratch reuse: every element (including padding zeros) is written.
  tensor::ensure_shape2(cols, batch * positions, patch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* img = x.data() + b * in_ch_ * positions;
    for (std::size_t oy = 0; oy < height_; ++oy) {
      for (std::size_t ox = 0; ox < width_; ++ox) {
        float* row = cols.data() + (b * positions + oy * width_ + ox) * patch;
        std::size_t p = 0;
        for (std::size_t c = 0; c < in_ch_; ++c) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const long iy = static_cast<long>(oy + ky) - pad;
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const long ix = static_cast<long>(ox + kx) - pad;
              row[p++] =
                  (iy >= 0 && iy < static_cast<long>(height_) && ix >= 0 &&
                   ix < static_cast<long>(width_))
                      ? img[c * positions +
                            static_cast<std::size_t>(iy) * width_ +
                            static_cast<std::size_t>(ix)]
                      : 0.0F;
            }
          }
        }
      }
    }
  }
}

Tensor Conv2d::col2im(const Tensor& cols, std::size_t batch) const {
  const std::size_t positions = height_ * width_;
  const std::size_t patch = in_ch_ * k_ * k_;
  const auto pad = static_cast<long>(k_ / 2);
  Tensor x({batch, in_ch_ * positions});
  for (std::size_t b = 0; b < batch; ++b) {
    float* img = x.data() + b * in_ch_ * positions;
    for (std::size_t oy = 0; oy < height_; ++oy) {
      for (std::size_t ox = 0; ox < width_; ++ox) {
        const float* row =
            cols.data() + (b * positions + oy * width_ + ox) * patch;
        std::size_t p = 0;
        for (std::size_t c = 0; c < in_ch_; ++c) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const long iy = static_cast<long>(oy + ky) - pad;
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const long ix = static_cast<long>(ox + kx) - pad;
              if (iy >= 0 && iy < static_cast<long>(height_) && ix >= 0 &&
                  ix < static_cast<long>(width_)) {
                img[c * positions + static_cast<std::size_t>(iy) * width_ +
                    static_cast<std::size_t>(ix)] += row[p];
              }
              ++p;
            }
          }
        }
      }
    }
  }
  return x;
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 2 || x.cols() != in_features()) {
    throw std::invalid_argument("Conv2d::forward: bad input shape");
  }
  const std::size_t batch = x.rows();
  const std::size_t positions = height_ * width_;
  im2col_into(x, cols_);
  // KFAC A-factor input: [patches | 1]. Scratch reuse: fully overwritten.
  tensor::ensure_shape2(cols_aug_, cols_.rows(), cols_.cols() + 1);
  for (std::size_t r = 0; r < cols_.rows(); ++r) {
    for (std::size_t c = 0; c < cols_.cols(); ++c) {
      cols_aug_.at(r, c) = cols_.at(r, c);
    }
    cols_aug_.at(r, cols_.cols()) = 1.0F;
  }
  // y_cols = cols * W^T: (batch*positions, out_ch).
  Tensor y_cols;
  tensor::gemm_nt(cols_, weight_, y_cols);
  for (std::size_t r = 0; r < y_cols.rows(); ++r) {
    for (std::size_t c = 0; c < out_ch_; ++c) y_cols.at(r, c) += bias_[c];
  }
  // Repack to (batch, out_ch * positions), channel-major like the input.
  Tensor y({batch, out_ch_ * positions});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      for (std::size_t c = 0; c < out_ch_; ++c) {
        y.at(b, c * positions + pos) = y_cols.at(b * positions + pos, c);
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t positions = height_ * width_;
  const std::size_t batch = grad_out.rows();
  if (grad_out.cols() != out_ch_ * positions ||
      cols_.rows() != batch * positions) {
    throw std::invalid_argument("Conv2d::backward: bad gradient shape");
  }
  // Unpack to (batch*positions, out_ch). Scratch reuse: fully overwritten.
  tensor::ensure_shape2(grad_cols_, batch * positions, out_ch_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t pos = 0; pos < positions; ++pos) {
      for (std::size_t c = 0; c < out_ch_; ++c) {
        grad_cols_.at(b * positions + pos, c) =
            grad_out.at(b, c * positions + pos);
      }
    }
  }
  // dW = grad_cols^T * cols; db = column sums of grad_cols.
  tensor::gemm_tn(grad_cols_, cols_, weight_grad_);
  bias_grad_.fill(0.0F);
  for (std::size_t r = 0; r < grad_cols_.rows(); ++r) {
    for (std::size_t c = 0; c < out_ch_; ++c) {
      bias_grad_[c] += grad_cols_.at(r, c);
    }
  }
  // d(cols) = grad_cols * W, then scatter-add back to the input layout.
  Tensor grad_patches;
  tensor::gemm(grad_cols_, weight_, grad_patches);
  return col2im(grad_patches, batch);
}

Model make_cnn_classifier(std::size_t channels, std::size_t side,
                          std::size_t conv_channels, std::size_t classes,
                          tensor::Rng& rng) {
  Model m;
  m.add(std::make_unique<Conv2d>(channels, conv_channels, 3, side, side, rng,
                                 "conv0"));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Conv2d>(conv_channels, conv_channels, 3, side, side,
                                 rng, "conv1"));
  m.add(std::make_unique<Relu>());
  m.add(std::make_unique<Linear>(conv_channels * side * side, classes, rng,
                                 "head"));
  return m;
}

}  // namespace compso::nn
