#include "src/nn/model.hpp"

#include <cmath>
#include <stdexcept>

namespace compso::nn {

Tensor Model::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h);
  return h;
}

void Model::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
}

std::vector<std::size_t> Model::trainable_layers() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i]->has_params()) out.push_back(i);
  }
  return out;
}

std::size_t Model::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    if (!l->has_params()) continue;
    auto* lp = const_cast<Layer*>(l.get());
    if (auto* w = lp->weight()) n += w->size();
    if (auto* b = lp->bias()) n += b->size();
  }
  return n;
}

double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels, Tensor& grad) {
  if (logits.rank() != 2 || logits.rows() != labels.size()) {
    throw std::invalid_argument("softmax_cross_entropy: shape mismatch");
  }
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  grad = Tensor({batch, classes});
  double total = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    // Stable softmax.
    float maxv = logits.at(r, 0);
    for (std::size_t c = 1; c < classes; ++c) {
      maxv = std::max(maxv, logits.at(r, c));
    }
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      denom += std::exp(static_cast<double>(logits.at(r, c) - maxv));
    }
    const int y = labels[r];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const double logp =
        static_cast<double>(logits.at(r, static_cast<std::size_t>(y)) - maxv) -
        std::log(denom);
    total -= logp;
    for (std::size_t c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(r, c) - maxv)) / denom;
      grad.at(r, c) = static_cast<float>(
          (p - (static_cast<std::size_t>(y) == c ? 1.0 : 0.0)) /
          static_cast<double>(batch));
    }
  }
  return total / static_cast<double>(batch);
}

double mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  if (pred.size() != target.size()) {
    throw std::invalid_argument("mse_loss: shape mismatch");
  }
  grad = pred;
  double total = 0.0;
  const double n = static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    total += d * d;
    grad[i] = static_cast<float>(2.0 * d / n);
  }
  return total / n;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2 || logits.rows() != labels.size() || labels.empty()) {
    throw std::invalid_argument("accuracy: shape mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < logits.cols(); ++c) {
      if (logits.at(r, c) > logits.at(r, best)) best = c;
    }
    correct += static_cast<int>(best) == labels[r] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace compso::nn
