#pragma once
// Model zoo, two halves:
//
// 1. Layer-shape tables mirroring the four evaluation models (ResNet-50,
//    Mask R-CNN, BERT-large, GPT-neo-125M). Communication / compression
//    experiments need per-layer KFAC-gradient sizes, not semantics, so a
//    faithful table of (out, in) shapes reproduces the workload. Conv
//    layers appear in their KFAC form: (out_ch, in_ch * k * k).
//
// 2. Small *trainable* proxy models (builders over nn::Model) for the
//    convergence experiments.

#include "src/nn/model.hpp"

#include <string>
#include <vector>

namespace compso::nn {

/// Shape of one trainable layer as KFAC sees it.
struct LayerShape {
  std::string name;
  std::size_t out = 0;
  std::size_t in = 0;
  /// Work per sample relative to one (out x in) GEMM: spatial positions for
  /// conv layers (H*W of the output feature map), sequence length for
  /// transformer blocks, 1 for plain FC heads.
  std::size_t work_multiplier = 1;
  /// Embedding-style layers are lookups: no GEMM work, and KFAC treats
  /// them element-wise (no Kronecker factors / eigendecomposition).
  bool embedding = false;

  /// Elements of the layer's KFAC (preconditioned) gradient: weight plus
  /// the homogeneous bias column.
  std::size_t kfac_elements() const noexcept { return out * (in + 1); }
  std::size_t kfac_bytes() const noexcept {
    return kfac_elements() * sizeof(float);
  }
};

/// Workload descriptor: a named model as a list of layer shapes.
struct ModelShape {
  std::string name;
  std::vector<LayerShape> layers;

  std::size_t total_elements() const noexcept;
  std::size_t total_bytes() const noexcept {
    return total_elements() * sizeof(float);
  }
};

/// The four evaluation workloads (§5 "DNN models").
ModelShape resnet50_shape();
ModelShape mask_rcnn_shape();
ModelShape bert_large_shape();
ModelShape gpt_neo_125m_shape();
/// All four, in the paper's order.
std::vector<ModelShape> paper_model_shapes();

/// --- trainable proxies (convergence experiments) ---

/// MLP classifier: features -> hidden x (depth) -> classes, ReLU trunk.
Model make_mlp_classifier(std::size_t features, std::size_t hidden,
                          std::size_t classes, std::size_t depth,
                          tensor::Rng& rng);

/// Span-extraction model: trunk + a 2*positions output head (first
/// `positions` logits = start head, rest = end head).
Model make_span_model(std::size_t features, std::size_t hidden,
                      std::size_t positions, std::size_t depth,
                      tensor::Rng& rng);

}  // namespace compso::nn
