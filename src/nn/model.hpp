#pragma once
// Sequential model container + losses.

#include "src/nn/layer.hpp"

#include <memory>
#include <vector>

namespace compso::nn {

/// A sequential stack of layers.
class Model {
 public:
  Model() = default;

  Model& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  Tensor forward(const Tensor& x);
  /// Backward from the loss gradient w.r.t. the model output.
  void backward(const Tensor& grad_out);

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) noexcept { return *layers_[i]; }
  const Layer& layer(std::size_t i) const noexcept { return *layers_[i]; }

  /// Indices of layers with trainable parameters.
  std::vector<std::size_t> trainable_layers() const;
  /// Total trainable parameter count.
  std::size_t parameter_count() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Softmax cross-entropy over logits (batch, classes). Returns mean loss;
/// writes d(loss)/d(logits) into `grad` (allocated to logits' shape).
double softmax_cross_entropy(const Tensor& logits,
                             const std::vector<int>& labels, Tensor& grad);

/// Mean squared error; grad as above.
double mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

/// Classification accuracy of logits vs labels.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace compso::nn
