#pragma once
// Transformer building blocks:
//  - TokenLinear: a Linear applied per token (weight sharing across the
//    sequence) — exactly how transformer projections look to KFAC, with
//    factors accumulated over batch*seq rows.
//  - SelfAttention: parameter-free scaled-dot-product mixing
//    y_i = sum_j softmax_j(x_i . x_j / sqrt(d)) x_j, with the full
//    backward through the softmax and both Q/K paths. Learnable
//    projections come from surrounding TokenLinear layers, keeping all
//    trainable parameters where KFAC can precondition them.

#include "src/nn/model.hpp"

namespace compso::nn {

/// Linear over tokens: input (batch, seq*in_d) -> (batch, seq*out_d),
/// one shared (out_d, in_d) weight. Equivalent to a 1x1 convolution over
/// the sequence.
class TokenLinear final : public Layer {
 public:
  TokenLinear(std::size_t seq, std::size_t in_dim, std::size_t out_dim,
              tensor::Rng& rng, std::string name = "token_linear");

  std::string_view name() const noexcept override { return name_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  bool has_params() const noexcept override { return true; }
  Tensor* weight() noexcept override { return &weight_; }
  Tensor* bias() noexcept override { return &bias_; }
  Tensor* weight_grad() noexcept override { return &weight_grad_; }
  Tensor* bias_grad() noexcept override { return &bias_grad_; }
  const Tensor* kfac_input() const noexcept override { return &rows_aug_; }
  const Tensor* kfac_grad_output() const noexcept override {
    return &grad_rows_;
  }

 private:
  std::string name_;
  std::size_t seq_, in_, out_;
  Tensor weight_, bias_, weight_grad_, bias_grad_;
  Tensor rows_;      ///< (batch*seq, in) last forward tokens.
  Tensor rows_aug_;  ///< with the homogeneous column (KFAC).
  Tensor grad_rows_; ///< (batch*seq, out) last backward grads.
};

/// Scaled-dot-product self-attention over (batch, seq*dim) inputs.
class SelfAttention final : public Layer {
 public:
  SelfAttention(std::size_t seq, std::size_t dim,
                std::string name = "attention")
      : name_(std::move(name)), seq_(seq), dim_(dim) {}

  std::string_view name() const noexcept override { return name_; }
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::string name_;
  std::size_t seq_, dim_;
  Tensor input_;    ///< (batch, seq*dim)
  Tensor weights_;  ///< (batch, seq*seq) attention rows, softmaxed.
};

/// Transformer-style classifier: embed -> [attention + token FFN] x depth
/// -> head over the flattened sequence.
Model make_transformer_classifier(std::size_t seq, std::size_t features,
                                  std::size_t dim, std::size_t classes,
                                  std::size_t depth, tensor::Rng& rng);

}  // namespace compso::nn
