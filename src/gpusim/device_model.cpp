#include "src/gpusim/device_model.hpp"

#include <algorithm>

namespace compso::gpusim {

double kernel_time(const DeviceModel& dev, const KernelSpec& spec) noexcept {
  const double bytes =
      static_cast<double>(spec.bytes_read + spec.bytes_written);
  const double eff =
      dev.effective_bandwidth() * std::clamp(spec.bandwidth_efficiency, 1e-3, 1.0);
  const double mem_t = bytes / eff;
  const double compute_t = spec.flops / dev.fp32_flops;
  return dev.kernel_launch_s + std::max(mem_t, compute_t);
}

double pipeline_time(const DeviceModel& dev, const PipelineSpec& p,
                     Dispatch dispatch) noexcept {
  const auto in = p.input_bytes;
  const auto out = p.output_bytes;
  switch (dispatch) {
    case Dispatch::kFusedKernel: {
      // Intermediates live in shared memory / registers, but the input is
      // still swept `memory_passes` times (extrema / histogram / encode).
      KernelSpec k{.bytes_read = static_cast<std::size_t>(
                       static_cast<double>(in) *
                       std::max(p.memory_passes, 1.0)),
                   .bytes_written = out,
                   .flops = p.flops_per_byte * static_cast<double>(in),
                   .bandwidth_efficiency = p.bandwidth_efficiency};
      return kernel_time(dev, k);
    }
    case Dispatch::kSeparateKernels: {
      // Each stage reads and writes a full-size intermediate through HBM.
      double t = 0.0;
      for (std::size_t s = 0; s < p.stages; ++s) {
        const std::size_t stage_out = (s + 1 == p.stages) ? out : in;
        KernelSpec k{.bytes_read = in,
                     .bytes_written = stage_out,
                     .flops = p.flops_per_byte * static_cast<double>(in) /
                              static_cast<double>(p.stages),
                     .bandwidth_efficiency = p.bandwidth_efficiency};
        t += kernel_time(dev, k);
      }
      return t;
    }
    case Dispatch::kFrameworkOps: {
      // Every logical stage expands into several framework tensor ops, each
      // paying dispatch overhead and an HBM round trip.
      double t = 0.0;
      const std::size_t ops = p.stages * std::max<std::size_t>(
                                             p.framework_ops_per_stage, 1);
      for (std::size_t o = 0; o < ops; ++o) {
        const bool last = (o + 1 == ops);
        KernelSpec k{.bytes_read = in,
                     .bytes_written = last ? out : in,
                     .flops = p.flops_per_byte * static_cast<double>(in) /
                              static_cast<double>(ops),
                     .bandwidth_efficiency = p.bandwidth_efficiency};
        t += dev.framework_op_s + kernel_time(dev, k);
      }
      return t;
    }
  }
  return 0.0;
}

double pipeline_throughput(const DeviceModel& dev, const PipelineSpec& p,
                           Dispatch dispatch) noexcept {
  const double t = pipeline_time(dev, p, dispatch);
  if (t <= 0.0) return 0.0;
  return static_cast<double>(p.input_bytes) / t;
}

}  // namespace compso::gpusim
