#pragma once
// Static layer -> thread-block mapping (paper §4.5).
//
// Layer sizes vary wildly, but the *set* of layer sizes is stable across
// iterations, so the mapping from layers to thread blocks (with per-layer
// shared-memory padding so one block never mixes two layers' ranges) is
// computed once at optimizer initialization and reused every iteration.

#include "src/gpusim/device_model.hpp"

#include <cstddef>
#include <vector>

namespace compso::gpusim {

/// One block's slice of one layer.
struct BlockAssignment {
  std::size_t layer = 0;   ///< layer index.
  std::size_t offset = 0;  ///< element offset inside the layer.
  std::size_t count = 0;   ///< elements processed by this block.
};

/// Precomputed mapping reused across iterations.
class LayerBlockMap {
 public:
  /// Builds the mapping: each layer is split into ceil(size/elems_per_block)
  /// blocks; a block is padded (never spans layers) so the range/extrema
  /// computation stays per-layer.
  LayerBlockMap(std::vector<std::size_t> layer_sizes,
                std::size_t elems_per_block);

  const std::vector<BlockAssignment>& blocks() const noexcept {
    return blocks_;
  }
  std::size_t block_count() const noexcept { return blocks_.size(); }
  std::size_t layer_count() const noexcept { return layer_sizes_.size(); }
  const std::vector<std::size_t>& layer_sizes() const noexcept {
    return layer_sizes_;
  }

  /// Padding waste: fraction of block slots that are padding.
  double padding_overhead() const noexcept;
  /// Ratio max/mean of per-block element counts (1.0 = perfectly balanced).
  double imbalance() const noexcept;

 private:
  std::vector<std::size_t> layer_sizes_;
  std::size_t elems_per_block_;
  std::vector<BlockAssignment> blocks_;
};

}  // namespace compso::gpusim
