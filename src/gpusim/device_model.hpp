#pragma once
// Analytic GPU device/timing model.
//
// The paper's §4.5 optimizations (kernel fusion, block reduction +
// warp-level shuffle) and §5.3's Fig. 8 all hinge on two facts the model
// captures explicitly: (1) compression kernels are memory-bound with O(1)
// arithmetic intensity, so time ~ global-memory traffic / HBM bandwidth +
// kernel-launch overhead; (2) framework-dispatched pipelines (PyTorch) pay
// one launch plus a global-memory round trip per tensor op, while a fused
// CUDA kernel pays one launch and keeps intermediates in shared memory /
// registers.

#include <cstddef>
#include <string>

namespace compso::gpusim {

/// Static device parameters (A100-SXM4-40GB preset provided).
struct DeviceModel {
  std::string name = "A100-SXM4-40GB";
  double hbm_bandwidth_Bps = 1.555e12;   ///< 1555 GB/s peak HBM2e.
  double achievable_bw_fraction = 0.85;  ///< streaming kernels reach ~85%.
  double fp32_flops = 19.5e12;           ///< 19.5 TFLOP/s FP32.
  double kernel_launch_s = 4.0e-6;       ///< driver+runtime launch latency.
  double framework_op_s = 12.0e-6;       ///< framework dispatch per op
                                         ///< (PyTorch eager: python + dispatch
                                         ///< + launch).
  std::size_t sm_count = 108;
  std::size_t threads_per_block = 256;
  /// Device-wide instruction throughputs. Per §4.5, shared memory is an
  /// order of magnitude slower than the warp-wide register file (shuffle);
  /// atomics contending on one global address serialize at the L2.
  double shuffle_warp_ops_per_s = 6.0e11;   ///< register-file shuffles.
  double shared_warp_ops_per_s = 6.0e10;    ///< shared-memory accesses.
  double contended_atomic_ops_per_s = 5.0e8;  ///< same-address atomics.

  double effective_bandwidth() const noexcept {
    return hbm_bandwidth_Bps * achievable_bw_fraction;
  }

  static DeviceModel a100() { return {}; }
};

/// Cost description of one logical kernel over `n` input bytes.
struct KernelSpec {
  std::size_t bytes_read = 0;     ///< global memory reads.
  std::size_t bytes_written = 0;  ///< global memory writes.
  double flops = 0.0;             ///< arithmetic work.
  double bandwidth_efficiency = 1.0;  ///< <1 for divergent/random access.
};

/// Time of a single kernel under the roofline: max(memory, compute) +
/// launch overhead.
double kernel_time(const DeviceModel& dev, const KernelSpec& spec) noexcept;

/// How a multi-stage pipeline is dispatched.
enum class Dispatch {
  kFusedKernel,     ///< one launch; intermediates stay on-chip.
  kSeparateKernels, ///< one launch per stage; intermediates round-trip HBM.
  kFrameworkOps,    ///< PyTorch-style: framework overhead per tensor op and
                    ///< each op may itself expand to several kernels.
};

/// Pipeline of `stages`; `framework_ops_per_stage` models eager frameworks
/// that expand one logical stage into several tensor ops.
struct PipelineSpec {
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::size_t stages = 1;
  double flops_per_byte = 0.5;
  double bandwidth_efficiency = 1.0;
  std::size_t framework_ops_per_stage = 4;
  /// Global-memory reads of the input even when fused: compression
  /// pipelines need separate sweeps that cannot share one pass (extrema /
  /// histogram before encoding, entropy-table build, etc.).
  double memory_passes = 1.0;
};

/// End-to-end pipeline time under a dispatch strategy.
double pipeline_time(const DeviceModel& dev, const PipelineSpec& p,
                     Dispatch dispatch) noexcept;

/// Throughput in bytes/s of processing `input_bytes` through the pipeline.
double pipeline_throughput(const DeviceModel& dev, const PipelineSpec& p,
                           Dispatch dispatch) noexcept;

}  // namespace compso::gpusim
