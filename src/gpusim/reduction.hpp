#pragma once
// Extrema / range computation: the functional kernel plus timing models for
// the three GPU strategies §4.5 discusses.
//
// Finding a layer's value range (for Eq. 3 normalization) is a reduction.
// The paper's optimization chain:
//   naive global atomics  ->  block reduction in shared memory
//                         ->  block reduction + warp-level shuffle
// Each step moves the fine-grained combining into a faster storage tier.

#include "src/gpusim/device_model.hpp"
#include "src/tensor/stats.hpp"

#include <span>

namespace compso::gpusim {

enum class ReductionStrategy {
  kGlobalAtomic,      ///< every element updates global extrema atomically.
  kBlockShared,       ///< tree reduction in shared memory per block.
  kBlockWarpShuffle,  ///< warp shuffle first, shared memory only per warp.
};

/// Modeled time to reduce `n` float32 elements to (min, max).
double reduction_time(const DeviceModel& dev, std::size_t n,
                      ReductionStrategy strategy) noexcept;

/// Functional parallel extrema (OpenMP when available). Matches the
/// tree-reduction result bit-for-bit with the sequential one for min/max
/// (order-independent).
tensor::Extrema parallel_extrema(std::span<const float> v) noexcept;

}  // namespace compso::gpusim
