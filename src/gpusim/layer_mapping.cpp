#include "src/gpusim/layer_mapping.hpp"

#include <algorithm>
#include <stdexcept>

namespace compso::gpusim {

LayerBlockMap::LayerBlockMap(std::vector<std::size_t> layer_sizes,
                             std::size_t elems_per_block)
    : layer_sizes_(std::move(layer_sizes)), elems_per_block_(elems_per_block) {
  if (elems_per_block_ == 0) {
    throw std::invalid_argument("LayerBlockMap: elems_per_block must be > 0");
  }
  for (std::size_t l = 0; l < layer_sizes_.size(); ++l) {
    const std::size_t n = layer_sizes_[l];
    for (std::size_t off = 0; off < n; off += elems_per_block_) {
      blocks_.push_back(BlockAssignment{
          .layer = l, .offset = off, .count = std::min(elems_per_block_, n - off)});
    }
  }
}

double LayerBlockMap::padding_overhead() const noexcept {
  if (blocks_.empty()) return 0.0;
  std::size_t used = 0;
  for (const auto& b : blocks_) used += b.count;
  const std::size_t capacity = blocks_.size() * elems_per_block_;
  return 1.0 - static_cast<double>(used) / static_cast<double>(capacity);
}

double LayerBlockMap::imbalance() const noexcept {
  if (blocks_.empty()) return 1.0;
  std::size_t total = 0, max_c = 0;
  for (const auto& b : blocks_) {
    total += b.count;
    max_c = std::max(max_c, b.count);
  }
  const double meanc =
      static_cast<double>(total) / static_cast<double>(blocks_.size());
  return meanc > 0.0 ? static_cast<double>(max_c) / meanc : 1.0;
}

}  // namespace compso::gpusim
