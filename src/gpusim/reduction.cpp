#include "src/gpusim/reduction.hpp"

#include <algorithm>
#include <cmath>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace compso::gpusim {

double reduction_time(const DeviceModel& dev, std::size_t n,
                      ReductionStrategy strategy) noexcept {
  const double nd = static_cast<double>(n);
  const double read_t = nd * 4.0 / dev.effective_bandwidth();
  const double block = static_cast<double>(dev.threads_per_block);
  const double blocks = std::ceil(nd / block);
  // Second-level pass that folds the per-block partials (launch + a tiny
  // shared-memory reduction over `blocks` values).
  const double tail_t = dev.kernel_launch_s +
                        (2.0 * blocks / 32.0) / dev.shared_warp_ops_per_s +
                        blocks * 8.0 / dev.effective_bandwidth();
  switch (strategy) {
    case ReductionStrategy::kGlobalAtomic:
      // Two atomics (min and max) per element, all contending on the same
      // two global addresses: serialized at the L2 atomic unit.
      return dev.kernel_launch_s + read_t +
             2.0 * nd / dev.contended_atomic_ops_per_s;
    case ReductionStrategy::kBlockShared: {
      // Tree reduction in shared memory: ~2n shared accesses total
      // (n/2 + n/4 + ... reads plus writes), issued 32 lanes per warp op.
      const double shared_t =
          (2.0 * nd / 32.0) / dev.shared_warp_ops_per_s;
      return dev.kernel_launch_s + read_t + shared_t + tail_t;
    }
    case ReductionStrategy::kBlockWarpShuffle: {
      // 5 shuffle rounds inside each warp (register file), then one shared
      // write/read per warp to combine across the block.
      const double shuffle_t =
          5.0 * (nd / 32.0) / dev.shuffle_warp_ops_per_s;
      const double shared_t =
          (2.0 * nd / 1024.0) / dev.shared_warp_ops_per_s;
      return dev.kernel_launch_s + read_t + shuffle_t + shared_t + tail_t;
    }
  }
  return 0.0;
}

tensor::Extrema parallel_extrema(std::span<const float> v) noexcept {
  tensor::Extrema e;
  if (v.empty()) return e;
  float lo = v[0], hi = v[0];
#ifdef _OPENMP
#pragma omp parallel for reduction(min : lo) reduction(max : hi) \
    schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(v.size()); ++i) {
    lo = std::min(lo, v[static_cast<std::size_t>(i)]);
    hi = std::max(hi, v[static_cast<std::size_t>(i)]);
  }
#else
  for (float x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
#endif
  e.min = lo;
  e.max = hi;
  e.abs_max = std::max(std::fabs(lo), std::fabs(hi));
  return e;
}

}  // namespace compso::gpusim
