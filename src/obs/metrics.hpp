#pragma once
// MetricsRegistry (DESIGN.md §12): counters, gauges and fixed-bucket
// histograms shared by the whole pipeline — the comm layer, the
// compression engine, the optimizers, the trainers and the bench
// binaries all account into one registry, so a BENCH_*.json and a test
// assertion read the very same cells.
//
// Threading model: counter and histogram cells live in per-thread shards.
// A thread's first touch of a metric name takes the shard mutex to create
// the cell and caches the cell pointer thread-locally; every subsequent
// increment is a single relaxed atomic fetch_add — the lock-free hot
// path. snapshot() merges the shards by summing per name. Because every
// merged quantity is an unsigned integer, the merge is order-independent:
// the snapshot of a run is bit-identical no matter how work was spread
// across threads. (That is why observe() takes integer values —
// nanoseconds, bytes — and why there is no floating-point accumulation
// anywhere in the sharded path.)
//
// Gauges are last-writer-wins and guarded by the registry mutex; they are
// meant for single-threaded reporting points (the tuner's per-candidate
// scores), not for hot paths.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace compso::obs {

class MetricsRegistry {
 public:
  /// Power-of-four bucket boundaries: bucket i counts values v with
  /// 4^(i-1) <= v < 4^i (bucket 0 counts v == 0), saturating in the last
  /// bucket. 16 buckets cover [0, 4^15) — about 1.07e9, i.e. ~1s in
  /// nanoseconds or ~1GB in bytes per observation.
  static constexpr std::size_t kHistogramBuckets = 16;

  struct HistogramSnapshot {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (lock-free after the calling
  /// thread's first touch of the name).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Records one integer observation into the named histogram.
  void observe(std::string_view name, std::uint64_t value);

  /// Sets the named gauge (last writer wins; registry mutex).
  void set_gauge(std::string_view name, double value);

  /// Merged view across every thread's shard. Deterministic: names are
  /// sorted, merged values are integer sums.
  Snapshot snapshot() const;

  /// Merged value of one counter (0 when never touched).
  std::uint64_t counter(std::string_view name) const;

  /// Deterministic JSON document of the snapshot (sorted names, ASCII
  /// only, fully escaped). Byte-identical for identical snapshots.
  std::string to_json() const;

  /// Zeroes every cell and clears the gauges. Existing cells stay
  /// allocated so other threads' cached pointers remain valid; reset is
  /// meant for quiescent points (between runs), not concurrent use.
  void reset();

  static std::size_t bucket_index(std::uint64_t value) noexcept;

 private:
  struct Histogram {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  struct Shard {
    std::mutex m;  ///< guards map structure (cell creation), not values.
    std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
             std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists;
  };

  Shard& local_shard() const;
  std::atomic<std::uint64_t>& counter_cell(std::string_view name) const;
  Histogram& histogram_cell(std::string_view name) const;

  const std::uint64_t id_;  ///< process-unique; keys the thread caches.
  mutable std::mutex mu_;   ///< guards shards_ vector and gauges_.
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, double> gauges_;
};

}  // namespace compso::obs
