#include "src/obs/metrics.hpp"

#include "src/obs/json.hpp"

#include <bit>

namespace compso::obs {

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

std::size_t MetricsRegistry::bucket_index(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(value));
  return std::min(kHistogramBuckets - 1, (width + 1) / 2);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  // Cache keyed by the registry's process-unique id (never an address, so
  // a destroyed registry's stale entries can never be revived by a new
  // registry landing at the same address).
  thread_local std::map<std::uint64_t, Shard*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::move(owned));
  }
  cache.emplace(id_, shard);
  return *shard;
}

std::atomic<std::uint64_t>& MetricsRegistry::counter_cell(
    std::string_view name) const {
  Shard& shard = local_shard();
  // Lock-free fast path: only this thread ever inserts into its own
  // shard, so a lookup that finds the cell needs no lock (snapshot()
  // readers also only read the structure, under the shard mutex).
  auto it = shard.counters.find(name);
  if (it == shard.counters.end()) {
    std::lock_guard<std::mutex> lock(shard.m);
    it = shard.counters
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return *it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram_cell(
    std::string_view name) const {
  Shard& shard = local_shard();
  auto it = shard.hists.find(name);
  if (it == shard.hists.end()) {
    std::lock_guard<std::mutex> lock(shard.m);
    it = shard.hists.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  counter_cell(name).fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::string_view name, std::uint64_t value) {
  Histogram& h = histogram_cell(name);
  h.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.gauges = gauges_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->m);
    for (const auto& [name, cell] : shard->counters) {
      snap.counters[name] += cell->load(std::memory_order_relaxed);
    }
    for (const auto& [name, hist] : shard->hists) {
      HistogramSnapshot& out = snap.histograms[name];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += hist->buckets[b].load(std::memory_order_relaxed);
      }
      out.count += hist->count.load(std::memory_order_relaxed);
      out.sum += hist->sum.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->m);
    const auto it = shard->counters.find(name);
    if (it != shard->counters.end()) {
      total += it->second->load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": ";
    append_json_double(out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": ";
    out += std::to_string(hist.count);
    out += ", \"sum\": ";
    out += std::to_string(hist.sum);
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(hist.buckets[b]);
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.clear();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->m);
    for (auto& [name, cell] : shard->counters) {
      cell->store(0, std::memory_order_relaxed);
    }
    for (auto& [name, hist] : shard->hists) {
      for (auto& b : hist->buckets) b.store(0, std::memory_order_relaxed);
      hist->count.store(0, std::memory_order_relaxed);
      hist->sum.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace compso::obs
