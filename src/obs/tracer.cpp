#include "src/obs/tracer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/obs/json.hpp"

namespace compso::obs {

// ---------------------------------------------------------------- Span

Tracer::Span::Span(Tracer* tracer, std::uint32_t track, std::string name,
                   std::string cat)
    : tracer_(tracer),
      track_(track),
      name_(std::move(name)),
      cat_(std::move(cat)) {
  if (tracer_ == nullptr) return;
  ts_ns_ = tracer_->now_rel_ns();
  std::lock_guard<std::mutex> lock(tracer_->mu_);
  seq_ = tracer_->claim_seq_locked(track_);
}

Tracer::Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      track_(other.track_),
      seq_(other.seq_),
      ts_ns_(other.ts_ns_),
      name_(std::move(other.name_)),
      cat_(std::move(other.cat_)),
      args_(std::move(other.args_)) {
  other.tracer_ = nullptr;
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    track_ = other.track_;
    seq_ = other.seq_;
    ts_ns_ = other.ts_ns_;
    name_ = std::move(other.name_);
    cat_ = std::move(other.cat_);
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Tracer::Span::~Span() { end(); }

void Tracer::Span::add_arg(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(std::string(key), value);
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const std::uint64_t end_ns = tracer->now_rel_ns();
  Event e;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.track = track_;
  e.seq = seq_;
  e.ts_ns = ts_ns_;
  e.dur_ns = end_ns >= ts_ns_ ? end_ns - ts_ns_ : 0;
  e.phase = 'X';
  e.args = std::move(args_);
  tracer->record(std::move(e));
}

// -------------------------------------------------------------- Tracer

Tracer::Tracer() : clock_(&fallback_clock_) { reset(); }

Tracer::Tracer(const Clock* clock)
    : clock_(clock != nullptr ? clock : &fallback_clock_) {
  reset();
}

void Tracer::set_clock(const Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock != nullptr ? clock : &fallback_clock_;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_seq_.clear();
  origin_ns_ = clock_->now_ns();
}

std::uint64_t Tracer::now_rel_ns() const {
  const std::uint64_t now = clock_->now_ns();
  std::lock_guard<std::mutex> lock(mu_);
  return now >= origin_ns_ ? now - origin_ns_ : 0;
}

std::uint64_t Tracer::claim_seq_locked(std::uint32_t track) {
  return next_seq_[track]++;
}

void Tracer::record(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::complete(std::uint32_t track, std::string name, std::string cat,
                      std::uint64_t ts_ns, std::uint64_t dur_ns, Args args) {
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.track = track;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.phase = 'X';
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = claim_seq_locked(track);
  events_.push_back(std::move(e));
}

void Tracer::instant(std::uint32_t track, std::string name, std::string cat,
                     Args args) {
  const std::uint64_t ts = now_rel_ns();
  Event e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.track = track;
  e.ts_ns = ts;
  e.phase = 'i';
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = claim_seq_locked(track);
  events_.push_back(std::move(e));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<Tracer::Event> Tracer::events() const {
  std::vector<Event> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = events_;
  }
  std::stable_sort(snap.begin(), snap.end(),
                   [](const Event& a, const Event& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.seq < b.seq;
                   });
  return snap;
}

namespace {

// Chrome traces use microsecond timestamps. Print µs with three decimals
// straight from the integer nanosecond value — no double formatting, so
// the text is a pure function of the integer.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  out += buf;
}

}  // namespace

std::string Tracer::trace_json() const {
  const std::vector<Event> sorted = events();
  std::string out;
  out += "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  for (const Event& e : sorted) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": ";
    append_json_string(out, e.name);
    out += ", \"cat\": ";
    append_json_string(out, e.cat.empty() ? std::string_view("compso")
                                          : std::string_view(e.cat));
    out += ", \"ph\": \"";
    out.push_back(e.phase);
    out += "\", \"pid\": 0, \"tid\": ";
    out += std::to_string(e.track);
    out += ", \"ts\": ";
    append_us(out, e.ts_ns);
    if (e.phase == 'X') {
      out += ", \"dur\": ";
      append_us(out, e.dur_ns);
    } else {
      out += ", \"s\": \"t\"";
    }
    out += ", \"args\": {\"seq\": ";
    out += std::to_string(e.seq);
    for (const auto& [key, value] : e.args) {
      out += ", ";
      append_json_string(out, key);
      out += ": ";
      out += std::to_string(value);
    }
    out += "}}";
  }
  out += first ? "]\n}\n" : "\n]\n}\n";
  return out;
}

// ---------------------------------------------------------- validation

std::optional<std::string> validate_trace(std::string_view json) {
  const std::optional<JsonValue> doc = parse_json(json);
  if (!doc) return "trace is not valid JSON";
  if (!doc->is(JsonValue::Kind::kObject)) return "top level is not an object";
  const JsonValue* events = doc->find("traceEvents");
  if (events == nullptr) return "missing traceEvents";
  if (!events->is(JsonValue::Kind::kArray)) return "traceEvents is not an array";
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = " (event " + std::to_string(i) + ")";
    if (!e.is(JsonValue::Kind::kObject)) return "event is not an object" + at;
    const JsonValue* name = e.find("name");
    if (name == nullptr || !name->is(JsonValue::Kind::kString)) {
      return "event missing string name" + at;
    }
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || !ph->is(JsonValue::Kind::kString) ||
        (ph->string != "X" && ph->string != "i")) {
      return "event missing ph \"X\"/\"i\"" + at;
    }
    const JsonValue* ts = e.find("ts");
    if (ts == nullptr || !ts->is(JsonValue::Kind::kNumber) ||
        ts->number < 0.0) {
      return "event missing non-negative ts" + at;
    }
    if (ph->string == "X") {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || !dur->is(JsonValue::Kind::kNumber) ||
          dur->number < 0.0) {
        return "complete event missing non-negative dur" + at;
      }
    }
    for (const char* field : {"pid", "tid"}) {
      const JsonValue* v = e.find(field);
      if (v == nullptr || !v->is(JsonValue::Kind::kNumber)) {
        return std::string("event missing numeric ") + field + at;
      }
    }
  }
  return std::nullopt;
}

}  // namespace compso::obs
