#pragma once
// Span tracer (DESIGN.md §12). Records complete ("X") and instant ("i")
// events on integer tracks and exports them as a chrome://tracing /
// Perfetto-compatible trace.json.
//
// Determinism contract: every event carries a (track, seq) pair. seq is
// claimed when the event begins, at a deterministic program point (span
// construction on the optimizer thread, engine-task submission), and the
// export sorts by (track, seq) — never by timestamp and never by
// completion order. Under a deterministic Clock the exported document is
// therefore byte-identical at any engine thread count, because both the
// payload (names, integer args, simulated timestamps) and the order are
// functions of the program, not of the scheduler.
//
// Timestamps are stored relative to the origin captured by reset(), so a
// tracer attached at step N of a resumed run exports the same document
// as one attached at step N of an uninterrupted run.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/clock.hpp"

namespace compso::obs {

/// Track 0 is the main (optimizer) thread; engine task spans use
/// kTaskTrackBase + task id so each task's events sort independently of
/// which worker executed it.
inline constexpr std::uint32_t kMainTrack = 0;
inline constexpr std::uint32_t kTaskTrackBase = 1;
/// Step-scheduler tracks (optim::StepGraph): the graph's main-thread
/// tasks record on kSchedTrackBase and each graph task t on
/// kSchedTrackBase + 1 + t, far above any realistic engine task id so
/// the two families never collide within a step.
inline constexpr std::uint32_t kSchedTrackBase = 0x40000000U;

class Tracer {
 public:
  /// Integer event arguments (bytes, counts, ids). Integers only, so the
  /// exported args never depend on floating-point formatting.
  using Args = std::vector<std::pair<std::string, std::uint64_t>>;

  struct Event {
    std::string name;
    std::string cat;
    std::uint32_t track = kMainTrack;
    std::uint64_t seq = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    char phase = 'X';  ///< 'X' complete, 'i' instant.
    Args args;
  };

  /// RAII span: claims its (track, seq) and start timestamp on
  /// construction, records the complete event on destruction (or end()).
  /// A default-constructed Span is inert — the null-safe path when no
  /// tracer is attached.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, std::uint32_t track, std::string name,
         std::string cat);
    Span(Span&& other) noexcept;
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    void add_arg(std::string_view key, std::uint64_t value);
    /// Records the event now; the destructor becomes a no-op.
    void end();

   private:
    Tracer* tracer_ = nullptr;
    std::uint32_t track_ = kMainTrack;
    std::uint64_t seq_ = 0;
    std::uint64_t ts_ns_ = 0;
    std::string name_;
    std::string cat_;
    Args args_;
  };

  Tracer();
  explicit Tracer(const Clock* clock);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Points the tracer at a new time source (not owned; pass nullptr to
  /// fall back to the built-in steady clock). Call reset() afterwards so
  /// the origin is re-read from the new clock.
  void set_clock(const Clock* clock);

  const Clock& clock() const noexcept { return *clock_; }

  /// Drops all events, re-reads the time origin, and restarts every
  /// track's sequence counter.
  void reset();

  /// Current time relative to the reset() origin (saturating at 0 if the
  /// clock moved backwards across a set_clock).
  std::uint64_t now_rel_ns() const;

  Span span(std::uint32_t track, std::string name, std::string cat) {
    return Span(this, track, std::move(name), std::move(cat));
  }

  /// Records a complete event whose timestamps the caller already chose
  /// (relative to the reset origin). Claims the track's next seq — call
  /// from deterministic program points when byte-stable exports matter.
  void complete(std::uint32_t track, std::string name, std::string cat,
                std::uint64_t ts_ns, std::uint64_t dur_ns, Args args = {});

  /// Records an instant event at the current time.
  void instant(std::uint32_t track, std::string name, std::string cat,
               Args args = {});

  std::size_t event_count() const;

  /// Snapshot of the recorded events sorted by (track, seq).
  std::vector<Event> events() const;

  /// chrome://tracing JSON document: {"displayTimeUnit":…,
  /// "traceEvents":[…]} with ts/dur in microseconds, printed from the
  /// integer nanosecond values so the text is byte-deterministic.
  std::string trace_json() const;

 private:
  friend class Span;

  std::uint64_t claim_seq_locked(std::uint32_t track);
  void record(Event e);

  const Clock* clock_;
  SteadyClock fallback_clock_;
  mutable std::mutex mu_;
  std::uint64_t origin_ns_ = 0;
  std::map<std::uint32_t, std::uint64_t> next_seq_;
  std::vector<Event> events_;
};

/// Structural validation of a trace document (used by tests and the
/// bench smoke gate): parses, checks the traceEvents array and per-event
/// required fields. Returns an error description, or std::nullopt when
/// the document is a valid trace.
std::optional<std::string> validate_trace(std::string_view json);

}  // namespace compso::obs
