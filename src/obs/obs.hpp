#pragma once
// ObsHooks: the handle the pipeline components actually hold. A pair of
// non-owning pointers (metrics registry, tracer) with null-safe helpers,
// so instrumented code reads the same whether observability is attached
// or not — a default-constructed ObsHooks makes every call a no-op.
//
// Ownership stays with the caller (test, bench binary, trainer): the
// components only record into whatever was attached via their set_obs().

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "src/obs/clock.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/tracer.hpp"

namespace compso::obs {

struct ObsHooks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool enabled() const noexcept {
    return metrics != nullptr || tracer != nullptr;
  }

  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (metrics != nullptr) metrics->add(name, delta);
  }

  void observe(std::string_view name, std::uint64_t value) const {
    if (metrics != nullptr) metrics->observe(name, value);
  }

  void gauge(std::string_view name, double value) const {
    if (metrics != nullptr) metrics->set_gauge(name, value);
  }

  /// Inert span when no tracer is attached.
  Tracer::Span span(std::uint32_t track, std::string name,
                    std::string cat = "compso") const {
    if (tracer == nullptr) return Tracer::Span();
    return tracer->span(track, std::move(name), std::move(cat));
  }

  void instant(std::uint32_t track, std::string name,
               std::string cat = "compso",
               Tracer::Args args = {}) const {
    if (tracer != nullptr) {
      tracer->instant(track, std::move(name), std::move(cat),
                      std::move(args));
    }
  }

  void complete(std::uint32_t track, std::string name, std::string cat,
                std::uint64_t ts_ns, std::uint64_t dur_ns,
                Tracer::Args args = {}) const {
    if (tracer != nullptr) {
      tracer->complete(track, std::move(name), std::move(cat), ts_ns, dur_ns,
                       std::move(args));
    }
  }

  /// True when span timestamps must only be read from deterministic
  /// program points (see clock.hpp). False when no tracer is attached.
  bool deterministic_time() const noexcept {
    return tracer != nullptr && tracer->clock().deterministic();
  }
};

}  // namespace compso::obs
