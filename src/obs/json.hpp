#pragma once
// Minimal JSON support for the observability exports: a writer that
// escapes arbitrary byte strings safely (span names are caller data and
// may be adversarial), and a small recursive-descent parser used by the
// trace-schema validator and the exporter round-trip tests. No external
// dependencies; the emitted documents are pure ASCII so byte-identity of
// exports never depends on locale or UTF-8 normalization.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace compso::obs {

/// Appends `s` as a JSON string literal (including the surrounding
/// quotes). Control characters, quotes, backslashes and every byte >=
/// 0x80 are emitted as \u00XX escapes, so any byte string — embedded
/// NULs, invalid UTF-8, quote bombs — round-trips through a conforming
/// parser without ever breaking the document structure.
void append_json_string(std::string& out, std::string_view s);

/// "%.17g"-formatted double (shortest representation that round-trips a
/// binary64, locale-independent). NaN/Inf are not valid JSON; they are
/// emitted as null.
void append_json_double(std::string& out, double v);

/// Parsed JSON value (object keys keep document order; duplicate keys
/// keep the last occurrence, matching common parser behavior).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with this key, or nullptr.
  const JsonValue* find(std::string_view key) const noexcept;
  bool is(Kind k) const noexcept { return kind == k; }
};

/// Parses a complete JSON document; std::nullopt on any syntax error or
/// trailing garbage. Depth-limited (128) so adversarial nesting cannot
/// overflow the stack.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace compso::obs
