#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace compso::obs {

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20 || c >= 0x80) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    return true;
  }

  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          // Minimal UTF-8 encoding of the BMP code point (surrogate
          // pairs are passed through as two 3-byte sequences; the
          // exporter only ever emits \u00XX, which this covers exactly).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return false;
    const std::string tok(s_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(tok.c_str(), &end);
    return end == tok.c_str() + tok.size();
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue elem;
        skip_ws();
        if (!value(elem, depth + 1)) return false;
        out.array.push_back(std::move(elem));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string(key)) return false;
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') return false;
        ++pos_;
        skip_ws();
        JsonValue member;
        if (!value(member, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    out.kind = JsonValue::Kind::kNumber;
    return number(out.number);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  JsonValue v;
  Parser p(text);
  if (!p.parse(v)) return std::nullopt;
  return v;
}

}  // namespace compso::obs
