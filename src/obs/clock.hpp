#pragma once
// Pluggable time source for the observability layer (DESIGN.md §12).
//
// Every span timestamp and every timing metric flows through a Clock, so
// the same instrumentation serves two regimes:
//  - SteadyClock for real runs (wall-clock durations in the exports);
//  - a deterministic clock (FunctionClock over the comm layer's SimClocks,
//    or ManualClock in unit tests) for bit-reproducible exports: the
//    simulated time advances only at collectives, identically at any
//    engine thread count, so traces and metric snapshots compare
//    byte-for-byte across configurations.
//
// `deterministic()` is a contract, not a hint: when it returns true, the
// instrumentation layer only reads the clock from deterministic program
// points (e.g. the CompressionEngine stamps task spans at submission, on
// the optimizer thread, instead of at execution on a racing worker).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>

namespace compso::obs {

/// Nanoseconds from a double of seconds, rounded to nearest (the sim
/// clocks count seconds as doubles; the exports count integer ns so sums
/// stay order-independent and bit-exact).
inline std::uint64_t seconds_to_ns(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic reading in nanoseconds (an arbitrary epoch; the Tracer
  /// subtracts its own origin).
  virtual std::uint64_t now_ns() const = 0;
  /// True when repeated runs of the same program read identical values at
  /// the same program points (see file comment).
  virtual bool deterministic() const noexcept { return false; }
};

/// Wall clock for real runs.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Adapter over any time source — notably the comm layer's SimClocks
/// (see comm::sim_time_clock), which obs cannot name without a cyclic
/// module dependency.
class FunctionClock final : public Clock {
 public:
  FunctionClock(std::function<std::uint64_t()> read, bool deterministic)
      : read_(std::move(read)), deterministic_(deterministic) {}

  std::uint64_t now_ns() const override { return read_(); }
  bool deterministic() const noexcept override { return deterministic_; }

 private:
  std::function<std::uint64_t()> read_;
  bool deterministic_;
};

/// Hand-advanced clock for unit tests.
class ManualClock final : public Clock {
 public:
  std::uint64_t now_ns() const override { return t_; }
  bool deterministic() const noexcept override { return true; }
  void set_ns(std::uint64_t t) noexcept { t_ = t; }
  void advance_ns(std::uint64_t dt) noexcept { t_ += dt; }

 private:
  std::uint64_t t_ = 0;
};

}  // namespace compso::obs
