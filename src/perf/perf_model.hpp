#pragma once
// COMPSO's performance model (paper §4.4).
//
// Offline: benchmark the system's collective throughput into a lookup
// table mapping message size -> effective throughput (per GPU count).
// Online: profile the first k warm-up iterations for compressed sizes and
// compressor throughput, then
//   - estimate the communication speedup s (Eq. 5),
//   - turn it into an end-to-end estimate ((1-r) + r/s)^-1,
//   - choose the layer-aggregation factor m maximizing that estimate,
//   - choose the lossless encoder minimizing comm+codec time.

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/gpusim/device_model.hpp"

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace compso::perf {

/// Which collective an offline CommLookupTable samples. The paper builds
/// one table per collective actually used on the hot path; the KFAC
/// gradient exchange here is the pipelined broadcast, while allgather is
/// the default for the generic Eq. 5 decision flow.
enum class CollectiveKind { kAllgather, kPipelinedBroadcast };

/// Offline lookup table: effective collective throughput (bytes/s per
/// rank message) vs. message size, for one (platform, GPU count) pair.
/// Built from the network model the same way the paper builds it from
/// synthetic benchmarks.
class CommLookupTable {
 public:
  /// Samples sizes geometrically in [min_bytes, max_bytes].
  CommLookupTable(const comm::Communicator& comm,
                  std::size_t min_bytes = 1 << 10,
                  std::size_t max_bytes = std::size_t{1} << 28,
                  std::size_t points = 24,
                  CollectiveKind kind = CollectiveKind::kAllgather);

  /// Interpolated effective throughput (bytes/s) for a per-rank message of
  /// `bytes` in an allgather.
  double throughput(std::size_t bytes) const noexcept;
  /// Time to allgather a per-rank message of `bytes`.
  double allgather_time(std::size_t bytes) const noexcept {
    return bytes == 0 ? 0.0
                      : static_cast<double>(bytes) / throughput(bytes);
  }

  const std::vector<std::size_t>& sizes() const noexcept { return sizes_; }
  const std::vector<double>& throughputs() const noexcept { return tput_; }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<double> tput_;
};

/// The Eq. 5 lookup extended across world sizes (DESIGN.md §16): one
/// CommLookupTable per simulated world (default 256-4096 ranks), each
/// built from a Communicator over Topology::with_gpus(world) with the
/// given collective-selection config, plus log2-world interpolation so the
/// predictor can price a collective at any rank count in range.
class CommLookupGrid {
 public:
  /// `worlds` must be strictly increasing and non-empty.
  CommLookupGrid(const comm::NetworkModel& net,
                 std::vector<std::size_t> worlds,
                 const comm::CollectiveConfig& coll = {},
                 std::size_t min_bytes = 1 << 10,
                 std::size_t max_bytes = std::size_t{1} << 28,
                 std::size_t points = 24,
                 CollectiveKind kind = CollectiveKind::kAllgather);

  /// The 1000-rank scale-out grid: worlds {256, 512, 1024, 2048, 4096}.
  static CommLookupGrid scale_sweep(const comm::NetworkModel& net,
                                    const comm::CollectiveConfig& coll = {});

  /// Interpolated effective throughput (bytes/s) at `world` ranks; worlds
  /// outside the grid clamp to the nearest edge table.
  double throughput(std::size_t world, std::size_t bytes) const noexcept;
  double allgather_time(std::size_t world, std::size_t bytes) const noexcept {
    return bytes == 0
               ? 0.0
               : static_cast<double>(bytes) / throughput(world, bytes);
  }

  const std::vector<std::size_t>& worlds() const noexcept { return worlds_; }
  const CommLookupTable& table(std::size_t i) const { return tables_.at(i); }

 private:
  std::vector<std::size_t> worlds_;
  std::vector<CommLookupTable> tables_;
};

/// Averages from the first k warm-up iterations (§4.4's online half).
struct WarmupProfile {
  double compression_ratio = 1.0;   ///< L_o / L_c.
  double comp_throughput = 0.0;     ///< T_o: bytes of input per second.
  double decomp_throughput = 0.0;   ///< T_c: bytes of compressed per second.
  double comm_fraction = 0.0;       ///< r: comm / total iteration time.
  std::size_t iterations = 0;       ///< k.
};

/// Accumulates per-iteration observations into a WarmupProfile.
class OnlineProfiler {
 public:
  void record(std::size_t original_bytes, std::size_t compressed_bytes,
              double comp_seconds, double decomp_seconds,
              double comm_seconds, double total_seconds);
  WarmupProfile finish() const;
  std::size_t iterations() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
  double orig_bytes_ = 0.0, comp_bytes_ = 0.0;
  double comp_s_ = 0.0, decomp_s_ = 0.0;
  double comm_s_ = 0.0, total_s_ = 0.0;
};

/// Eq. 5: communication speedup of compressing a group of layers with
/// total original size `orig_bytes` to `comp_bytes`, given the lookup
/// table and the measured compressor throughputs.
double communication_speedup(std::size_t orig_bytes, std::size_t comp_bytes,
                             const CommLookupTable& table,
                             double comp_throughput,
                             double decomp_throughput) noexcept;

/// End-to-end gain ((1 - r) + r / s)^-1 for comm fraction r and
/// communication speedup s.
double end_to_end_speedup(double comm_fraction, double comm_speedup) noexcept;

/// Eq. 5's denominator charges compression, wire, and decompression in
/// series. The chunked streaming pipeline (DESIGN.md §15) splits the
/// payload into `chunks` frames so the three stages overlap: the predicted
/// speedup is serial (a+b+c) over the 3-stage makespan
/// (a+b+c)/n * (2 + n) -> exactly (fill + (n-1) * slowest beat), with each
/// chunk's wire time priced at its own (smaller) message size on the
/// lookup table — the latency penalty of chunking is in the model, not
/// assumed away. chunks == 0 or 1 returns 1.0.
double chunked_pipeline_speedup(std::size_t orig_bytes,
                                std::size_t comp_bytes, std::size_t chunks,
                                const CommLookupTable& table,
                                double comp_throughput,
                                double decomp_throughput) noexcept;

/// Result of the aggregation-factor search.
struct AggregationDecision {
  std::size_t factor = 1;
  double est_comm_speedup = 1.0;
  double est_end_to_end = 1.0;
  /// Estimates per candidate (parallel to `candidates` passed in).
  std::vector<double> candidate_end_to_end;
};

/// Chooses m (layers aggregated per compression call) maximizing the
/// estimated end-to-end speedup. Aggregation helps twice: bigger messages
/// ride the steeper part of the throughput curve, and kernel-launch
/// overhead amortizes (small layers underutilize the GPU, §4.4).
AggregationDecision choose_aggregation_factor(
    const std::vector<std::size_t>& layer_bytes, const WarmupProfile& profile,
    const compress::GradientCompressor& compressor,
    const gpusim::DeviceModel& dev, const CommLookupTable& table,
    const std::vector<std::size_t>& candidates = {1, 2, 4, 8, 16, 32});

/// Per-family Eq. 5 measurements for the widened compressor pool
/// (DESIGN.md §17): CompsoFramework::tune scores every candidate family
/// (COMPSO, error-feedback-wrapped baselines, sketches) on the same
/// sample gradient and keeps the argmax end-to-end estimate.
struct FamilyScore {
  std::string name;
  double compression_ratio = 1.0;  ///< input bytes / payload bytes.
  double est_comm_speedup = 1.0;   ///< Eq. 5 s for the sample message.
  double est_end_to_end = 1.0;     ///< ((1 - r) + r / s)^-1.
};

/// Scores one compressor family under Eq. 5: one measured compression of
/// `sample` (ratio), modeled GPU (de)compression throughput for that
/// payload, wire time from the lookup table, end-to-end via
/// `comm_fraction`. Deterministic in (compressor, sample, rng state) —
/// the differential tuner test recomputes it independently.
FamilyScore score_family(const compress::GradientCompressor& compressor,
                         std::span<const float> sample, double comm_fraction,
                         const gpusim::DeviceModel& dev,
                         const CommLookupTable& table, tensor::Rng& rng);

/// Per-encoder measurements for encoder selection (and Table 2 rows).
struct EncoderScore {
  codec::CodecKind kind;
  double compression_ratio = 0.0;    ///< on the lossy-stage output bytes.
  double comp_throughput = 0.0;      ///< modeled GPU GB-scale bytes/s.
  double decomp_throughput = 0.0;
  double est_total_time = 0.0;       ///< comm + codec time for the sample.
};

/// Scores every candidate encoder on a sample of lossy-stage output and
/// returns them best-first (smallest est_total_time).
std::vector<EncoderScore> score_encoders(
    codec::ByteView sample, const gpusim::DeviceModel& dev,
    const CommLookupTable& table,
    std::span<const codec::CodecKind> candidates = codec::kAllCodecKinds);

/// Measured single-thread host throughput of a compressor on one input
/// (wall-clock, not the gpusim model). This is the T_o / T_c pair Eq. 5
/// wants when the decision is made for the host implementation itself —
/// e.g. by bench/micro_compressor_throughput, which reports fused vs.
/// unfused pipelines with exactly these numbers.
struct HostThroughput {
  double compress_bytes_per_s = 0.0;    ///< input bytes / compress second.
  double decompress_bytes_per_s = 0.0;  ///< output bytes / decompress second.
  double compression_ratio = 1.0;       ///< input bytes / payload bytes.
  std::size_t input_bytes = 0;
  std::size_t payload_bytes = 0;
  std::size_t repetitions = 0;
};

/// Times `compressor` on `values` for `repetitions` compress and
/// decompress calls (scratch-reusing *_into entry points, steady-state
/// behavior). The Rng is re-seeded per repetition so every payload is
/// bit-identical; throughputs are averages over all repetitions.
HostThroughput measure_host_throughput(
    const compress::GradientCompressor& compressor,
    std::span<const float> values, std::uint64_t seed,
    std::size_t repetitions = 8);

}  // namespace compso::perf
