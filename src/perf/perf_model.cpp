#include "src/perf/perf_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace compso::perf {

CommLookupTable::CommLookupTable(const comm::Communicator& comm,
                                 std::size_t min_bytes, std::size_t max_bytes,
                                 std::size_t points, CollectiveKind kind) {
  if (points < 2 || min_bytes == 0 || max_bytes <= min_bytes) {
    throw std::invalid_argument("CommLookupTable: bad sampling range");
  }
  const double lo = std::log2(static_cast<double>(min_bytes));
  const double hi = std::log2(static_cast<double>(max_bytes));
  for (std::size_t i = 0; i < points; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(points - 1);
    const auto bytes =
        static_cast<std::size_t>(std::exp2(lo + frac * (hi - lo)));
    // Narrow ranges round adjacent sample points to the same byte size;
    // keep sizes_ strictly increasing or interpolation divides by
    // log2(x1) - log2(x0) == 0 and returns NaN.
    if (!sizes_.empty() && bytes <= sizes_.back()) continue;
    const double t = kind == CollectiveKind::kPipelinedBroadcast
                         ? comm.pipelined_broadcast_time(bytes)
                         : comm.allgather_time(bytes);
    sizes_.push_back(bytes);
    tput_.push_back(t > 0.0 ? static_cast<double>(bytes) / t : 1e18);
  }
}

CommLookupGrid::CommLookupGrid(const comm::NetworkModel& net,
                               std::vector<std::size_t> worlds,
                               const comm::CollectiveConfig& coll,
                               std::size_t min_bytes, std::size_t max_bytes,
                               std::size_t points, CollectiveKind kind)
    : worlds_(std::move(worlds)) {
  if (worlds_.empty()) {
    throw std::invalid_argument("CommLookupGrid: need at least one world");
  }
  for (std::size_t i = 0; i < worlds_.size(); ++i) {
    if (worlds_[i] == 0 || (i > 0 && worlds_[i] <= worlds_[i - 1])) {
      throw std::invalid_argument(
          "CommLookupGrid: worlds must be strictly increasing");
    }
  }
  tables_.reserve(worlds_.size());
  for (std::size_t w : worlds_) {
    comm::Communicator comm(comm::Topology::with_gpus(w), net);
    comm.set_collective_config(coll);
    tables_.emplace_back(comm, min_bytes, max_bytes, points, kind);
  }
}

CommLookupGrid CommLookupGrid::scale_sweep(const comm::NetworkModel& net,
                                           const comm::CollectiveConfig& coll) {
  return CommLookupGrid(net, {256, 512, 1024, 2048, 4096}, coll);
}

double CommLookupGrid::throughput(std::size_t world,
                                  std::size_t bytes) const noexcept {
  if (world <= worlds_.front()) return tables_.front().throughput(bytes);
  if (world >= worlds_.back()) return tables_.back().throughput(bytes);
  const auto it = std::lower_bound(worlds_.begin(), worlds_.end(), world);
  const std::size_t hi = static_cast<std::size_t>(it - worlds_.begin());
  if (worlds_[hi] == world) return tables_[hi].throughput(bytes);
  const std::size_t lo = hi - 1;
  const double x0 = std::log2(static_cast<double>(worlds_[lo]));
  const double x1 = std::log2(static_cast<double>(worlds_[hi]));
  const double x = std::log2(static_cast<double>(world));
  const double w = (x - x0) / (x1 - x0);
  return tables_[lo].throughput(bytes) * (1.0 - w) +
         tables_[hi].throughput(bytes) * w;
}

double CommLookupTable::throughput(std::size_t bytes) const noexcept {
  if (bytes == 0 || sizes_.empty()) return tput_.empty() ? 1e18 : tput_.front();
  if (bytes <= sizes_.front()) return tput_.front();
  if (bytes >= sizes_.back()) return tput_.back();
  // log-size linear interpolation.
  const auto it = std::lower_bound(sizes_.begin(), sizes_.end(), bytes);
  const std::size_t hi = static_cast<std::size_t>(it - sizes_.begin());
  const std::size_t lo = hi - 1;
  const double x0 = std::log2(static_cast<double>(sizes_[lo]));
  const double x1 = std::log2(static_cast<double>(sizes_[hi]));
  const double x = std::log2(static_cast<double>(bytes));
  const double w = (x - x0) / (x1 - x0);
  return tput_[lo] * (1.0 - w) + tput_[hi] * w;
}

void OnlineProfiler::record(std::size_t original_bytes,
                            std::size_t compressed_bytes, double comp_seconds,
                            double decomp_seconds, double comm_seconds,
                            double total_seconds) {
  ++n_;
  orig_bytes_ += static_cast<double>(original_bytes);
  comp_bytes_ += static_cast<double>(compressed_bytes);
  comp_s_ += comp_seconds;
  decomp_s_ += decomp_seconds;
  comm_s_ += comm_seconds;
  total_s_ += total_seconds;
}

WarmupProfile OnlineProfiler::finish() const {
  WarmupProfile p;
  p.iterations = n_;
  if (n_ == 0) return p;
  p.compression_ratio = comp_bytes_ > 0.0 ? orig_bytes_ / comp_bytes_ : 1.0;
  p.comp_throughput = comp_s_ > 0.0 ? orig_bytes_ / comp_s_ : 1e18;
  p.decomp_throughput = decomp_s_ > 0.0 ? comp_bytes_ / decomp_s_ : 1e18;
  p.comm_fraction = total_s_ > 0.0 ? comm_s_ / total_s_ : 0.0;
  return p;
}

double communication_speedup(std::size_t orig_bytes, std::size_t comp_bytes,
                             const CommLookupTable& table,
                             double comp_throughput,
                             double decomp_throughput) noexcept {
  if (orig_bytes == 0) return 1.0;
  const double t_orig = table.allgather_time(orig_bytes);
  const double t_comp_comm = table.allgather_time(comp_bytes);
  const double t_compress =
      comp_throughput > 0.0
          ? static_cast<double>(orig_bytes) / comp_throughput
          : 0.0;
  const double t_decompress =
      decomp_throughput > 0.0
          ? static_cast<double>(comp_bytes) / decomp_throughput
          : 0.0;
  const double denom = t_comp_comm + t_compress + t_decompress;
  return denom > 0.0 ? t_orig / denom : 1.0;
}

double end_to_end_speedup(double comm_fraction, double comm_speedup) noexcept {
  const double r = std::clamp(comm_fraction, 0.0, 1.0);
  const double s = std::max(comm_speedup, 1e-9);
  return 1.0 / ((1.0 - r) + r / s);
}

FamilyScore score_family(const compress::GradientCompressor& compressor,
                         std::span<const float> sample, double comm_fraction,
                         const gpusim::DeviceModel& dev,
                         const CommLookupTable& table, tensor::Rng& rng) {
  FamilyScore score;
  score.name = std::string(compressor.name());
  const std::size_t in_bytes = sample.size() * sizeof(float);
  const compress::Bytes payload = compressor.compress(sample, rng);
  score.compression_ratio =
      payload.empty() ? 1.0
                      : static_cast<double>(in_bytes) /
                            static_cast<double>(payload.size());
  const double comp_tput =
      compressor.modeled_throughput(dev, in_bytes, payload.size());
  const double decomp_tput =
      compressor.modeled_throughput(dev, payload.size(), in_bytes);
  score.est_comm_speedup = communication_speedup(
      in_bytes, payload.size(), table, comp_tput, decomp_tput);
  score.est_end_to_end =
      end_to_end_speedup(comm_fraction, score.est_comm_speedup);
  return score;
}

double chunked_pipeline_speedup(std::size_t orig_bytes,
                                std::size_t comp_bytes, std::size_t chunks,
                                const CommLookupTable& table,
                                double comp_throughput,
                                double decomp_throughput) noexcept {
  if (chunks <= 1 || comp_bytes == 0) return 1.0;
  const double t_compress =
      comp_throughput > 0.0
          ? static_cast<double>(orig_bytes) / comp_throughput
          : 0.0;
  const double t_decompress =
      decomp_throughput > 0.0
          ? static_cast<double>(comp_bytes) / decomp_throughput
          : 0.0;
  const double t_wire = table.allgather_time(comp_bytes);
  const double serial = t_compress + t_wire + t_decompress;
  const auto n = static_cast<double>(chunks);
  const std::size_t chunk_bytes = (comp_bytes + chunks - 1) / chunks;
  const double pipeline = comm::chunk_pipeline_makespan(
      chunks, t_compress / n, table.allgather_time(chunk_bytes),
      t_decompress / n);
  return pipeline > 0.0 ? serial / pipeline : 1.0;
}

AggregationDecision choose_aggregation_factor(
    const std::vector<std::size_t>& layer_bytes, const WarmupProfile& profile,
    const compress::GradientCompressor& compressor,
    const gpusim::DeviceModel& dev, const CommLookupTable& table,
    const std::vector<std::size_t>& candidates) {
  AggregationDecision best;
  best.est_end_to_end = 0.0;
  for (std::size_t m : candidates) {
    if (m == 0) continue;
    // Group consecutive layers into chunks of m; estimate per-chunk time.
    double t_orig = 0.0, t_new = 0.0;
    for (std::size_t i = 0; i < layer_bytes.size(); i += m) {
      std::size_t chunk = 0;
      for (std::size_t j = i; j < std::min(i + m, layer_bytes.size()); ++j) {
        chunk += layer_bytes[j];
      }
      if (chunk == 0) continue;
      const auto comp_chunk = static_cast<std::size_t>(
          static_cast<double>(chunk) /
          std::max(profile.compression_ratio, 1.0));
      t_orig += table.allgather_time(chunk);
      // Compressor throughput for this chunk size from the device model:
      // launch overhead amortizes with chunk size (§4.4's reason to
      // aggregate small layers).
      const double comp_tput =
          compressor.modeled_throughput(dev, chunk, comp_chunk);
      const double decomp_tput =
          compressor.modeled_throughput(dev, comp_chunk, chunk);
      t_new += table.allgather_time(comp_chunk) +
               static_cast<double>(chunk) / comp_tput +
               static_cast<double>(comp_chunk) / decomp_tput;
    }
    const double s = t_new > 0.0 ? t_orig / t_new : 1.0;
    const double e2e = end_to_end_speedup(profile.comm_fraction, s);
    best.candidate_end_to_end.push_back(e2e);
    if (e2e > best.est_end_to_end) {
      best.est_end_to_end = e2e;
      best.est_comm_speedup = s;
      best.factor = m;
    }
  }
  return best;
}

std::vector<EncoderScore> score_encoders(
    codec::ByteView sample, const gpusim::DeviceModel& dev,
    const CommLookupTable& table,
    std::span<const codec::CodecKind> candidates) {
  std::vector<EncoderScore> out;
  for (codec::CodecKind kind : candidates) {
    const auto codec = codec::make_codec(kind);
    const codec::Bytes enc = codec->encode(sample);
    EncoderScore s;
    s.kind = kind;
    s.compression_ratio = enc.empty()
                              ? 1.0
                              : static_cast<double>(sample.size()) /
                                    static_cast<double>(enc.size());
    // Model the codec's GPU throughput from its cost profile.
    const auto prof = codec->cost_profile();
    const double eff_bw =
        dev.effective_bandwidth() * prof.bandwidth_efficiency;
    auto stage_time = [&](double passes, std::size_t bytes) {
      const double serial = 1.0 - prof.parallel_fraction;
      const double par_t = passes * static_cast<double>(bytes) / eff_bw;
      // Amdahl: the serial fraction runs at single-SM-ish speed.
      const double ser_t = serial * passes * static_cast<double>(bytes) /
                           (eff_bw / static_cast<double>(dev.sm_count));
      return dev.kernel_launch_s + par_t + ser_t;
    };
    const double t_enc = stage_time(prof.encode_passes, sample.size());
    const double t_dec = stage_time(prof.decode_passes, enc.size());
    s.comp_throughput =
        t_enc > 0.0 ? static_cast<double>(sample.size()) / t_enc : 1e18;
    s.decomp_throughput =
        t_dec > 0.0 ? static_cast<double>(enc.size()) / t_dec : 1e18;
    s.est_total_time = table.allgather_time(enc.size()) + t_enc + t_dec;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(),
            [](const EncoderScore& a, const EncoderScore& b) {
              return a.est_total_time < b.est_total_time;
            });
  return out;
}

HostThroughput measure_host_throughput(
    const compress::GradientCompressor& compressor,
    std::span<const float> values, std::uint64_t seed,
    std::size_t repetitions) {
  HostThroughput out;
  out.repetitions = std::max<std::size_t>(repetitions, 1);
  out.input_bytes = values.size() * sizeof(float);

  compress::Bytes payload;
  std::vector<float> decoded;
  // Warm-up pass: page in the input and size the scratch buffers so the
  // timed loop sees steady-state (allocation-free) behavior.
  {
    tensor::Rng rng(seed);
    compressor.compress_into(values, rng, payload);
    compressor.decompress_into(payload, decoded);
  }
  out.payload_bytes = payload.size();
  out.compression_ratio =
      payload.empty() ? 1.0
                      : static_cast<double>(out.input_bytes) /
                            static_cast<double>(payload.size());

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (std::size_t i = 0; i < out.repetitions; ++i) {
    tensor::Rng rng(seed);  // identical stream -> identical payload.
    compressor.compress_into(values, rng, payload);
  }
  const auto t1 = clock::now();
  for (std::size_t i = 0; i < out.repetitions; ++i) {
    compressor.decompress_into(payload, decoded);
  }
  const auto t2 = clock::now();

  const double comp_s = std::chrono::duration<double>(t1 - t0).count();
  const double decomp_s = std::chrono::duration<double>(t2 - t1).count();
  const double reps = static_cast<double>(out.repetitions);
  const double in_b = static_cast<double>(out.input_bytes);
  const double dec_b = static_cast<double>(decoded.size() * sizeof(float));
  out.compress_bytes_per_s = comp_s > 0.0 ? reps * in_b / comp_s : 1e18;
  out.decompress_bytes_per_s = decomp_s > 0.0 ? reps * dec_b / decomp_s : 1e18;
  return out;
}

}  // namespace compso::perf
