#pragma once
// Automatic error-bound tuning (paper §7 future work item 1: "precisely
// optimizing filter thresholds and quantization error bounds, moving
// beyond empirical settings").
//
// Given a sample of real gradient data and a distortion budget, the tuner
// binary-searches the loosest bounds whose reconstruction stays within
// budget, maximizing compression ratio subject to the quality constraint.
// Distortion is measured as relative L2 error plus cosine distortion of
// the gradient direction — the quantity that governs an optimizer step's
// usefulness.

#include "src/compress/compressor.hpp"

#include <span>

namespace compso::core {

struct BoundTunerConfig {
  /// Maximum allowed relative L2 reconstruction error ||g - g'|| / ||g||.
  double max_relative_l2 = 0.05;
  /// Maximum allowed cosine distortion 1 - cos(g, g').
  double max_cosine_distortion = 0.005;
  /// Search range for the (relative) bounds.
  double min_bound = 1e-5;
  double max_bound = 1e-1;
  /// Binary-search iterations (bounds resolved to ~max/min / 2^steps).
  std::size_t steps = 12;
  /// Keep eb_f == eb_q (the paper couples them in the aggressive stage).
  codec::CodecKind encoder = codec::CodecKind::kAns;
};

struct TunedBounds {
  double filter_bound = 0.0;
  double quant_bound = 0.0;
  double achieved_relative_l2 = 0.0;
  double achieved_cosine_distortion = 0.0;
  double achieved_compression_ratio = 1.0;
};

/// Measured distortion of one compress/decompress round.
struct Distortion {
  double relative_l2 = 0.0;
  double cosine_distortion = 0.0;
};
Distortion measure_distortion(std::span<const float> original,
                              std::span<const float> reconstructed);

/// Binary-searches the loosest coupled bound satisfying the budget on the
/// given sample. Deterministic given the Rng.
TunedBounds tune_bounds(std::span<const float> sample,
                        const BoundTunerConfig& config, tensor::Rng& rng);

}  // namespace compso::core
