#pragma once
// Fault-tolerant training runtime (DESIGN.md §9): a persistent trainer that
// owns the dataset, replicas, Communicator, optimizer, and RNG streams for
// the whole run — unlike ClusterTrainer, which rebuilds them per call —
// so it can
//
//  - drive a seeded FaultPlan through the Communicator (transport faults)
//    and through the training loop itself (kNanGradient poisoning),
//  - apply the recovery policies end to end: bounded decode retries,
//    uncompressed fallback, rank eviction with gradient renormalization,
//    non-finite step skips followed by an adaptive-schedule bound
//    tightening (use_filter off, eb_q halved) for the rest of the run,
//  - checkpoint and resume bit-exactly (model params, optimizer state
//    including KFAC factors + eigendecompositions, LR/schedule cursor,
//    RNG streams, rank liveness; see core/checkpoint.hpp).
//
// Every fault observed and every recovery action taken lands in the
// Communicator's RecoveryStats, next to CommStats.

#include "src/comm/communicator.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/core/adaptive_schedule.hpp"
#include "src/core/checkpoint.hpp"
#include "src/core/trainer.hpp"
#include "src/optim/recovery.hpp"

#include <memory>
#include <string>
#include <vector>

namespace compso::core {

enum class OptimizerKind : std::uint8_t { kSgd = 0, kKfac = 1 };

/// Which compressor family drives the gradient exchange (DESIGN.md §17).
/// kCompso is the legacy default: a fresh COMPSO configured by the
/// iteration-wise adaptive schedule. The other families carry cross-step
/// state (error-feedback residuals, sketch seed counters), so the trainer
/// owns one persistent compressor for the whole run and checkpoints its
/// state as the "compressor" CKPT section.
enum class CompressorFamily : std::uint8_t {
  kCompso = 0,
  kEfCompso = 1,            ///< error feedback wrapped around COMPSO.
  kTopK = 2,
  kEfTopK = 3,              ///< error feedback wrapped around top-k.
  kCountSketch = 4,
  kRandomProjection = 5,
};

struct FtTrainerConfig {
  TrainerConfig base{};  ///< cluster / model / seed, as for ClusterTrainer.
  OptimizerKind optimizer = OptimizerKind::kKfac;
  optim::DistKfacConfig kfac{};
  optim::DistSgdConfig sgd{};
  optim::RecoveryPolicy recovery{};  ///< default: disabled (fail fast).
  /// Heartbeat / straggler-ladder knobs for the membership layer
  /// (suspicion timeout, probe backoff, straggler deadline; DESIGN.md §14).
  comm::MembershipConfig membership{};
  /// StepLR owned by the trainer, so a resumed run rebuilds the identical
  /// schedule from config alone.
  double base_lr = 0.05;
  double lr_decay = 0.1;
  std::vector<std::size_t> lr_milestones{};
  /// When true, each iteration uses a COMPSO compressor configured by the
  /// iteration-wise adaptive schedule (tightened after a non-finite event).
  bool compress = true;
  /// Compressor family for the gradient exchange when `compress` is true.
  /// EF-over-COMPSO still follows the adaptive schedule: the wrapper's
  /// inner compressor is rebuilt from effective_params(t) each iteration
  /// while the residuals persist.
  CompressorFamily family = CompressorFamily::kCompso;
  double family_keep_fraction = 0.1;  ///< top-k keep for the TopK families.
  double family_sketch_ratio = 0.25;  ///< size ratio for sketch families.
  std::size_t total_iterations = 100;  ///< sizes the adaptive schedule.
  AdaptiveScheduleParams schedule{};
  /// Worker threads for the parallel compression engine. 0 = serial
  /// (compress inline on the training thread). Any value produces
  /// bit-identical training trajectories and checkpoints — parallelism
  /// only changes wall-clock time.
  std::size_t engine_threads = 0;
};

class FaultTolerantTrainer {
 public:
  explicit FaultTolerantTrainer(FtTrainerConfig config);
  /// Detaches the shared math pool if this trainer attached it (the pool
  /// dies with the trainer's engine; a stale global pointer would dangle).
  ~FaultTolerantTrainer();

  /// Installs a fault plan (seeded injector wired with the payload-fuzz
  /// mutator from the compress layer). Call before the affected iterations.
  void set_fault_plan(comm::FaultPlan plan, std::uint64_t seed);

  /// Runs one training iteration over the surviving ranks; returns their
  /// mean loss. Consumes the iteration's scheduled faults.
  double step();
  /// Runs `iterations` steps; returns the per-iteration loss curve.
  std::vector<double> run(std::size_t iterations);

  /// Held-out accuracy of the first surviving replica.
  double evaluate();
  /// Flattened parameters of the first surviving replica (for drift /
  /// bit-exactness checks in tests).
  std::vector<float> parameters();
  /// Flattened parameters of a specific replica — lets tests prove a
  /// rejoined rank's weights are bit-identical to a survivor's.
  std::vector<float> replica_parameters(std::size_t rank);

  std::size_t iteration() const noexcept { return iteration_; }
  bool bounds_tightened() const noexcept { return tightened_; }
  comm::Communicator& comm() noexcept { return comm_; }
  const comm::Communicator& comm() const noexcept { return comm_; }
  const AdaptiveSchedule& schedule() const noexcept { return schedule_; }
  compress::CompressionEngine& engine() noexcept { return engine_; }

  /// The compressor parameters iteration `t` would train with, including
  /// the post-NaN tightening override — what a resumed run must reproduce
  /// bit-exactly (see tests/test_stage_resume.cpp).
  compress::CompsoParams effective_params(std::size_t t) const;

  /// The run-persistent family compressor (null for kCompso, whose
  /// compressor is rebuilt per step). Tests reach EF residuals / sketch
  /// counters through it via the StatefulCompressor interface.
  compress::GradientCompressor* family_compressor() noexcept {
    return family_compressor_.get();
  }

  /// Attaches observability to the whole runtime: the Communicator (per
  /// collective spans + byte counters), the CompressionEngine (per-task
  /// spans), its ThreadPool, and the trainer itself (per-step spans,
  /// checkpoint/tightening events). Pass {} to detach. For byte-identical
  /// exports across engine thread counts, drive the attached tracer with
  /// comm::sim_time_clock(comm().clocks()).
  void set_obs(obs::ObsHooks hooks);

  /// One named body section of a checkpoint frame: [begin, end) byte
  /// offsets into the frame's *body* (after the 17-byte header). The fuzz
  /// harness uses the map to aim mutations at every section in turn.
  struct CkptSection {
    std::string name;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Serializes the full training state as one checkpoint frame. When
  /// `sections` is non-null it receives the body section map.
  ckpt::Bytes checkpoint(std::vector<CkptSection>* sections = nullptr);
  void save_checkpoint(const std::string& path);
  /// Restores from a frame produced by checkpoint() under the same config;
  /// throws PayloadError on damage or config mismatch.
  void restore(ckpt::ByteView frame);
  void load_checkpoint(const std::string& path);

 private:
  void poison_gradients(nn::Model& model);
  nn::Model& lead_replica() { return replicas_[comm_.first_participant()]; }
  /// Re-syncs the shared (rank-agnostic) training state — schedule cursor,
  /// tightening flag, optimizer state, RNG streams — from a survivor to a
  /// rejoining rank through a sealed CKPT frame, before the step runs. The
  /// simulator stores that state once, so the transfer is a bitwise no-op;
  /// what it buys is the real protocol's validation path and accounting.
  void resync_shared_state(std::size_t t);

  FtTrainerConfig cfg_;
  nn::ClusterDataset dataset_;
  std::vector<nn::Model> replicas_;
  comm::Communicator comm_;
  optim::StepLr lr_;
  AdaptiveSchedule schedule_;
  compress::CompressionEngine engine_;  ///< shared by whichever optimizer.
  std::unique_ptr<optim::DistSgd> sgd_;
  std::unique_ptr<optim::DistKfac> kfac_;
  /// Persistent family compressor (families other than kCompso); its
  /// cross-step state rides in the "compressor" checkpoint section.
  std::unique_ptr<compress::GradientCompressor> family_compressor_;
  std::unique_ptr<comm::FaultInjector> injector_;
  tensor::Rng data_rng_;
  tensor::Rng sr_rng_;
  std::size_t iteration_ = 0;
  bool tightened_ = false;  ///< adaptive bounds tightened after a NaN event.
  obs::ObsHooks obs_;
};

}  // namespace compso::core
