#pragma once
// Compatibility spelling: the checkpoint frame helpers moved to
// src/codec/ckpt.hpp so layers below the trainer (the optimizers' rejoin
// re-sync path, DESIGN.md §14) can use the same sealed framing without a
// core dependency. core::ckpt:: remains the trainer-facing name.

#include "src/codec/ckpt.hpp"

namespace compso::core {
namespace ckpt = compso::codec::ckpt;
}  // namespace compso::core
