#include "src/core/bound_tuner.hpp"

#include <cmath>
#include <stdexcept>

namespace compso::core {

Distortion measure_distortion(std::span<const float> original,
                              std::span<const float> reconstructed) {
  if (original.size() != reconstructed.size()) {
    throw std::invalid_argument("measure_distortion: size mismatch");
  }
  Distortion d;
  double dot = 0.0, n1 = 0.0, n2 = 0.0, err = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double a = original[i];
    const double b = reconstructed[i];
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
    err += (a - b) * (a - b);
  }
  if (n1 <= 0.0) return d;
  d.relative_l2 = std::sqrt(err / n1);
  d.cosine_distortion =
      n2 > 0.0 ? 1.0 - dot / std::sqrt(n1 * n2) : 1.0;
  return d;
}

TunedBounds tune_bounds(std::span<const float> sample,
                        const BoundTunerConfig& config, tensor::Rng& rng) {
  if (sample.empty() || config.min_bound <= 0.0 ||
      config.max_bound <= config.min_bound) {
    throw std::invalid_argument("tune_bounds: bad sample or search range");
  }
  auto evaluate = [&](double bound, TunedBounds& out) {
    compress::CompsoParams p;
    p.filter_bound = bound;
    p.quant_bound = bound;
    p.encoder = config.encoder;
    const auto compso = compress::make_compso(p);
    const auto payload = compso->compress(sample, rng);
    const auto restored = compso->decompress(payload);
    const Distortion d = measure_distortion(sample, restored);
    out.filter_bound = out.quant_bound = bound;
    out.achieved_relative_l2 = d.relative_l2;
    out.achieved_cosine_distortion = d.cosine_distortion;
    out.achieved_compression_ratio =
        static_cast<double>(sample.size() * sizeof(float)) /
        static_cast<double>(payload.size());
    return d.relative_l2 <= config.max_relative_l2 &&
           d.cosine_distortion <= config.max_cosine_distortion;
  };

  // Log-space binary search: loosest bound that satisfies the budget.
  double lo = std::log(config.min_bound);
  double hi = std::log(config.max_bound);
  TunedBounds best;
  if (!evaluate(config.min_bound, best)) {
    // Even the tightest bound violates the budget: return it anyway with
    // the achieved numbers so the caller can decide.
    return best;
  }
  TunedBounds candidate = best;
  for (std::size_t s = 0; s < config.steps; ++s) {
    const double mid = 0.5 * (lo + hi);
    if (evaluate(std::exp(mid), candidate)) {
      best = candidate;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace compso::core
