#include "src/core/perf_sim.hpp"

#include "src/codec/chunk.hpp"
#include "src/tensor/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace compso::core {
namespace {

/// Factor dimensions beyond this use KAISA's implicit inversion (O(d^2)
/// per refresh) instead of explicit eigendecomposition (O(d^3)).
constexpr std::size_t kExplicitEigenLimit = 4096;

double eigen_cost_flops(std::size_t dim) noexcept {
  const double d = static_cast<double>(dim);
  if (dim <= kExplicitEigenLimit) return 25.0 * d * d * d;
  return 40.0 * d * d;  // implicit inversion path
}

}  // namespace

PerfSimulator::PerfSimulator(PerfConfig config)
    : cfg_(std::move(config)), comm_(cfg_.topo, cfg_.net) {
  comm_.set_collective_config(cfg_.collectives);
  baseline_ = compute_baseline();
}

IterationBreakdown PerfSimulator::compute_baseline() const {
  IterationBreakdown b;
  const double flops_rate = cfg_.dev.fp32_flops * cfg_.fwd_bwd_efficiency;
  const auto batch = static_cast<double>(cfg_.batch_per_gpu);
  const std::size_t world = cfg_.topo.world_size();

  // --- forward + backward: ~3 GEMM-equivalents (fwd, grad-in, grad-W),
  // each 2 * out * in * work_multiplier flops per sample; embeddings are
  // lookups (memory traffic only).
  double fb_flops = 0.0;
  double fb_bytes = 0.0;
  std::size_t kernel_launches = 0;
  for (const auto& l : cfg_.model.layers) {
    if (l.embedding) {
      fb_bytes += 2.0 * batch * static_cast<double>(l.out) * 4.0;
    } else {
      fb_flops += 6.0 * batch * static_cast<double>(l.work_multiplier) *
                  static_cast<double>(l.out) * static_cast<double>(l.in);
    }
    kernel_launches += 3;
  }
  b.forward_backward_s =
      fb_flops / flops_rate + fb_bytes / cfg_.dev.effective_bandwidth() +
      static_cast<double>(kernel_launches) * cfg_.dev.kernel_launch_s;

  // --- KFAC compute (per rank): covariances + factor maintenance every
  // `factor_update_every` iterations; eigendecomposition every
  // `eigen_refresh_every` factor updates on the owner rank; precondition
  // every iteration on the owner rank. Embedding layers use element-wise
  // preconditioning (a memory pass).
  // Owner work is split across ranks; KAISA balances the assignment, so a
  // rank's share is 1/world of the total eigendecomposition /
  // preconditioning work.
  double cov_flops = 0.0;
  double eig_flops = 0.0;
  double precond_flops = 0.0;
  double elementwise_bytes = 0.0;
  for (const auto& l : cfg_.model.layers) {
    if (l.embedding) {
      elementwise_bytes += static_cast<double>(l.kfac_bytes()) * 3.0;
      continue;
    }
    const double in_aug = static_cast<double>(l.in) + 1.0;
    const double out = static_cast<double>(l.out);
    const double samples = batch * static_cast<double>(l.work_multiplier);
    cov_flops += samples * (in_aug * in_aug + out * out);
    eig_flops += eigen_cost_flops(l.in + 1) + eigen_cost_flops(l.out);
    precond_flops += 4.0 * (out * out * in_aug + out * in_aug * in_aug);
  }
  const auto world_d = static_cast<double>(world);
  eig_flops /= world_d;
  precond_flops /= world_d;
  elementwise_bytes /= world_d;
  const auto factor_every = static_cast<double>(cfg_.factor_update_every);
  const auto eigen_every =
      static_cast<double>(cfg_.factor_update_every * cfg_.eigen_refresh_every);
  b.kfac_compute_s = cov_flops / flops_rate / factor_every +
                     eig_flops / flops_rate / eigen_every +
                     precond_flops / flops_rate +
                     elementwise_bytes / cfg_.dev.effective_bandwidth();

  // --- factor allreduce (only when factors are refreshed; amortized).
  // Factors are symmetric, so only the triangular half is communicated.
  std::size_t factor_bytes = 0;
  for (const auto& l : cfg_.model.layers) {
    if (l.embedding) continue;
    factor_bytes +=
        ((l.in + 1) * (l.in + 2) / 2 + l.out * (l.out + 1) / 2) *
        sizeof(float);
  }
  b.allreduce_s = comm_.allreduce_time(factor_bytes) / factor_every;

  // --- preconditioned-gradient distribution: KAISA broadcasts each
  // layer's result from its owner as soon as it is ready — one pipelined
  // broadcast per layer at baseline (aggregation groups several). A
  // configurable fraction hides behind the remaining compute (KAISA's
  // comp-comm overlap), bounded by the compute available to hide in.
  b.allgather_s = 0.0;
  for (const auto& l : cfg_.model.layers) {
    b.allgather_s += comm_.pipelined_broadcast_time(l.kfac_bytes());
  }
  if (cfg_.comm_overlap > 0.0) {
    const double hideable =
        std::min(b.allgather_s * std::clamp(cfg_.comm_overlap, 0.0, 1.0),
                 b.kfac_compute_s + b.forward_backward_s);
    b.allgather_s -= hideable;
  }

  // --- others: optimizer step, host-side work, data pipeline — a memory
  // pass over the parameters plus a fraction of fwd/bwd.
  const double param_bytes = static_cast<double>(cfg_.model.total_bytes());
  b.others_s = 3.0 * param_bytes / cfg_.dev.effective_bandwidth() +
               0.30 * b.forward_backward_s;
  return b;
}

PerfSimulator::PrecondMemory PerfSimulator::precond_memory(
    std::size_t world) const {
  PrecondMemory out;
  const std::size_t p = std::max<std::size_t>(world, 1);
  // Factor dims and costs exactly as DistKfac::shard_stats accounts them:
  // A is (in+1)^2, G is out^2, plus the two eigenvalue vectors; eigh cost
  // is the 25 d^3 LAPACK estimate the LPT assignment balances on.
  std::vector<std::size_t> bytes;
  std::vector<double> cost;
  for (const auto& l : cfg_.model.layers) {
    if (l.embedding) continue;  // element-wise path: no covariance factors.
    const std::size_t da = l.in + 1;
    const std::size_t dg = l.out;
    bytes.push_back((2 * (da * da + dg * dg) + da + dg) * sizeof(float));
    const double a = static_cast<double>(da);
    const double g = static_cast<double>(dg);
    cost.push_back(a * a * a + g * g * g);
  }
  for (const std::size_t b : bytes) out.replicated_bytes += b;

  // LPT greedy, same tie-breaks as DistKfac::compute_owners: heaviest
  // cost first (ties -> lower slot), to the least-loaded rank (ties ->
  // lower rank index).
  std::vector<std::size_t> order(cost.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (cost[a] != cost[b]) return cost[a] > cost[b];
              return a < b;
            });
  std::vector<double> load(p, 0.0);
  std::vector<std::size_t> rank_bytes(p, 0);
  for (const std::size_t s : order) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < p; ++k) {
      if (load[k] < load[best]) best = k;
    }
    load[best] += cost[s];
    rank_bytes[best] += bytes[s];
  }
  out.sharded_peak_bytes =
      *std::max_element(rank_bytes.begin(), rank_bytes.end());
  return out;
}

std::size_t PerfSimulator::max_rank_bytes() const noexcept {
  const std::size_t world = cfg_.topo.world_size();
  std::vector<std::size_t> rank_bytes(world, 0);
  for (std::size_t s = 0; s < cfg_.model.layers.size(); ++s) {
    rank_bytes[s % world] += cfg_.model.layers[s].kfac_bytes();
  }
  return *std::max_element(rank_bytes.begin(), rank_bytes.end());
}

std::vector<std::size_t> PerfSimulator::layer_bytes() const {
  std::vector<std::size_t> out;
  out.reserve(cfg_.model.layers.size());
  for (const auto& l : cfg_.model.layers) out.push_back(l.kfac_bytes());
  return out;
}

CompressedIteration PerfSimulator::with_compressor(
    const compress::GradientCompressor& compressor,
    std::size_t aggregation) const {
  const std::size_t m = std::max<std::size_t>(aggregation, 1);
  tensor::Rng rng(cfg_.seed);
  const auto profile = tensor::GradientProfile::kfac();

  // Group consecutive layers into aggregates of m (the runtime aggregates
  // each owner's layer stream; consecutive grouping matches KAISA's
  // completion order).
  double allgather_s = 0.0;
  double comp_s = 0.0;
  double decomp_s = 0.0;
  std::size_t total_orig = 0, total_comp = 0;
  const auto& layers = cfg_.model.layers;
  for (std::size_t i = 0; i < layers.size(); i += m) {
    std::size_t chunk_elems = 0;
    for (std::size_t j = i; j < std::min(i + m, layers.size()); ++j) {
      chunk_elems += layers[j].kfac_elements();
    }
    if (chunk_elems == 0) continue;
    const std::size_t chunk_bytes = chunk_elems * sizeof(float);
    // Measure CR on a bounded sample of synthetic KFAC-gradient data.
    const std::size_t sample_elems =
        std::min<std::size_t>(chunk_elems, 1 << 16);
    auto rng_chunk = rng.split(i + 1);
    const auto sample =
        tensor::synthetic_gradient(sample_elems, profile, rng_chunk);
    const auto payload = compressor.compress(sample, rng_chunk);
    const double cr = static_cast<double>(sample.size() * sizeof(float)) /
                      static_cast<double>(std::max<std::size_t>(
                          payload.size(), 1));
    const auto comp_bytes = static_cast<std::size_t>(
        std::max(static_cast<double>(chunk_bytes) / cr, 1.0));
    total_orig += chunk_bytes;
    total_comp += comp_bytes;
    allgather_s += comm_.pipelined_broadcast_time(comp_bytes);
    // Codec time from the GPU pipeline model at this chunk size (this is
    // where launch-overhead amortization rewards aggregation). The owner
    // compresses once; every receiver decompresses, so decompression sits
    // on each rank's critical path for all chunks.
    comp_s += static_cast<double>(chunk_bytes) /
              compressor.modeled_throughput(cfg_.dev, chunk_bytes, comp_bytes);
    decomp_s += static_cast<double>(comp_bytes) /
                compressor.modeled_throughput(cfg_.dev, comp_bytes,
                                              chunk_bytes);
  }

  CompressedIteration out;
  out.breakdown = baseline_;
  // The same comp-comm overlap that hides the baseline's broadcasts hides
  // the (much smaller) compressed ones.
  if (cfg_.comm_overlap > 0.0) {
    const double hideable =
        std::min(allgather_s * std::clamp(cfg_.comm_overlap, 0.0, 1.0),
                 baseline_.kfac_compute_s + baseline_.forward_backward_s);
    allgather_s -= hideable;
  }
  out.breakdown.allgather_s = allgather_s;
  // Compression runs only for layers this rank owns (1/world of them).
  out.breakdown.comp_s =
      comp_s / static_cast<double>(cfg_.topo.world_size());
  out.breakdown.decomp_s = decomp_s;
  out.compression_ratio = total_comp > 0
                              ? static_cast<double>(total_orig) /
                                    static_cast<double>(total_comp)
                              : 1.0;
  out.comm_speedup = out.breakdown.allgather_s > 0.0
                         ? baseline_.allgather_s / out.breakdown.allgather_s
                         : 1.0;
  out.end_to_end_speedup = baseline_.total_s() / out.breakdown.total_s();
  return out;
}

PerfSimulator::ChunkedPipeline PerfSimulator::with_chunked_compressor(
    const compress::GradientCompressor& compressor, std::size_t aggregation,
    std::size_t chunk_bytes) const {
  const std::size_t m = std::max<std::size_t>(aggregation, 1);
  const std::size_t cb = std::max<std::size_t>(chunk_bytes, 1);
  tensor::Rng rng(cfg_.seed);
  const auto profile = tensor::GradientProfile::kfac();

  // The transport frames the whole concatenated per-step payload as ONE
  // chunk stream (DistKfac's chunk_pack concatenates every group before
  // framing), so the analytic view accumulates the per-group codec costs
  // and payload sizes first and pipelines the totals as a single stream.
  ChunkedPipeline out;
  double& comp_s = out.comp_s;
  double& decomp_s = out.decomp_s;
  const auto& layers = cfg_.model.layers;
  for (std::size_t i = 0; i < layers.size(); i += m) {
    std::size_t group_elems = 0;
    for (std::size_t j = i; j < std::min(i + m, layers.size()); ++j) {
      group_elems += layers[j].kfac_elements();
    }
    if (group_elems == 0) continue;
    const std::size_t group_bytes = group_elems * sizeof(float);
    // Same CR sampling as with_compressor (identical rng.split stream),
    // so both views of the pipeline price the same payload sizes.
    const std::size_t sample_elems =
        std::min<std::size_t>(group_elems, 1 << 16);
    auto rng_chunk = rng.split(i + 1);
    const auto sample =
        tensor::synthetic_gradient(sample_elems, profile, rng_chunk);
    const auto payload = compressor.compress(sample, rng_chunk);
    const double cr = static_cast<double>(sample.size() * sizeof(float)) /
                      static_cast<double>(std::max<std::size_t>(
                          payload.size(), 1));
    const auto comp_bytes = static_cast<std::size_t>(
        std::max(static_cast<double>(group_bytes) / cr, 1.0));
    comp_s +=
        static_cast<double>(group_bytes) /
        compressor.modeled_throughput(cfg_.dev, group_bytes, comp_bytes);
    decomp_s +=
        static_cast<double>(comp_bytes) /
        compressor.modeled_throughput(cfg_.dev, comp_bytes, group_bytes);
    out.comp_bytes += comp_bytes;
  }
  if (out.comp_bytes == 0) return out;
  out.serial_s =
      comp_s + comm_.pipelined_broadcast_time(out.comp_bytes) + decomp_s;
  // Chunk the *compressed* stream: n frames, each paying its own wire
  // latency (the honest cost of chunking), pipelined 3 stages deep.
  out.chunks = codec::chunk::chunk_count_for(out.comp_bytes, cb);
  const auto nd = static_cast<double>(out.chunks);
  out.pipeline_s = comm::chunk_pipeline_makespan(
      out.chunks, comp_s / nd,
      comm_.pipelined_broadcast_time(std::min(out.comp_bytes, cb)),
      decomp_s / nd);
  return out;
}

}  // namespace compso::core
