#include "src/core/trainer.hpp"

#include "src/comm/network_model.hpp"

#include <algorithm>
#include <cmath>

namespace compso::core {
namespace {

/// Builds `world` structurally identical replicas from one seed.
std::vector<nn::Model> build_replicas(std::size_t world,
                                      const std::function<nn::Model(
                                          tensor::Rng&)>& builder,
                                      std::uint64_t seed) {
  std::vector<nn::Model> replicas;
  replicas.reserve(world);
  for (std::size_t r = 0; r < world; ++r) {
    tensor::Rng rng(seed);  // same seed -> identical initial weights
    replicas.push_back(builder(rng));
  }
  return replicas;
}

comm::Communicator make_comm(std::size_t world) {
  return comm::Communicator(comm::Topology::with_gpus(world),
                            comm::NetworkModel::platform1());
}

}  // namespace

ClusterTrainer::ClusterTrainer(TrainerConfig config)
    : cfg_(config),
      dataset_(config.features, config.classes, config.noise,
               config.seed ^ 0xDA7A5E7ULL) {}

double ClusterTrainer::evaluate(nn::Model& model) const {
  tensor::Rng rng(cfg_.seed ^ 0xE7A1ULL);
  const auto batch = dataset_.sample(512, rng);
  const auto logits = model.forward(batch.x);
  return nn::accuracy(logits, batch.labels);
}

TrainResult ClusterTrainer::train_kfac(std::size_t iterations,
                                       const optim::LrScheduler& lr,
                                       const CompressorProvider& provider,
                                       optim::DistKfacConfig kfac_cfg) {
  auto replicas = build_replicas(
      cfg_.world,
      [&](tensor::Rng& rng) {
        return nn::make_mlp_classifier(cfg_.features, cfg_.hidden,
                                       cfg_.classes, cfg_.depth, rng);
      },
      cfg_.seed);
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  auto comm = make_comm(cfg_.world);
  optim::DistKfac kfac(kfac_cfg, comm, ptrs);

  tensor::Rng data_rng(cfg_.seed ^ 0xBA7C4ULL);
  tensor::Rng sr_rng(cfg_.seed ^ 0x5121ULL);
  TrainResult result;
  double cr_sum = 0.0;
  std::size_t cr_n = 0;
  for (std::size_t t = 0; t < iterations; ++t) {
    double loss = 0.0;
    for (std::size_t r = 0; r < cfg_.world; ++r) {
      const auto batch = dataset_.sample(cfg_.batch_per_rank, data_rng);
      const auto logits = replicas[r].forward(batch.x);
      tensor::Tensor grad;
      loss += nn::softmax_cross_entropy(logits, batch.labels, grad);
      replicas[r].backward(grad);
    }
    loss /= static_cast<double>(cfg_.world);
    kfac.step(t, lr.lr(t), provider ? provider(t) : nullptr, sr_rng);
    result.loss_curve.push_back(loss);
    if (kfac.last_compressed_bytes() > 0) {
      cr_sum += static_cast<double>(kfac.last_original_bytes()) /
                static_cast<double>(kfac.last_compressed_bytes());
      ++cr_n;
    }
    if ((t + 1) % std::max<std::size_t>(iterations / 20, 1) == 0) {
      result.eval_curve.push_back(evaluate(replicas[0]));
    }
  }
  result.final_accuracy = evaluate(replicas[0]);
  result.final_loss = result.loss_curve.empty() ? 0.0
                                                : result.loss_curve.back();
  result.avg_compression_ratio = cr_n > 0 ? cr_sum / static_cast<double>(cr_n)
                                          : 1.0;
  return result;
}

TrainResult ClusterTrainer::train_sgd(
    std::size_t iterations, const optim::LrScheduler& lr,
    const compress::GradientCompressor* compressor, bool error_feedback) {
  auto replicas = build_replicas(
      cfg_.world,
      [&](tensor::Rng& rng) {
        return nn::make_mlp_classifier(cfg_.features, cfg_.hidden,
                                       cfg_.classes, cfg_.depth, rng);
      },
      cfg_.seed);
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  auto comm = make_comm(cfg_.world);
  optim::DistSgd sgd({.momentum = 0.9, .error_feedback = error_feedback},
                     comm, ptrs);

  tensor::Rng data_rng(cfg_.seed ^ 0xBA7C4ULL);
  tensor::Rng sr_rng(cfg_.seed ^ 0x5122ULL);
  TrainResult result;
  double cr_sum = 0.0;
  std::size_t cr_n = 0;
  for (std::size_t t = 0; t < iterations; ++t) {
    double loss = 0.0;
    for (std::size_t r = 0; r < cfg_.world; ++r) {
      const auto batch = dataset_.sample(cfg_.batch_per_rank, data_rng);
      const auto logits = replicas[r].forward(batch.x);
      tensor::Tensor grad;
      loss += nn::softmax_cross_entropy(logits, batch.labels, grad);
      replicas[r].backward(grad);
    }
    loss /= static_cast<double>(cfg_.world);
    sgd.step(lr.lr(t), compressor, sr_rng);
    result.loss_curve.push_back(loss);
    if (sgd.last_compressed_bytes() > 0 && compressor != nullptr) {
      cr_sum += static_cast<double>(sgd.last_original_bytes()) /
                static_cast<double>(sgd.last_compressed_bytes());
      ++cr_n;
    }
    if ((t + 1) % std::max<std::size_t>(iterations / 20, 1) == 0) {
      result.eval_curve.push_back(evaluate(replicas[0]));
    }
  }
  result.final_accuracy = evaluate(replicas[0]);
  result.final_loss = result.loss_curve.empty() ? 0.0
                                                : result.loss_curve.back();
  result.avg_compression_ratio = cr_n > 0 ? cr_sum / static_cast<double>(cr_n)
                                          : 1.0;
  return result;
}

// ------------------------------------------------------------ SpanTrainer

SpanTrainer::SpanTrainer(SpanTrainerConfig config)
    : cfg_(config),
      dataset_(config.positions, config.features, config.noise,
               config.seed ^ 0x51AD5ULL) {}

double SpanTrainer::span_loss(const tensor::Tensor& logits,
                              const nn::SpanDataset::SpanBatch& batch,
                              tensor::Tensor& grad) const {
  // logits: (batch, 2 * positions). Split into start / end heads and apply
  // softmax-CE to each.
  const std::size_t b = logits.rows();
  const std::size_t p = cfg_.positions;
  tensor::Tensor start_logits({b, p}), end_logits({b, p});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      start_logits.at(r, c) = logits.at(r, c);
      end_logits.at(r, c) = logits.at(r, p + c);
    }
  }
  tensor::Tensor gs, ge;
  const double ls = nn::softmax_cross_entropy(start_logits, batch.start, gs);
  const double le = nn::softmax_cross_entropy(end_logits, batch.end, ge);
  grad = tensor::Tensor({b, 2 * p});
  for (std::size_t r = 0; r < b; ++r) {
    for (std::size_t c = 0; c < p; ++c) {
      grad.at(r, c) = 0.5F * gs.at(r, c);
      grad.at(r, p + c) = 0.5F * ge.at(r, c);
    }
  }
  return 0.5 * (ls + le);
}

nn::SpanMetrics SpanTrainer::evaluate(nn::Model& model) const {
  tensor::Rng rng(cfg_.seed ^ 0xE7A2ULL);
  const auto batch = dataset_.sample(512, rng);
  const auto logits = model.forward(batch.x);
  const std::size_t p = cfg_.positions;
  std::vector<int> ps(batch.start.size()), pe(batch.end.size());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    std::size_t bs = 0, be = 0;
    for (std::size_t c = 1; c < p; ++c) {
      if (logits.at(r, c) > logits.at(r, bs)) bs = c;
      if (logits.at(r, p + c) > logits.at(r, p + be)) be = c;
    }
    ps[r] = static_cast<int>(bs);
    pe[r] = static_cast<int>(be);
  }
  return nn::span_metrics(ps, pe, batch.start, batch.end);
}

SpanResult SpanTrainer::train_kfac(std::size_t iterations,
                                   const optim::LrScheduler& lr,
                                   const CompressorProvider& provider,
                                   optim::DistKfacConfig kfac_cfg) {
  auto replicas = build_replicas(
      cfg_.world,
      [&](tensor::Rng& rng) {
        return nn::make_span_model(cfg_.features, cfg_.hidden, cfg_.positions,
                                   cfg_.depth, rng);
      },
      cfg_.seed);
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  auto comm = make_comm(cfg_.world);
  optim::DistKfac kfac(kfac_cfg, comm, ptrs);

  tensor::Rng data_rng(cfg_.seed ^ 0xBA7C5ULL);
  tensor::Rng sr_rng(cfg_.seed ^ 0x5123ULL);
  SpanResult result;
  for (std::size_t t = 0; t < iterations; ++t) {
    double loss = 0.0;
    for (std::size_t r = 0; r < cfg_.world; ++r) {
      const auto batch = dataset_.sample(cfg_.batch_per_rank, data_rng);
      const auto logits = replicas[r].forward(batch.x);
      tensor::Tensor grad;
      loss += span_loss(logits, batch, grad);
      replicas[r].backward(grad);
    }
    kfac.step(t, lr.lr(t), provider ? provider(t) : nullptr, sr_rng);
    result.final_loss = loss / static_cast<double>(cfg_.world);
  }
  result.metrics = evaluate(replicas[0]);
  return result;
}

SpanResult SpanTrainer::train_sgd(std::size_t iterations,
                                  const optim::LrScheduler& lr,
                                  const compress::GradientCompressor* compressor,
                                  bool error_feedback) {
  auto replicas = build_replicas(
      cfg_.world,
      [&](tensor::Rng& rng) {
        return nn::make_span_model(cfg_.features, cfg_.hidden, cfg_.positions,
                                   cfg_.depth, rng);
      },
      cfg_.seed);
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas) ptrs.push_back(&m);
  auto comm = make_comm(cfg_.world);
  optim::DistSgd sgd({.momentum = 0.9, .error_feedback = error_feedback},
                     comm, ptrs);

  tensor::Rng data_rng(cfg_.seed ^ 0xBA7C5ULL);
  tensor::Rng sr_rng(cfg_.seed ^ 0x5124ULL);
  SpanResult result;
  for (std::size_t t = 0; t < iterations; ++t) {
    double loss = 0.0;
    for (std::size_t r = 0; r < cfg_.world; ++r) {
      const auto batch = dataset_.sample(cfg_.batch_per_rank, data_rng);
      const auto logits = replicas[r].forward(batch.x);
      tensor::Tensor grad;
      loss += span_loss(logits, batch, grad);
      replicas[r].backward(grad);
    }
    sgd.step(lr.lr(t), compressor, sr_rng);
    result.final_loss = loss / static_cast<double>(cfg_.world);
  }
  result.metrics = evaluate(replicas[0]);
  return result;
}

}  // namespace compso::core
