#pragma once
// Convergence trainer: data-parallel SPMD training of the proxy models on
// the simulated cluster, with KFAC or SGD, with or without compression.
// This drives Fig. 6 / Fig. 3(right) / Table 1.

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/nn/dataset.hpp"
#include "src/nn/model_zoo.hpp"
#include "src/optim/dist_kfac.hpp"
#include "src/optim/dist_sgd.hpp"
#include "src/optim/lr_scheduler.hpp"

#include <functional>
#include <vector>

namespace compso::core {

/// Returns the compressor to use at iteration t (nullptr = no compression).
/// This is how the iteration-wise adaptive schedule plugs into training.
using CompressorProvider =
    std::function<const compress::GradientCompressor*(std::size_t t)>;

struct TrainerConfig {
  std::size_t world = 4;
  std::size_t batch_per_rank = 16;
  std::size_t features = 24;
  std::size_t classes = 6;
  std::size_t hidden = 24;
  std::size_t depth = 2;
  float noise = 0.7F;
  std::uint64_t seed = 1234;
};

struct TrainResult {
  std::vector<double> loss_curve;      ///< training loss per iteration.
  std::vector<double> eval_curve;      ///< eval accuracy at eval points.
  double final_accuracy = 0.0;         ///< held-out accuracy at the end.
  double final_loss = 0.0;
  double avg_compression_ratio = 1.0;  ///< on the compressed collective.
};

/// Trains the MLP classifier proxy on the Gaussian-cluster dataset.
class ClusterTrainer {
 public:
  explicit ClusterTrainer(TrainerConfig config);

  /// Distributed KFAC (KAISA pipeline), compressor chosen per iteration.
  TrainResult train_kfac(std::size_t iterations,
                         const optim::LrScheduler& lr,
                         const CompressorProvider& provider,
                         optim::DistKfacConfig kfac_cfg = {});

  /// Distributed SGD, optional compressor (+ error feedback).
  TrainResult train_sgd(std::size_t iterations, const optim::LrScheduler& lr,
                        const compress::GradientCompressor* compressor,
                        bool error_feedback = true);

 private:
  TrainerConfig cfg_;
  nn::ClusterDataset dataset_;

  double evaluate(nn::Model& model) const;
};

/// Span-extraction fine-tuning (Table 1 proxy). Returns SQuAD-style
/// F1 / exact-match of the trained model on held-out samples.
struct SpanResult {
  nn::SpanMetrics metrics;
  double final_loss = 0.0;
};

struct SpanTrainerConfig {
  std::size_t world = 4;
  std::size_t batch_per_rank = 16;
  std::size_t positions = 12;
  std::size_t features = 24;
  std::size_t hidden = 32;
  std::size_t depth = 2;
  float noise = 0.55F;
  std::uint64_t seed = 99;
};

class SpanTrainer {
 public:
  explicit SpanTrainer(SpanTrainerConfig config);

  SpanResult train_kfac(std::size_t iterations, const optim::LrScheduler& lr,
                        const CompressorProvider& provider,
                        optim::DistKfacConfig kfac_cfg = {});
  SpanResult train_sgd(std::size_t iterations, const optim::LrScheduler& lr,
                       const compress::GradientCompressor* compressor,
                       bool error_feedback = true);

 private:
  SpanTrainerConfig cfg_;
  nn::SpanDataset dataset_;

  nn::SpanMetrics evaluate(nn::Model& model) const;
  /// Span loss: cross-entropy on the start head + on the end head.
  double span_loss(const tensor::Tensor& logits,
                   const nn::SpanDataset::SpanBatch& batch,
                   tensor::Tensor& grad) const;
};

}  // namespace compso::core
