#include "src/core/adaptive_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace compso::core {

AdaptiveSchedule::AdaptiveSchedule(const optim::LrScheduler& scheduler,
                                   std::size_t total_iterations, Params params)
    : scheduler_(scheduler), total_(total_iterations), p_(params) {
  if (total_ == 0 || p_.stages == 0) {
    throw std::invalid_argument("AdaptiveSchedule: need iterations and stages");
  }
  stage_length_ = (total_ + p_.stages - 1) / p_.stages;
}

CompressionStage AdaptiveSchedule::at(std::size_t t) const noexcept {
  CompressionStage s;
  if (scheduler_.is_step_schedule()) {
    // Algorithm 1, StepLR branch.
    if (t < scheduler_.first_drop()) {
      s.filter_bound = p_.loose_filter_bound;
      s.quant_bound = p_.loose_quant_bound;
      s.use_filter = true;
      s.stage_index = 0;
    } else {
      // Conservative: SR only, tighter bound.
      s.filter_bound = 0.0;
      s.quant_bound = p_.tight_quant_bound;
      s.use_filter = false;
      s.stage_index = 1;
    }
    return s;
  }
  // Algorithm 1, SmoothLR branch.
  const std::size_t stage = std::min(t / stage_length_, p_.stages - 1);
  s.stage_index = stage;
  const double scale = std::pow(p_.decay, static_cast<double>(stage));
  s.filter_bound = p_.loose_filter_bound * scale;
  s.quant_bound = p_.loose_quant_bound * scale;
  s.use_filter = stage == 0;
  return s;
}

compress::CompsoParams AdaptiveSchedule::params_at(
    std::size_t t, codec::CodecKind encoder) const noexcept {
  const CompressionStage s = at(t);
  compress::CompsoParams p;
  p.filter_bound = s.filter_bound;
  p.quant_bound = s.quant_bound;
  p.use_filter = s.use_filter;
  p.encoder = encoder;
  return p;
}

}  // namespace compso::core
