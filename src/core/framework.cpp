#include "src/core/framework.hpp"

#include "src/quant/filter.hpp"
#include "src/quant/quantizer.hpp"
#include "src/tensor/stats.hpp"

#include <numeric>

namespace compso::core {

CompsoFramework::CompsoFramework(FrameworkConfig config,
                                 const optim::LrScheduler& lr,
                                 std::size_t total_iterations,
                                 const comm::Communicator& comm,
                                 gpusim::DeviceModel dev)
    : cfg_(config),
      schedule_(lr, total_iterations, config.schedule),
      table_(comm),
      dev_(dev),
      aggregation_(config.fixed_aggregation) {}

const std::vector<std::size_t>& CompsoFramework::aggregation_candidates() {
  static const std::vector<std::size_t> kCandidates{1, 2, 4, 8, 16, 32};
  return kCandidates;
}

std::vector<CompsoFramework::FamilyCandidate>
CompsoFramework::family_candidates(
    const compress::CompsoParams& compso_params) {
  // Fixed seed for the sketch candidates: scoring is a modeling exercise,
  // and a deterministic pool keeps the differential test's replay exact.
  constexpr std::uint64_t kSketchSeed = 0x5EEDULL;
  std::vector<FamilyCandidate> pool;
  const auto add = [&pool](const char* name,
                           std::unique_ptr<compress::GradientCompressor> c) {
    pool.push_back({name, std::move(c)});
  };
  add("COMPSO", compress::make_compso(compso_params));
  add("EF+COMPSO", compress::make_error_feedback(
                       compress::make_compso(compso_params)));
  add("TopK", compress::make_topk(0.1));
  add("EF+TopK",
      compress::make_error_feedback(compress::make_topk(0.1)));
  add("CocktailSGD", compress::make_cocktail(0.2, 8));
  add("EF+CocktailSGD",
      compress::make_error_feedback(compress::make_cocktail(0.2, 8)));
  add("CountSketch", compress::make_count_sketch(0.25, 3, kSketchSeed));
  add("RandProj", compress::make_random_projection(0.25, kSketchSeed));
  return pool;
}

void CompsoFramework::tune(const std::vector<std::size_t>& layer_bytes,
                           std::span<const float> sample_gradient,
                           double comm_fraction, tensor::Rng& rng) {
  auto tune_span = obs_.span(obs::kMainTrack, "tune", "tune");
  // --- encoder selection on the lossy-stage output of a real sample.
  auto encoder_span = obs_.span(obs::kMainTrack, "tune.encoder_select", "tune");
  const CompressionStage stage0 = schedule_.at(0);
  const double abs_max = tensor::extrema(sample_gradient).abs_max;
  const auto filt =
      quant::apply_filter(sample_gradient, stage0.filter_bound, abs_max);
  const quant::ErrorBoundedQuantizer q(stage0.quant_bound,
                                       quant::RoundingMode::kStochastic);
  const auto block = q.quantize(filt.survivors, rng, abs_max);
  auto lossy_stream = quant::pack_codes(block.codes, block.bit_width);
  lossy_stream.insert(lossy_stream.end(), filt.bitmap.begin(),
                      filt.bitmap.end());
  encoder_scores_ = perf::score_encoders(lossy_stream, dev_, table_);
  if (!encoder_scores_.empty()) encoder_ = encoder_scores_.front().kind;
  for (const auto& score : encoder_scores_) {
    const std::string stem =
        std::string("tune.encoder.") + codec::to_string(score.kind);
    obs_.gauge(stem + ".est_total_s", score.est_total_time);
    obs_.gauge(stem + ".ratio", score.compression_ratio);
  }
  obs_.count(std::string("tune.selected.encoder.") +
             codec::to_string(encoder_));
  encoder_span.end();

  // --- warm-up profile: k compress/decompress rounds on the sample.
  auto warmup_span = obs_.span(obs::kMainTrack, "tune.warmup", "tune");
  const auto compso = compress::make_compso(schedule_.params_at(0, encoder_));
  perf::OnlineProfiler profiler;
  for (std::size_t k = 0; k < cfg_.warmup_iterations; ++k) {
    const auto payload = compso->compress(sample_gradient, rng);
    const std::size_t in_bytes = sample_gradient.size() * sizeof(float);
    const double comp_t =
        static_cast<double>(in_bytes) /
        compso->modeled_throughput(dev_, in_bytes, payload.size());
    const double decomp_t =
        static_cast<double>(payload.size()) /
        compso->modeled_throughput(dev_, payload.size(), in_bytes);
    const double comm_t = table_.allgather_time(in_bytes);
    profiler.record(in_bytes, payload.size(), comp_t, decomp_t, comm_t,
                    comm_fraction > 0.0 ? comm_t / comm_fraction : comm_t);
  }
  const perf::WarmupProfile profile = profiler.finish();
  profile_ = profile;
  warmup_span.end();

  // --- aggregation factor (COMPSO-p) or the fixed default (COMPSO-f).
  auto agg_span = obs_.span(obs::kMainTrack, "tune.aggregation", "tune");
  if (cfg_.use_perf_model) {
    const auto& candidates = aggregation_candidates();
    const auto decision = perf::choose_aggregation_factor(
        layer_bytes, profile, *compso, dev_, table_, candidates);
    aggregation_ = decision.factor;
    est_e2e_ = decision.est_end_to_end;
    for (std::size_t i = 0; i < candidates.size() &&
                            i < decision.candidate_end_to_end.size();
         ++i) {
      obs_.gauge("tune.aggregation.m" + std::to_string(candidates[i]) +
                     ".est_e2e",
                 decision.candidate_end_to_end[i]);
    }
  } else {
    aggregation_ = cfg_.fixed_aggregation;
    const double s = perf::communication_speedup(
        layer_bytes.empty() ? 0
                            : std::accumulate(layer_bytes.begin(),
                                              layer_bytes.end(),
                                              std::size_t{0}),
        0, table_, profile.comp_throughput, profile.decomp_throughput);
    est_e2e_ = perf::end_to_end_speedup(profile.comm_fraction, s);
  }
  obs_.gauge("tune.selected.aggregation",
             static_cast<double>(aggregation_));
  obs_.gauge("tune.est_e2e", est_e2e_);
  agg_span.end();

  // --- compressor-family selection (DESIGN.md §17): score the widened
  // Eq. 5 pool on the same sample. Each candidate gets its own split Rng
  // stream (kFamilyRngStream + i), so this stage never perturbs the main
  // draw sequence the earlier stages consumed. Strict > keeps the
  // earliest candidate on a tie (COMPSO is first in the pool).
  auto family_span = obs_.span(obs::kMainTrack, "tune.family_select", "tune");
  family_scores_.clear();
  const auto pool = family_candidates(schedule_.params_at(0, encoder_));
  std::size_t best_family = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    tensor::Rng fam_rng = rng.split(kFamilyRngStream + i);
    perf::FamilyScore score = perf::score_family(
        *pool[i].compressor, sample_gradient, comm_fraction, dev_, table_,
        fam_rng);
    score.name = pool[i].name;
    const std::string stem = "tune.family." + score.name;
    obs_.gauge(stem + ".est_e2e", score.est_end_to_end);
    obs_.gauge(stem + ".ratio", score.compression_ratio);
    family_scores_.push_back(std::move(score));
    if (family_scores_.back().est_end_to_end >
        family_scores_[best_family].est_end_to_end) {
      best_family = i;
    }
  }
  selected_family_ = pool.empty() ? "COMPSO" : pool[best_family].name;
  obs_.count("tune.selected.family." + selected_family_);
  family_span.end();
}

const compress::GradientCompressor* CompsoFramework::compressor_for(
    std::size_t t) const {
  const CompressionStage stage = schedule_.at(t);
  auto it = stage_cache_.find(stage.stage_index);
  if (it == stage_cache_.end()) {
    it = stage_cache_
             .emplace(stage.stage_index,
                      compress::make_compso(schedule_.params_at(t, encoder_)))
             .first;
  }
  return it->second.get();
}

}  // namespace compso::core
