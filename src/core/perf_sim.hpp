#pragma once
// Iteration-time simulator for distributed KFAC training over the paper's
// model workloads (layer-shape tables). Produces:
//  - the Fig. 1 time breakdown (allgather / allreduce / KFAC compute /
//    forward+backward / others),
//  - the Fig. 7 communication speedups under each compressor,
//  - the Fig. 9 end-to-end speedups (COMPSO-f fixed aggregation vs
//    COMPSO-p perf-model aggregation).
//
// Compute times come from the gpusim device model (FLOP and memory-traffic
// counts of the KAISA pipeline), communication times from the comm network
// model, and compression ratios from really compressing synthetic
// KFAC-gradient data (sampled per layer group to bound memory).

#include "src/comm/communicator.hpp"
#include "src/compress/compressor.hpp"
#include "src/gpusim/device_model.hpp"
#include "src/nn/model_zoo.hpp"

#include <vector>

namespace compso::core {

struct PerfConfig {
  nn::ModelShape model;
  comm::Topology topo = comm::Topology::with_gpus(16);
  comm::NetworkModel net = comm::NetworkModel::platform1();
  gpusim::DeviceModel dev = gpusim::DeviceModel::a100();
  std::size_t batch_per_gpu = 4;
  /// KAISA-style update periods: factors are recomputed/all-reduced every
  /// `factor_update_every` iterations; eigendecompositions refresh every
  /// `eigen_refresh_every` factor updates.
  std::size_t factor_update_every = 25;
  std::size_t eigen_refresh_every = 4;
  double fwd_bwd_efficiency = 0.45;       ///< achieved fraction of peak.
  /// KAISA overlaps the per-layer gradient broadcasts with the remaining
  /// computation (its contribution 2): this fraction of the allgather time
  /// hides behind compute, bounded by the compute actually available.
  /// 0 = fully exposed (the default the Fig. 1/7/9 benches use; the
  /// paper's breakdown already nets out its overlap).
  double comm_overlap = 0.0;
  /// Collective-algorithm selection (DESIGN.md §16). The default keeps
  /// auto-selection off, so every modeled collective prices exactly as the
  /// legacy flat-ring / binomial formulas.
  comm::CollectiveConfig collectives;
  std::uint64_t seed = 2025;
};

/// One KFAC training iteration, split the way Fig. 1 reports it.
struct IterationBreakdown {
  double allgather_s = 0.0;   ///< preconditioned-gradient allgather.
  double allreduce_s = 0.0;   ///< factor allreduce (amortized).
  double kfac_compute_s = 0.0;
  double forward_backward_s = 0.0;
  double others_s = 0.0;
  double comp_s = 0.0;        ///< compression (0 without compressor).
  double decomp_s = 0.0;

  double total_s() const noexcept {
    return allgather_s + allreduce_s + kfac_compute_s + forward_backward_s +
           others_s + comp_s + decomp_s;
  }
  double comm_fraction() const noexcept {
    const double t = total_s();
    return t > 0.0 ? (allgather_s + allreduce_s) / t : 0.0;
  }
};

struct CompressedIteration {
  IterationBreakdown breakdown;
  double compression_ratio = 1.0;
  /// Allgather speedup excluding codec overhead (Fig. 7's metric).
  double comm_speedup = 1.0;
  /// End-to-end iteration speedup vs. the uncompressed baseline (Fig. 9).
  double end_to_end_speedup = 1.0;
};

class PerfSimulator {
 public:
  explicit PerfSimulator(PerfConfig config);

  /// Uncompressed distributed-KFAC iteration (the Fig. 1 baseline).
  const IterationBreakdown& baseline() const noexcept { return baseline_; }

  /// Iteration with `compressor` applied to the allgather, aggregating
  /// `aggregation` layers per compression call.
  CompressedIteration with_compressor(
      const compress::GradientCompressor& compressor,
      std::size_t aggregation) const;

  /// Analytic payload pipeline of the per-step compressed stream
  /// (DESIGN.md §15): compression, wire, and decompression charged in
  /// series (the unchunked path, Eq. 5's denominator) vs the chunked
  /// 3-stage makespan over `chunk_bytes`-sized frames. All groups feed
  /// one stream — matching the transport, where chunk_pack concatenates
  /// every group before framing. Both sides use the identical per-group
  /// compression ratios, modeled codec throughputs, and network model as
  /// with_compressor, so the analytic ratio and the real transport agree
  /// by construction.
  struct ChunkedPipeline {
    double serial_s = 0.0;    ///< unchunked: comp + wire + decomp in series.
    double pipeline_s = 0.0;  ///< chunked 3-stage makespan of the stream.
    double comp_s = 0.0;      ///< codec compress stage (summed groups).
    double decomp_s = 0.0;    ///< codec decompress stage (summed groups).
    std::size_t chunks = 0;   ///< chunk frames in the stream.
    std::size_t comp_bytes = 0;
    double ratio() const noexcept {
      return pipeline_s > 0.0 ? serial_s / pipeline_s : 1.0;
    }
  };
  ChunkedPipeline with_chunked_compressor(
      const compress::GradientCompressor& compressor,
      std::size_t aggregation, std::size_t chunk_bytes) const;

  /// Per-rank peak factor-state memory under the two preconditioning
  /// layouts (DESIGN.md §16): KAISA replicates every layer's covariance
  /// factors on every rank (O(L)), the sharded DP-KFAC layout stores a
  /// layer's factors only on its owner (O(L/P) with cost-balanced
  /// assignment). Mirrors DistKfac::shard_stats' byte/cost accounting so
  /// the modeled curve and the functional optimizer agree.
  struct PrecondMemory {
    std::size_t replicated_bytes = 0;    ///< every rank: all factors.
    std::size_t sharded_peak_bytes = 0;  ///< heaviest owner under LPT.
  };
  PrecondMemory precond_memory(std::size_t world) const;

  /// Per-rank original allgather bytes (layer-partitioned, max over ranks).
  std::size_t max_rank_bytes() const noexcept;
  /// Aggregated layer-group original sizes for the owner with most data.
  std::vector<std::size_t> layer_bytes() const;
  const PerfConfig& config() const noexcept { return cfg_; }

 private:
  IterationBreakdown compute_baseline() const;

  PerfConfig cfg_;
  comm::Communicator comm_;
  IterationBreakdown baseline_;
};

}  // namespace compso::core
