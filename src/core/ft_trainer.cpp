#include "src/core/ft_trainer.hpp"

#include "src/comm/network_model.hpp"
#include "src/common/thread_pool.hpp"
#include "src/compress/error_feedback.hpp"
#include "src/compress/payload_fuzz.hpp"
#include "src/tensor/matrix_ops.hpp"

#include <limits>
#include <utility>

namespace compso::core {
namespace {

/// Seed offset for the sketch families' counter-derived payload seeds.
constexpr std::uint64_t kSketchSeedSalt = 0x5EEDC0DEULL;

std::vector<nn::Model> build_replicas(const TrainerConfig& cfg) {
  std::vector<nn::Model> replicas;
  replicas.reserve(cfg.world);
  for (std::size_t r = 0; r < cfg.world; ++r) {
    tensor::Rng rng(cfg.seed);  // same seed -> identical initial weights
    replicas.push_back(nn::make_mlp_classifier(cfg.features, cfg.hidden,
                                               cfg.classes, cfg.depth, rng));
  }
  return replicas;
}

}  // namespace

FaultTolerantTrainer::FaultTolerantTrainer(FtTrainerConfig config)
    : cfg_(std::move(config)),
      dataset_(cfg_.base.features, cfg_.base.classes, cfg_.base.noise,
               cfg_.base.seed ^ 0xDA7A5E7ULL),
      replicas_(build_replicas(cfg_.base)),
      comm_(comm::Topology::with_gpus(cfg_.base.world),
            comm::NetworkModel::platform1()),
      lr_(cfg_.base_lr, cfg_.lr_decay, cfg_.lr_milestones),
      schedule_(lr_, cfg_.total_iterations, cfg_.schedule),
      engine_(cfg_.engine_threads),
      data_rng_(cfg_.base.seed ^ 0xBA7C4ULL),
      sr_rng_(cfg_.base.seed ^ 0x5121ULL) {
  comm_.set_membership_config(cfg_.membership);
  // Persistent family compressor (DESIGN.md §17). The EF families carry
  // their own residual state, so DistSgd's built-in per-(rank, slot)
  // residual is turned off for them — two stacked error feedbacks would
  // double-count the compression error.
  switch (cfg_.family) {
    case CompressorFamily::kCompso:
      break;  // rebuilt per step from the adaptive schedule.
    case CompressorFamily::kEfCompso:
      family_compressor_ = compress::make_error_feedback(
          compress::make_compso(schedule_.params_at(0)));
      cfg_.sgd.error_feedback = false;
      break;
    case CompressorFamily::kTopK:
      family_compressor_ = compress::make_topk(cfg_.family_keep_fraction);
      break;
    case CompressorFamily::kEfTopK:
      family_compressor_ = compress::make_error_feedback(
          compress::make_topk(cfg_.family_keep_fraction));
      cfg_.sgd.error_feedback = false;
      break;
    case CompressorFamily::kCountSketch:
      family_compressor_ = compress::make_count_sketch(
          cfg_.family_sketch_ratio, 3, cfg_.base.seed ^ kSketchSeedSalt);
      break;
    case CompressorFamily::kRandomProjection:
      family_compressor_ = compress::make_random_projection(
          cfg_.family_sketch_ratio, cfg_.base.seed ^ kSketchSeedSalt);
      break;
  }
  std::vector<nn::Model*> ptrs;
  for (auto& m : replicas_) ptrs.push_back(&m);
  if (cfg_.optimizer == OptimizerKind::kKfac) {
    kfac_ = std::make_unique<optim::DistKfac>(cfg_.kfac, comm_, ptrs);
    kfac_->set_recovery(cfg_.recovery);
    kfac_->set_engine(&engine_);
  } else {
    sgd_ = std::make_unique<optim::DistSgd>(cfg_.sgd, comm_, ptrs);
    sgd_->set_recovery(cfg_.recovery);
    sgd_->set_engine(&engine_);
  }
  // One pool for everything (DESIGN.md §11): the math kernels fan
  // top-level gemms/syrks across the engine's workers, while gemms issued
  // from inside an engine job run inline — never two pools competing for
  // the cores. Results are bit-identical with or without the pool.
  if (engine_.pool() != nullptr) {
    tensor::set_math_pool(engine_.pool());
  }
}

FaultTolerantTrainer::~FaultTolerantTrainer() {
  if (engine_.pool() != nullptr && tensor::math_pool() == engine_.pool()) {
    tensor::set_math_pool(nullptr);
  }
}

void FaultTolerantTrainer::set_fault_plan(comm::FaultPlan plan,
                                          std::uint64_t seed) {
  injector_ = std::make_unique<comm::FaultInjector>(std::move(plan), seed);
  // Realistic whole-payload damage from the PR-1 fuzz mutator, instead of
  // the comm layer's dependency-free header bit flip.
  injector_->set_mutator(
      [](std::vector<std::uint8_t>& payload, tensor::Rng& rng) {
        payload = compress::mutate_payload(payload, rng);
      });
  comm_.set_fault_injector(injector_.get());
}

void FaultTolerantTrainer::poison_gradients(nn::Model& model) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (std::size_t li : model.trainable_layers()) {
    auto& layer = model.layer(li);
    if (auto* wg = layer.weight_grad(); wg != nullptr && !wg->empty()) {
      (*wg)[0] = nan;
    }
    if (auto* bg = layer.bias_grad(); bg != nullptr && !bg->empty()) {
      (*bg)[0] = nan;
    }
  }
}

compress::CompsoParams FaultTolerantTrainer::effective_params(
    std::size_t t) const {
  auto params = schedule_.params_at(t);
  if (tightened_) {
    params.use_filter = false;
    params.quant_bound *= 0.5;
  }
  return params;
}

void FaultTolerantTrainer::set_obs(obs::ObsHooks hooks) {
  obs_ = hooks;
  comm_.set_obs(hooks);
  engine_.set_obs(hooks);
  if (engine_.pool() != nullptr) engine_.pool()->set_obs(hooks);
}

double FaultTolerantTrainer::step() {
  const std::size_t t = iteration_;
  obs_.count("trainer.steps");
  auto step_span = obs_.span(obs::kMainTrack, "trainer.step", "trainer");
  step_span.add_arg("iteration", t);
  // Consumes crash/silence/recover/straggler events for t and runs the
  // membership tick: heartbeat ledger, deadline waits, step exclusions,
  // suspicion/eviction, readmissions.
  comm_.begin_iteration(t);
  if (!comm_.rejoining_ranks().empty()) resync_shared_state(t);

  auto compute_span =
      obs_.span(obs::kMainTrack, "trainer.forward_backward", "trainer");
  double loss = 0.0;
  for (std::size_t r = 0; r < cfg_.base.world; ++r) {
    if (!comm_.is_participating(r)) continue;
    const auto batch = dataset_.sample(cfg_.base.batch_per_rank, data_rng_);
    const auto logits = replicas_[r].forward(batch.x);
    tensor::Tensor grad;
    loss += nn::softmax_cross_entropy(logits, batch.labels, grad);
    replicas_[r].backward(grad);
    if (injector_ != nullptr &&
        injector_->take(comm::FaultKind::kNanGradient, r)) {
      poison_gradients(replicas_[r]);
    }
  }
  loss /= static_cast<double>(comm_.participant_count());
  compute_span.end();

  std::unique_ptr<compress::GradientCompressor> compressor;
  const compress::GradientCompressor* active = nullptr;
  if (cfg_.compress) {
    if (cfg_.family == CompressorFamily::kCompso) {
      // Post-NaN conservative mode: no filtering, half the SR bound (see
      // effective_params).
      compressor = compress::make_compso(effective_params(t));
      active = compressor.get();
    } else {
      if (cfg_.family == CompressorFamily::kEfCompso) {
        // EF-over-COMPSO follows the same adaptive schedule: swap the
        // inner compressor, keep the residual streams.
        static_cast<compress::ErrorFeedbackCompressor*>(
            family_compressor_.get())
            ->set_inner(compress::make_compso(effective_params(t)));
      }
      active = family_compressor_.get();
    }
  }

  const auto skips_before = comm_.recovery().nonfinite_skips;
  if (kfac_ != nullptr) {
    kfac_->step(t, lr_.lr(t), active, sr_rng_);
  } else {
    sgd_->step(lr_.lr(t), active, sr_rng_);
  }
  if (comm_.recovery().nonfinite_skips > skips_before && !tightened_) {
    tightened_ = true;
    ++comm_.recovery().bound_tightenings;
    obs_.count("recovery.bound_tightenings");
    obs_.instant(obs::kMainTrack, "trainer.bound_tighten", "recovery",
                 {{"iteration", t}});
  }
  ++iteration_;
  return loss;
}

void FaultTolerantTrainer::resync_shared_state(std::size_t t) {
  const auto& rejoining = comm_.rejoining_ranks();
  auto span = obs_.span(obs::kMainTrack, "membership.resync_state", "recovery");
  span.add_arg("iteration", t);
  // Survivor side: serialize the shared state into a sealed CKPT frame —
  // the same framing + CRC a checkpoint restore validates.
  ckpt::Bytes body;
  ckpt::put_u64(body, t);
  ckpt::put_u8(body, tightened_ ? 1 : 0);
  if (kfac_ != nullptr) {
    kfac_->save_state(body);
  } else {
    sgd_->save_state(body);
  }
  ckpt::put_rng(body, data_rng_.save_state());
  ckpt::put_rng(body, sr_rng_.save_state());
  const ckpt::Bytes frame = ckpt::seal_frame(body);
  // Rejoiner side: validate and load. The simulator stores this state
  // once, so the load is a bitwise no-op — the point is that the frame
  // goes through the full open/parse/validate path the real protocol
  // would, and that the accounting reflects the transfer.
  const auto view = ckpt::open_frame(frame);
  codec::wire::Reader reader(view);
  if (reader.u64() != t) {
    throw PayloadError("resync: iteration cursor mismatch");
  }
  tightened_ = reader.u8() != 0;
  if (kfac_ != nullptr) {
    kfac_->load_state(reader);
  } else {
    sgd_->load_state(reader);
  }
  data_rng_.restore_state(ckpt::get_rng(reader));
  sr_rng_.restore_state(ckpt::get_rng(reader));
  if (reader.remaining() != 0) {
    throw PayloadError("resync: trailing bytes");
  }
  comm_.recovery().resyncs += rejoining.size();
  obs_.count("recovery.resyncs", rejoining.size());
  span.end();
}

std::vector<double> FaultTolerantTrainer::run(std::size_t iterations) {
  std::vector<double> losses;
  losses.reserve(iterations);
  for (std::size_t i = 0; i < iterations; ++i) losses.push_back(step());
  return losses;
}

double FaultTolerantTrainer::evaluate() {
  tensor::Rng rng(cfg_.base.seed ^ 0xE7A1ULL);
  const auto batch = dataset_.sample(512, rng);
  const auto logits = lead_replica().forward(batch.x);
  return nn::accuracy(logits, batch.labels);
}

std::vector<float> FaultTolerantTrainer::parameters() {
  return replica_parameters(comm_.first_participant());
}

std::vector<float> FaultTolerantTrainer::replica_parameters(std::size_t rank) {
  std::vector<float> out;
  auto& model = replicas_.at(rank);
  for (std::size_t li : model.trainable_layers()) {
    auto& layer = model.layer(li);
    const auto w = layer.weight()->span();
    const auto b = layer.bias()->span();
    out.insert(out.end(), w.begin(), w.end());
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

ckpt::Bytes FaultTolerantTrainer::checkpoint(
    std::vector<CkptSection>* sections) {
  ckpt::Bytes body;
  if (sections != nullptr) sections->clear();
  const auto section = [&](const char* name) {
    if (sections == nullptr) return;
    if (!sections->empty()) sections->back().end = body.size();
    sections->push_back({name, body.size(), body.size()});
  };
  // --- config echo (validated on restore) ---
  section("config");
  ckpt::put_u8(body, static_cast<std::uint8_t>(cfg_.optimizer));
  ckpt::put_u64(body, cfg_.base.world);
  ckpt::put_u64(body, cfg_.base.features);
  ckpt::put_u64(body, cfg_.base.classes);
  ckpt::put_u64(body, cfg_.base.hidden);
  ckpt::put_u64(body, cfg_.base.depth);
  // --- schedule cursor + policy state ---
  section("cursor");
  ckpt::put_u64(body, iteration_);
  ckpt::put_u8(body, tightened_ ? 1 : 0);
  // --- rank liveness ---
  section("mask");
  const auto& mask = comm_.active_mask();
  ckpt::put_u64(body, mask.size());
  for (auto m : mask) ckpt::put_u8(body, m);
  // --- membership ledger (phases, heartbeat/probe cursors) ---
  section("membership");
  comm_.membership().serialize(body);
  // --- recovery counters (reporting continuity across resume) ---
  section("counters");
  const auto& rc = comm_.recovery();
  for (std::uint64_t c :
       {rc.corrupt_injected, rc.drops_injected, rc.truncations_injected,
        rc.straggler_events, rc.decode_retries, rc.decode_failures,
        rc.fallback_steps, rc.degraded_layers, rc.evictions,
        rc.nonfinite_skips, rc.bound_tightenings, rc.checkpoint_saves,
        rc.checkpoint_restores, rc.heartbeat_misses, rc.suspicions,
        rc.deadline_waits, rc.deadline_exclusions, rc.readmissions,
        rc.resyncs}) {
    ckpt::put_u64(body, c);
  }
  // --- model parameters (replicas are identical; save the lead) ---
  section("params");
  auto& model = lead_replica();
  const auto trainable = model.trainable_layers();
  ckpt::put_u64(body, trainable.size());
  for (std::size_t li : trainable) {
    auto& layer = model.layer(li);
    ckpt::put_tensor(body, *layer.weight());
    ckpt::put_tensor(body, *layer.bias());
  }
  // --- optimizer state ---
  section("optimizer");
  if (kfac_ != nullptr) {
    kfac_->save_state(body);
  } else {
    sgd_->save_state(body);
  }
  // --- persistent compressor-family state (DESIGN.md §17): the EF
  // residual map / sketch seed counters that make a resumed run's
  // payloads bit-identical to an uninterrupted one ---
  section("compressor");
  ckpt::put_u8(body, static_cast<std::uint8_t>(cfg_.family));
  auto* stateful =
      dynamic_cast<compress::StatefulCompressor*>(family_compressor_.get());
  ckpt::put_u8(body, stateful != nullptr ? 1 : 0);
  if (stateful != nullptr) stateful->serialize_state(body);
  // --- RNG streams ---
  section("rng");
  ckpt::put_rng(body, data_rng_.save_state());
  ckpt::put_rng(body, sr_rng_.save_state());
  // --- simulated per-rank clocks (so a resumed run reproduces the exact
  // simulated timeline, and sim-clock-driven traces stay byte-identical) ---
  section("clocks");
  const auto& clocks = comm_.clocks();
  ckpt::put_u64(body, clocks.world_size());
  for (std::size_t r = 0; r < clocks.world_size(); ++r) {
    ckpt::put_f64(body, clocks.at(r));
  }
  if (sections != nullptr && !sections->empty()) {
    sections->back().end = body.size();
  }

  ++comm_.recovery().checkpoint_saves;
  obs_.count("recovery.checkpoint_saves");
  obs_.instant(obs::kMainTrack, "trainer.checkpoint_save", "recovery",
               {{"iteration", iteration_}});
  return ckpt::seal_frame(body);
}

void FaultTolerantTrainer::save_checkpoint(const std::string& path) {
  ckpt::write_file(path, checkpoint());
}

void FaultTolerantTrainer::restore(ckpt::ByteView frame) {
  const auto body = ckpt::open_frame(frame);
  codec::wire::Reader reader(body);
  if (reader.u8() != static_cast<std::uint8_t>(cfg_.optimizer)) {
    throw PayloadError("checkpoint: optimizer kind mismatch");
  }
  for (std::size_t expect :
       {cfg_.base.world, cfg_.base.features, cfg_.base.classes,
        cfg_.base.hidden, cfg_.base.depth}) {
    if (reader.u64() != expect) {
      throw PayloadError("checkpoint: config mismatch");
    }
  }
  iteration_ = reader.u64();
  tightened_ = reader.u8() != 0;
  const auto mask_len = reader.bounded_u64(1 << 20, "active mask");
  if (mask_len != cfg_.base.world) {
    throw PayloadError("checkpoint: active mask size mismatch");
  }
  std::vector<std::uint8_t> mask(mask_len);
  bool any_active = false;
  for (auto& m : mask) {
    m = reader.u8();
    any_active = any_active || m != 0;
  }
  // An all-zero mask can only come from a damaged frame (evict() and
  // set_active_mask both keep the group non-empty), so report it as
  // payload damage rather than letting set_active_mask's admin-API
  // invalid_argument escape a restore.
  if (!any_active) {
    throw PayloadError("checkpoint: active mask empty");
  }
  comm_.set_active_mask(mask);
  // The ledger overwrites the edge-derived membership state set_active_mask
  // just synthesized, restoring the exact phases, miss counts, and probe
  // cursors of the saved run (so a resume mid-suspicion or mid-rejoin
  // continues the identical ladder timeline).
  comm_.membership().deserialize(reader);
  comm_.refresh_participation();
  auto& rc = comm_.recovery();
  for (std::uint64_t* c :
       {&rc.corrupt_injected, &rc.drops_injected, &rc.truncations_injected,
        &rc.straggler_events, &rc.decode_retries, &rc.decode_failures,
        &rc.fallback_steps, &rc.degraded_layers, &rc.evictions,
        &rc.nonfinite_skips, &rc.bound_tightenings, &rc.checkpoint_saves,
        &rc.checkpoint_restores, &rc.heartbeat_misses, &rc.suspicions,
        &rc.deadline_waits, &rc.deadline_exclusions, &rc.readmissions,
        &rc.resyncs}) {
    *c = reader.u64();
  }
  const auto trainable = replicas_[0].trainable_layers();
  const auto saved_layers = reader.bounded_u64(1 << 20, "trainable layers");
  if (saved_layers != trainable.size()) {
    throw PayloadError("checkpoint: trainable layer count mismatch");
  }
  for (std::size_t li : trainable) {
    auto& ref = replicas_[0].layer(li);
    const auto w = ckpt::get_tensor(reader, ref.weight()->shape(), "weight");
    const auto b = ckpt::get_tensor(reader, ref.bias()->shape(), "bias");
    // Restore into every replica (evicted ones stay inactive but benign).
    for (auto& model : replicas_) {
      *model.layer(li).weight() = w;
      *model.layer(li).bias() = b;
    }
  }
  if (kfac_ != nullptr) {
    kfac_->load_state(reader);
  } else {
    sgd_->load_state(reader);
  }
  // --- compressor-family state (DESIGN.md §17) ---
  if (reader.u8() != static_cast<std::uint8_t>(cfg_.family)) {
    throw PayloadError("checkpoint: compressor family mismatch");
  }
  const std::uint8_t has_comp_state = reader.u8();
  if (has_comp_state > 1) {
    throw PayloadError("checkpoint: bad compressor state flag");
  }
  auto* stateful =
      dynamic_cast<compress::StatefulCompressor*>(family_compressor_.get());
  if ((has_comp_state != 0) != (stateful != nullptr)) {
    throw PayloadError("checkpoint: compressor state presence mismatch");
  }
  if (stateful != nullptr) stateful->deserialize_state(reader);
  data_rng_.restore_state(ckpt::get_rng(reader));
  sr_rng_.restore_state(ckpt::get_rng(reader));
  const auto clock_count = reader.bounded_u64(1 << 20, "sim clocks");
  auto& clocks = comm_.clocks();
  if (clock_count != clocks.world_size()) {
    throw PayloadError("checkpoint: sim clock count mismatch");
  }
  clocks.reset();
  for (std::size_t r = 0; r < clock_count; ++r) {
    // advance() onto a reset (0.0) clock restores the saved double exactly.
    clocks.advance(r, reader.f64());
  }
  if (reader.remaining() != 0) {
    throw PayloadError("checkpoint: trailing bytes");
  }
  ++comm_.recovery().checkpoint_restores;
  obs_.count("recovery.checkpoint_restores");
  obs_.instant(obs::kMainTrack, "trainer.checkpoint_restore", "recovery",
               {{"iteration", iteration_}});
}

void FaultTolerantTrainer::load_checkpoint(const std::string& path) {
  const auto frame = ckpt::read_file(path);
  restore(frame);
}

}  // namespace compso::core
