#pragma once
// CompsoFramework: the user-facing entry point that ties the pieces of §4
// together — the iteration-wise adaptive schedule, the offline-online
// performance model (encoder selection + layer aggregation), and the
// per-iteration compressor handed to the distributed optimizer.

#include "src/core/adaptive_schedule.hpp"
#include "src/core/trainer.hpp"
#include "src/obs/obs.hpp"
#include "src/perf/perf_model.hpp"

#include <map>
#include <memory>
#include <optional>

namespace compso::core {

struct FrameworkConfig {
  AdaptiveSchedule::Params schedule;
  /// true = COMPSO-p (perf-model aggregation), false = COMPSO-f (fixed).
  bool use_perf_model = true;
  std::size_t fixed_aggregation = 4;  ///< the paper's default factor.
  std::size_t warmup_iterations = 5;  ///< k profiling iterations.
};

class CompsoFramework {
 public:
  CompsoFramework(FrameworkConfig config, const optim::LrScheduler& lr,
                  std::size_t total_iterations,
                  const comm::Communicator& comm,
                  gpusim::DeviceModel dev = gpusim::DeviceModel::a100());

  /// Offline-online tuning (§4.4): builds the comm lookup table, selects
  /// the encoder on a sample of real gradient data, and picks the
  /// layer-aggregation factor from the warm-up profile.
  void tune(const std::vector<std::size_t>& layer_bytes,
            std::span<const float> sample_gradient, double comm_fraction,
            tensor::Rng& rng);

  codec::CodecKind encoder() const noexcept { return encoder_; }
  std::size_t aggregation() const noexcept { return aggregation_; }
  const AdaptiveSchedule& schedule() const noexcept { return schedule_; }
  const perf::CommLookupTable& lookup_table() const noexcept {
    return table_;
  }
  const std::vector<perf::EncoderScore>& encoder_scores() const noexcept {
    return encoder_scores_;
  }
  double estimated_end_to_end() const noexcept { return est_e2e_; }
  /// Warm-up profile measured by the last tune() call (zeroed before).
  /// Exposed so differential tests can re-run the selection math on the
  /// exact same inputs the framework used.
  const perf::WarmupProfile& warmup_profile() const noexcept {
    return profile_;
  }
  /// The aggregation candidates tune() evaluates (paper §4.4).
  static const std::vector<std::size_t>& aggregation_candidates();

  /// One compressor-family candidate for the Eq. 5 pool (DESIGN.md §17).
  struct FamilyCandidate {
    std::string name;
    std::unique_ptr<compress::GradientCompressor> compressor;
  };

  /// The compressor-family pool tune() scores under Eq. 5 (ROADMAP item
  /// 3): COMPSO itself, the strongest baselines with and without the
  /// error-feedback wrapper, and the randomized-linear (sketch) family.
  /// Order is fixed and COMPSO is first; tune() keeps the *earliest*
  /// candidate on an exact end-to-end tie (strict > replaces the best),
  /// so ties resolve toward COMPSO, then toward EF variants. The
  /// differential tuner test enumerates this same pool independently.
  static std::vector<FamilyCandidate> family_candidates(
      const compress::CompsoParams& compso_params);

  /// Per-candidate Rng stream for family scoring: candidate i is scored
  /// with rng.split(kFamilyRngStream + i), leaving the caller's main
  /// draw sequence untouched (the encoder/warm-up replay in the
  /// differential test stays valid).
  static constexpr std::uint64_t kFamilyRngStream = 0xFA171E50ULL;

  /// Eq. 5 scores per family candidate from the last tune() call, in
  /// family_candidates() order.
  const std::vector<perf::FamilyScore>& family_scores() const noexcept {
    return family_scores_;
  }
  /// Name of the family tune() selected (argmax est_end_to_end, ties to
  /// the earliest candidate). "COMPSO" before the first tune() call.
  const std::string& selected_family() const noexcept {
    return selected_family_;
  }

  /// Attaches metrics/tracer hooks: tune() then records per-candidate
  /// encoder and aggregation scores as gauges ("tune.encoder.<name>.*",
  /// "tune.aggregation.m<m>.est_e2e") plus the selected values, and wraps
  /// its phases in spans.
  void set_obs(obs::ObsHooks hooks) noexcept { obs_ = hooks; }

  /// Compressor for iteration t (cached per schedule stage).
  const compress::GradientCompressor* compressor_for(std::size_t t) const;

  /// Adapter for the trainers.
  CompressorProvider provider() const {
    return [this](std::size_t t) { return compressor_for(t); };
  }

 private:
  FrameworkConfig cfg_;
  AdaptiveSchedule schedule_;
  perf::CommLookupTable table_;
  gpusim::DeviceModel dev_;
  codec::CodecKind encoder_ = codec::CodecKind::kAns;
  std::size_t aggregation_;
  double est_e2e_ = 1.0;
  std::vector<perf::EncoderScore> encoder_scores_;
  std::vector<perf::FamilyScore> family_scores_;
  std::string selected_family_ = "COMPSO";
  perf::WarmupProfile profile_;
  obs::ObsHooks obs_;
  mutable std::map<std::size_t, std::unique_ptr<compress::GradientCompressor>>
      stage_cache_;
};

}  // namespace compso::core
