#pragma once
// Iteration-wise adaptive compression (paper §4.3, Algorithm 1).
//
// The error bounds follow the learning-rate schedule:
//  - StepLR: aggressive (filter + SR, loose bounds) before the first LR
//    drop, conservative (SR only, tight bounds) after it.
//  - SmoothLR: training is split into z stages; stage 0 is aggressive,
//    each subsequent stage decays both bounds by alpha.

#include "src/compress/compressor.hpp"
#include "src/optim/lr_scheduler.hpp"

#include <cstddef>

namespace compso::core {

/// The compression strategy for one iteration.
struct CompressionStage {
  double filter_bound = 0.0;
  double quant_bound = 0.0;
  bool use_filter = true;
  std::size_t stage_index = 0;

  bool aggressive() const noexcept { return use_filter; }
};

/// Tunables of the adaptive schedule (Algorithm 1's eb_f / eb_q / z / alpha).
struct AdaptiveScheduleParams {
  double loose_filter_bound = 4e-3;   ///< aggressive eb_f.
  double loose_quant_bound = 4e-3;    ///< aggressive eb_q.
  double tight_quant_bound = 2e-3;    ///< conservative eb_q (StepLR mode).
  std::size_t stages = 4;             ///< z (SmoothLR mode).
  double decay = 0.5;                 ///< alpha (SmoothLR mode).
};

class AdaptiveSchedule {
 public:
  using Params = AdaptiveScheduleParams;

  /// `scheduler` decides StepLR vs SmoothLR behaviour; `total_iterations`
  /// sizes the SmoothLR stages.
  AdaptiveSchedule(const optim::LrScheduler& scheduler,
                   std::size_t total_iterations,
                   Params params = AdaptiveScheduleParams{});

  /// Strategy at iteration t.
  CompressionStage at(std::size_t t) const noexcept;

  /// Convenience: COMPSO compressor parameters for iteration t.
  compress::CompsoParams params_at(
      std::size_t t,
      codec::CodecKind encoder = codec::CodecKind::kAns) const noexcept;

  std::size_t stage_length() const noexcept { return stage_length_; }

 private:
  const optim::LrScheduler& scheduler_;
  std::size_t total_;
  Params p_;
  std::size_t stage_length_;
};

}  // namespace compso::core
