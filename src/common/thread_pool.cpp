#include "src/common/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>

namespace compso::common {
namespace {

thread_local bool t_on_worker = false;

}  // namespace

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  if (stop_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ThreadPool: submit after shutdown");
  }
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  Queue& q = *queues_[next_.fetch_add(1, std::memory_order_relaxed) %
                      queues_.size()];
  {
    std::lock_guard<std::mutex> lk(q.m);
    q.d.push_back(std::move(task));
  }
  {
    // The counter moves under wake_m_ so a worker evaluating the wait
    // predicate cannot miss the increment and sleep through the notify.
    std::lock_guard<std::mutex> lk(wake_m_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
  return fut;
}

bool ThreadPool::try_pop(std::size_t id, std::packaged_task<void()>& task) {
  Queue& q = *queues_[id];
  std::lock_guard<std::mutex> lk(q.m);
  if (q.d.empty()) return false;
  task = std::move(q.d.front());
  q.d.pop_front();
  return true;
}

bool ThreadPool::try_steal(std::size_t id, std::packaged_task<void()>& task) {
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(id + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(q.m);
    if (q.d.empty()) continue;
    task = std::move(q.d.back());  // steal the cold end
    q.d.pop_back();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t id) {
  t_on_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    if (try_pop(id, task) || try_steal(id, task)) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      task();  // packaged_task captures exceptions into the future
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lk(wake_m_);
    wake_cv_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  obs_.count("pool.parallel_for.calls");
  obs_.count("pool.parallel_for.items", n);
  const std::size_t helpers = std::min(size(), n) - 1;
  std::atomic<std::size_t> cursor{0};
  auto drain = [&cursor, n, &fn] {
    for (std::size_t i; (i = cursor.fetch_add(1)) < n;) fn(i);
  };
  std::vector<std::future<void>> futs;
  futs.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) futs.push_back(submit(drain));
  std::exception_ptr first;
  try {
    drain();  // caller participates
  } catch (...) {
    first = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::parallel_for_static(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  obs_.count("pool.parallel_for_static.calls");
  obs_.count("pool.parallel_for_static.items", n);
  // Nested (worker-thread) and post-shutdown calls run serially inline:
  // same ranges processed, same per-block arithmetic, identical results.
  if (t_on_worker || stop_.load(std::memory_order_acquire)) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(size() + 1, n);
  if (chunks <= 1) {
    fn(0, n);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  // Contiguous ranges: chunk c covers base(+1 for the first rem chunks).
  auto range_begin = [base, rem](std::size_t c) {
    return c * base + std::min(c, rem);
  };
  std::vector<std::future<void>> futs;
  futs.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    futs.push_back(submit([&fn, b = range_begin(c), e = range_begin(c + 1)] {
      fn(b, e);
    }));
  }
  std::exception_ptr first;
  try {
    fn(0, range_begin(1));  // caller takes the first range.
  } catch (...) {
    first = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lk(wake_m_);
    if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  // Drain anything a racing submit slipped in after the workers left.
  for (auto& qp : queues_) {
    std::lock_guard<std::mutex> lk(qp->m);
    while (!qp->d.empty()) {
      qp->d.front()();  // runs inline; future sees result or exception
      qp->d.pop_front();
    }
  }
}

}  // namespace compso::common
