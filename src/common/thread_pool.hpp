#pragma once
// Small work-stealing thread pool for the parallel compression engine
// (DESIGN.md §10). Each worker owns a deque: submissions are distributed
// round-robin, a worker pops from the front of its own deque and steals
// from the back of a sibling's when it runs dry — cheap load balancing for
// the uneven per-layer compression costs without a global hot queue.
//
// Tasks are type-erased void() jobs; exceptions thrown inside a task are
// captured in the returned future and rethrow at get(). shutdown() (also
// run by the destructor) drains every queued task before joining, so no
// future is ever abandoned. Submitting concurrently with shutdown() is a
// caller error (the late task may be dropped); submitting after shutdown()
// throws.

#include "src/obs/obs.hpp"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace compso::common {

class ThreadPool {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues `fn`; the future rethrows any exception `fn` threw.
  std::future<void> submit(std::function<void()> fn);

  /// Runs fn(0..n-1) across the pool with the caller participating;
  /// returns after every index ran and rethrows the first exception.
  /// Indices are claimed dynamically (atomic cursor) — good load
  /// balancing, but the index->thread assignment is nondeterministic.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Deterministic static-partition variant for the math engine
  /// (DESIGN.md §11): [0, n) is split into at most size()+1 contiguous
  /// ranges fixed by (n, pool size) alone, fn(begin, end) runs once per
  /// range (caller takes the first range, workers the rest), and the call
  /// returns after every range completed, rethrowing the first exception
  /// in range order. Callers index *output blocks* with it: because each
  /// block's computation is self-contained, results are bit-identical at
  /// any thread count. Nested calls (from a pool worker of any pool) and
  /// calls after shutdown() degrade to a serial inline fn(0, n).
  void parallel_for_static(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// True on any ThreadPool worker thread (of any pool instance). The
  /// math kernels consult this to run inline instead of re-entering a
  /// pool from inside a pool task — nested blocking submission could
  /// deadlock and would oversubscribe the cores either way.
  static bool on_worker_thread() noexcept;

  /// Stops accepting work, drains the queues, joins the workers.
  /// Idempotent.
  void shutdown();

  /// Attaches metrics hooks. The pool only counts size-invariant events —
  /// parallel_for / parallel_for_static calls and their item counts —
  /// never raw task submissions, whose number depends on the worker count
  /// and would break the cross-thread-count determinism of snapshots.
  void set_obs(obs::ObsHooks hooks) noexcept { obs_ = hooks; }

 private:
  struct Queue {
    std::mutex m;
    std::deque<std::packaged_task<void()>> d;
  };

  bool try_pop(std::size_t id, std::packaged_task<void()>& task);
  bool try_steal(std::size_t id, std::packaged_task<void()>& task);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex wake_m_;
  std::condition_variable wake_cv_;
  std::atomic<long long> pending_{0};  ///< queued-but-not-started tasks.
  std::atomic<std::size_t> next_{0};   ///< round-robin submission cursor.
  std::atomic<bool> stop_{false};
  obs::ObsHooks obs_;
};

}  // namespace compso::common
