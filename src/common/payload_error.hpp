#pragma once
// PayloadError: the single exception type for malformed wire data.
//
// Every decode path in the library (codec frames, bit-packed streams,
// compressor payloads) throws PayloadError when the input is corrupt,
// truncated, or structurally inconsistent — never UB, never a silent wrong
// answer. It derives from std::invalid_argument so callers that only care
// about "decode failed" keep working, while the fuzz harness can assert the
// precise type.
//
// This header is dependency-free on purpose: quant, codec, and compress all
// sit at different layers of the link graph but share the one error type.

#include <stdexcept>
#include <string>

namespace compso {

/// Thrown when a wire payload fails validation during decode.
class PayloadError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown by the optimizers' post-decompression guard when a gradient
/// buffer contains NaN or Inf and no recovery policy is installed to skip
/// the step. A payload can be wire-valid (CRC-clean) and still carry
/// non-finite values — e.g. an upstream arithmetic fault — so this is a
/// distinct type from PayloadError: the data was delivered intact but is
/// numerically unusable.
class NonFiniteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace compso
