#pragma once
// Checkpoint frame format v1 (DESIGN.md §9.3).
//
// A checkpoint is a single wire-format v1 frame (src/codec/wire.hpp): the
// standard 17-byte header — magic "CKPT", version, body byte count, CRC32 —
// followed by a little-endian body the owner serializes section by
// section. The CRC covers the whole frame, so a torn or bit-rotted frame
// fails loudly with PayloadError instead of resuming from silent garbage,
// and every body read goes through the bounds-checked wire::Reader.
//
// Floats are serialized by bit pattern (no text round-trip), which is what
// makes resume bit-exact: a restored run continues the identical FP32
// trajectory and RNG stream of an uninterrupted one.
//
// This lives in the codec layer (not core) because the frame is used below
// the trainer too: the optimizers ship rejoin re-sync payloads between
// replicas through the same sealed framing (DESIGN.md §14). The historical
// spelling core::ckpt:: remains valid via src/core/checkpoint.hpp.

#include "src/codec/wire.hpp"
#include "src/tensor/rng.hpp"
#include "src/tensor/tensor.hpp"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace compso::codec::ckpt {

using codec::wire::ByteView;
using codec::wire::Bytes;

/// "CKPT" little-endian.
constexpr std::uint32_t kMagic = 0x54504B43U;

// --- body serialization helpers (little-endian, matching wire::Reader) ---

void put_u8(Bytes& out, std::uint8_t v);
void put_u64(Bytes& out, std::uint64_t v);
void put_f32(Bytes& out, float v);
void put_f64(Bytes& out, double v);
/// [u64 count][f32 x count]
void put_floats(Bytes& out, std::span<const float> values);
void put_tensor(Bytes& out, const tensor::Tensor& t);
void put_rng(Bytes& out, const tensor::RngState& state);

std::vector<float> get_floats(codec::wire::Reader& reader, const char* field);
/// Reads a float vector and checks it against the expected tensor shape.
tensor::Tensor get_tensor(codec::wire::Reader& reader,
                          std::vector<std::size_t> shape, const char* field);
tensor::RngState get_rng(codec::wire::Reader& reader);

// --- frame + file layer ---

/// Wraps a serialized body in the v1 header and seals the CRC.
Bytes seal_frame(ByteView body);

/// Validates a frame (size, magic, version, count, CRC) and returns its
/// body view (into `frame` — keep the frame alive). Throws PayloadError.
ByteView open_frame(ByteView frame);

/// Writes bytes to `path` atomically enough for tests (tmp + rename);
/// throws std::runtime_error on I/O failure.
void write_file(const std::string& path, ByteView bytes);

/// Reads a whole file; throws std::runtime_error on I/O failure.
Bytes read_file(const std::string& path);

}  // namespace compso::codec::ckpt
