#pragma once
// Elias gamma coding — QSGD's lossless stage (§2.4): after SR quantization
// QSGD encodes the (sparse, small-magnitude) integer codes with Elias
// codes, which favor values concentrated near zero.

#include "src/codec/codec.hpp"

#include <cstdint>

namespace compso::codec {

/// Gamma-encodes unsigned values (each must be >= 1).
Bytes elias_gamma_encode(std::span<const std::uint64_t> values);
/// Decodes `count` gamma-coded values.
std::vector<std::uint64_t> elias_gamma_decode(ByteView bytes,
                                              std::size_t count);

/// Convenience for signed quantization codes: zigzag(v) + 1 per value.
Bytes elias_gamma_encode_signed(std::span<const std::int64_t> codes);
std::vector<std::int64_t> elias_gamma_decode_signed(ByteView bytes,
                                                    std::size_t count);

}  // namespace compso::codec
