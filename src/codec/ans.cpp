#include "src/codec/ans.hpp"

#include <algorithm>
#include <array>
#include <iterator>
#include <stdexcept>

namespace compso::codec {
namespace {

constexpr std::uint32_t kMagic = 0x414E5331;  // "ANS1"
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCoded = 1;
constexpr unsigned kProbBits = 12;            // frequencies sum to 4096
constexpr std::uint32_t kProbScale = 1U << kProbBits;
constexpr std::uint32_t kRansLowerBound = 1U << 23;

/// Normalizes raw counts so they sum to kProbScale with every present
/// symbol keeping frequency >= 1.
std::array<std::uint32_t, 256> normalize_freqs(
    const std::array<std::uint64_t, 256>& raw, std::uint64_t total) {
  std::array<std::uint32_t, 256> freq{};
  std::uint32_t assigned = 0;
  int last_present = -1;
  for (int s = 0; s < 256; ++s) {
    if (raw[static_cast<std::size_t>(s)] == 0) continue;
    auto f = static_cast<std::uint32_t>(
        (raw[static_cast<std::size_t>(s)] * kProbScale) / total);
    if (f == 0) f = 1;
    freq[static_cast<std::size_t>(s)] = f;
    assigned += f;
    last_present = s;
  }
  if (last_present < 0) return freq;
  // Fix the rounding drift: add any shortfall to the most frequent symbol;
  // shave any excess off the largest symbols (keeping each >= 1).
  while (assigned != kProbScale) {
    int max_sym = last_present;
    for (int s = 0; s < 256; ++s) {
      if (freq[static_cast<std::size_t>(s)] >
          freq[static_cast<std::size_t>(max_sym)]) {
        max_sym = s;
      }
    }
    auto& f = freq[static_cast<std::size_t>(max_sym)];
    if (assigned < kProbScale) {
      f += kProbScale - assigned;
      assigned = kProbScale;
    } else {
      const std::uint32_t excess = assigned - kProbScale;
      const std::uint32_t cut = std::min(excess, f - 1);
      if (cut == 0) {
        // Every symbol is already at 1: more distinct symbols than slots
        // cannot happen (256 symbols, 4096 slots).
        throw std::invalid_argument("rans: cannot normalize frequency table");
      }
      f -= cut;
      assigned -= cut;
    }
  }
  return freq;
}

}  // namespace

void rans_encode_into(ByteView input, Bytes& out) {
  const std::size_t frame_begin = out.size();
  detail::write_header(out, kMagic, input.size());
  if (input.empty()) {
    out.push_back(kModeStored);
    detail::seal_frame_at(out, frame_begin);
    return;
  }
  // Histogram in four independent lanes: per-byte increments on one array
  // serialize on store-forwarding; the split costs nothing to merge.
  std::array<std::uint64_t, 256> raw{};
  {
    std::array<std::uint64_t, 256> h1{}, h2{}, h3{};
    std::size_t i = 0;
    for (; i + 4 <= input.size(); i += 4) {
      ++raw[input[i]];
      ++h1[input[i + 1]];
      ++h2[input[i + 2]];
      ++h3[input[i + 3]];
    }
    for (; i < input.size(); ++i) ++raw[input[i]];
    for (int s = 0; s < 256; ++s) {
      raw[static_cast<std::size_t>(s)] += h1[static_cast<std::size_t>(s)] +
                                          h2[static_cast<std::size_t>(s)] +
                                          h3[static_cast<std::size_t>(s)];
    }
  }
  const auto freq = normalize_freqs(raw, input.size());
  std::array<std::uint32_t, 256> cum{};
  for (int s = 1; s < 256; ++s) {
    cum[static_cast<std::size_t>(s)] =
        cum[static_cast<std::size_t>(s - 1)] + freq[static_cast<std::size_t>(s - 1)];
  }

  // Per-symbol encode entries: the state transform
  //   state = ((state / f) << kProbBits) + (state % f) + cum
  // is computed divide-free via an exact fixed-point reciprocal
  // (Granlund-Montgomery round-up division, the standard rANS encoder
  // formulation): q = (state * rcp) >> (32 + shift) equals state / f for
  // every state below the renormalized range, so the emitted stream is
  // bit-identical to the plain-division form.
  struct EncSym {
    std::uint32_t x_max;      ///< renormalization threshold for this f.
    std::uint32_t rcp;        ///< fixed-point reciprocal of f.
    std::uint32_t bias;       ///< cum (plus the f==1 special-case offset).
    std::uint32_t cmpl_freq;  ///< kProbScale - f.
    std::uint32_t shift;
  };
  std::array<EncSym, 256> syms{};
  for (int s = 0; s < 256; ++s) {
    const std::uint32_t f = freq[static_cast<std::size_t>(s)];
    if (f == 0) continue;
    auto& e = syms[static_cast<std::size_t>(s)];
    e.x_max = ((kRansLowerBound >> kProbBits) << 8) * f;
    e.cmpl_freq = kProbScale - f;
    if (f < 2) {
      // f == 1: state / 1 == state, so fold the whole transform into
      // state + state * cmpl + bias with rcp = ~0 (q == state - 1).
      e.rcp = ~0U;
      e.shift = 0;
      e.bias = cum[static_cast<std::size_t>(s)] + kProbScale - 1;
    } else {
      std::uint32_t shift = 0;
      while (f > (1U << shift)) ++shift;
      e.rcp = static_cast<std::uint32_t>(
          ((std::uint64_t{1} << (shift + 31)) + f - 1) / f);
      e.shift = shift - 1;
      e.bias = cum[static_cast<std::size_t>(s)];
    }
  }

  // rANS encodes in reverse so the decoder emits in forward order. The
  // back-to-front buffer is inherent to the algorithm; reuse it across
  // calls so steady-state encodes stop allocating. Sized for the worst
  // case (12 bits per symbol plus the flushed state) so the hot loop can
  // write through a raw pointer with no capacity checks.
  thread_local Bytes payload;
  if (payload.size() < input.size() + (input.size() >> 1) + 16) {
    payload.resize(input.size() + (input.size() >> 1) + 16);
  }
  std::uint8_t* pp = payload.data();
  std::size_t pn = 0;
  std::uint32_t state = kRansLowerBound;
  for (std::size_t i = input.size(); i-- > 0;) {
    const EncSym& e = syms[input[i]];
    // Renormalize: push bytes until state fits the encode range for f.
    // state < 2^31 and x_max >= 2^19, so 0, 1, or 2 bytes — done
    // branch-free: write both candidate bytes unconditionally (the buffer
    // has slack; unconsumed slots are overwritten by later symbols) and
    // advance by the exact count. The emitted byte sequence is identical
    // to the push-while-loop form, minus its data-dependent mispredicts.
    std::uint32_t x = state;
    const unsigned c1 = x >= e.x_max;
    const unsigned c2 =
        static_cast<std::uint64_t>(x) >= (std::uint64_t{e.x_max} << 8);
    pp[pn] = static_cast<std::uint8_t>(x);
    pp[pn + 1] = static_cast<std::uint8_t>(x >> 8);
    const unsigned cnt = c1 + c2;
    pn += cnt;
    x >>= 8 * cnt;
    const auto q = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(x) * e.rcp) >> 32) >> e.shift;
    state = x + e.bias + q * e.cmpl_freq;
  }
  if (pn + 512 + 4 >= input.size()) {
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
    detail::seal_frame_at(out, frame_begin);
    return;
  }
  out.push_back(kModeCoded);
  out.reserve(out.size() + 512 + 4 + pn);
  for (int s = 0; s < 256; ++s) {
    const std::uint32_t f = freq[static_cast<std::size_t>(s)];
    out.push_back(static_cast<std::uint8_t>(f & 0xFF));
    out.push_back(static_cast<std::uint8_t>((f >> 8) & 0xFF));
  }
  detail::append_u32(out, state);
  // Payload was produced back-to-front; store reversed so decode reads
  // forward with push-back semantics preserved.
  out.insert(out.end(), std::make_reverse_iterator(pp + pn),
             std::make_reverse_iterator(pp));
  detail::seal_frame_at(out, frame_begin);
}

Bytes rans_encode(ByteView input) {
  Bytes out;
  rans_encode_into(input, out);
  return out;
}

namespace {

/// Per-slot decode tables: symbol, its frequency, and the slot's offset
/// within the symbol's range (slot - cum) so the hot loop does three
/// flat array reads instead of chasing freq/cum through the symbol.
struct DecSlot {
  std::uint8_t sym;
  std::uint16_t freq;
  std::uint16_t offset;  ///< slot - cum[sym], in [0, freq).
};

/// In-flight state of one coded stream: everything the per-symbol decode
/// step touches, laid out for register promotion when two streams are
/// software-interleaved.
struct DecCtx {
  const DecSlot* slots;
  const std::uint8_t* stream;
  std::size_t stream_size;
  std::size_t safe_pos;
  std::size_t pos;
  std::uint32_t state;
  std::uint8_t* dst;
  std::uint64_t size;
};

/// One decoded symbol. Away from the stream's tail, renormalization (0,
/// 1, or 2 byte pulls for a 12-bit scale) runs branch-free: both
/// candidate bytes are read up front and the exact count is folded into
/// shifts. Bytes consumed and states visited are identical to the
/// pull-while-loop form, which still runs the last two stream bytes
/// (where the speculative 2-byte read would walk off the buffer, and
/// where underrun is detected).
inline void dec_step(DecCtx& c, std::uint64_t i) {
  const DecSlot& d = c.slots[c.state & (kProbScale - 1)];
  c.dst[i] = d.sym;
  c.state =
      static_cast<std::uint32_t>(d.freq) * (c.state >> kProbBits) + d.offset;
  if (c.pos <= c.safe_pos) {
    const unsigned c1 = c.state < kRansLowerBound;
    const unsigned c2 = c.state < (kRansLowerBound >> 8);
    const unsigned cnt = c1 + c2;
    const std::uint32_t b01 =
        (static_cast<std::uint32_t>(c.stream[c.pos]) << 8) |
        c.stream[c.pos + 1];
    c.state = (c.state << (8 * cnt)) | (b01 >> (8 * (2 - cnt)));
    c.pos += cnt;
  } else {
    while (c.state < kRansLowerBound) {
      if (c.pos >= c.stream_size) throw PayloadError("rans: stream underrun");
      c.state = (c.state << 8) | c.stream[c.pos++];
    }
  }
}

/// Header/table parse and slot-table build for one stream. Returns false
/// when the stream was fully handled here (stored mode); true when `ctx`
/// is primed for dec_step over `ctx.size` symbols (out is pre-resized).
bool dec_init(ByteView input, Bytes& out, std::vector<DecSlot>& slots,
              DecCtx& ctx) {
  const std::uint64_t size = detail::read_header(input, kMagic);
  if (input.size() < detail::kHeaderSize + 1) {
    throw PayloadError("rans: truncated stream");
  }
  const std::uint8_t mode = input[detail::kHeaderSize];
  ByteView body = input.subspan(detail::kHeaderSize + 1);
  if (mode == kModeStored) {
    if (body.size() < size) throw PayloadError("rans: truncated stored block");
    out.assign(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
    return false;
  }
  if (mode != kModeCoded) throw PayloadError("rans: unknown block mode");
  if (body.size() < 512 + 4) throw PayloadError("rans: missing table");
  // A coded symbol consumes at least log2(4096/4095) bits, so legitimate
  // streams never expand past ~2842x; reject bigger claims before the
  // output allocation.
  wire::check_expansion(size, body.size(), 4096, "rans");
  std::array<std::uint32_t, 256> freq{};
  for (int s = 0; s < 256; ++s) {
    freq[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(body[static_cast<std::size_t>(2 * s)]) |
        (static_cast<std::uint32_t>(body[static_cast<std::size_t>(2 * s + 1)])
         << 8);
  }
  // Validate the (possibly corrupted) table before building slot lookups:
  // frequencies must sum to exactly kProbScale or indexing would run past
  // the slot table.
  std::uint64_t freq_sum = 0;
  for (int s = 0; s < 256; ++s) freq_sum += freq[static_cast<std::size_t>(s)];
  if (freq_sum != kProbScale) {
    throw PayloadError("rans: corrupt frequency table");
  }
  std::array<std::uint32_t, 256> cum{};
  for (int s = 1; s < 256; ++s) {
    cum[static_cast<std::size_t>(s)] =
        cum[static_cast<std::size_t>(s - 1)] +
        freq[static_cast<std::size_t>(s - 1)];
  }
  // The table is rebuilt per stream (the freq table rides in the frame)
  // but the backing store is steady-state: one thread-local allocation.
  slots.resize(kProbScale);
  for (int s = 0; s < 256; ++s) {
    const auto f =
        static_cast<std::uint16_t>(freq[static_cast<std::size_t>(s)]);
    const std::uint32_t base = cum[static_cast<std::size_t>(s)];
    for (std::uint16_t i = 0; i < f; ++i) {
      slots[base + i] = {static_cast<std::uint8_t>(s), f, i};
    }
  }
  out.resize(size);
  ctx.slots = slots.data();
  ctx.stream = body.data();
  ctx.stream_size = body.size();
  ctx.safe_pos = body.size() >= 2 ? body.size() - 2 : 0;
  ctx.pos = 512 + 4;
  ctx.state = detail::read_u32(body, 512);
  ctx.dst = out.data();
  ctx.size = size;
  return true;
}

}  // namespace

void rans_decode_into(ByteView input, Bytes& out) {
  thread_local std::vector<DecSlot> slots;
  DecCtx c;
  if (!dec_init(input, out, slots, c)) return;
  for (std::uint64_t i = 0; i < c.size; ++i) dec_step(c, i);
}

void rans_decode_pair_into(ByteView input_a, Bytes& out_a, ByteView input_b,
                           Bytes& out_b) {
  // Two independent rANS streams decoded in one software-interleaved
  // loop: each stream's state -> slot -> multiply chain is the decode
  // bottleneck (latency-bound, ~10 cycles per symbol), and the two
  // chains share no data, so alternating them nearly doubles ILP over
  // the common prefix. Symbol-by-symbol results, consumed bytes, and
  // error behavior per stream are identical to two sequential decodes.
  thread_local std::vector<DecSlot> slots_a;
  thread_local std::vector<DecSlot> slots_b;
  DecCtx a;
  DecCtx b;
  const bool coded_a = dec_init(input_a, out_a, slots_a, a);
  const bool coded_b = dec_init(input_b, out_b, slots_b, b);
  if (coded_a && coded_b) {
    const std::uint64_t n = std::min(a.size, b.size);
    for (std::uint64_t i = 0; i < n; ++i) {
      dec_step(a, i);
      dec_step(b, i);
    }
    for (std::uint64_t i = n; i < a.size; ++i) dec_step(a, i);
    for (std::uint64_t i = n; i < b.size; ++i) dec_step(b, i);
    return;
  }
  if (coded_a) {
    for (std::uint64_t i = 0; i < a.size; ++i) dec_step(a, i);
  }
  if (coded_b) {
    for (std::uint64_t i = 0; i < b.size; ++i) dec_step(b, i);
  }
}

Bytes rans_decode(ByteView input) {
  Bytes out;
  rans_decode_into(input, out);
  return out;
}

namespace {

class AnsCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "ANS"; }
  Bytes encode(ByteView input) const override { return rans_encode(input); }
  Bytes decode(ByteView input) const override { return rans_decode(input); }
  void encode_into(ByteView input, Bytes& out) const override {
    rans_encode_into(input, out);
  }
  void decode_into(ByteView input, Bytes& out) const override {
    rans_decode_into(input, out);
  }
  void decode_pair_into(ByteView input_a, Bytes& out_a, ByteView input_b,
                        Bytes& out_b) const override {
    rans_decode_pair_into(input_a, out_a, input_b, out_b);
  }
  CodecCostProfile cost_profile() const noexcept override {
    // Two streaming passes (histogram + code), fully block-parallel on GPU
    // via interleaved states ([54]); table lookups are coalesced.
    return {.encode_passes = 2.0,
            .decode_passes = 1.2,
            .parallel_fraction = 0.97,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.75};
  }
};

}  // namespace

std::unique_ptr<Codec> make_ans_codec() { return std::make_unique<AnsCodec>(); }

}  // namespace compso::codec
