#include "src/codec/ans.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace compso::codec {
namespace {

constexpr std::uint32_t kMagic = 0x414E5331;  // "ANS1"
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCoded = 1;
constexpr unsigned kProbBits = 12;            // frequencies sum to 4096
constexpr std::uint32_t kProbScale = 1U << kProbBits;
constexpr std::uint32_t kRansLowerBound = 1U << 23;

/// Normalizes raw counts so they sum to kProbScale with every present
/// symbol keeping frequency >= 1.
std::array<std::uint32_t, 256> normalize_freqs(
    const std::array<std::uint64_t, 256>& raw, std::uint64_t total) {
  std::array<std::uint32_t, 256> freq{};
  std::uint32_t assigned = 0;
  int last_present = -1;
  for (int s = 0; s < 256; ++s) {
    if (raw[static_cast<std::size_t>(s)] == 0) continue;
    auto f = static_cast<std::uint32_t>(
        (raw[static_cast<std::size_t>(s)] * kProbScale) / total);
    if (f == 0) f = 1;
    freq[static_cast<std::size_t>(s)] = f;
    assigned += f;
    last_present = s;
  }
  if (last_present < 0) return freq;
  // Fix the rounding drift: add any shortfall to the most frequent symbol;
  // shave any excess off the largest symbols (keeping each >= 1).
  while (assigned != kProbScale) {
    int max_sym = last_present;
    for (int s = 0; s < 256; ++s) {
      if (freq[static_cast<std::size_t>(s)] >
          freq[static_cast<std::size_t>(max_sym)]) {
        max_sym = s;
      }
    }
    auto& f = freq[static_cast<std::size_t>(max_sym)];
    if (assigned < kProbScale) {
      f += kProbScale - assigned;
      assigned = kProbScale;
    } else {
      const std::uint32_t excess = assigned - kProbScale;
      const std::uint32_t cut = std::min(excess, f - 1);
      if (cut == 0) {
        // Every symbol is already at 1: more distinct symbols than slots
        // cannot happen (256 symbols, 4096 slots).
        throw std::invalid_argument("rans: cannot normalize frequency table");
      }
      f -= cut;
      assigned -= cut;
    }
  }
  return freq;
}

}  // namespace

Bytes rans_encode(ByteView input) {
  Bytes out;
  detail::write_header(out, kMagic, input.size());
  if (input.empty()) {
    out.push_back(kModeStored);
    detail::seal_frame(out);
    return out;
  }
  std::array<std::uint64_t, 256> raw{};
  for (std::uint8_t b : input) ++raw[b];
  const auto freq = normalize_freqs(raw, input.size());
  std::array<std::uint32_t, 256> cum{};
  for (int s = 1; s < 256; ++s) {
    cum[static_cast<std::size_t>(s)] =
        cum[static_cast<std::size_t>(s - 1)] + freq[static_cast<std::size_t>(s - 1)];
  }

  // rANS encodes in reverse so the decoder emits in forward order.
  Bytes payload;
  payload.reserve(input.size());
  std::uint32_t state = kRansLowerBound;
  for (std::size_t i = input.size(); i-- > 0;) {
    const std::uint8_t s = input[i];
    const std::uint32_t f = freq[s];
    // Renormalize: push bytes until state fits the encode range for f.
    const std::uint32_t x_max = ((kRansLowerBound >> kProbBits) << 8) * f;
    while (state >= x_max) {
      payload.push_back(static_cast<std::uint8_t>(state & 0xFF));
      state >>= 8;
    }
    state = ((state / f) << kProbBits) + (state % f) + cum[s];
  }

  if (payload.size() + 512 + 4 >= input.size()) {
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
    detail::seal_frame(out);
    return out;
  }
  out.push_back(kModeCoded);
  for (int s = 0; s < 256; ++s) {
    const std::uint32_t f = freq[static_cast<std::size_t>(s)];
    out.push_back(static_cast<std::uint8_t>(f & 0xFF));
    out.push_back(static_cast<std::uint8_t>((f >> 8) & 0xFF));
  }
  detail::append_u32(out, state);
  // Payload was produced back-to-front; store reversed so decode reads
  // forward with push-back semantics preserved.
  out.insert(out.end(), payload.rbegin(), payload.rend());
  detail::seal_frame(out);
  return out;
}

Bytes rans_decode(ByteView input) {
  const std::uint64_t size = detail::read_header(input, kMagic);
  if (input.size() < detail::kHeaderSize + 1) {
    throw PayloadError("rans: truncated stream");
  }
  const std::uint8_t mode = input[detail::kHeaderSize];
  ByteView body = input.subspan(detail::kHeaderSize + 1);
  if (mode == kModeStored) {
    if (body.size() < size) throw PayloadError("rans: truncated stored block");
    return Bytes(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
  }
  if (mode != kModeCoded) throw PayloadError("rans: unknown block mode");
  if (body.size() < 512 + 4) throw PayloadError("rans: missing table");
  // A coded symbol consumes at least log2(4096/4095) bits, so legitimate
  // streams never expand past ~2842x; reject bigger claims before the
  // output allocation.
  wire::check_expansion(size, body.size(), 4096, "rans");
  std::array<std::uint32_t, 256> freq{};
  for (int s = 0; s < 256; ++s) {
    freq[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(body[static_cast<std::size_t>(2 * s)]) |
        (static_cast<std::uint32_t>(body[static_cast<std::size_t>(2 * s + 1)])
         << 8);
  }
  // Validate the (possibly corrupted) table before building slot lookups:
  // frequencies must sum to exactly kProbScale or indexing would run past
  // the slot table.
  std::uint64_t freq_sum = 0;
  for (int s = 0; s < 256; ++s) freq_sum += freq[static_cast<std::size_t>(s)];
  if (freq_sum != kProbScale) {
    throw PayloadError("rans: corrupt frequency table");
  }
  std::array<std::uint32_t, 256> cum{};
  for (int s = 1; s < 256; ++s) {
    cum[static_cast<std::size_t>(s)] =
        cum[static_cast<std::size_t>(s - 1)] + freq[static_cast<std::size_t>(s - 1)];
  }
  // Slot -> symbol table.
  std::vector<std::uint8_t> slot2sym(kProbScale);
  for (int s = 0; s < 256; ++s) {
    for (std::uint32_t i = 0; i < freq[static_cast<std::size_t>(s)]; ++i) {
      slot2sym[cum[static_cast<std::size_t>(s)] + i] = static_cast<std::uint8_t>(s);
    }
  }
  std::uint32_t state = detail::read_u32(body, 512);
  std::size_t pos = 512 + 4;

  Bytes out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    const std::uint32_t slot = state & (kProbScale - 1);
    const std::uint8_t s = slot2sym[slot];
    out.push_back(s);
    state = freq[s] * (state >> kProbBits) + slot - cum[s];
    while (state < kRansLowerBound) {
      if (pos >= body.size()) {
        throw PayloadError("rans: stream underrun");
      }
      state = (state << 8) | body[pos++];
    }
  }
  return out;
}

namespace {

class AnsCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "ANS"; }
  Bytes encode(ByteView input) const override { return rans_encode(input); }
  Bytes decode(ByteView input) const override { return rans_decode(input); }
  CodecCostProfile cost_profile() const noexcept override {
    // Two streaming passes (histogram + code), fully block-parallel on GPU
    // via interleaved states ([54]); table lookups are coalesced.
    return {.encode_passes = 2.0,
            .decode_passes = 1.2,
            .parallel_fraction = 0.97,
            .flops_per_byte = 6.0,
            .bandwidth_efficiency = 0.75};
  }
};

}  // namespace

std::unique_ptr<Codec> make_ans_codec() { return std::make_unique<AnsCodec>(); }

}  // namespace compso::codec
