#include "src/codec/huffman.hpp"

#include "src/quant/bitpack.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace compso::codec {
namespace {

constexpr std::uint32_t kMagic = 0x48554631;  // "HUF1"
constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeCoded = 1;

struct Node {
  std::uint64_t freq;
  int sym;          // -1 for internal
  int left = -1, right = -1;
};

/// Computes code lengths with a heap-built Huffman tree.
std::array<std::uint8_t, 256> code_lengths(
    const std::array<std::uint64_t, 256>& freq) {
  std::vector<Node> nodes;
  auto cmp = [&nodes](int a, int b) {
    if (nodes[a].freq != nodes[b].freq) return nodes[a].freq > nodes[b].freq;
    return a > b;  // deterministic tie-break
  };
  std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
  for (int s = 0; s < 256; ++s) {
    if (freq[s] > 0) {
      nodes.push_back(Node{freq[s], s});
      heap.push(static_cast<int>(nodes.size()) - 1);
    }
  }
  std::array<std::uint8_t, 256> lengths{};
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].sym)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const int a = heap.top(); heap.pop();
    const int b = heap.top(); heap.pop();
    nodes.push_back(Node{nodes[a].freq + nodes[b].freq, -1, a, b});
    heap.push(static_cast<int>(nodes.size()) - 1);
  }
  // DFS to assign depths.
  struct Item { int node; std::uint8_t depth; };
  std::vector<Item> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(it.node)];
    if (n.sym >= 0) {
      lengths[static_cast<std::size_t>(n.sym)] = std::max<std::uint8_t>(it.depth, 1);
    } else {
      stack.push_back({n.left, static_cast<std::uint8_t>(it.depth + 1)});
      stack.push_back({n.right, static_cast<std::uint8_t>(it.depth + 1)});
    }
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, value).
std::array<std::uint64_t, 256> canonical_codes(
    const std::array<std::uint8_t, 256>& lengths, std::uint8_t& max_len) {
  std::array<std::uint64_t, 256> codes{};
  max_len = 0;
  for (auto l : lengths) max_len = std::max(max_len, l);
  std::uint64_t code = 0;
  for (std::uint8_t len = 1; len <= max_len; ++len) {
    for (int s = 0; s < 256; ++s) {
      if (lengths[static_cast<std::size_t>(s)] == len) {
        codes[static_cast<std::size_t>(s)] = code++;
      }
    }
    code <<= 1;
  }
  return codes;
}

/// Reverses the low `bits` bits (we emit MSB-first codes through the
/// LSB-first BitWriter).
std::uint64_t reverse_bits(std::uint64_t v, unsigned bits) {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace

Bytes huffman_encode(ByteView input) {
  Bytes out;
  detail::write_header(out, kMagic, input.size());
  if (input.empty()) {
    out.push_back(kModeStored);
    detail::seal_frame(out);
    return out;
  }
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : input) ++freq[b];
  const auto lengths = code_lengths(freq);
  std::uint8_t max_len = 0;
  const auto codes = canonical_codes(lengths, max_len);

  // Encode into bits.
  quant::BitWriter w;
  for (std::uint8_t b : input) {
    const unsigned len = lengths[b];
    w.write(reverse_bits(codes[b], len), len);
  }
  const Bytes payload = w.take();
  if (payload.size() + 256 >= input.size()) {
    out.push_back(kModeStored);
    out.insert(out.end(), input.begin(), input.end());
    detail::seal_frame(out);
    return out;
  }
  out.push_back(kModeCoded);
  out.insert(out.end(), lengths.begin(), lengths.end());
  out.insert(out.end(), payload.begin(), payload.end());
  detail::seal_frame(out);
  return out;
}

Bytes huffman_decode(ByteView input) {
  const std::uint64_t size = detail::read_header(input, kMagic);
  if (input.size() < detail::kHeaderSize + 1) {
    throw PayloadError("huffman: truncated stream");
  }
  const std::uint8_t mode = input[detail::kHeaderSize];
  ByteView body = input.subspan(detail::kHeaderSize + 1);
  if (mode == kModeStored) {
    if (body.size() < size) throw PayloadError("huffman: truncated stored block");
    return Bytes(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
  }
  if (mode != kModeCoded) throw PayloadError("huffman: unknown block mode");
  if (body.size() < 256) throw PayloadError("huffman: missing table");
  // Every coded symbol consumes at least one bit of the stream.
  wire::check_expansion(size, body.size() - 256, 8, "huffman");
  std::array<std::uint8_t, 256> lengths{};
  std::copy_n(body.begin(), 256, lengths.begin());
  // Validate the (possibly corrupted) table: lengths must fit the decode
  // arrays and satisfy Kraft's inequality (sum 2^-len <= 1), or canonical
  // code assignment would overflow.
  double kraft = 0.0;
  for (auto l : lengths) {
    if (l > 60) throw PayloadError("huffman: corrupt length table");
    if (l > 0) kraft += std::ldexp(1.0, -static_cast<int>(l));
  }
  if (kraft > 1.0 + 1e-9) {
    throw PayloadError("huffman: invalid code lengths");
  }
  std::uint8_t max_len = 0;
  (void)canonical_codes(lengths, max_len);

  // Canonical decode tables: first code and first symbol index per length.
  std::array<std::uint64_t, 65> first_code{};
  std::array<std::uint32_t, 65> first_index{};
  std::vector<std::uint8_t> sorted_syms;
  {
    std::uint64_t code = 0;
    std::uint32_t index = 0;
    for (std::uint8_t len = 1; len <= max_len; ++len) {
      first_code[len] = code;
      first_index[len] = index;
      for (int s = 0; s < 256; ++s) {
        if (lengths[static_cast<std::size_t>(s)] == len) {
          sorted_syms.push_back(static_cast<std::uint8_t>(s));
          ++code;
          ++index;
        }
      }
      code <<= 1;
    }
  }
  std::array<std::uint32_t, 65> count_at_len{};
  for (auto l : lengths) if (l) ++count_at_len[l];

  quant::BitReader r(body.subspan(256));
  Bytes out;
  out.reserve(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    std::uint64_t code = 0;
    std::uint8_t len = 0;
    while (len < max_len) {
      code = (code << 1) | r.read(1);
      ++len;
      if (count_at_len[len] > 0 &&
          code < first_code[len] + count_at_len[len] && code >= first_code[len]) {
        out.push_back(sorted_syms[first_index[len] + (code - first_code[len])]);
        break;
      }
    }
    if (len == max_len && out.size() != i + 1) {
      throw PayloadError("huffman: invalid code in stream");
    }
  }
  return out;
}

double byte_entropy(ByteView input) noexcept {
  if (input.empty()) return 0.0;
  std::array<std::uint64_t, 256> freq{};
  for (std::uint8_t b : input) ++freq[b];
  double h = 0.0;
  const double n = static_cast<double>(input.size());
  for (auto f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace compso::codec
