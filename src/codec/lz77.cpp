#include "src/codec/lz77.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace compso::codec {
namespace {

constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1U << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761U) >> (32 - kHashBits);
}

std::uint32_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                           std::uint32_t max_len) noexcept {
  std::uint32_t n = 0;
  while (n < max_len && a[n] == b[n]) ++n;
  return n;
}

void append_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t read_varint(ByteView in, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (pos < in.size()) {
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63) break;
  }
  throw PayloadError("lz77: truncated varint");
}

struct Matcher {
  explicit Matcher(ByteView input)
      : data(input.data()), size(static_cast<std::uint32_t>(input.size())) {
    head.assign(kHashSize, kNone);
  }

  static constexpr std::uint32_t kNone = 0xFFFFFFFFU;

  /// Finds the best match at `pos`; returns length 0 when none.
  void find(std::uint32_t pos, const Lz77Params& p, std::uint32_t& best_len,
            std::uint32_t& best_dist) const {
    best_len = 0;
    best_dist = 0;
    if (pos + 4 > size) return;
    std::uint32_t cand = head[hash4(data + pos)];
    std::uint32_t chain = p.max_chain;
    const std::uint32_t max_len =
        std::min<std::uint32_t>(p.max_match, size - pos);
    while (cand != kNone && chain-- > 0) {
      if (pos - cand > p.window) break;
      const std::uint32_t len = match_length(data + cand, data + pos, max_len);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cand;
        if (len >= max_len) break;
      }
      cand = prev.empty() ? kNone : prev_at(cand);
    }
    if (best_len < p.min_match) best_len = 0;
  }

  void insert(std::uint32_t pos) {
    if (pos + 4 > size) return;
    const std::uint32_t h = hash4(data + pos);
    if (prev.empty()) prev.assign(size, kNone);
    prev[pos] = head[h];
    head[h] = pos;
  }

  std::uint32_t prev_at(std::uint32_t pos) const { return prev[pos]; }

  const std::uint8_t* data;
  std::uint32_t size;
  std::vector<std::uint32_t> head;
  mutable std::vector<std::uint32_t> prev;
};

}  // namespace

std::vector<Lz77Token> lz77_parse(ByteView input, const Lz77Params& params) {
  std::vector<Lz77Token> tokens;
  if (input.empty()) return tokens;
  Matcher m(input);
  const auto n = static_cast<std::uint32_t>(input.size());
  std::uint32_t pos = 0;
  std::uint32_t lit_start = 0;
  while (pos < n) {
    std::uint32_t len = 0, dist = 0;
    m.find(pos, params, len, dist);
    if (params.lazy && len > 0 && pos + 1 < n) {
      // One-step lazy: prefer a strictly longer match at pos+1.
      std::uint32_t len2 = 0, dist2 = 0;
      m.insert(pos);
      m.find(pos + 1, params, len2, dist2);
      if (len2 > len + 1) {
        ++pos;  // emit current byte as literal, take the later match
        len = len2;
        dist = dist2;
      }
    } else if (len > 0) {
      m.insert(pos);
    }
    if (len == 0) {
      m.insert(pos);
      ++pos;
      continue;
    }
    tokens.push_back(Lz77Token{.literal_start = lit_start,
                               .literal_len = pos - lit_start,
                               .match_len = len,
                               .distance = dist});
    // Insert hash entries inside the match (sparsely, for speed).
    const std::uint32_t end = pos + len;
    for (std::uint32_t i = pos + 1; i < end && i + 4 <= n; i += 3) m.insert(i);
    pos = end;
    lit_start = pos;
  }
  if (lit_start < n || tokens.empty()) {
    tokens.push_back(Lz77Token{.literal_start = lit_start,
                               .literal_len = n - lit_start,
                               .match_len = 0,
                               .distance = 0});
  }
  return tokens;
}

Bytes lz77_reconstruct(std::span<const Lz77Token> tokens, ByteView literals,
                       std::size_t output_size) {
  Bytes out;
  out.reserve(output_size);
  std::size_t lit_pos = 0;
  for (const auto& t : tokens) {
    if (lit_pos + t.literal_len > literals.size()) {
      throw PayloadError("lz77: literal stream underrun");
    }
    out.insert(out.end(), literals.begin() + static_cast<std::ptrdiff_t>(lit_pos),
               literals.begin() +
                   static_cast<std::ptrdiff_t>(lit_pos + t.literal_len));
    lit_pos += t.literal_len;
    if (t.match_len > 0) {
      if (t.distance == 0 || t.distance > out.size()) {
        throw PayloadError("lz77: invalid match distance");
      }
      // Byte-by-byte to support overlapping matches (RLE-style).
      std::size_t src = out.size() - t.distance;
      for (std::uint32_t i = 0; i < t.match_len; ++i) {
        out.push_back(out[src + i]);
      }
    }
  }
  if (out.size() != output_size) {
    throw PayloadError("lz77: reconstructed size mismatch");
  }
  return out;
}

Lz77Streams lz77_serialize(ByteView input,
                           std::span<const Lz77Token> tokens) {
  Lz77Streams s;
  s.token_count = tokens.size();
  for (const auto& t : tokens) {
    s.literals.insert(
        s.literals.end(),
        input.begin() + static_cast<std::ptrdiff_t>(t.literal_start),
        input.begin() +
            static_cast<std::ptrdiff_t>(t.literal_start + t.literal_len));
    append_varint(s.tokens, t.literal_len);
    append_varint(s.tokens, t.match_len);
    if (t.match_len > 0) append_varint(s.tokens, t.distance);
  }
  return s;
}

Bytes lz77_deserialize(ByteView literals, ByteView tokens,
                       std::size_t output_size) {
  Bytes out;
  out.reserve(std::min<std::size_t>(output_size, std::size_t{1} << 22));
  std::size_t lit_pos = 0;
  std::size_t pos = 0;
  while (out.size() < output_size) {
    if (pos >= tokens.size()) {
      throw PayloadError("lz77: token stream underrun");
    }
    const std::uint64_t lit_len = read_varint(tokens, pos);
    const std::uint64_t match_len = read_varint(tokens, pos);
    // Bound both lengths against the remaining output before copying:
    // a corrupt varint must not grow `out` past the declared size (the
    // literal check alone also guards the u64 overflow in lit_pos + len).
    if (lit_len > output_size - out.size() ||
        match_len > output_size - out.size() - lit_len) {
      throw PayloadError("lz77: token exceeds declared output size");
    }
    if (lit_len > literals.size() - lit_pos) {
      throw PayloadError("lz77: literal stream underrun");
    }
    out.insert(out.end(),
               literals.begin() + static_cast<std::ptrdiff_t>(lit_pos),
               literals.begin() + static_cast<std::ptrdiff_t>(lit_pos + lit_len));
    lit_pos += lit_len;
    if (match_len > 0) {
      const std::uint64_t dist = read_varint(tokens, pos);
      if (dist == 0 || dist > out.size()) {
        throw PayloadError("lz77: invalid match distance");
      }
      std::size_t src = out.size() - dist;
      for (std::uint64_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
    }
  }
  if (out.size() != output_size) {
    throw PayloadError("lz77: output size mismatch");
  }
  return out;
}

}  // namespace compso::codec
