#pragma once
// Chunked framing extension (v2) of the payload wire format (DESIGN.md
// §15, "Chunked streaming pipeline").
//
// A v1 payload is sealed as one frame and must be complete before the
// first byte ships. v2 splits the *finished* payload bytes into
// fixed-size chunks, each wrapped in its own self-describing frame with
// its own CRC32, so the transport can ship chunk k while chunk k+1 is
// still being framed (and the receiver can validate-as-it-receives
// through a resumable cursor). Chunking is pure framing: the reassembled
// byte stream is bit-identical to the original payload, so every v1
// decoder — and every v1 payload — works unchanged.
//
// Chunk frame layout (kChunkHeaderSize = 29 bytes, all integers LE):
//
//   offset  size  field
//   0       4     magic    (u32 "CHK2"; distinct from every v1 producer)
//   4       1     version  (kChunkVersion = 2; v1 frames carry 1 here)
//   5       4     index    (u32, chunk position in [0, count))
//   9       4     count    (u32, total chunks of the payload, >= 1)
//   13      8     total    (u64, reassembled payload bytes)
//   21      4     body     (u32, this chunk's body bytes)
//   25      4     CRC32    (u32, over bytes [0, 25) chained with the body)
//   29      body  payload bytes [index * chunk_size, ... + body)
//
// Decoders validate magic, version, CRC, index continuity, and the
// cross-chunk metadata (count/total must agree across every chunk of a
// stream) before any byte reaches the reassembly buffer; all failures
// throw typed compso::PayloadError, and no header field can drive an
// allocation beyond the validated `total` ceiling.

#include "src/codec/wire.hpp"

#include <cstdint>

namespace compso::codec::chunk {

using wire::Bytes;
using wire::ByteView;

constexpr std::uint32_t kChunkMagic = 0x324B4843U;  // "CHK2"
constexpr std::uint8_t kChunkVersion = 2;
constexpr std::size_t kChunkHeaderSize = 4 + 1 + 4 + 4 + 8 + 4 + 4;

/// Hard ceiling on the chunk count a stream may claim (2^20 chunks); with
/// the payload ceiling below this bounds every cursor-side allocation.
constexpr std::uint64_t kMaxChunkCount = std::uint64_t{1} << 20;
/// Hard ceiling on the reassembled payload size a header may claim —
/// matches the v1 kMaxElementCount scale (2^32 bytes).
constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 32;

/// True if `bytes` starts with a v2 chunk-frame header (magic + version).
/// v1 frames carry a producer magic and version 1, so the two framings
/// are distinguishable from the first five bytes.
bool is_chunked(ByteView bytes) noexcept;

/// Chunks needed for a payload of `payload_bytes` split every
/// `chunk_bytes`: ceil(payload / chunk), and 1 for an empty payload (an
/// empty contribution still occupies one wire round).
std::size_t chunk_count_for(std::size_t payload_bytes,
                            std::size_t chunk_bytes) noexcept;

/// Total wire bytes of the chunked framing of a payload: the payload
/// itself plus one kChunkHeaderSize header per chunk. This is the exact
/// reserve a producer needs — per chunk, not a per-payload slop bound.
std::size_t wire_bytes_for(std::size_t payload_bytes,
                           std::size_t chunk_bytes) noexcept;

struct ChunkHeader {
  std::uint32_t index = 0;
  std::uint32_t count = 0;
  std::uint64_t total = 0;  ///< reassembled payload bytes.
  std::uint32_t body = 0;   ///< this chunk's body bytes.
  std::uint32_t crc = 0;
};

/// Writes one sealed chunk frame for payload bytes [begin, begin + body)
/// into `out` at offset `at` (the frame occupies exactly
/// kChunkHeaderSize + body bytes, which must already be sized). Frames of
/// distinct chunks occupy disjoint ranges, so concurrent calls for
/// different `index` values are safe once `out` is sized.
void write_chunk_frame(std::uint8_t* out, ByteView payload,
                       std::size_t index, std::size_t count,
                       std::size_t begin, std::size_t body);

/// Parses and fully validates one chunk frame: size, magic, version,
/// bounds on count/total/body, and the frame CRC. The frame must be
/// exactly one chunk (kChunkHeaderSize + body bytes); trailing bytes
/// throw. Throws PayloadError on any mismatch.
ChunkHeader read_chunk_header(ByteView frame);

/// The body view (bytes after the header) of a frame already validated
/// by read_chunk_header.
ByteView chunk_body(ByteView frame) noexcept;

/// Resumable decode cursor: feed chunk frames in index order; the cursor
/// validates each against the stream metadata adopted from the first
/// chunk and appends its body to the reassembly buffer. The cursor
/// serializes mid-stream (serialize/deserialize), so a checkpoint taken
/// between chunk rounds resumes decoding exactly where it stopped.
class Cursor {
 public:
  /// Clears the stream state; keeps the reassembly buffer's capacity
  /// (steady-state reuse across payloads never re-allocates).
  void reset() noexcept;

  /// Validates and consumes the next chunk frame. Throws PayloadError on
  /// framing damage, a duplicate chunk (index < expected), a gap
  /// (index > expected), inconsistent count/total metadata, or a body
  /// that overruns the declared payload size.
  void feed(ByteView frame);

  /// Chunks consumed so far / expected total (0 until the first feed).
  std::size_t chunks_fed() const noexcept { return next_; }
  std::size_t chunk_count() const noexcept { return count_; }
  bool started() const noexcept { return count_ != 0; }
  bool complete() const noexcept { return count_ != 0 && next_ == count_; }

  /// The reassembled payload; throws PayloadError if the stream is still
  /// mid-payload (a truncated stream must fail typed, never decode a
  /// prefix).
  ByteView payload() const;

  /// Mid-stream checkpoint: appends the cursor state (progress counters
  /// plus the bytes reassembled so far) to `out`; deserialize restores it
  /// bit-exactly through the bounds-checked reader.
  void serialize(Bytes& out) const;
  void deserialize(wire::Reader& reader);

 private:
  std::uint32_t next_ = 0;   ///< next expected chunk index.
  std::uint32_t count_ = 0;  ///< 0 = no chunk seen yet.
  std::uint64_t total_ = 0;
  Bytes payload_;
};

}  // namespace compso::codec::chunk
