#include "src/codec/chunk.hpp"

#include "src/common/payload_error.hpp"

#include <cstring>

namespace compso::codec::chunk {
namespace {

constexpr std::size_t kCrcOffset = kChunkHeaderSize - 4;  // CRC is last.

void put_u32_at(std::uint8_t* out, std::size_t at, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64_at(std::uint8_t* out, std::size_t at, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t get_u32(ByteView in, std::size_t at) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(ByteView in, std::size_t at) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

bool is_chunked(ByteView bytes) noexcept {
  return bytes.size() >= 5 && get_u32(bytes, 0) == kChunkMagic &&
         bytes[4] == kChunkVersion;
}

std::size_t chunk_count_for(std::size_t payload_bytes,
                            std::size_t chunk_bytes) noexcept {
  if (chunk_bytes == 0 || payload_bytes == 0) return 1;
  return (payload_bytes + chunk_bytes - 1) / chunk_bytes;
}

std::size_t wire_bytes_for(std::size_t payload_bytes,
                           std::size_t chunk_bytes) noexcept {
  return payload_bytes +
         chunk_count_for(payload_bytes, chunk_bytes) * kChunkHeaderSize;
}

void write_chunk_frame(std::uint8_t* out, ByteView payload,
                       std::size_t index, std::size_t count,
                       std::size_t begin, std::size_t body) {
  put_u32_at(out, 0, kChunkMagic);
  out[4] = kChunkVersion;
  put_u32_at(out, 5, static_cast<std::uint32_t>(index));
  put_u32_at(out, 9, static_cast<std::uint32_t>(count));
  put_u64_at(out, 13, payload.size());
  put_u32_at(out, 21, static_cast<std::uint32_t>(body));
  const ByteView body_view = payload.subspan(begin, body);
  put_u32_at(out, kCrcOffset,
             wire::crc32_parts(ByteView(out, kCrcOffset), body_view));
  if (body != 0) {
    std::memcpy(out + kChunkHeaderSize, body_view.data(), body);
  }
}

ChunkHeader read_chunk_header(ByteView frame) {
  if (frame.size() < kChunkHeaderSize) {
    throw PayloadError("chunk: frame shorter than a chunk header");
  }
  if (get_u32(frame, 0) != kChunkMagic) {
    throw PayloadError("chunk: bad chunk magic");
  }
  if (frame[4] != kChunkVersion) {
    throw PayloadError("chunk: unsupported chunk version");
  }
  ChunkHeader h;
  h.index = get_u32(frame, 5);
  h.count = get_u32(frame, 9);
  h.total = get_u64(frame, 13);
  h.body = get_u32(frame, 21);
  h.crc = get_u32(frame, kCrcOffset);
  if (h.count == 0 || h.count > kMaxChunkCount) {
    throw PayloadError("chunk: chunk count out of range");
  }
  if (h.index >= h.count) {
    throw PayloadError("chunk: chunk index out of range");
  }
  if (h.total > kMaxPayloadBytes) {
    throw PayloadError("chunk: payload size out of range");
  }
  if (h.body > h.total) {
    throw PayloadError("chunk: chunk body exceeds payload size");
  }
  if (frame.size() != kChunkHeaderSize + h.body) {
    throw PayloadError("chunk: frame size does not match chunk body");
  }
  const std::uint32_t crc = wire::crc32_parts(
      frame.first(kCrcOffset), frame.subspan(kChunkHeaderSize));
  if (crc != h.crc) {
    throw PayloadError("chunk: chunk CRC mismatch");
  }
  return h;
}

ByteView chunk_body(ByteView frame) noexcept {
  return frame.subspan(kChunkHeaderSize);
}

void Cursor::reset() noexcept {
  next_ = 0;
  count_ = 0;
  total_ = 0;
  payload_.clear();
}

void Cursor::feed(ByteView frame) {
  const ChunkHeader h = read_chunk_header(frame);
  if (count_ == 0) {
    count_ = h.count;
    total_ = h.total;
  } else if (h.count != count_ || h.total != total_) {
    throw PayloadError("chunk: inconsistent stream metadata");
  }
  if (h.index < next_) {
    throw PayloadError("chunk: duplicate chunk");
  }
  if (h.index > next_) {
    throw PayloadError("chunk: out-of-order chunk");
  }
  if (payload_.size() + h.body > total_) {
    throw PayloadError("chunk: body overruns declared payload size");
  }
  if (h.index + 1 == count_ && payload_.size() + h.body != total_) {
    throw PayloadError("chunk: reassembled size mismatch");
  }
  const ByteView body = chunk_body(frame);
  payload_.insert(payload_.end(), body.begin(), body.end());
  ++next_;
}

ByteView Cursor::payload() const {
  if (!complete()) {
    throw PayloadError("chunk: stream truncated mid-payload");
  }
  return ByteView(payload_);
}

void Cursor::serialize(Bytes& out) const {
  auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put_u64(next_);
  put_u64(count_);
  put_u64(total_);
  put_u64(payload_.size());
  out.insert(out.end(), payload_.begin(), payload_.end());
}

void Cursor::deserialize(wire::Reader& reader) {
  const auto next = reader.bounded_u64(kMaxChunkCount, "chunk cursor next");
  const auto count = reader.bounded_u64(kMaxChunkCount, "chunk cursor count");
  const auto total =
      reader.bounded_u64(kMaxPayloadBytes, "chunk cursor total");
  const auto bytes = reader.bounded_u64(total, "chunk cursor bytes");
  if (next > count || (count == 0 && (next != 0 || total != 0))) {
    throw PayloadError("chunk: corrupt cursor state");
  }
  const ByteView blob = reader.blob(bytes);
  next_ = static_cast<std::uint32_t>(next);
  count_ = static_cast<std::uint32_t>(count);
  total_ = total;
  payload_.assign(blob.begin(), blob.end());
}

}  // namespace compso::codec::chunk
