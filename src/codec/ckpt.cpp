#include "src/codec/ckpt.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace compso::codec::ckpt {

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u64(Bytes& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

void put_f32(Bytes& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
  }
}

void put_f64(Bytes& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

void put_floats(Bytes& out, std::span<const float> values) {
  put_u64(out, values.size());
  const std::size_t at = out.size();
  out.resize(at + values.size() * sizeof(float));
  if (!values.empty()) {
    std::memcpy(out.data() + at, values.data(), values.size_bytes());
  }
}

void put_tensor(Bytes& out, const tensor::Tensor& t) {
  put_floats(out, t.span());
}

void put_rng(Bytes& out, const tensor::RngState& state) {
  for (std::uint64_t word : state.s) put_u64(out, word);
  put_u64(out, state.cached_normal_bits);
  put_u8(out, state.has_cached_normal ? 1 : 0);
}

std::vector<float> get_floats(codec::wire::Reader& reader, const char* field) {
  const auto n = reader.bounded_u64(codec::wire::kMaxElementCount, field);
  // Bound the allocation by the bytes actually present: a corrupted count
  // that survives the CRC must fail with a typed error, not a 16 GiB
  // vector resize.
  if (n * sizeof(float) > reader.remaining()) {
    throw PayloadError(std::string("checkpoint: float count overruns body in ") +
                       field);
  }
  std::vector<float> v(n);
  for (auto& x : v) x = reader.f32();
  return v;
}

tensor::Tensor get_tensor(codec::wire::Reader& reader,
                          std::vector<std::size_t> shape, const char* field) {
  const auto n = reader.bounded_u64(codec::wire::kMaxElementCount, field);
  tensor::Tensor t(std::move(shape));
  if (n != t.size()) {
    throw PayloadError(std::string("checkpoint: tensor size mismatch in ") +
                       field);
  }
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = reader.f32();
  return t;
}

tensor::RngState get_rng(codec::wire::Reader& reader) {
  tensor::RngState state;
  for (auto& word : state.s) word = reader.u64();
  state.cached_normal_bits = static_cast<std::uint32_t>(
      reader.bounded_u64(~std::uint32_t{0}, "rng cached bits"));
  state.has_cached_normal = reader.u8() != 0;
  return state;
}

Bytes seal_frame(ByteView body) {
  Bytes frame;
  codec::wire::begin_payload(frame, kMagic, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  codec::wire::seal_payload(frame);
  return frame;
}

ByteView open_frame(ByteView frame) {
  const auto header = codec::wire::read_payload_header(frame, kMagic);
  const auto body = codec::wire::payload_body(frame);
  if (header.count != body.size()) {
    throw PayloadError("checkpoint: body size does not match header count");
  }
  return body;
}

void write_file(const std::string& path, ByteView bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename into " + path);
  }
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  Bytes data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) {
    throw std::runtime_error("checkpoint: read error on " + path);
  }
  return data;
}

}  // namespace compso::codec::ckpt
