#pragma once
// rANS (range asymmetric numeral systems) over the byte alphabet — the
// encoder the paper finds best overall (Table 2): high compression ratio
// from entropy coding plus high throughput from block-parallel decoding
// (Weissenberger & Schmidt's GPU ANS design, [54] in the paper).

#include "src/codec/codec.hpp"

namespace compso::codec {

/// Standalone rANS entropy stage (also reused by the Zstd-like codec).
/// Self-delimiting; falls back to a stored block on expansion.
Bytes rans_encode(ByteView input);
Bytes rans_decode(ByteView input);

std::unique_ptr<Codec> make_ans_codec();

}  // namespace compso::codec
