#pragma once
// rANS (range asymmetric numeral systems) over the byte alphabet — the
// encoder the paper finds best overall (Table 2): high compression ratio
// from entropy coding plus high throughput from block-parallel decoding
// (Weissenberger & Schmidt's GPU ANS design, [54] in the paper).

#include "src/codec/codec.hpp"

namespace compso::codec {

/// Standalone rANS entropy stage (also reused by the Zstd-like codec).
/// Self-delimiting; falls back to a stored block on expansion.
Bytes rans_encode(ByteView input);
Bytes rans_decode(ByteView input);
/// Appends the (identical) encoded stream to `out` without a temporary.
void rans_encode_into(ByteView input, Bytes& out);
/// Replaces `out` with the decoded stream (same bytes as rans_decode),
/// reusing its capacity across calls.
void rans_decode_into(ByteView input, Bytes& out);
/// Decodes two independent streams in one software-interleaved loop —
/// two state chains in flight hide the per-symbol latency that bounds a
/// single rANS decode. Outputs/errors match two sequential decodes; the
/// two output buffers must be distinct.
void rans_decode_pair_into(ByteView input_a, Bytes& out_a, ByteView input_b,
                           Bytes& out_b);

std::unique_ptr<Codec> make_ans_codec();

}  // namespace compso::codec
