#pragma once
// Payload wire format v1 (see DESIGN.md, "Payload format v1").
//
// Every self-describing byte frame in the system — each codec's encoded
// stream and each GradientCompressor's payload — starts with the same
// 17-byte header:
//
//   offset  size  field
//   0       4     magic        (u32 LE, identifies the producer)
//   4       1     version      (kFormatVersion)
//   5       8     count        (u64 LE: element count / original byte size)
//   13      4     CRC32        (u32 LE, over the whole frame except this
//                               field: header prefix chained with the body)
//
// Decoders validate magic, version, and CRC before trusting anything else,
// then read the body through the bounds-checked `Reader` so that no
// length/width field can drive an allocation or a read past the end of the
// buffer. All validation failures throw compso::PayloadError.

#include "src/common/payload_error.hpp"

#include <cstdint>
#include <span>
#include <vector>

namespace compso::codec::wire {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

constexpr std::uint8_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 4;

/// Hard ceiling on any element count a payload may claim. Payloads carrying
/// more than 2^32 elements (16 GiB of FP32) are outside anything the
/// training stack produces; rejecting them up front bounds every
/// count-driven allocation even if a corrupted count survives the CRC.
constexpr std::uint64_t kMaxElementCount = std::uint64_t{1} << 32;

/// IEEE CRC-32 (reflected, poly 0xEDB88320) of `data`.
std::uint32_t crc32(ByteView data) noexcept;

/// CRC-32 of the concatenation `a || b` without materializing it — frame
/// layouts that keep the CRC field between a header prefix and the body
/// (v1 payloads, v2 chunk frames) validate with zero copies.
std::uint32_t crc32_parts(ByteView a, ByteView b) noexcept;

struct PayloadHeader {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint64_t count = 0;  ///< element count / original byte size.
  std::uint32_t crc = 0;    ///< CRC32 of the frame minus this field.
};

/// Appends a v1 header with a zeroed CRC; write the body, then seal().
void begin_payload(Bytes& out, std::uint32_t magic, std::uint64_t count);

/// Computes the frame CRC (header prefix + body) and patches it into the
/// header. Must be the last step of every encode.
void seal_payload(Bytes& out);

/// seal_payload for a frame that starts at `frame_begin` instead of 0 —
/// used when a codec stream is appended in place inside a larger payload
/// (the fused compressor's zero-copy blob assembly). The frame spans
/// [frame_begin, out.size()).
void seal_payload_at(Bytes& out, std::size_t frame_begin);

/// Parses and fully validates a header: size, magic, version, and body CRC.
/// Throws PayloadError on any mismatch.
PayloadHeader read_payload_header(ByteView payload,
                                  std::uint32_t expected_magic);

/// The body view (everything after the header) of a size-checked payload.
ByteView payload_body(ByteView payload) noexcept;

/// Overflow-checked a * b for size computations; throws PayloadError.
std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b, const char* what);

/// Rejects decoded-size claims beyond `max_expansion` bytes of output per
/// input byte — the cheap pre-allocation guard for entropy decoders whose
/// legitimate expansion is bounded by the algorithm.
void check_expansion(std::uint64_t claimed_size, std::size_t body_bytes,
                     std::uint64_t max_expansion, const char* what);

/// Strict bounds-checked sequential reader over a payload body. Every read
/// validates against the end of the buffer and throws PayloadError instead
/// of ever touching out-of-range bytes.
class Reader {
 public:
  explicit Reader(ByteView data) noexcept : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  double f64();

  /// Reads a u64 and rejects values above `max`; `field` names the field in
  /// the error message.
  std::uint64_t bounded_u64(std::uint64_t max, const char* field);

  /// A length-`n` sub-blob starting at the cursor.
  ByteView blob(std::uint64_t n);

  /// Everything from the cursor to the end (consumes it).
  ByteView rest() noexcept;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace compso::codec::wire
