#pragma once
// Lossless encoder interface and registry.
//
// The paper selects COMPSO's lossless stage from the eight nvCOMP codecs
// (Table 2): ANS, Bitcomp, Cascaded, Deflate, Gdeflate, LZ4, Snappy, Zstd.
// Each codec here is a real, roundtrip-correct implementation of the same
// algorithm family (see DESIGN.md for the simplifications), plus a GPU cost
// profile so the gpusim device model can estimate the GB/s columns.

#include "src/codec/wire.hpp"

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace compso::codec {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Operation counts used by gpusim to model GPU (de)compression
/// throughput. `passes` = full sweeps over the input; `parallel_fraction`
/// captures how well the algorithm maps onto thousands of GPU threads
/// (dictionary matching with hash chains serializes; table-driven entropy
/// coding with per-block interleaving parallelizes).
struct CodecCostProfile {
  double encode_passes = 1.0;
  double decode_passes = 1.0;
  double parallel_fraction = 1.0;    ///< in (0, 1]; Amdahl-style.
  double flops_per_byte = 2.0;
  double bandwidth_efficiency = 1.0; ///< coalescing quality.
};

/// A lossless byte codec. encode() output is self-delimiting (it embeds the
/// original size), so decode() needs no side channel.
class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::string_view name() const noexcept = 0;
  virtual Bytes encode(ByteView input) const = 0;
  virtual Bytes decode(ByteView input) const = 0;
  virtual CodecCostProfile cost_profile() const noexcept = 0;

  /// Appends the encoded stream to `out` (identical bytes to encode()).
  /// Codecs that can emit in place override this to skip the temporary
  /// buffer + copy; the default delegates to encode(). Implementations
  /// must be const-thread-safe like encode().
  virtual void encode_into(ByteView input, Bytes& out) const {
    const Bytes frame = encode(input);
    out.insert(out.end(), frame.begin(), frame.end());
  }

  /// Replaces `out` with the decoded stream (identical bytes to
  /// decode()). Codecs override this to reuse the caller's buffer across
  /// steady-state calls instead of allocating a fresh vector per decode;
  /// the default delegates to decode(). Must be const-thread-safe.
  virtual void decode_into(ByteView input, Bytes& out) const {
    out = decode(input);
  }

  /// Decodes two independent streams (identical results to two
  /// decode_into calls; `out_a` and `out_b` must be distinct buffers).
  /// Codecs whose decode is a latency-bound serial chain override this
  /// to interleave the two streams and recover ILP. Must be
  /// const-thread-safe.
  virtual void decode_pair_into(ByteView input_a, Bytes& out_a,
                                ByteView input_b, Bytes& out_b) const {
    decode_into(input_a, out_a);
    decode_into(input_b, out_b);
  }
};

/// The nvCOMP-parallel codec set of Table 2.
enum class CodecKind {
  kAns,
  kBitcomp,
  kCascaded,
  kDeflate,
  kGdeflate,
  kLz4,
  kSnappy,
  kZstd,
};

constexpr CodecKind kAllCodecKinds[] = {
    CodecKind::kAns,     CodecKind::kBitcomp, CodecKind::kCascaded,
    CodecKind::kDeflate, CodecKind::kGdeflate, CodecKind::kLz4,
    CodecKind::kSnappy,  CodecKind::kZstd,
};

const char* to_string(CodecKind kind) noexcept;

/// Creates a codec instance.
std::unique_ptr<Codec> make_codec(CodecKind kind);
/// Lookup by name ("ANS", "Bitcomp", ...); throws on unknown name.
std::unique_ptr<Codec> make_codec(std::string_view name);

/// Frame helpers shared by all codecs. Every codec stream is a wire-format
/// v1 payload (src/codec/wire.hpp): [magic | version | original_size |
/// body CRC32], followed by the codec body. Encoders call write_header
/// first and seal_frame last; read_header validates magic, version, and
/// CRC and throws compso::PayloadError on any mismatch.
namespace detail {
constexpr std::size_t kHeaderSize = wire::kHeaderSize;
void write_header(Bytes& out, std::uint32_t magic, std::uint64_t size);
/// Patches the body CRC into the header; the last step of every encode.
void seal_frame(Bytes& out);
/// seal_frame for a frame appended at `frame_begin` inside a larger buffer.
void seal_frame_at(Bytes& out, std::size_t frame_begin);
std::uint64_t read_header(ByteView in, std::uint32_t expected_magic);
void append_u32(Bytes& out, std::uint32_t v);
void append_u64(Bytes& out, std::uint64_t v);
std::uint32_t read_u32(ByteView in, std::size_t offset);
std::uint64_t read_u64(ByteView in, std::size_t offset);
}  // namespace detail

}  // namespace compso::codec
