#pragma once
// Shared LZ77 match-finding engine. Deflate, Gdeflate, LZ4, Snappy, and the
// Zstd-like codec all parse input into (literal-run, match) tokens with
// this engine, differing in window size, match effort, and entropy backend.

#include "src/codec/codec.hpp"

namespace compso::codec {

/// One parsed token: `literal_len` literals starting at `literal_start`,
/// followed by a back-reference of `match_len` bytes at `distance`
/// (match_len == 0 for the trailing literal-only token).
struct Lz77Token {
  std::uint32_t literal_start = 0;
  std::uint32_t literal_len = 0;
  std::uint32_t match_len = 0;
  std::uint32_t distance = 0;
};

struct Lz77Params {
  std::uint32_t window = 1U << 15;   ///< max back-reference distance.
  std::uint32_t min_match = 4;
  std::uint32_t max_match = 1U << 16;
  std::uint32_t max_chain = 16;      ///< hash-chain probes per position.
  bool lazy = false;                 ///< one-step lazy matching (zstd-like).
};

/// Greedy (optionally lazy) hash-chain parse.
std::vector<Lz77Token> lz77_parse(ByteView input, const Lz77Params& params);

/// Reconstructs the input from tokens + the literal bytes of `input_literals`
/// (a buffer holding all literals in token order).
Bytes lz77_reconstruct(std::span<const Lz77Token> tokens,
                       ByteView literals, std::size_t output_size);

/// Splits a parse into the two streams entropy coders consume: the literal
/// bytes and a byte-serialized token stream (lengths/distances varint'd).
struct Lz77Streams {
  Bytes literals;
  Bytes tokens;  ///< varint [literal_len, match_len, distance] triples.
  std::size_t token_count = 0;
};
Lz77Streams lz77_serialize(ByteView input,
                           std::span<const Lz77Token> tokens);
/// Inverse of lz77_serialize (needs the original size for allocation).
Bytes lz77_deserialize(ByteView literals, ByteView tokens,
                       std::size_t output_size);

}  // namespace compso::codec
