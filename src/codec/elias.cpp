#include "src/codec/elias.hpp"

#include "src/quant/bitpack.hpp"

#include <bit>
#include <stdexcept>

namespace compso::codec {

Bytes elias_gamma_encode(std::span<const std::uint64_t> values) {
  quant::BitWriter w;
  for (std::uint64_t v : values) {
    if (v == 0) throw std::invalid_argument("elias gamma: value must be >= 1");
    const auto nbits = static_cast<unsigned>(std::bit_width(v));
    // nbits-1 zeros, then the value MSB-first. We emit through an LSB-first
    // writer, so write the zeros, the leading 1, then the low bits reversed
    // is unnecessary as long as decode mirrors this exact order: decode
    // counts zeros, then reads (nbits-1) low bits LSB-first.
    if (nbits > 1) w.write(0, nbits - 1);
    w.write(1, 1);
    if (nbits > 1) w.write(v & ((1ULL << (nbits - 1)) - 1), nbits - 1);
  }
  return w.take();
}

std::vector<std::uint64_t> elias_gamma_decode(ByteView bytes,
                                              std::size_t count) {
  // Each value costs at least one bit, so a count beyond the stream's bit
  // capacity is corrupt; reject before reserving.
  if (count > bytes.size() * 8) {
    throw PayloadError("elias gamma: count exceeds stream capacity");
  }
  quant::BitReader r(bytes);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    unsigned zeros = 0;
    while (r.read(1) == 0) {
      if (++zeros > 64 || r.exhausted()) {
        throw PayloadError("elias gamma: corrupt stream");
      }
    }
    std::uint64_t v = 1ULL << zeros;
    if (zeros > 0) v |= r.read(zeros);
    out.push_back(v);
  }
  return out;
}

Bytes elias_gamma_encode_signed(std::span<const std::int64_t> codes) {
  std::vector<std::uint64_t> u;
  u.reserve(codes.size());
  for (std::int64_t c : codes) u.push_back(quant::zigzag_encode(c) + 1);
  return elias_gamma_encode(u);
}

std::vector<std::int64_t> elias_gamma_decode_signed(ByteView bytes,
                                                    std::size_t count) {
  const auto u = elias_gamma_decode(bytes, count);
  std::vector<std::int64_t> out;
  out.reserve(count);
  for (std::uint64_t v : u) out.push_back(quant::zigzag_decode(v - 1));
  return out;
}

}  // namespace compso::codec
