// Dictionary-based codecs built on the shared LZ77 engine:
//   Deflate  = LZ77 (32 KiB window) + Huffman on literal & token streams.
//   Gdeflate = Deflate variant tuned for GPU: larger independent blocks /
//              deeper chains (higher ratio, same entropy stage).
//   LZ4      = LZ77 + raw byte-oriented token format (no entropy stage).
//   Snappy   = LZ77 with a shorter window and cheaper matching, raw format.
//   Zstd     = lazy LZ77 (128 KiB window) + rANS entropy stage.
//
// Their cost profiles encode why the paper measures all of them slow on
// GPU relative to ANS/Bitcomp: hash-chain match finding is serial and
// branchy (low parallel_fraction, poor coalescing).

#include "src/codec/ans.hpp"
#include "src/codec/codec.hpp"
#include "src/codec/huffman.hpp"
#include "src/codec/lz77.hpp"

#include <stdexcept>

namespace compso::codec {
namespace {

void append_sized(Bytes& out, const Bytes& blob) {
  detail::append_u64(out, blob.size());
  out.insert(out.end(), blob.begin(), blob.end());
}

ByteView read_sized(ByteView in, std::size_t& pos) {
  const std::uint64_t n = detail::read_u64(in, pos);
  pos += 8;
  if (n > in.size() - pos) throw PayloadError("codec: truncated blob");
  ByteView v = in.subspan(pos, n);
  pos += n;
  return v;
}

enum class Entropy { kNone, kHuffman, kRans };

Bytes entropy_encode(ByteView raw, Entropy e) {
  switch (e) {
    case Entropy::kNone: return Bytes(raw.begin(), raw.end());
    case Entropy::kHuffman: return huffman_encode(raw);
    case Entropy::kRans: return rans_encode(raw);
  }
  return {};
}

Bytes entropy_decode(ByteView coded, Entropy e) {
  switch (e) {
    case Entropy::kNone: return Bytes(coded.begin(), coded.end());
    case Entropy::kHuffman: return huffman_decode(coded);
    case Entropy::kRans: return rans_decode(coded);
  }
  return {};
}

/// Generic LZ codec: parse -> (literals, tokens) -> entropy stage.
class LzCodec : public Codec {
 public:
  LzCodec(std::string name, std::uint32_t magic, Lz77Params params,
          Entropy entropy, CodecCostProfile profile)
      : name_(std::move(name)),
        magic_(magic),
        params_(params),
        entropy_(entropy),
        profile_(profile) {}

  std::string_view name() const noexcept override { return name_; }

  Bytes encode(ByteView input) const override {
    Bytes out;
    detail::write_header(out, magic_, input.size());
    const auto tokens = lz77_parse(input, params_);
    const Lz77Streams s = lz77_serialize(input, tokens);
    const Bytes lit = entropy_encode(s.literals, entropy_);
    const Bytes tok = entropy_encode(s.tokens, entropy_);
    if (lit.size() + tok.size() + 32 >= input.size()) {
      out.push_back(0);  // stored
      out.insert(out.end(), input.begin(), input.end());
      detail::seal_frame(out);
      return out;
    }
    out.push_back(1);  // coded
    append_sized(out, lit);
    append_sized(out, tok);
    detail::seal_frame(out);
    return out;
  }

  Bytes decode(ByteView input) const override {
    const std::uint64_t size = detail::read_header(input, magic_);
    if (input.size() < detail::kHeaderSize + 1) {
      throw PayloadError(name_ + ": truncated stream");
    }
    const std::uint8_t mode = input[detail::kHeaderSize];
    std::size_t pos = detail::kHeaderSize + 1;
    if (mode == 0) {
      ByteView body = input.subspan(pos);
      if (body.size() < size) {
        throw PayloadError(name_ + ": truncated stored block");
      }
      return Bytes(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
    }
    if (mode != 1) throw PayloadError(name_ + ": unknown block mode");
    const ByteView lit_blob = read_sized(input, pos);
    const ByteView tok_blob = read_sized(input, pos);
    const Bytes literals = entropy_decode(lit_blob, entropy_);
    const Bytes tokens = entropy_decode(tok_blob, entropy_);
    return lz77_deserialize(literals, tokens, size);
  }

  CodecCostProfile cost_profile() const noexcept override { return profile_; }

 private:
  std::string name_;
  std::uint32_t magic_;
  Lz77Params params_;
  Entropy entropy_;
  CodecCostProfile profile_;
};

}  // namespace

std::unique_ptr<Codec> make_deflate_codec() {
  return std::make_unique<LzCodec>(
      "Deflate", 0x44454631U,
      Lz77Params{.window = 1U << 15, .min_match = 6, .max_match = 258,
                 .max_chain = 32, .lazy = false},
      Entropy::kHuffman,
      CodecCostProfile{.encode_passes = 3.0,
                       .decode_passes = 2.0,
                       .parallel_fraction = 0.35,
                       .flops_per_byte = 24.0,
                       .bandwidth_efficiency = 0.25});
}

std::unique_ptr<Codec> make_gdeflate_codec() {
  // GPU-oriented Deflate: deeper chains buy ratio; block-level parallelism
  // raises the parallel fraction somewhat vs. classic Deflate.
  return std::make_unique<LzCodec>(
      "Gdeflate", 0x47444546U,
      Lz77Params{.window = 1U << 16, .min_match = 6, .max_match = 258,
                 .max_chain = 48, .lazy = false},
      Entropy::kHuffman,
      CodecCostProfile{.encode_passes = 3.0,
                       .decode_passes = 1.8,
                       .parallel_fraction = 0.45,
                       .flops_per_byte = 24.0,
                       .bandwidth_efficiency = 0.28});
}

std::unique_ptr<Codec> make_lz4_codec() {
  return std::make_unique<LzCodec>(
      "LZ4", 0x4C5A3431U,
      Lz77Params{.window = 1U << 16, .min_match = 6, .max_match = 1U << 14,
                 .max_chain = 8, .lazy = false},
      Entropy::kNone,
      CodecCostProfile{.encode_passes = 1.5,
                       .decode_passes = 1.0,
                       .parallel_fraction = 0.40,
                       .flops_per_byte = 8.0,
                       .bandwidth_efficiency = 0.30});
}

std::unique_ptr<Codec> make_snappy_codec() {
  return std::make_unique<LzCodec>(
      "Snappy", 0x534E4150U,
      Lz77Params{.window = 1U << 14, .min_match = 6, .max_match = 64,
                 .max_chain = 4, .lazy = false},
      Entropy::kNone,
      CodecCostProfile{.encode_passes = 1.3,
                       .decode_passes = 1.0,
                       .parallel_fraction = 0.42,
                       .flops_per_byte = 6.0,
                       .bandwidth_efficiency = 0.32});
}

std::unique_ptr<Codec> make_zstd_codec() {
  return std::make_unique<LzCodec>(
      "Zstd", 0x5A535444U,
      Lz77Params{.window = 1U << 17, .min_match = 8, .max_match = 1U << 16,
                 .max_chain = 64, .lazy = true},
      Entropy::kRans,
      CodecCostProfile{.encode_passes = 4.0,
                       .decode_passes = 2.2,
                       .parallel_fraction = 0.30,
                       .flops_per_byte = 30.0,
                       .bandwidth_efficiency = 0.22});
}

}  // namespace compso::codec
