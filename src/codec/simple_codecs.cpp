// Lightweight numeric codecs:
//   Bitcomp  = per-block (min, width) frame-of-reference bit packing.
//              One streaming pass, trivially parallel -> the highest
//              throughput / lowest ratio corner of Table 2.
//   Cascaded = RLE + delta + bit packing (nvCOMP's cascaded scheme).
//              Wins only when long runs exist; mid throughput.

#include "src/codec/codec.hpp"
#include "src/quant/bitpack.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace compso::codec {
namespace {

constexpr std::uint32_t kBitcompMagic = 0x42495443U;  // "BITC"
constexpr std::uint32_t kCascadedMagic = 0x43415343U;  // "CASC"
constexpr std::size_t kBitcompBlock = 4096;

class BitcompCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "Bitcomp"; }

  Bytes encode(ByteView input) const override {
    Bytes out;
    detail::write_header(out, kBitcompMagic, input.size());
    quant::BitWriter w;
    for (std::size_t off = 0; off < input.size(); off += kBitcompBlock) {
      const std::size_t n = std::min(kBitcompBlock, input.size() - off);
      std::uint8_t lo = input[off], hi = input[off];
      for (std::size_t i = 0; i < n; ++i) {
        lo = std::min(lo, input[off + i]);
        hi = std::max(hi, input[off + i]);
      }
      const auto width = static_cast<unsigned>(
          std::bit_width(static_cast<unsigned>(hi - lo)));
      w.write(lo, 8);
      w.write(width, 4);
      if (width > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          w.write(static_cast<std::uint64_t>(input[off + i] - lo), width);
        }
      }
    }
    const Bytes payload = w.take();
    if (payload.size() >= input.size()) {
      out.push_back(0);
      out.insert(out.end(), input.begin(), input.end());
    } else {
      out.push_back(1);
      out.insert(out.end(), payload.begin(), payload.end());
    }
    detail::seal_frame(out);
    return out;
  }

  Bytes decode(ByteView input) const override {
    const std::uint64_t size = detail::read_header(input, kBitcompMagic);
    if (input.size() < detail::kHeaderSize + 1) {
      throw PayloadError("bitcomp: truncated stream");
    }
    const std::uint8_t mode = input[detail::kHeaderSize];
    ByteView body = input.subspan(detail::kHeaderSize + 1);
    if (mode == 0) {
      if (body.size() < size) {
        throw PayloadError("bitcomp: truncated stored block");
      }
      return Bytes(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
    }
    if (mode != 1) throw PayloadError("bitcomp: unknown block mode");
    // Every block of up to 4096 output bytes costs at least 12 header bits.
    wire::check_expansion(size, body.size(), 4096, "bitcomp");
    quant::BitReader r(body);
    Bytes out;
    out.reserve(size);
    while (out.size() < size) {
      const std::size_t n = std::min(kBitcompBlock, size - out.size());
      const auto lo = static_cast<std::uint8_t>(r.read(8));
      const auto width = static_cast<unsigned>(r.read(4));
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t delta = width > 0 ? r.read(width) : 0;
        out.push_back(static_cast<std::uint8_t>(lo + delta));
      }
    }
    return out;
  }

  CodecCostProfile cost_profile() const noexcept override {
    return {.encode_passes = 1.0,
            .decode_passes = 1.0,
            .parallel_fraction = 0.99,
            .flops_per_byte = 2.0,
            .bandwidth_efficiency = 0.90};
  }
};

class CascadedCodec final : public Codec {
 public:
  std::string_view name() const noexcept override { return "Cascaded"; }

  Bytes encode(ByteView input) const override {
    Bytes out;
    detail::write_header(out, kCascadedMagic, input.size());
    // Stage 1: RLE.
    std::vector<std::uint8_t> values;
    std::vector<std::uint64_t> runs;
    std::size_t i = 0;
    while (i < input.size()) {
      const std::uint8_t v = input[i];
      std::size_t j = i;
      while (j < input.size() && input[j] == v) ++j;
      values.push_back(v);
      runs.push_back(j - i);
      i = j;
    }
    // Stage 2: delta on values; Stage 3: bitpack deltas and runs.
    std::vector<std::int64_t> deltas(values.size());
    std::int64_t prev = 0;
    for (std::size_t k = 0; k < values.size(); ++k) {
      deltas[k] = static_cast<std::int64_t>(values[k]) - prev;
      prev = values[k];
    }
    std::vector<std::int64_t> run_codes(runs.begin(), runs.end());
    const unsigned dbits = deltas.empty() ? 1 : quant::required_bits(deltas);
    const unsigned rbits =
        run_codes.empty() ? 1 : quant::required_bits(run_codes);
    const Bytes dpack = quant::pack_codes(deltas, dbits);
    const Bytes rpack = quant::pack_codes(run_codes, rbits);

    Bytes payload;
    detail::append_u64(payload, values.size());
    payload.push_back(static_cast<std::uint8_t>(dbits));
    payload.push_back(static_cast<std::uint8_t>(rbits));
    detail::append_u64(payload, dpack.size());
    payload.insert(payload.end(), dpack.begin(), dpack.end());
    payload.insert(payload.end(), rpack.begin(), rpack.end());

    if (payload.size() >= input.size()) {
      out.push_back(0);
      out.insert(out.end(), input.begin(), input.end());
    } else {
      out.push_back(1);
      out.insert(out.end(), payload.begin(), payload.end());
    }
    detail::seal_frame(out);
    return out;
  }

  Bytes decode(ByteView input) const override {
    const std::uint64_t size = detail::read_header(input, kCascadedMagic);
    if (input.size() < detail::kHeaderSize + 1) {
      throw PayloadError("cascaded: truncated stream");
    }
    const std::uint8_t mode = input[detail::kHeaderSize];
    ByteView body = input.subspan(detail::kHeaderSize + 1);
    if (mode == 0) {
      if (body.size() < size) {
        throw PayloadError("cascaded: truncated stored block");
      }
      return Bytes(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(size));
    }
    if (mode != 1) throw PayloadError("cascaded: unknown block mode");
    std::size_t pos = 0;
    const std::uint64_t pairs = detail::read_u64(body, pos); pos += 8;
    if (pos + 2 > body.size()) throw PayloadError("cascaded: truncated");
    const unsigned dbits = body[pos++];
    const unsigned rbits = body[pos++];
    const std::uint64_t dpack_size = detail::read_u64(body, pos); pos += 8;
    if (dpack_size > body.size() - pos) {
      throw PayloadError("cascaded: truncated delta stream");
    }
    // unpack_codes bounds `pairs` against the packed streams before
    // allocating, so a hostile pair count cannot drive the vectors below.
    const auto deltas =
        quant::unpack_codes(body.subspan(pos, dpack_size), dbits, pairs);
    pos += dpack_size;
    const auto runs = quant::unpack_codes(body.subspan(pos), rbits, pairs);

    Bytes out;
    out.reserve(std::min<std::uint64_t>(size, 1ULL << 22));
    std::int64_t value = 0;
    for (std::uint64_t k = 0; k < pairs; ++k) {
      value += deltas[k];
      // RLE is unbounded expansion, so bound each run against the declared
      // output size incrementally instead of after the fact.
      if (value < 0 || value > 255 || runs[k] < 0 ||
          static_cast<std::uint64_t>(runs[k]) > size - out.size()) {
        throw PayloadError("cascaded: corrupt stream");
      }
      out.insert(out.end(), static_cast<std::size_t>(runs[k]),
                 static_cast<std::uint8_t>(value));
    }
    if (out.size() != size) {
      throw PayloadError("cascaded: size mismatch");
    }
    return out;
  }

  CodecCostProfile cost_profile() const noexcept override {
    return {.encode_passes = 2.5,
            .decode_passes = 1.5,
            .parallel_fraction = 0.85,
            .flops_per_byte = 4.0,
            .bandwidth_efficiency = 0.60};
  }
};

}  // namespace

std::unique_ptr<Codec> make_bitcomp_codec() {
  return std::make_unique<BitcompCodec>();
}
std::unique_ptr<Codec> make_cascaded_codec() {
  return std::make_unique<CascadedCodec>();
}

}  // namespace compso::codec
