#pragma once
// Canonical Huffman coding over the byte alphabet.
//
// Reused by three consumers: the Deflate/Gdeflate codecs (entropy stage),
// and the SZ-style compressor (which couples prediction + RN quantization
// with Huffman, §2.4).

#include "src/codec/codec.hpp"

namespace compso::codec {

/// Entropy-codes `input`. Output embeds the code-length table and original
/// size; falls back to a stored block when coding would expand the data.
Bytes huffman_encode(ByteView input);
Bytes huffman_decode(ByteView input);

/// Shannon entropy of the byte stream in bits/byte (diagnostics: the
/// gradient distribution's non-uniformity is why entropy coders win,
/// paper §5.2).
double byte_entropy(ByteView input) noexcept;

}  // namespace compso::codec
