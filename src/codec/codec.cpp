#include "src/codec/codec.hpp"

#include <stdexcept>

namespace compso::codec {

const char* to_string(CodecKind kind) noexcept {
  switch (kind) {
    case CodecKind::kAns: return "ANS";
    case CodecKind::kBitcomp: return "Bitcomp";
    case CodecKind::kCascaded: return "Cascaded";
    case CodecKind::kDeflate: return "Deflate";
    case CodecKind::kGdeflate: return "Gdeflate";
    case CodecKind::kLz4: return "LZ4";
    case CodecKind::kSnappy: return "Snappy";
    case CodecKind::kZstd: return "Zstd";
  }
  return "?";
}

// Factories are defined in each codec's translation unit.
std::unique_ptr<Codec> make_ans_codec();
std::unique_ptr<Codec> make_bitcomp_codec();
std::unique_ptr<Codec> make_cascaded_codec();
std::unique_ptr<Codec> make_deflate_codec();
std::unique_ptr<Codec> make_gdeflate_codec();
std::unique_ptr<Codec> make_lz4_codec();
std::unique_ptr<Codec> make_snappy_codec();
std::unique_ptr<Codec> make_zstd_codec();

std::unique_ptr<Codec> make_codec(CodecKind kind) {
  switch (kind) {
    case CodecKind::kAns: return make_ans_codec();
    case CodecKind::kBitcomp: return make_bitcomp_codec();
    case CodecKind::kCascaded: return make_cascaded_codec();
    case CodecKind::kDeflate: return make_deflate_codec();
    case CodecKind::kGdeflate: return make_gdeflate_codec();
    case CodecKind::kLz4: return make_lz4_codec();
    case CodecKind::kSnappy: return make_snappy_codec();
    case CodecKind::kZstd: return make_zstd_codec();
  }
  throw std::invalid_argument("make_codec: unknown kind");
}

std::unique_ptr<Codec> make_codec(std::string_view name) {
  for (CodecKind k : kAllCodecKinds) {
    if (name == to_string(k)) return make_codec(k);
  }
  throw std::invalid_argument("make_codec: unknown codec name: " +
                              std::string(name));
}

namespace detail {

void append_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(ByteView in, std::size_t offset) {
  if (offset > in.size() || in.size() - offset < 4) {
    throw PayloadError("codec: truncated u32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[offset + i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(ByteView in, std::size_t offset) {
  if (offset > in.size() || in.size() - offset < 8) {
    throw PayloadError("codec: truncated u64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[offset + i]) << (8 * i);
  return v;
}

void write_header(Bytes& out, std::uint32_t magic, std::uint64_t size) {
  wire::begin_payload(out, magic, size);
}

void seal_frame(Bytes& out) { wire::seal_payload(out); }

void seal_frame_at(Bytes& out, std::size_t frame_begin) {
  wire::seal_payload_at(out, frame_begin);
}

std::uint64_t read_header(ByteView in, std::uint32_t expected_magic) {
  return wire::read_payload_header(in, expected_magic).count;
}

}  // namespace detail
}  // namespace compso::codec
