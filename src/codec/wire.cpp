#include "src/codec/wire.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <string>

namespace compso::codec::wire {
namespace {

// Tables for slicing-by-8 CRC32: table[0] is the classic byte table; each
// table[j][i] advances byte i through j additional zero bytes, so eight
// lookups fold eight message bytes into the CRC per iteration with the
// identical polynomial (and therefore identical checksums) as the
// byte-at-a-time loop.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t j = 1; j < 8; ++j) {
      c = t[0][c & 0xFFU] ^ (c >> 8);
      t[j][i] = c;
    }
  }
  return t;
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(ByteView in, std::size_t offset) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(ByteView in, std::size_t offset) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

}  // namespace

namespace {

std::uint32_t crc32_update(std::uint32_t crc, ByteView data) noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    for (; n >= 8; p += 8, n -= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= crc;
      crc = tables[7][lo & 0xFFU] ^ tables[6][(lo >> 8) & 0xFFU] ^
            tables[5][(lo >> 16) & 0xFFU] ^ tables[4][lo >> 24] ^
            tables[3][hi & 0xFFU] ^ tables[2][(hi >> 8) & 0xFFU] ^
            tables[1][(hi >> 16) & 0xFFU] ^ tables[0][hi >> 24];
    }
  }
  for (; n > 0; ++p, --n) {
    crc = tables[0][(crc ^ *p) & 0xFFU] ^ (crc >> 8);
  }
  return crc;
}

/// CRC of the whole frame except the CRC field itself: the header prefix
/// (magic, version, count) chained with the body. Covering the count is
/// essential — a flipped count bit can otherwise thread through structural
/// checks on unlucky inputs (e.g. a bitmap whose final padding absorbs it).
std::uint32_t frame_crc(ByteView payload) noexcept {
  std::uint32_t crc = 0xFFFFFFFFU;
  crc = crc32_update(crc, payload.first(13));
  crc = crc32_update(crc, payload.subspan(kHeaderSize));
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace

std::uint32_t crc32(ByteView data) noexcept {
  return crc32_update(0xFFFFFFFFU, data) ^ 0xFFFFFFFFU;
}

std::uint32_t crc32_parts(ByteView a, ByteView b) noexcept {
  std::uint32_t crc = 0xFFFFFFFFU;
  crc = crc32_update(crc, a);
  crc = crc32_update(crc, b);
  return crc ^ 0xFFFFFFFFU;
}

void begin_payload(Bytes& out, std::uint32_t magic, std::uint64_t count) {
  put_u32(out, magic);
  out.push_back(kFormatVersion);
  put_u64(out, count);
  put_u32(out, 0);  // CRC placeholder, patched by seal_payload.
}

void seal_payload(Bytes& out) { seal_payload_at(out, 0); }

void seal_payload_at(Bytes& out, std::size_t frame_begin) {
  const ByteView frame(out.data() + frame_begin, out.size() - frame_begin);
  const std::uint32_t crc = frame_crc(frame);
  for (int i = 0; i < 4; ++i) {
    out[frame_begin + 13 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

PayloadHeader read_payload_header(ByteView payload,
                                  std::uint32_t expected_magic) {
  if (payload.size() < kHeaderSize) {
    throw PayloadError("payload: truncated header");
  }
  PayloadHeader h;
  h.magic = get_u32(payload, 0);
  if (h.magic != expected_magic) {
    throw PayloadError("payload: bad magic (wrong decoder for stream)");
  }
  h.version = payload[4];
  if (h.version != kFormatVersion) {
    throw PayloadError("payload: unsupported format version " +
                       std::to_string(static_cast<int>(h.version)));
  }
  h.count = get_u64(payload, 5);
  h.crc = get_u32(payload, 13);
  if (frame_crc(payload) != h.crc) {
    throw PayloadError("payload: checksum mismatch");
  }
  return h;
}

ByteView payload_body(ByteView payload) noexcept {
  return payload.subspan(kHeaderSize);
}

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != 0 && b > ~std::uint64_t{0} / a) {
    throw PayloadError(std::string(what) + ": size overflow");
  }
  return a * b;
}

void check_expansion(std::uint64_t claimed_size, std::size_t body_bytes,
                     std::uint64_t max_expansion, const char* what) {
  const std::uint64_t cap =
      checked_mul(static_cast<std::uint64_t>(body_bytes) + 1, max_expansion,
                  what);
  if (claimed_size > cap) {
    throw PayloadError(std::string(what) + ": implausible decoded size");
  }
}

void Reader::need(std::size_t n) const {
  if (n > remaining()) {
    throw PayloadError("payload: truncated body");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  const std::uint32_t v = get_u32(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = get_u64(data_, pos_);
  pos_ += 8;
  return v;
}

float Reader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::uint64_t Reader::bounded_u64(std::uint64_t max, const char* field) {
  const std::uint64_t v = u64();
  if (v > max) {
    throw PayloadError(std::string("payload: field '") + field +
                       "' out of range");
  }
  return v;
}

ByteView Reader::blob(std::uint64_t n) {
  if (n > remaining()) {
    throw PayloadError("payload: blob extends past end of buffer");
  }
  ByteView v = data_.subspan(pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return v;
}

ByteView Reader::rest() noexcept {
  ByteView v = data_.subspan(pos_);
  pos_ = data_.size();
  return v;
}

}  // namespace compso::codec::wire
