#pragma once
// Dependency-graph step scheduler (DESIGN.md §13).
//
// An optimizer step decomposes into per-layer tasks — covariance update,
// factor exchange, eigendecomposition refresh, preconditioning, gradient
// compression, collective — with explicit edges. The graph executes them
// on the shared CompressionEngine so that layer N's compute runs on the
// pool while layer N-1 is inside its collective on the main thread (the
// paper's §4.4 compute/communication overlap, generalised from "compress
// while communicating" to the whole step pipeline).
//
// Two task kinds:
//  - compute tasks run on the engine (pool workers, or inline on the
//    serial engine); their bodies must not touch the Communicator;
//  - main tasks run inline on the optimizer thread in schedule order —
//    collectives live here (the Communicator is single-threaded), as do
//    serial bookkeeping steps that mutate shared recovery state.
//
// Scheduling is fully deterministic: order() linearises the graph with a
// fixed selection rule (ready compute tasks before ready main tasks —
// eager submission — then priority descending, then insertion order),
// and run() walks that single total order on the calling thread. A
// compute task's result is reaped (engine.wait) at the first task that
// depends on it, never earlier; everything between submission and reap
// overlaps it. With backward-order priorities (later layers first) this
// reproduces the wavefront schedule of Shi et al.'s smart-parallelism
// pipeline.
//
// Determinism contract: every submission, reap, collective and tracer
// claim happens on the calling thread at a position that is a pure
// function of the graph — never of worker timing — so a step executed
// through run() is bit-identical at any engine thread count, and the
// exported trace (logical-tick spans, see run()) is byte-identical too.

#include "src/compress/compression_engine.hpp"
#include "src/obs/obs.hpp"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace compso::optim {

class StepGraph {
 public:
  using TaskId = std::size_t;

  /// Schedule-shape counters for one run(), all derived from the
  /// deterministic total order (identical at any thread count). A comm
  /// task is "overlapped" when at least one compute task was in flight
  /// (submitted, not yet reaped) while it ran, and "idle" when nothing
  /// was in flight even though unsubmitted compute tasks remained — the
  /// idle-gap signal the trace gate asserts against.
  struct Stats {
    std::size_t tasks = 0;
    std::size_t compute_tasks = 0;
    std::size_t main_tasks = 0;
    std::size_t comm_tasks = 0;
    std::size_t overlapped_comm = 0;
    std::size_t idle_comm = 0;
    std::size_t max_in_flight = 0;
  };

  /// Adds a task that run() submits to the engine. Higher priority =
  /// earlier among ready tasks (use the layer's backward position).
  TaskId add_compute(std::string name, int priority,
                     std::function<void()> fn);

  /// Adds a task that run() executes inline on the calling thread.
  /// `is_comm` marks collective-driving tasks for the overlap statistics.
  TaskId add_main(std::string name, int priority, std::function<void()> fn,
                  bool is_comm = false);

  /// Declares that `task` must not start before `on` completed.
  void depends(TaskId task, TaskId on);

  /// Drops all tasks (reusing capacity) for the next step's graph.
  void clear();

  std::size_t size() const noexcept { return tasks_.size(); }

  /// Deterministic topological order (see file comment for the selection
  /// rule). Throws std::logic_error when the graph has a cycle.
  std::vector<TaskId> order() const;

  /// Executes the graph: submits compute tasks to `engine` in order,
  /// runs main tasks inline, and reaps each compute task at its first
  /// dependent (or at the end). On any exception every outstanding
  /// ticket is reaped before rethrowing, so no task outlives the call.
  ///
  /// Tracing: when `hooks` carries a tracer, every task records a
  /// "sched" span stamped in logical ticks (one tick per scheduling
  /// event on the calling thread) rather than clock time — compute spans
  /// cover [submission, reap), main spans one tick — so span overlap in
  /// the export reflects the *structure* of the schedule and the
  /// document is byte-identical at any thread count and on any host.
  Stats run(compress::CompressionEngine& engine,
            const obs::ObsHooks& hooks);

 private:
  struct Task {
    std::string name;
    int priority = 0;
    std::function<void()> fn;
    bool compute = false;
    bool comm = false;
    std::vector<TaskId> deps;
  };

  std::vector<Task> tasks_;
};

}  // namespace compso::optim
