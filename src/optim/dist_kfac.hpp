#pragma once
// Distributed KFAC in the KAISA style (paper §2.2):
//
//  per iteration, for every trainable layer:
//   1. each rank computes local covariance contributions from its batch;
//   2. factors are all-reduced (averaged) across ranks;
//   3. eigendecompositions are partitioned layer-wise: layer l is owned by
//      rank (l mod world) and refreshed there every `eigen_refresh_every`
//      iterations;
//   4. the owner computes the preconditioned gradient for its layers;
//   5. preconditioned gradients are all-gathered to every rank — this is
//      the communication COMPSO compresses (variable-size allgatherv when
//      a compressor is attached).
//
// The simulator runs SPMD over model replicas: data really moves through
// the Communicator (so compression error reaches the weights exactly as on
// a real cluster) and every collective advances the simulated clocks.

#include "src/codec/wire.hpp"
#include "src/comm/communicator.hpp"
#include "src/compress/chunked_stream.hpp"
#include "src/compress/compression_engine.hpp"
#include "src/compress/compressor.hpp"
#include "src/nn/model.hpp"
#include "src/optim/kfac.hpp"
#include "src/optim/recovery.hpp"
#include "src/optim/step_graph.hpp"

#include <memory>
#include <vector>

namespace compso::optim {

/// Where each layer's KFAC factor state lives (DESIGN.md §16).
enum class PrecondLayout : std::uint8_t {
  /// KAISA: every rank holds and refreshes every layer's factors —
  /// per-rank factor memory and eigh work grow O(L) with the model.
  kKaisa = 0,
  /// DP-KFAC-style sharding: covariances are reduce-summed to the layer's
  /// owner, which alone holds/refreshes the factors and preconditions the
  /// gradient; the preconditioned update reaches everyone through the
  /// existing owner-grouped gather. Per-rank factor memory and eigh work
  /// are O(L/P). Trajectories are bit-identical to kKaisa (the reduce
  /// uses the same canonical summation order as the allreduce).
  kSharded = 1,
};

/// How layer slots map to owner ranks.
enum class ShardAssignment : std::uint8_t {
  /// Legacy KAISA order: slot s -> participant_ranks()[s % p].
  kRoundRobin = 0,
  /// Greedy LPT on the per-slot eigh cost (d_a^3 + d_g^3): heaviest slot
  /// first to the least-loaded participant. Deterministic (ties break to
  /// the lower slot / lower rank), so every rank computes the same map.
  kCostBalanced = 1,
};

struct DistKfacConfig {
  double momentum = 0.9;
  double damping = 3e-2;          ///< gamma in Eq. 2.
  double stat_decay = 0.9;        ///< running-average factor decay.
  std::size_t eigen_refresh_every = 10;
  /// Layer-aggregation factor m (§4.4): each owner concatenates up to m of
  /// its layers' preconditioned gradients per compression call, amortizing
  /// codec overhead and improving small-layer ratios.
  std::size_t aggregation = 1;
  /// Chunked streaming pipeline (DESIGN.md §15): when > 0, the
  /// preconditioned-gradient gather ships each rank's send buffer as
  /// fixed-size chunk frames — per-round frame (CRC) compute nodes
  /// pipelined against per-round chunk collectives on the StepGraph — and
  /// reassembles on resumable cursors. 0 = the monolithic allgatherv.
  /// Payload bytes and training trajectories are bit-identical either way
  /// (the chunk layer frames the *finished* payload; no RNG stream or
  /// float op changes).
  std::size_t chunk_bytes = 0;
  /// Factor-state layout (see PrecondLayout). The default keeps the
  /// legacy replicated KAISA behavior.
  PrecondLayout layout = PrecondLayout::kKaisa;
  /// Layer -> owner assignment policy (see ShardAssignment). kRoundRobin
  /// reproduces the legacy `participant_ranks()[s % p]` map exactly.
  ShardAssignment assignment = ShardAssignment::kRoundRobin;
};

/// Paper §7 future-work item 2: compressing the intermediate factor
/// matrices A and G before their collective. Because a compressed
/// allreduce is not linear, the factor exchange becomes
/// compress -> allgatherv -> decompress -> average (the CocktailSGD-style
/// pattern), trading extra payload count for the compression ratio.

class DistKfac {
 public:
  /// `replicas` are the per-rank model copies (must be structurally
  /// identical; typically created from the same seed).
  DistKfac(DistKfacConfig config, comm::Communicator& comm,
           std::vector<nn::Model*> replicas);

  /// One optimizer step after every rank ran forward/backward on its local
  /// batch. `compressor` == nullptr means no compression (the paper's
  /// "KFAC (No Comp.)" baseline).
  void step(std::size_t iteration, double lr,
            const compress::GradientCompressor* compressor,
            tensor::Rng& rng);

  /// Communication volume of the last step's preconditioned-gradient
  /// allgather (for compression-ratio reporting).
  std::uint64_t last_original_bytes() const noexcept { return orig_bytes_; }
  std::uint64_t last_compressed_bytes() const noexcept { return comp_bytes_; }

  /// Attaches a parallel compression engine: factor and gather-group
  /// compression jobs run on its pool while this thread drives the
  /// collectives (compute/communication overlap, §4.4). Pass nullptr for
  /// the built-in serial engine. Output is bit-identical either way: each
  /// job draws from a counter-derived Rng stream, never from the step
  /// generator.
  void set_engine(compress::CompressionEngine* engine) noexcept {
    engine_ = engine;
  }

  /// Enables factor (A/G) compression for the covariance exchange (§7
  /// future work). Pass nullptr to disable (default: plain allreduce).
  void set_factor_compressor(
      const compress::GradientCompressor* compressor) noexcept {
    factor_compressor_ = compressor;
  }
  std::uint64_t last_factor_original_bytes() const noexcept {
    return factor_orig_bytes_;
  }
  std::uint64_t last_factor_compressed_bytes() const noexcept {
    return factor_comp_bytes_;
  }

  std::size_t layer_count() const noexcept { return layer_indices_.size(); }
  /// Owner rank of trainable layer slot `i` under the configured
  /// assignment policy, over this step's *participating* ranks — so
  /// ownership re-partitions deterministically when the membership layer
  /// excludes a straggler for a step or evicts a crashed rank. The
  /// assignment is cached and refreshed lazily whenever the participation
  /// mask changes.
  std::size_t owner_of(std::size_t i) const;
  /// The full slot -> owner map (refreshed like owner_of).
  const std::vector<std::size_t>& shard_owners() const;

  /// Per-rank factor memory / eigh cost attribution for the current
  /// layout + assignment — the auditable O(L/P) claim (BENCH_scale.json).
  /// Bytes count resident factor state (A, G, both eigenvector matrices,
  /// both eigenvalue vectors); flops use the explicit-eigh 25*d^3 model.
  /// Under kKaisa every participant is charged every layer (replicated);
  /// under kSharded only the owner is charged.
  struct ShardStats {
    std::vector<std::size_t> owners;        ///< [slot] -> owner rank.
    std::vector<std::uint64_t> factor_bytes;  ///< [world rank].
    std::vector<double> eigh_flops;           ///< [world rank].
    std::uint64_t peak_factor_bytes = 0;  ///< max over participants.
    double peak_eigh_flops = 0.0;         ///< max over participants.
  };
  ShardStats shard_stats() const;

  /// Recovery policy (see recovery.hpp): bounded re-send retries on decode
  /// failure, fallback to the uncompressed exchange, non-finite step skip.
  /// The preconditioned-gradient gather is one collective for all layers,
  /// so fallback/degradation applies to the whole exchange rather than to
  /// a single layer.
  void set_recovery(const RecoveryPolicy& policy) noexcept {
    policy_ = policy;
  }
  const RecoveryPolicy& recovery_policy() const noexcept { return policy_; }
  bool gather_degraded() const noexcept { return gather_degraded_ != 0; }

  /// Serializes momentum, KFAC factors + eigendecompositions, and recovery
  /// counters for checkpointing; restore with load_state.
  void save_state(std::vector<std::uint8_t>& out) const;
  void load_state(codec::wire::Reader& reader);

  /// Schedule-shape counters of the last step() (see StepGraph::Stats):
  /// how many collectives ran with compute in flight, how many ran idle.
  const StepGraph::Stats& last_sched_stats() const noexcept {
    return sched_stats_;
  }

 private:
  DistKfacConfig cfg_;
  RecoveryPolicy policy_;
  comm::Communicator& comm_;
  std::vector<nn::Model*> replicas_;
  std::vector<std::size_t> layer_indices_;  ///< trainable layer positions.
  std::vector<std::unique_ptr<KfacLayerState>> states_;
  std::vector<Tensor> momentum_;  ///< per layer, combined-grad shaped.
  std::uint64_t orig_bytes_ = 0;
  std::uint64_t comp_bytes_ = 0;
  const compress::GradientCompressor* factor_compressor_ = nullptr;
  std::uint64_t factor_orig_bytes_ = 0;
  std::uint64_t factor_comp_bytes_ = 0;
  std::uint8_t gather_degraded_ = 0;     ///< gather permanently uncompressed.
  std::uint32_t gather_failures_ = 0;    ///< consecutive failed steps.

  compress::CompressionEngine* engine_ = nullptr;
  compress::CompressionEngine serial_engine_{0};  ///< inline fallback.
  /// Per-step task counter: every compression job's Rng stream id,
  /// assigned in deterministic order while the step's task graph is
  /// built on the optimizer thread (see step()).
  std::uint64_t task_counter_ = 0;
  /// The step's task graph + the schedule-shape counters of its last run.
  StepGraph graph_;
  StepGraph::Stats sched_stats_;
  // Per-step workspaces (persistent so steady-state steps reuse
  // capacity): covariances + factor payloads and averaged/preconditioned
  // gradients indexed [slot][rank] / [slot], decode buffers indexed
  // [rank], gather-group buffers indexed [group].
  std::vector<std::vector<Tensor>> cov_a_;
  std::vector<std::vector<Tensor>> cov_g_;
  std::vector<std::vector<compress::Bytes>> factor_send_a_;
  std::vector<std::vector<compress::Bytes>> factor_send_g_;
  std::vector<std::vector<Tensor>> grad_work_;  ///< [slot][rank].
  std::vector<Tensor> preconditioned_;          ///< [slot].
  std::vector<std::uint8_t> skip_;              ///< [slot], non-finite.
  std::vector<std::vector<std::size_t>> owned_;  ///< [rank] -> slots.
  /// Cached slot -> owner assignment + the participation mask it was
  /// computed under (lazy refresh; see refresh_assignment).
  mutable std::vector<std::size_t> shard_owner_;
  mutable std::vector<std::uint8_t> shard_mask_;
  std::vector<std::vector<float>> decode_bufs_;
  std::vector<std::vector<float>> group_concat_;
  std::vector<compress::Bytes> group_payloads_;
  std::vector<std::vector<float>> group_values_;
  // Chunked-gather workspaces (persistent; see DESIGN.md §15): per-rank
  // send buffers + producers on the send side, per-rank resumable cursors
  // on the receive side, and the reassembled concatenation the decoder
  // reads (byte-identical to the unchunked recv stream).
  std::vector<compress::Bytes> chunk_send_;
  std::vector<compress::ChunkedProducer> chunk_producers_;
  std::vector<compress::ChunkedConsumer> chunk_consumers_;
  compress::Bytes chunk_concat_;
  std::uint8_t chunk_failed_ = 0;  ///< a round exhausted its retries.

  compress::CompressionEngine& engine() noexcept {
    return engine_ ? *engine_ : serial_engine_;
  }

  /// Deterministic slot -> owner map over `ranks` (ascending rank list)
  /// under the configured assignment policy.
  std::vector<std::size_t> compute_owners(
      const std::vector<std::size_t>& ranks) const;
  /// Refreshes the cached assignment if the participation mask changed
  /// since it was computed (eviction/readmission reassigns shards).
  void refresh_assignment() const;

  /// Exchanges per-rank covariance contributions: plain allreduce when
  /// `send` is null (reduce-to-`owner` under the sharded layout — the
  /// canonical summation order makes the owner's average bit-identical to
  /// the allreduce lead's), else the compressed allgatherv path using the
  /// pre-compressed per-rank payloads. On return, the first active entry
  /// of `local` holds the rank average.
  void exchange_covariances(std::vector<Tensor>& local,
                            const std::vector<compress::Bytes>* send,
                            std::size_t owner);

  /// Builds the per-owner send buffers for the preconditioned-gradient
  /// allgatherv ([u64 n][u64 sid x n][u64 psize][payload] groups). Group
  /// compressions run as one engine batch, each on its own
  /// counter-derived Rng stream.
  std::vector<std::vector<std::uint8_t>> build_gather_payloads(
      const std::vector<Tensor>& preconditioned,
      const std::vector<std::vector<std::size_t>>& owned,
      const compress::GradientCompressor* compressor,
      std::uint64_t step_seed);

  /// Decodes one gathered stream into `preconditioned` (throws
  /// PayloadError on any framing or payload damage). Framing is parsed
  /// and validated serially; group decompressions run as one engine
  /// batch.
  void decode_gathered(const std::vector<std::uint8_t>& buf,
                       std::vector<Tensor>& preconditioned,
                       const compress::GradientCompressor* compressor);
};

}  // namespace compso::optim
