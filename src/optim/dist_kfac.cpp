#include "src/optim/dist_kfac.hpp"

#include "src/tensor/matrix_ops.hpp"

#include <cstring>
#include <stdexcept>

namespace compso::optim {

DistKfac::DistKfac(DistKfacConfig config, comm::Communicator& comm,
                   std::vector<nn::Model*> replicas)
    : cfg_(config), comm_(comm), replicas_(std::move(replicas)) {
  if (replicas_.size() != comm_.world_size()) {
    throw std::invalid_argument("DistKfac: one replica per rank required");
  }
  layer_indices_ = replicas_[0]->trainable_layers();
  for (std::size_t li : layer_indices_) {
    auto& l = replicas_[0]->layer(li);
    const std::size_t out = l.weight()->rows();
    const std::size_t in_aug = l.weight()->cols() + 1;
    states_.push_back(std::make_unique<KfacLayerState>(in_aug, out));
    momentum_.emplace_back(
        Tensor({out, in_aug}));
  }
}

void DistKfac::exchange_covariances(std::vector<Tensor>& local,
                                    tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  if (factor_compressor_ == nullptr) {
    std::vector<std::span<float>> views;
    views.reserve(world);
    for (auto& t : local) views.push_back(t.span());
    comm_.allreduce_sum(views);
    local[0] *= 1.0F / static_cast<float>(world);
    return;
  }
  // Compressed path (§7): each rank compresses its local covariance, the
  // payloads are all-gathered, every rank decompresses and averages.
  const std::size_t n = local[0].size();
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    send[r] = factor_compressor_->compress(local[r].span(), rng);
    factor_orig_bytes_ += n * sizeof(float);
    factor_comp_bytes_ += send[r].size();
  }
  std::vector<std::vector<std::uint8_t>> recv;
  comm_.allgatherv(send, recv);
  Tensor avg(local[0]);
  avg.fill(0.0F);
  // Decode from the *received* stream (sliced by the known send sizes), so
  // transport corruption reaches the payload validation layer.
  const compress::ByteView gathered(recv[0]);
  std::size_t off = 0;
  for (std::size_t r = 0; r < world; ++r) {
    if (send[r].size() > gathered.size() - off) {
      throw PayloadError("DistKfac: gathered stream truncated");
    }
    const auto rec =
        factor_compressor_->decompress(gathered.subspan(off, send[r].size()));
    off += send[r].size();
    if (rec.size() != n) {
      throw std::logic_error("DistKfac: factor decompress size mismatch");
    }
    for (std::size_t i = 0; i < n; ++i) {
      avg[i] += rec[i] / static_cast<float>(world);
    }
  }
  local[0] = std::move(avg);
}

void DistKfac::step(std::size_t iteration, double lr,
                    const compress::GradientCompressor* compressor,
                    tensor::Rng& rng) {
  const std::size_t world = comm_.world_size();
  factor_orig_bytes_ = 0;
  factor_comp_bytes_ = 0;

  // --- 1+2: covariance computation and factor allreduce (steps 1-2).
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    // Per-rank local covariances.
    std::vector<Tensor> local_a(world), local_g(world);
    for (std::size_t r = 0; r < world; ++r) {
      auto& layer = replicas_[r]->layer(li);
      const Tensor* a = layer.kfac_input();
      const Tensor* g = layer.kfac_grad_output();
      if (a == nullptr || g == nullptr || a->empty() || g->empty()) {
        throw std::logic_error("DistKfac: run forward/backward first");
      }
      const auto batch = static_cast<float>(a->rows());
      tensor::syrk_tn(*a, 1.0F / batch, 0.0F, local_a[r]);
      tensor::syrk_tn(*g, batch, 0.0F, local_g[r]);
    }
    // Exchange and average the factors every rank must agree on.
    exchange_covariances(local_a, rng);
    exchange_covariances(local_g, rng);
    // Blend into the shared running-average state. (All ranks hold the
    // same state after the allreduce; the simulator stores it once.)
    states_[s]->blend_factors(local_a[0], local_g[0], cfg_.stat_decay);
  }

  // --- 2b: gradient allreduce (data-parallel average of SGD gradients).
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    const std::size_t li = layer_indices_[s];
    std::vector<Tensor> grads(world);
    for (std::size_t r = 0; r < world; ++r) {
      grads[r] = combined_gradient(replicas_[r]->layer(li));
    }
    std::vector<std::span<float>> views;
    views.reserve(world);
    for (auto& t : grads) views.push_back(t.span());
    comm_.allreduce_sum(views);
    grads[0] *= 1.0F / static_cast<float>(world);
    // Stash the averaged gradient back into replica 0's layer grads via
    // the momentum path below; keep it in a temp list.
    momentum_workspace_.push_back(std::move(grads[0]));
  }

  // --- 3: eigendecomposition refresh on owner ranks (partitioned work).
  const bool refresh =
      iteration % cfg_.eigen_refresh_every == 0 || !states_[0]->has_eigen();
  if (refresh) {
    for (auto& st : states_) st->refresh_eigen();
  }

  // --- 4: owners precondition their layers; 5: allgather(v) to all ranks.
  // Each owner aggregates up to m of its layers per compression call
  // (§4.4's layer aggregation): the concatenated buffer is compressed
  // once, serialized as [u64 n][u64 sid x n][u64 psize][payload].
  std::vector<Tensor> preconditioned(layer_indices_.size());
  orig_bytes_ = 0;
  comp_bytes_ = 0;
  std::vector<std::vector<std::size_t>> owned(world);
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    preconditioned[s] =
        states_[s]->precondition(momentum_workspace_[s], cfg_.damping);
    orig_bytes_ += preconditioned[s].size() * sizeof(float);
    owned[owner_of(s)].push_back(s);
  }
  const std::size_t m = std::max<std::size_t>(cfg_.aggregation, 1);
  auto append_u64 = [](std::vector<std::uint8_t>& buf, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      buf.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };
  std::vector<std::vector<std::uint8_t>> send(world);
  for (std::size_t r = 0; r < world; ++r) {
    for (std::size_t i = 0; i < owned[r].size(); i += m) {
      const std::size_t group_end = std::min(i + m, owned[r].size());
      std::vector<float> concat;
      for (std::size_t j = i; j < group_end; ++j) {
        const auto& k = preconditioned[owned[r][j]];
        concat.insert(concat.end(), k.span().begin(), k.span().end());
      }
      const auto payload =
          compressor != nullptr
              ? compressor->compress(concat, rng)
              : [&] {
                  compress::Bytes raw(concat.size() * sizeof(float));
                  if (!raw.empty()) {
                    std::memcpy(raw.data(), concat.data(), raw.size());
                  }
                  return raw;
                }();
      auto& buf = send[r];
      append_u64(buf, group_end - i);
      for (std::size_t j = i; j < group_end; ++j) {
        append_u64(buf, owned[r][j]);
      }
      append_u64(buf, payload.size());
      buf.insert(buf.end(), payload.begin(), payload.end());
      comp_bytes_ += payload.size();
    }
  }
  std::vector<std::vector<std::uint8_t>> recv;
  comm_.allgatherv(send, recv);

  // --- decode on every rank (identical bytes -> identical updates).
  // Decode once from recv[0] and apply to all replicas.
  {
    const auto& buf = recv[0];
    std::size_t pos = 0;
    auto read_u64 = [&](std::size_t at) {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= static_cast<std::uint64_t>(buf[at + static_cast<std::size_t>(b)])
             << (8 * b);
      }
      return v;
    };
    while (pos + 8 <= buf.size()) {
      const std::uint64_t n = read_u64(pos);
      pos += 8;
      if (pos + 8 * n + 8 > buf.size()) {
        throw std::logic_error("DistKfac: corrupt allgather payload");
      }
      std::vector<std::size_t> sids(n);
      std::size_t group_elems = 0;
      for (std::uint64_t j = 0; j < n; ++j) {
        sids[j] = read_u64(pos);
        pos += 8;
        if (sids[j] >= preconditioned.size()) {
          throw std::logic_error("DistKfac: bad layer id in payload");
        }
        group_elems += preconditioned[sids[j]].size();
      }
      const std::uint64_t psize = read_u64(pos);
      pos += 8;
      if (pos + psize > buf.size()) {
        throw std::logic_error("DistKfac: corrupt allgather payload");
      }
      const std::span<const std::uint8_t> payload(buf.data() + pos, psize);
      pos += psize;
      std::vector<float> values;
      if (compressor != nullptr) {
        values = compressor->decompress(payload);
      } else {
        values.resize(psize / sizeof(float));
        if (psize > 0) {
          std::memcpy(values.data(), payload.data(), psize);
        }
      }
      if (values.size() != group_elems) {
        throw std::logic_error("DistKfac: decompressed size mismatch");
      }
      std::size_t off = 0;
      for (std::size_t sid : sids) {
        Tensor& k = preconditioned[sid];
        std::copy(values.begin() + static_cast<std::ptrdiff_t>(off),
                  values.begin() + static_cast<std::ptrdiff_t>(off + k.size()),
                  k.data());
        off += k.size();
      }
    }
  }

  // --- momentum + weight update, identically on every replica.
  for (std::size_t s = 0; s < layer_indices_.size(); ++s) {
    momentum_[s].axpby(static_cast<float>(cfg_.momentum), 1.0F,
                       preconditioned[s]);
    for (std::size_t r = 0; r < world; ++r) {
      apply_combined_update(replicas_[r]->layer(layer_indices_[s]),
                            momentum_[s], lr);
    }
  }
  momentum_workspace_.clear();
}

}  // namespace compso::optim
